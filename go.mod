module warpedslicer

go 1.22
