// Multikernel: share every SM among THREE kernels (Figure 8's scenario)
// and compare spatial multitasking, even partitioning and Warped-Slicer
// against the Left-Over baseline.
//
//	go run ./examples/multikernel [A B C]
package main

import (
	"fmt"
	"os"

	"warpedslicer/internal/experiments"
	"warpedslicer/internal/kernels"
)

func main() {
	names := []string{"NN", "MM", "IMG"} // a Figure 8 combination
	if len(os.Args) == 4 {
		names = os.Args[1:4]
	}
	var specs []*kernels.Spec
	for _, n := range names {
		spec := kernels.ByAbbr(n)
		if spec == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q\n", n)
			os.Exit(1)
		}
		specs = append(specs, spec)
	}

	o := experiments.Defaults()
	o.IsolationCycles = 30_000
	o.Warmup = 10_000
	s := experiments.NewSession(o)

	fmt.Printf("workload: %s\n", experiments.WorkloadName(specs))
	lo := s.CoRun(specs, "leftover")
	fmt.Printf("%-12s IPC %7.1f  (baseline)\n", "left-over", lo.IPC)
	for _, p := range []string{"spatial", "even", "dynamic"} {
		r := s.CoRun(specs, p)
		extra := ""
		if p == "dynamic" {
			if r.ChoseSpatial {
				extra = "  [fell back to spatial]"
			} else {
				extra = fmt.Sprintf("  [partition %v]", r.Partition)
			}
		}
		fmt.Printf("%-12s IPC %7.1f  (%.2fx)%s\n", p, r.IPC, r.IPC/lo.IPC, extra)
	}

	// Per-kernel turnaround detail for the dynamic policy.
	dy := s.CoRun(specs, "dynamic")
	fmt.Println("\nper-kernel completion (dynamic):")
	for i, spec := range specs {
		fmt.Printf("  %-4s target=%9d insts, finished at cycle %d\n",
			spec.Abbr, dy.Targets[i], dy.FinishCycles[i])
	}
}
