// Pairsweep: a miniature Figure 6 — sweep a handful of kernel pairs across
// all multiprogramming policies (including the exhaustive oracle) and
// report IPC normalized to the Left-Over baseline.
//
//	go run ./examples/pairsweep [n]
package main

import (
	"fmt"
	"os"
	"strconv"

	"warpedslicer/internal/experiments"
	"warpedslicer/internal/obs"
)

func main() {
	n := 4
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil && v > 0 {
			n = v
		}
	}
	pairs := experiments.Pairs()
	if n > len(pairs) {
		n = len(pairs)
	}

	o := experiments.Quick()
	o.Events = obs.NewEventLog()
	o.Events.OnEvent = func(ev obs.Event) {
		if ev.Kind == obs.EvIsolationDone || ev.Kind == obs.EvCoRunDone {
			fmt.Fprintf(os.Stderr, "# %s %v\n", ev.Kind, ev.Data)
		}
	}
	s := experiments.NewSession(o)

	rows := experiments.Figure6From(s, pairs[:n], true)
	fmt.Print(experiments.FormatFigure6(rows))
	fmt.Println()
	fmt.Print(experiments.FormatTable3(experiments.Table3(s, rows)))
}
