// Pairsweep: a miniature Figure 6 — sweep a handful of kernel pairs across
// all multiprogramming policies (including the exhaustive oracle) and
// report IPC normalized to the Left-Over baseline.
//
//	go run ./examples/pairsweep [n]
package main

import (
	"fmt"
	"os"
	"strconv"

	"warpedslicer/internal/experiments"
)

func main() {
	n := 4
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil && v > 0 {
			n = v
		}
	}
	pairs := experiments.Pairs()
	if n > len(pairs) {
		n = len(pairs)
	}

	o := experiments.Quick()
	o.Progress = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
	}
	s := experiments.NewSession(o)

	rows := experiments.Figure6From(s, pairs[:n], true)
	fmt.Print(experiments.FormatFigure6(rows))
	fmt.Println()
	fmt.Print(experiments.FormatTable3(experiments.Table3(s, rows)))
}
