// Customkernel: define a brand-new synthetic kernel (outside the built-in
// Table II suite), measure its occupancy-scaling curve, and co-schedule it
// with a built-in kernel under Warped-Slicer.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"warpedslicer/internal/experiments"
	"warpedslicer/internal/isa"
	"warpedslicer/internal/kernels"
)

func main() {
	// A "stencil-reduce" kernel: shared-memory staging, a barrier, a
	// transcendental, and a strided global read over a modest tile.
	custom := &kernels.Spec{
		Name: "Stencil Reduce", Abbr: "STR",
		GridDim: 4096, BlockDim: 192,
		RegsPerThread:  24,
		SharedMemPerTA: 3 * 1024,
		Body: []kernels.Op{
			{Kind: isa.LDG, Pattern: kernels.PatTiled, Lines: 1},
			{Kind: isa.LDS, DependsPrev: true},
			{Kind: isa.ALU, DependsPrev: true},
			{Kind: isa.ALU, DependsPrev: true},
			{Kind: isa.SFU, DependsPrev: true},
			{Kind: isa.BAR},
			{Kind: isa.STG, Pattern: kernels.PatTiled, Lines: 1, DependsPrev: true},
		},
		Iterations:    220,
		TileBytes:     8 * 1024,
		ICacheMissPct: 2,
		Class:         kernels.Compute,
	}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}

	o := experiments.Defaults()
	o.IsolationCycles = 30_000
	o.Warmup = 10_000
	s := experiments.NewSession(o)

	// Occupancy behaviour of the new kernel.
	curve := s.OccupancyCurve(custom)
	fmt.Printf("%s: category=%s, peak at %d/%d CTAs per SM\n",
		custom.Name, curve.Category, curve.PeakCTAs, curve.MaxCTAs)
	for j := 1; j <= curve.MaxCTAs; j++ {
		fmt.Printf("  %d CTAs -> normalized IPC %.2f\n", j, curve.Norm[j])
	}

	// Co-schedule with the memory-bound LBM under every policy.
	lbm := kernels.ByAbbr("LBM")
	pair := []*kernels.Spec{custom, lbm}
	lo := s.CoRun(pair, "leftover")
	fmt.Printf("\nSTR+LBM co-run (baseline left-over IPC %.1f):\n", lo.IPC)
	for _, p := range []string{"spatial", "even", "dynamic"} {
		r := s.CoRun(pair, p)
		note := ""
		if p == "dynamic" {
			if r.ChoseSpatial {
				note = "  [spatial fallback]"
			} else {
				note = fmt.Sprintf("  [partition %v]", r.Partition)
			}
		}
		fmt.Printf("  %-8s %.2fx%s\n", p, r.IPC/lo.IPC, note)
	}
}
