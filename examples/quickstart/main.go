// Quickstart: run two kernels on one simulated GPU under the Warped-Slicer
// dynamic intra-SM slicing policy, and compare against the Left-Over
// baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/metrics"
	"warpedslicer/internal/policy"
)

func main() {
	cfg := config.Baseline() // Table I: 16 SMs, 1536 threads/SM, 48KB shm

	// Pick a compute-bound and a cache-sensitive kernel from the
	// built-in Table II suite.
	img := kernels.ByAbbr("IMG") // Image Denoising: compute saturating
	nn := kernels.ByAbbr("NN")   // Neural Network: L1-cache sensitive

	// 1. Reference runs: each kernel alone for a fixed window records its
	// instruction target (the paper's §V-A methodology).
	target := func(spec *kernels.Spec) uint64 {
		g := gpu.New(cfg, policy.FCFS{})
		g.AddKernel(spec, 0)
		g.RunCycles(40_000)
		return g.KernelInsts(0)
	}
	imgTarget, nnTarget := target(img), target(nn)
	fmt.Printf("targets: IMG=%d NN=%d thread instructions\n", imgTarget, nnTarget)

	// 2. Co-run under the Left-Over baseline (Hyper-Q-style allocation).
	run := func(name string, d gpu.Dispatcher) (float64, int64, gpu.Dispatcher) {
		g := gpu.New(cfg, d)
		g.AddKernel(img, imgTarget)
		g.AddKernel(nn, nnTarget)
		cycles := g.Run(3_000_000)
		ipc := metrics.IPC(g.KernelInsts(0)+g.KernelInsts(1), cycles)
		fmt.Printf("%-12s finished in %7d cycles, combined IPC %.1f\n", name, cycles, ipc)
		return ipc, cycles, d
	}
	baseIPC, _, _ := run("left-over", policy.LeftOver{})

	// 3. Co-run under Warped-Slicer: the controller profiles both kernels
	// at staggered occupancies, water-fills the SM resources, and
	// repartitions.
	ctrl := core.NewController()
	ctrl.WarmupCycles = 10_000
	ctrl.SampleCycles = 5_000
	dynIPC, _, _ := run("warped-slicer", ctrl)

	if ctrl.ChoseSpatial {
		fmt.Println("controller fell back to spatial multitasking")
	} else {
		fmt.Printf("water-filling partition: IMG=%d CTAs, NN=%d CTAs per SM\n",
			ctrl.Partition[0], ctrl.Partition[1])
	}
	fmt.Printf("speedup over left-over: %.2fx\n", dynIPC/baseIPC)
}
