// Arrival: reproduce Figure 2e's scenario — two kernels share every SM
// under Warped-Slicer, then a third kernel arrives mid-run. The controller
// launches a new repartitioning phase over all three kernels; the late
// kernel starts executing as the marked resources drain.
//
//	go run ./examples/arrival
package main

import (
	"fmt"

	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
)

func main() {
	ctrl := core.NewController()
	ctrl.WarmupCycles = 10_000
	ctrl.SampleCycles = 5_000
	ctrl.ArrivalWarmup = 5_000
	// Tolerate more per-kernel loss than the paper's default so the demo
	// stays on the intra-SM path instead of falling back to spatial.
	ctrl.LossThresholdScale = 2.5

	g := gpu.New(config.Baseline(), ctrl)
	// Shorten CTA lifetimes so the post-arrival drain is visible quickly.
	img, mm := *kernels.ByAbbr("IMG"), *kernels.ByAbbr("MM")
	img.Iterations, mm.Iterations = 60, 60
	g.AddKernel(&img, 0)
	g.AddKernel(&mm, 0)
	const arrival = 30_000
	blk := g.AddKernelAt(kernels.ByAbbr("BLK"), 0, arrival)

	var lastPartition string
	for step := 0; step < 20; step++ {
		g.RunCycles(5_000)
		part := "profiling..."
		if ctrl.Decided() {
			if ctrl.ChoseSpatial {
				part = "spatial fallback"
			} else {
				part = fmt.Sprint(ctrl.Partition)
			}
		}
		if part != lastPartition {
			fmt.Printf("cycle %6d: partition -> %s\n", g.Now(), part)
			lastPartition = part
		}
		if g.Now() == arrival+5_000 {
			fmt.Printf("cycle %6d: BLK arrived, re-profiling all three kernels\n", g.Now())
		}
	}

	fmt.Printf("\nfinal instruction counts: IMG=%d MM=%d BLK=%d\n",
		g.KernelInsts(0), g.KernelInsts(1), g.KernelInsts(2))
	if blk.Arrived() && g.KernelInsts(2) > 0 {
		fmt.Println("late kernel successfully absorbed by repartitioning")
	}
}
