// Occupancy: reproduce the Figure 3a occupancy-scaling study for a chosen
// set of kernels, printing normalized-IPC curves and their empirical
// categories as ASCII bar charts.
//
//	go run ./examples/occupancy [ABBR ...]
package main

import (
	"fmt"
	"os"
	"strings"

	"warpedslicer/internal/experiments"
	"warpedslicer/internal/kernels"
)

func main() {
	abbrs := os.Args[1:]
	if len(abbrs) == 0 {
		abbrs = []string{"HOT", "IMG", "BLK", "NN", "MVP"} // Figure 3a's five
	}

	o := experiments.Defaults()
	o.IsolationCycles = 40_000
	s := experiments.NewSession(o)

	for _, a := range abbrs {
		spec := kernels.ByAbbr(a)
		if spec == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q (try: BLK BFS DXT HOT IMG KNN LBM MM MVP NN)\n", a)
			os.Exit(1)
		}
		c := s.OccupancyCurve(spec)
		fmt.Printf("%s (%s), peak at %d/%d CTAs\n", spec.Name, c.Category, c.PeakCTAs, c.MaxCTAs)
		for j := 1; j <= c.MaxCTAs; j++ {
			bar := strings.Repeat("#", int(c.Norm[j]*40))
			fmt.Printf("  %d CTA %-40s %.2f\n", j, bar, c.Norm[j])
		}
		fmt.Println()
	}
}
