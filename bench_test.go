// Package warpedslicer_bench holds one benchmark per table and figure of
// the paper (plus microbenchmarks of the partitioning algorithm and the
// raw simulator). Benchmarks use reduced windows; regenerate the full
// evaluation with `go run ./cmd/wslicer all`.
package warpedslicer_bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"syscall"
	"testing"
	"time"

	"warpedslicer/internal/assert"
	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/experiments"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/policy"
	"warpedslicer/internal/power"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/runlog"
	"warpedslicer/internal/sm"
	"warpedslicer/internal/span"
)

func benchOptions() experiments.Options { return experiments.Quick() }

// BenchmarkTable2 regenerates Table II (per-benchmark utilization).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows := experiments.Table2(s)
		if len(rows) != 10 {
			b.Fatal("table2 incomplete")
		}
	}
}

// BenchmarkFigure1 regenerates the stall-cycle breakdown of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		if len(experiments.Figure1(s)) != 10 {
			b.Fatal("figure1 incomplete")
		}
	}
}

// BenchmarkFigure3 measures one compute and one cache-sensitive occupancy
// curve (Figure 3a's axes).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		img := s.OccupancyCurve(kernels.ByAbbr("IMG"))
		nn := s.OccupancyCurve(kernels.ByAbbr("NN"))
		if img.MaxCTAs != 8 || nn.MaxCTAs != 4 {
			b.Fatal("unexpected occupancy limits")
		}
	}
}

// BenchmarkFigure3b regenerates the IMG+NN sweet-spot search (Figure 3b).
func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		if _, err := s.Figure3b(kernels.ByAbbr("IMG"), kernels.ByAbbr("NN")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Pair runs one pair under all four policies (one row of
// Figure 6, without the oracle).
func BenchmarkFigure6Pair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows := experiments.Figure6From(s, experiments.Pairs()[:1], false)
		if rows[0].Dynamic <= 0 {
			b.Fatal("dynamic policy produced no IPC")
		}
	}
}

// BenchmarkFigure6Oracle runs one pair's exhaustive oracle search.
func BenchmarkFigure6Oracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}
		if s.Oracle(specs).IPC <= 0 {
			b.Fatal("oracle produced no IPC")
		}
	}
}

// BenchmarkTable3 derives the partition table from a two-pair sweep.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows := experiments.Figure6From(s, experiments.Pairs()[:2], false)
		if len(experiments.Table3(s, rows)) != 2 {
			b.Fatal("table3 incomplete")
		}
	}
}

// BenchmarkFigure7 computes utilization/miss/stall aggregates from a
// two-pair sweep (Figure 7's three panels).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows := experiments.Figure6From(s, experiments.Pairs()[:2], false)
		a := experiments.Figure7aFrom(s, rows)
		_ = experiments.Figure7bFrom(rows)
		c := experiments.Figure7cFrom(rows)
		if a.ALU <= 0 || len(c) != 4 {
			b.Fatal("figure7 aggregates incomplete")
		}
	}
}

// BenchmarkFigure8Triple runs one three-kernel workload across policies.
func BenchmarkFigure8Triple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows := experiments.Figure6From(s, experiments.Triples()[:1], false)
		if rows[0].Dynamic <= 0 {
			b.Fatal("triple dynamic produced no IPC")
		}
	}
}

// BenchmarkFigure9 computes fairness and ANTT from pair+triple runs.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		pairRows := experiments.Figure6From(s, experiments.Pairs()[:1], false)
		tripleRows := experiments.Figure6From(s, experiments.Triples()[:1], false)
		if len(experiments.Figure9(s, pairRows, tripleRows)) != 4 {
			b.Fatal("figure9 incomplete")
		}
	}
}

// BenchmarkEnergy evaluates the §V-G energy model over one pair sweep.
func BenchmarkEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOptions())
		rows := experiments.Figure6From(s, experiments.Pairs()[:1], false)
		if len(experiments.Energy(s, rows)) != 4 {
			b.Fatal("energy incomplete")
		}
	}
}

// BenchmarkFigure10a sweeps profiling parameters on one pair.
func BenchmarkFigure10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure10a(benchOptions(), experiments.Pairs()[:1])
		if len(rows) != 8 {
			b.Fatal("figure10a incomplete")
		}
	}
}

// BenchmarkFigure10b compares warp schedulers on one pair.
func BenchmarkFigure10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure10b(benchOptions(), experiments.Pairs()[:1])
		if len(rows) != 2 {
			b.Fatal("figure10b incomplete")
		}
	}
}

// BenchmarkBigSM evaluates the §V-H large-SM configuration on one pair.
func BenchmarkBigSM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Cfg = config.LargeSM()
		r := experiments.BigSM(o, experiments.Pairs()[:1])
		if r.PerfNorm <= 0 {
			b.Fatal("bigsm produced nothing")
		}
	}
}

// BenchmarkOverhead evaluates the §V-I analytic overhead model.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if power.Overhead(16).TotalMM2 <= 0 {
			b.Fatal("overhead model broken")
		}
	}
}

// --- Microbenchmarks -----------------------------------------------------

func algDemands() []core.Demand {
	mk := func(n int, peak int) []float64 {
		p := make([]float64, n+1)
		for j := 1; j <= n; j++ {
			if j <= peak {
				p[j] = float64(j)
			} else {
				p[j] = float64(peak) - 0.3*float64(j-peak)
			}
		}
		return p
	}
	return []core.Demand{
		{Perf: mk(8, 6), Need: sm.Quota{Regs: 2304, Shm: 2048, Threads: 64, CTAs: 1}},
		{Perf: mk(4, 3), Need: sm.Quota{Regs: 7605, Threads: 169, CTAs: 1}},
		{Perf: mk(5, 1), Need: sm.Quota{Regs: 6360, Threads: 120, CTAs: 1}},
	}
}

// BenchmarkWaterFill measures Algorithm 1's O(K·N) partitioner.
func BenchmarkWaterFill(b *testing.B) {
	d := algDemands()
	total := sm.Quota{Regs: 32768, Shm: 48 * 1024, Threads: 1536, CTAs: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.WaterFill(d, total); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBruteForce measures the O(N^K) reference optimizer (the
// complexity comparison of §IV).
func BenchmarkBruteForce(b *testing.B) {
	d := algDemands()
	total := sm.Quota{Regs: 32768, Shm: 48 * 1024, Threads: 1536, CTAs: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.BruteForce(d, total); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCycle measures raw simulator throughput: one GPU cycle
// with all 16 SMs fully occupied.
func BenchmarkSimulatorCycle(b *testing.B) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	g.RunCycles(1000) // fill and warm
	b.ResetTimer()
	g.RunCycles(int64(b.N))
}

// BenchmarkSimulatorCycleInstrumented is BenchmarkSimulatorCycle with the
// full observability layer attached but no sink draining it: every counter
// registered, the event log connected, no monitor period. Compare against
// BenchmarkSimulatorCycle to see the passive cost of instrumentation.
func BenchmarkSimulatorCycleInstrumented(b *testing.B) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.Log = obs.NewEventLog()
	g.Register(obs.NewRegistry())
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	g.RunCycles(1000) // fill and warm
	b.ResetTimer()
	g.RunCycles(int64(b.N))
}

// BenchmarkRegistrySnapshot measures one full pull of every registered
// series on a 16-SM GPU (what each Hub publication or timeline window
// costs).
func BenchmarkRegistrySnapshot(b *testing.B) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	reg := obs.NewRegistry()
	g.Register(reg)
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	g.RunCycles(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if reg.Snapshot().Get("ws_gpu_cycle") <= 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// obsTimeRun measures ns/cycle over `cycles` on an already-warm GPU.
// cpuTime returns the process's cumulative user+system CPU time. The
// budgets in this file are defined over CPU cost, and wall-clock deltas
// on shared or quota-throttled machines (CI runners, small VMs) include
// stretches where the process was simply not scheduled — enough to bury
// a 2% overhead or fake a 20% regression between back-to-back runs.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

func obsTimeRun(g *gpu.GPU, cycles int64) float64 {
	// Flush collection work left over from the previous timed segment.
	// Without this, an allocation-heavy configuration (the event log)
	// defers its GC mark work into whichever segment runs next,
	// systematically charging one configuration's garbage to the other.
	runtime.GC()
	start := cpuTime()
	g.RunCycles(cycles)
	return float64(cpuTime()-start) / float64(cycles)
}

// median returns the middle of the sorted samples. Min-of-N systematically
// favors whichever configuration happens to catch one perfectly quiet
// stretch — with two configurations that bias lands on either side at
// random, which is how BENCH_obs.json once recorded a negative
// instrumentation overhead. The median is noise-robust without that
// direction lottery.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// mergeBenchJSON merges updates into the JSON object at path, preserving
// keys written by other test configurations (e.g. the simassert-on and
// simassert-off overhead runs both contribute to BENCH_obs.json). The
// write is atomic (temp file + rename): two test configurations racing on
// the same file lose an update at worst, never tear the JSON.
func mergeBenchJSON(t *testing.T, path string, updates map[string]any) {
	t.Helper()
	out := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Logf("overwriting unreadable %s: %v", path, err)
			out = map[string]any{}
		}
	}
	for k, v := range updates {
		out[k] = v
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := runlog.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestObsOverheadBudget proves the observability layer is effectively
// free on the hot path: with every counter registered, the event log
// attached, and the engine self-profiler sampling phase timers at its
// default period — but no sink draining any of it — simulator throughput
// must stay within obsBudgetFrac of the bare configuration. The paired
// median-of-ratios measurement is written to BENCH_obs.json.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if assert.Enabled {
		// Per-cycle invariant checks inflate both configurations; the
		// budget is defined for the shipping (assert-off) build, and
		// TestSimassertOverhead records the assert-on cost instead.
		t.Skip("overhead budget applies to the assert-off build")
	}
	const (
		rounds = 7
		chunk  = int64(10_000)
		// The budget is relative, so it re-anchors when the engine itself
		// gets faster: the ready-set scheduler cut bare ns/cycle ~35%,
		// which pushed the unchanged ~250 ns/cycle instrumentation cost
		// from ~1.9% to ~2.5% of a much cheaper cycle. 3% holds the line
		// at the new engine speed; an *absolute* instrumentation
		// regression of the same relative size as before still trips it.
		obsBudgetFrac = 0.03
	)
	newGPU := func(instrumented bool) *gpu.GPU {
		g := gpu.New(config.Baseline(), policy.FCFS{})
		if instrumented {
			g.Log = obs.NewEventLog()
			g.Prof = prof.New(0) // default period, phase timers live
			g.Register(obs.NewRegistry())
		} else {
			// The bare configuration also turns span sampling off, so the
			// budget covers the default 1-in-64 sampling and recording cost,
			// not just the registry.
			g.Mem.Spans.SetPeriod(0)
		}
		g.AddKernel(kernels.ByAbbr("MM"), 0)
		g.RunCycles(1000)
		return g
	}

	var bare, inst float64
	var overhead float64
	// The measurement is paired: both GPUs advance the same simulated
	// window each round (the simulator is deterministic, so they stay in
	// lockstep), and the overhead is the median of the per-round cost
	// ratios. Pairing makes the comparison immune to the workload's own
	// phase structure (per-cycle cost drops ~3× as the kernel drains) and
	// to machine drift; alternating which configuration runs first each
	// round cancels positional bias (the second run of a pair starts
	// warmer). A few attempts keep one globally noisy stretch from
	// failing the budget.
	for attempt := 0; attempt < 3; attempt++ {
		gBare, gInst := newGPU(false), newGPU(true)
		bareRounds := make([]float64, 0, rounds)
		instRounds := make([]float64, 0, rounds)
		ratios := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			var b, i float64
			if r%2 == 0 {
				b = obsTimeRun(gBare, chunk)
				i = obsTimeRun(gInst, chunk)
			} else {
				i = obsTimeRun(gInst, chunk)
				b = obsTimeRun(gBare, chunk)
			}
			bareRounds = append(bareRounds, b)
			instRounds = append(instRounds, i)
			ratios = append(ratios, i/b)
		}
		bare, inst = median(bareRounds), median(instRounds)
		overhead = median(ratios) - 1
		if overhead < obsBudgetFrac {
			break
		}
	}

	// The latency histograms (L1 round trip, L2 queue wait, DRAM service,
	// eviction age) Observe inside the model in both configurations, so
	// their cost is already inside bare/inst above; pin the per-Observe
	// price separately so a histogram regression is visible on its own.
	histNs := timeHistObserve()
	sampleNs := timeSpanSample()

	// A negative measured overhead is residual noise, not the
	// instrumented build outrunning the bare one; clamp the recorded
	// fraction to zero so the committed number cannot claim a negative
	// cost (the raw value stays available for noise diagnosis).
	clamped := overhead
	if clamped < 0 {
		clamped = 0
	}
	mergeBenchJSON(t, "BENCH_obs.json", map[string]any{
		"bare_ns_per_cycle":         bare,
		"instrumented_ns_per_cycle": inst,
		"overhead_frac":             clamped,
		"overhead_frac_raw":         overhead,
		"budget_frac":               obsBudgetFrac,
		"rounds":                    rounds,
		"cycles_per_round":          chunk,
		"hist_ns_per_observe":       histNs,
		"span_sampling_ns_per_req":  sampleNs,
	})
	t.Logf("bare %.1f ns/cycle, instrumented %.1f ns/cycle, overhead %.2f%%, hist observe %.2f ns, span sample %.2f ns",
		bare, inst, overhead*100, histNs, sampleNs)
	if overhead >= obsBudgetFrac {
		t.Errorf("passive instrumentation overhead %.2f%% exceeds the %.0f%% budget",
			overhead*100, obsBudgetFrac*100)
	}
}

// TestSimassertOverhead records the cost of the build-tag-gated runtime
// invariants in BENCH_obs.json. Run it under both build configurations to
// populate both sides:
//
//	go test -run TestSimassertOverhead .
//	go test -tags simassert -run TestSimassertOverhead .
//
// The assert-off number should match bare_ns_per_cycle (the guards compile
// to `if false { ... }` and are eliminated); the assert-on number shows the
// real price of per-cycle conservation and bounds checking.
func TestSimassertOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		rounds = 7
		chunk  = int64(10_000)
	)
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	g.RunCycles(1000)

	vs := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		vs = append(vs, obsTimeRun(g, chunk))
	}
	ns := median(vs)

	key := "simassert_off_ns_per_cycle"
	if assert.Enabled {
		key = "simassert_on_ns_per_cycle"
	}
	mergeBenchJSON(t, "BENCH_obs.json", map[string]any{key: ns})
	t.Logf("%s = %.1f ns/cycle (assert.Enabled=%v)", key, ns, assert.Enabled)
}

// histSink defeats dead-code elimination in timeHistObserve and
// BenchmarkHistObserve.
var histSink uint64

// timeHistObserve returns the cost of one obs.Hist.Observe in nanoseconds
// (min of 3 rounds of 1<<22 observes over a spread of bucket magnitudes).
func timeHistObserve() float64 {
	const n = 1 << 22
	best := -1.0
	for r := 0; r < 3; r++ {
		var h obs.Hist
		start := time.Now()
		for i := int64(0); i < n; i++ {
			h.Observe(i & 0xfffff)
		}
		ns := float64(time.Since(start).Nanoseconds()) / n
		histSink += h.Count()
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best
}

// BenchmarkHistObserve prices the always-on latency histograms: one
// Observe is a bit-length bucket index and two adds.
func BenchmarkHistObserve(b *testing.B) {
	var h obs.Hist
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xfffff)
	}
	histSink += h.Count()
}

// sampleSink defeats dead-code elimination in the span-sampling timers.
var sampleSink int

// timeSpanSample returns the cost of one span.Sampler.Sample decision in
// nanoseconds (min of 3 rounds of 1<<22 calls over varying line/cycle).
// This is the price every L1 miss pays at the default period; only the
// 1-in-64 sampled requests pay the recording path on top.
func timeSpanSample() float64 {
	const n = 1 << 22
	s := span.Sampler{Period: span.DefaultPeriod}
	best := -1.0
	for r := 0; r < 3; r++ {
		hits := 0
		start := time.Now()
		for i := int64(0); i < n; i++ {
			if s.Sample(uint64(i)<<7, i, int(i&7)) {
				hits++
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / n
		sampleSink += hits
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best
}

// BenchmarkSpanSample prices the per-request sampling decision: one
// splitmix-style hash and a modulo.
func BenchmarkSpanSample(b *testing.B) {
	s := span.Sampler{Period: span.DefaultPeriod}
	hits := 0
	for i := 0; i < b.N; i++ {
		if s.Sample(uint64(i)<<7, int64(i), i&7) {
			hits++
		}
	}
	sampleSink += hits
}

// benchFingerprint identifies the machine and measurement methodology a
// BENCH_obs.json baseline was recorded under. The 15% regression budget
// only means something against a baseline from the same machine measured
// the same way (per-cycle cost varies ~3× across the workload's phases,
// so the sampled window is part of the methodology); on any mismatch the
// test rebases silently instead of comparing apples to oranges.
func benchFingerprint(rounds int, chunk int64) string {
	host, _ := os.Hostname()
	return fmt.Sprintf("%s/%d-cores/%dx%d-cycles", host, runtime.NumCPU(), rounds, chunk)
}

// TestEngineProfileBudget is the perf-regression rig: it measures engine
// ns/cycle (median of interleaved rounds) plus the profiler's per-phase
// ns/cycle split, merge-writes them into BENCH_obs.json, and fails when
// throughput regressed more than 15% against the committed same-machine
// baseline. Every speed PR (SoA warp state, request arenas, fast-forward)
// lands against this number.
func TestEngineProfileBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if assert.Enabled {
		t.Skip("regression budget applies to the assert-off build")
	}
	if raceEnabled {
		t.Skip("regression budget applies to the race-detector-off build")
	}
	const (
		rounds = 7
		chunk  = int64(10_000)
		budget = 0.15
	)

	// Two baselines gate this test. The legacy one is the single
	// ns_per_cycle in the committed BENCH_obs.json; the trajectory one is
	// the median of the last trajectoryTailK same-fingerprint points in
	// BENCH_trajectory.jsonl, so one historically noisy run cannot move
	// the gate. Both are honored only under a matching fingerprint.
	const (
		trajectoryPath  = "BENCH_trajectory.jsonl"
		trajectoryTailK = 5
	)
	prior := map[string]any{}
	if data, err := os.ReadFile("BENCH_obs.json"); err == nil {
		_ = json.Unmarshal(data, &prior)
	}
	baseline, _ := prior["ns_per_cycle"].(float64)
	priorFP, _ := prior["bench_fingerprint"].(string)
	fp := benchFingerprint(rounds, chunk)
	comparable := baseline > 0 && priorFP == fp

	trajPts, err := runlog.ReadTrajectory(trajectoryPath)
	if err != nil {
		t.Fatal(err)
	}
	trajBase, trajN := runlog.TrajectoryBaseline(trajPts, fp, trajectoryTailK)
	trajComparable := trajN > 0 && trajBase > 0

	measure := func() (float64, gpu.Profile) {
		g := gpu.New(config.Baseline(), policy.FCFS{})
		g.Prof = prof.New(0)
		g.AddKernel(kernels.ByAbbr("MM"), 0)
		g.RunCycles(1000)
		vs := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			vs = append(vs, obsTimeRun(g, chunk))
		}
		return median(vs), g.Profile()
	}
	regressed := func(ns float64) bool {
		return (comparable && ns/baseline-1 > budget) ||
			(trajComparable && ns/trajBase-1 > budget)
	}

	ns, gp := measure()
	// Re-measure before declaring a regression, keeping the fastest
	// attempt: noise only ever inflates a timing, so the minimum is the
	// least-noisy estimate and a single slow stretch must not fail CI.
	for attempt := 0; attempt < 2 && regressed(ns); attempt++ {
		ns2, gp2 := measure()
		if ns2 < ns {
			ns, gp = ns2, gp2
		}
	}

	phases := map[string]float64{}
	if gp.Phases != nil {
		for _, pc := range gp.Phases.Phases {
			phases[pc.Phase] = pc.NsPerCycle
		}
	}

	if regressed(ns) {
		// Keep the committed baselines intact (no merge, no trajectory
		// append) so the regression stays visible on re-runs instead of
		// ratcheting itself away.
		switch {
		case comparable && ns/baseline-1 > budget:
			t.Fatalf("engine throughput regressed: %.1f ns/cycle vs baseline %.1f (%.1f%% > %.0f%% budget)",
				ns, baseline, (ns/baseline-1)*100, budget*100)
		default:
			t.Fatalf("engine throughput regressed: %.1f ns/cycle vs trajectory median %.1f over last %d points (%.1f%% > %.0f%% budget)",
				ns, trajBase, trajN, (ns/trajBase-1)*100, budget*100)
		}
	}

	// Price the state-digest walk. The plain measurement above *is* the
	// digests-off cost — DigestEvery stays 0 there, so its only hot-path
	// trace is one predicted branch in Step — which keeps "off by default
	// is free" continuously enforced by the 15% budget itself. Here we arm
	// the flight recorder at every=1 to measure the walk's full per-record
	// cost, then amortize it to the default period a production arming
	// pays. The amortized figure must stay a small fraction of engine
	// ns/cycle or arming the recorder would itself distort the runs it is
	// meant to audit.
	const digestBudgetFrac = 0.10
	measureDigest := func() float64 {
		g := gpu.New(config.Baseline(), policy.FCFS{})
		g.AddKernel(kernels.ByAbbr("MM"), 0)
		g.RunCycles(1000)
		g.ArmFlightRecorder(digest.DefaultFlightDepth, 1, "")
		vs := make([]float64, 0, rounds)
		for r := 0; r < rounds; r++ {
			vs = append(vs, obsTimeRun(g, chunk))
		}
		perRecord := median(vs) - ns
		if perRecord < 0 {
			perRecord = 0 // noise floor: digesting cannot be a speedup
		}
		return perRecord
	}
	digestPerRecord := measureDigest()
	digestAmortized := digestPerRecord / float64(gpu.DefaultDigestEvery)
	for attempt := 0; attempt < 2 && digestAmortized > digestBudgetFrac*ns; attempt++ {
		digestPerRecord = measureDigest()
		digestAmortized = digestPerRecord / float64(gpu.DefaultDigestEvery)
	}
	if digestAmortized > digestBudgetFrac*ns {
		// Fatal before the merge, like the throughput regression: keep
		// the committed numbers intact so the failure stays visible.
		t.Fatalf("digest walk too expensive: %.1f ns/record = %.2f ns/cycle amortized at every=%d, over %.0f%% of engine %.1f ns/cycle",
			digestPerRecord, digestAmortized, gpu.DefaultDigestEvery, digestBudgetFrac*100, ns)
	}

	mergeBenchJSON(t, "BENCH_obs.json", map[string]any{
		"ns_per_cycle":                ns,
		"phase_ns_per_cycle":          phases,
		"digest_ns_per_record":        digestPerRecord,
		"digest_ns_per_cycle":         digestAmortized,
		"digest_budget_frac":          digestBudgetFrac,
		"regression_budget_frac":      budget,
		"bench_fingerprint":           fp,
		"fast_forward_skippable_frac": gp.FFSkippableFrac,
		"sched_fastpath_frac":         gp.SchedFastFrac,
	})
	// One fingerprint-keyed point per passing run extends the cross-PR
	// performance trajectory (charted by wsplot -trajectory; the tail
	// median becomes the next run's gate).
	if err := runlog.AppendTrajectory(trajectoryPath, runlog.TrajectoryPoint{
		Fingerprint:       fp,
		UnixNs:            time.Now().UnixNano(),
		NsPerCycle:        ns,
		PhaseNsPerCycle:   phases,
		DigestNsPerRecord: digestPerRecord,
		FFSkippableFrac:   gp.FFSkippableFrac,
		SchedFastFrac:     gp.SchedFastFrac,
	}, 0); err != nil {
		t.Fatal(err)
	}
	switch {
	case trajComparable:
		t.Logf("engine %.1f ns/cycle vs trajectory median %.1f over %d points (%+.1f%%, budget %.0f%%)",
			ns, trajBase, trajN, (ns/trajBase-1)*100, budget*100)
	case comparable:
		t.Logf("engine %.1f ns/cycle vs baseline %.1f (%+.1f%%, budget %.0f%%)",
			ns, baseline, (ns/baseline-1)*100, budget*100)
	default:
		t.Logf("engine %.1f ns/cycle; baseline rebased for %s", ns, fp)
	}
}

// BenchmarkPairSweepSerial runs a four-pair Figure 6 sweep on one worker.
func BenchmarkPairSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Parallelism = 1
		s := experiments.NewSession(o)
		if len(experiments.Figure6From(s, experiments.Pairs()[:4], false)) != 4 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkPairSweepParallel is BenchmarkPairSweepSerial on the full
// GOMAXPROCS worker pool; the ratio of the two is the parallel harness's
// speedup on this machine.
func BenchmarkPairSweepParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Parallelism = 0
		s := experiments.NewSession(o)
		if len(experiments.Figure6From(s, experiments.Pairs()[:4], false)) != 4 {
			b.Fatal("sweep incomplete")
		}
	}
}

// TestParallelSpeedup measures the parallel experiment runner against the
// serial harness on a pair sweep, checks the two produce byte-identical
// CSV output, and records the wall-clock comparison in BENCH_parallel.json.
// The >= 2x speedup assertion only applies on machines with at least four
// cores; single-core CI still verifies determinism and records the numbers.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ws := experiments.Pairs()[:6]
	sweep := func(parallelism int) ([]byte, float64) {
		o := benchOptions()
		o.Parallelism = parallelism
		s := experiments.NewSession(o)
		start := time.Now()
		rows := experiments.Figure6From(s, ws, false)
		elapsed := time.Since(start).Seconds()
		var buf bytes.Buffer
		if err := experiments.WriteFigure6CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), elapsed
	}

	serialCSV, serialS := sweep(1)
	parallelCSV, parallelS := sweep(0)

	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Errorf("parallel sweep CSV differs from serial:\nserial:\n%s\nparallel:\n%s", serialCSV, parallelCSV)
	}

	cores := runtime.GOMAXPROCS(0)
	speedup := 0.0
	if parallelS > 0 {
		speedup = serialS / parallelS
	}
	out := map[string]any{
		"cores":      cores,
		"workloads":  len(ws),
		"serial_s":   serialS,
		"parallel_s": parallelS,
		"speedup":    speedup,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := runlog.AtomicWriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d-pair sweep on %d cores: serial %.2fs, parallel %.2fs, speedup %.2fx",
		len(ws), cores, serialS, parallelS, speedup)

	if cores >= 4 && speedup < 2 {
		t.Errorf("speedup %.2fx on %d cores, want >= 2x", speedup, cores)
	}
}

// BenchmarkStreamNext measures synthetic instruction generation.
func BenchmarkStreamNext(b *testing.B) {
	spec := kernels.ByAbbr("BLK")
	st := kernels.NewStream(spec, 1<<40, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if st.Done() {
			st = kernels.NewStream(spec, 1<<40, i, 0)
		}
		_ = st.Next()
	}
}
