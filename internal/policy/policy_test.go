package policy

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
)

func newPair(d gpu.Dispatcher) *gpu.GPU {
	g := gpu.New(config.Baseline(), d)
	g.AddKernel(kernels.ByAbbr("IMG"), 0) // 8 CTAs max, slot-limited
	g.AddKernel(kernels.ByAbbr("BLK"), 0) // 4 CTAs max, register-limited
	return g
}

func TestLeftOverPrioritizesFirstKernel(t *testing.T) {
	g := newPair(LeftOver{})
	g.RunCycles(10)
	for _, s := range g.SMs {
		// IMG fills all 8 CTA slots; BLK gets nothing.
		if got := s.ResidentCTAs(0); got != 8 {
			t.Fatalf("SM%d IMG CTAs = %d, want 8", s.ID, got)
		}
		if got := s.ResidentCTAs(1); got != 0 {
			t.Fatalf("SM%d BLK CTAs = %d, want 0 under Left-Over", s.ID, got)
		}
	}
}

func TestLeftOverSecondKernelUsesLeftovers(t *testing.T) {
	// BLK first (register-limited to 4 CTAs, using 31744 regs and 512
	// threads): IMG needs 1792 regs/CTA but only 1024 regs remain, so IMG
	// cannot launch -> left-over gives 0. Use DXT after HOT instead: HOT
	// takes 6 CTAs (27648 regs, 1536 threads): thread-limited leaves no
	// threads. Use a pair with genuine leftovers: DXT (slot-limited 8)
	// first would hog slots. MM (5 CTAs, 28160 regs) leaves 3 slots,
	// 4608 regs, 896 threads: KNN CTAs need 2048 regs + 256 threads -> 2 fit.
	g := gpu.New(config.Baseline(), LeftOver{})
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	g.AddKernel(kernels.ByAbbr("KNN"), 0)
	g.RunCycles(10)
	s := g.SMs[0]
	if got := s.ResidentCTAs(0); got != 5 {
		t.Fatalf("MM CTAs = %d, want 5", got)
	}
	if got := s.ResidentCTAs(1); got != 2 {
		t.Fatalf("KNN leftover CTAs = %d, want 2", got)
	}
}

func TestFCFSInterleaves(t *testing.T) {
	g := newPair(FCFS{})
	g.RunCycles(10)
	s := g.SMs[0]
	// Round-robin: IMG and BLK alternate until BLK's 4th CTA no longer
	// fits; both should be resident.
	if s.ResidentCTAs(0) == 0 || s.ResidentCTAs(1) == 0 {
		t.Fatalf("FCFS should co-locate: IMG=%d BLK=%d", s.ResidentCTAs(0), s.ResidentCTAs(1))
	}
}

func TestEvenSplitsResources(t *testing.T) {
	g := newPair(Even{})
	g.RunCycles(10)
	for _, s := range g.SMs {
		img, blk := s.ResidentCTAs(0), s.ResidentCTAs(1)
		// Half the slots each: IMG <= 4; BLK limited by half the register
		// file: 16384/7936 = 2.
		if img != 4 {
			t.Fatalf("IMG CTAs = %d, want 4 (half the slots)", img)
		}
		if blk != 2 {
			t.Fatalf("BLK CTAs = %d, want 2 (half the registers)", blk)
		}
	}
}

func TestSpatialDisjointSMs(t *testing.T) {
	g := newPair(Spatial{})
	g.RunCycles(10)
	firstHalf, secondHalf := 0, 0
	for i, s := range g.SMs {
		img, blk := s.ResidentCTAs(0), s.ResidentCTAs(1)
		if img > 0 && blk > 0 {
			t.Fatalf("SM%d hosts both kernels under spatial multitasking", i)
		}
		if img > 0 {
			firstHalf++
		}
		if blk > 0 {
			secondHalf++
		}
	}
	if firstHalf != 8 || secondHalf != 8 {
		t.Fatalf("SM split = %d/%d, want 8/8", firstHalf, secondHalf)
	}
}

func TestFixedPartition(t *testing.T) {
	g := newPair(Fixed{CTAs: []int{3, 2}})
	g.RunCycles(10)
	for _, s := range g.SMs {
		if s.ResidentCTAs(0) != 3 || s.ResidentCTAs(1) != 2 {
			t.Fatalf("fixed partition = %d/%d, want 3/2", s.ResidentCTAs(0), s.ResidentCTAs(1))
		}
	}
}

func TestFixedZeroEntryBlocksKernel(t *testing.T) {
	g := newPair(Fixed{CTAs: []int{8, 0}})
	g.RunCycles(10)
	if got := g.SMs[0].ResidentCTAs(1); got != 0 {
		t.Fatalf("kernel with 0 allocation resident = %d", got)
	}
}

func TestThreeKernelSpatialSplit(t *testing.T) {
	g := gpu.New(config.Baseline(), Spatial{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	g.RunCycles(10)
	counts := [3]int{}
	for _, s := range g.SMs {
		owners := 0
		for k := 0; k < 3; k++ {
			if s.ResidentCTAs(k) > 0 {
				owners++
				counts[k]++
			}
		}
		if owners > 1 {
			t.Fatal("spatial SM hosts multiple kernels")
		}
	}
	for k, c := range counts {
		if c < 5 || c > 6 {
			t.Fatalf("kernel %d owns %d SMs, want 5..6", k, c)
		}
	}
}

// Fragmentation demonstrator (Figure 2a): under FCFS interleaving with
// churn, a large-CTA kernel can starve even when total free resources
// would fit it contiguously. We verify the weaker, deterministic property
// that FCFS yields no MORE CTAs for the late kernel than Even partitioning
// guarantees it.
func TestFCFSFragmentationVersusEven(t *testing.T) {
	run := func(d gpu.Dispatcher) (int, int) {
		g := gpu.New(config.Baseline(), d)
		g.AddKernel(kernels.ByAbbr("DXT"), 0) // small CTAs
		g.AddKernel(kernels.ByAbbr("BFS"), 0) // huge CTAs (512 threads)
		g.RunCycles(20000)
		return g.SMs[0].ResidentCTAs(0), g.SMs[0].ResidentCTAs(1)
	}
	_, bfsFCFS := run(FCFS{})
	_, bfsEven := run(Even{})
	if bfsFCFS > bfsEven+1 {
		t.Fatalf("FCFS gave BFS %d CTAs vs Even %d; fragmentation model inverted", bfsFCFS, bfsEven)
	}
}

func TestApplySpatialToSubset(t *testing.T) {
	g := gpu.New(config.Baseline(), FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	// Only the first two kernels share the machine.
	ApplySpatialTo(g, g.Kernels[:2])
	FillInterleaved(g)
	for i, s := range g.SMs {
		if s.ResidentCTAs(2) != 0 {
			t.Fatalf("SM%d hosts excluded kernel", i)
		}
	}
	img, mm := 0, 0
	for _, s := range g.SMs {
		img += s.ResidentCTAs(0)
		mm += s.ResidentCTAs(1)
	}
	if img == 0 || mm == 0 {
		t.Fatal("subset kernels did not launch")
	}
}

func TestApplyFixedIsReapplicable(t *testing.T) {
	g := newPair(Fixed{CTAs: []int{3, 2}})
	g.RunCycles(10)
	// Repartition at runtime: shrink kernel 0, grow kernel 1.
	ApplyFixed(g, []int{1, 3})
	FillInterleaved(g)
	g.RunCycles(10)
	s := g.SMs[0]
	// Kernel 1 may now grow to 3; kernel 0's resident CTAs drain over
	// time but must not grow beyond the old count.
	if got := s.ResidentCTAs(1); got != 3 {
		t.Fatalf("kernel 1 CTAs = %d, want 3 after repartition", got)
	}
	if got := s.ResidentCTAs(0); got > 3 {
		t.Fatalf("kernel 0 grew to %d despite shrunken quota", got)
	}
}
