// Package policy implements the multiprogramming baselines the paper
// compares against (Figure 2): FCFS interleaved allocation, the Left-Over
// policy of Hyper-Q-class hardware, even intra-SM partitioning, spatial
// (inter-SM) multitasking, and fixed intra-SM partitions (used by the
// oracle search and by the Warped-Slicer controller once it has decided).
package policy

import (
	"warpedslicer/internal/assert"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/sm"
)

// fillInOrder launches CTAs kernel-major: kernel 0 takes everything it can
// on every SM before kernel 1 is considered (Left-Over semantics).
func fillInOrder(g *gpu.GPU) {
	for _, k := range g.Kernels {
		for _, s := range g.SMs {
			for g.LaunchCTA(s, k) {
			}
		}
	}
}

// FillInterleaved launches CTAs from all kernels round-robin on every SM,
// respecting quotas and allowed-sets. It is the fill routine shared by the
// quota-based policies and the Warped-Slicer controller.
func FillInterleaved(g *gpu.GPU) { fillRoundRobin(g) }

// fillRoundRobin interleaves kernels on every SM (FCFS arrival order).
func fillRoundRobin(g *gpu.GPU) {
	for _, s := range g.SMs {
		for {
			any := false
			for _, k := range g.Kernels {
				if g.LaunchCTA(s, k) {
					any = true
				}
			}
			if !any {
				break
			}
		}
	}
}

// LeftOver is the baseline: maximal allocation to the first kernel, spare
// resources to later kernels.
type LeftOver struct{}

// Setup implements gpu.Dispatcher.
func (LeftOver) Setup(*gpu.GPU) {}

// Fill implements gpu.Dispatcher.
func (LeftOver) Fill(g *gpu.GPU) { fillInOrder(g) }

// Tick implements gpu.Dispatcher.
func (LeftOver) Tick(*gpu.GPU) {}

// FCFS interleaves CTA allocation in arrival order (Figure 2a); it
// illustrates fragmentation and is not one of the paper's headline
// policies.
type FCFS struct{}

// Setup implements gpu.Dispatcher.
func (FCFS) Setup(*gpu.GPU) {}

// Fill implements gpu.Dispatcher.
func (FCFS) Fill(g *gpu.GPU) { fillRoundRobin(g) }

// Tick implements gpu.Dispatcher.
func (FCFS) Tick(*gpu.GPU) {}

// Even splits every SM resource equally among the kernels (intra-SM
// spatial partitioning, Figure 2c).
type Even struct{}

// Setup implements gpu.Dispatcher.
func (Even) Setup(g *gpu.GPU) {
	n := len(g.Kernels)
	if n == 0 {
		return
	}
	q := sm.Quota{
		Regs:    g.Cfg.SM.Registers / n,
		Shm:     g.Cfg.SM.SharedMemBytes / n,
		Threads: g.Cfg.SM.MaxThreads / n,
		CTAs:    g.Cfg.SM.MaxCTAs / n,
	}
	if q.CTAs < 1 {
		q.CTAs = 1
	}
	for _, s := range g.SMs {
		for _, k := range g.Kernels {
			s.SetQuota(k.Slot, q)
		}
	}
}

// Fill implements gpu.Dispatcher.
func (Even) Fill(g *gpu.GPU) { fillRoundRobin(g) }

// Tick implements gpu.Dispatcher.
func (Even) Tick(*gpu.GPU) {}

// Spatial assigns each kernel a dedicated, near-equal subset of SMs
// (inter-SM slicing; Adriaens et al.).
type Spatial struct{}

// Setup implements gpu.Dispatcher.
func (Spatial) Setup(g *gpu.GPU) { ApplySpatial(g) }

// Fill implements gpu.Dispatcher.
func (Spatial) Fill(g *gpu.GPU) { fillRoundRobin(g) }

// Tick implements gpu.Dispatcher.
func (Spatial) Tick(*gpu.GPU) {}

// ApplySpatial splits the SM array contiguously and near-evenly across the
// kernels. It is shared with the Warped-Slicer fallback path.
func ApplySpatial(g *gpu.GPU) { ApplySpatialTo(g, g.Kernels) }

// ApplySpatialTo splits the SM array across the given kernel subset
// (used when some kernels have not yet arrived or have finished).
func ApplySpatialTo(g *gpu.GPU, ks []*gpu.Kernel) {
	n := len(ks)
	if n == 0 {
		return
	}
	for i, s := range g.SMs {
		owner := i * n / len(g.SMs)
		if owner >= n {
			owner = n - 1
		}
		s.SetAllowed(map[int]bool{ks[owner].Slot: true})
	}
}

// Fixed applies a static intra-SM partition: kernel i receives the
// resources of exactly CTAs[i] thread blocks on every SM. The oracle
// search sweeps these, and the Warped-Slicer controller installs its
// water-filling solution through the same mechanism.
type Fixed struct {
	CTAs []int
}

// Setup implements gpu.Dispatcher.
func (f Fixed) Setup(g *gpu.GPU) { ApplyFixed(g, f.CTAs) }

// Fill implements gpu.Dispatcher.
func (f Fixed) Fill(g *gpu.GPU) { fillRoundRobin(g) }

// Tick implements gpu.Dispatcher.
func (Fixed) Tick(*gpu.GPU) {}

// ApplyFixed installs per-kernel quotas sized for ctas[i] blocks of kernel
// i on every SM.
func ApplyFixed(g *gpu.GPU, ctas []int) {
	for i, k := range g.Kernels {
		n := 0
		if i < len(ctas) {
			n = ctas[i]
		}
		spec := k.Spec
		q := sm.Quota{
			Regs:    spec.RegsPerCTA() * n,
			Shm:     spec.SharedMemPerTA * n,
			Threads: spec.BlockDim * n,
			CTAs:    n,
		}
		if assert.Enabled {
			if q.Regs > g.Cfg.SM.Registers || q.Shm > g.Cfg.SM.SharedMemBytes ||
				q.Threads > g.Cfg.SM.MaxThreads || q.CTAs > g.Cfg.SM.MaxCTAs {
				assert.Failf("policy: quota for kernel %d exceeds Table I limits: %+v (SM: regs %d shm %d threads %d ctas %d)",
					k.Slot, q, g.Cfg.SM.Registers, g.Cfg.SM.SharedMemBytes, g.Cfg.SM.MaxThreads, g.Cfg.SM.MaxCTAs)
			}
		}
		for _, s := range g.SMs {
			s.SetAllowed(nil)
			s.SetQuota(k.Slot, q)
		}
	}
}
