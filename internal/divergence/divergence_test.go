package divergence_test

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/divergence"
	"warpedslicer/internal/experiments"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/policy"
)

func build(t *testing.T, d gpu.Dispatcher) *gpu.GPU {
	t.Helper()
	g := gpu.New(config.Baseline(), d)
	g.AddKernel(kernels.ByAbbr("HOT"), 0)
	return g
}

// perturb wraps a dispatcher and flips one SM's architectural state at a
// chosen cycle, seeding a known divergence for the bisector to find.
type perturb struct {
	gpu.Dispatcher
	at int64
	sm int
}

func (p perturb) Tick(g *gpu.GPU) {
	p.Dispatcher.Tick(g)
	if g.Now() == p.at {
		g.SMs[p.sm].HaltKernel(0)
	}
}

// TestSeededDivergencePinpointed is the acceptance demo: perturb one SM
// mid-run and require the bisector to name the exact first divergent
// record and the exact component. The perturbation lands during cycle
// `at` (dispatcher Tick), so the first record that can see it is labeled
// at+1 (records are taken after each completed cycle).
func TestSeededDivergencePinpointed(t *testing.T) {
	const at, smIdx = 600, 1
	a := build(t, policy.Even{})
	b := build(t, perturb{Dispatcher: policy.Even{}, at: at, sm: smIdx})

	d, ok := divergence.Runs(a, b, 2_000, 1)
	if !ok {
		t.Fatal("seeded perturbation went undetected")
	}
	if d.Cycle != at+1 {
		t.Errorf("first divergence at cycle %d, want %d", d.Cycle, at+1)
	}
	if d.Component != "sm1" {
		t.Errorf("divergent component %q, want sm1", d.Component)
	}
	if d.Kind != "component" {
		t.Errorf("divergence kind %q, want component", d.Kind)
	}
	// The bisector must stop at the first divergence, not run to the end.
	if a.Now() != at+1 {
		t.Errorf("bisector kept stepping to cycle %d after diverging at %d", a.Now(), at+1)
	}
}

// TestRunsIdenticalTwins: two independently built, identically configured
// GPUs must digest identically at every boundary, and the lockstep runner
// must walk the full window.
func TestRunsIdenticalTwins(t *testing.T) {
	a := build(t, policy.Even{})
	b := build(t, policy.Even{})
	if d, ok := divergence.Runs(a, b, 1_500, 128); ok {
		t.Fatalf("identical twins diverged: %s", d)
	}
	if a.Now() != 1_500 || b.Now() != 1_500 {
		t.Fatalf("runner stopped early: a at %d, b at %d", a.Now(), b.Now())
	}
}

// TestParallelSerialAgrees runs the same workload through a serial and a
// parallel session and requires byte-identical digest trails.
func TestParallelSerialAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one workload through two full sessions")
	}
	o := experiments.Quick()
	specs := []*kernels.Spec{kernels.ByAbbr("HOT"), kernels.ByAbbr("MVP")}
	if d, ok := divergence.ParallelSerial(o, specs, "even", nil, 512); ok {
		t.Fatalf("serial vs parallel session diverged: %s", d)
	}
}
