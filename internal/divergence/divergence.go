// Package divergence is the first-divergence bisector: it compares two
// supposedly-identical simulations through their chained state-digest
// records (internal/digest) and pinpoints the first recorded cycle — and
// the first component within it — at which they differ. It replaces the
// bespoke full-Stats comparison loops the determinism tests used to carry:
// any pair of runs that should be deterministic twins (serial vs parallel
// session, reference vs ready-set scheduler, two recorded trail files) now
// reports "first divergence at cycle N in component sm3" instead of a wall
// of mismatched counters at the end of the run.
package divergence

import (
	"warpedslicer/internal/digest"
	"warpedslicer/internal/experiments"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
)

// Trails compares two recorded digest trails (e.g. loaded from JSONL
// files written by `wslicer divergence -record-trail`). The second result
// is false when the trails are identical.
func Trails(a, b *digest.Trail) (digest.Divergence, bool) {
	return digest.Compare(a.Records, b.Records)
}

// Runs steps two independently built GPUs in lockstep, hashing the full
// component state of both every `every` cycles (zero or one compares
// every cycle), and stops at the first divergent record — the simulations
// run only as far as the first difference, not to the end. Records are
// labeled with Now() after each step, i.e. the count of completed cycles.
//
// Because each record's chain commits to every prior record, comparing
// only the newest pair per boundary is sound: an equal prefix plus an
// equal new chain implies equal histories.
func Runs(a, b *gpu.GPU, cycles, every int64) (digest.Divergence, bool) {
	if every <= 0 {
		every = 1
	}
	var ta, tb digest.Trail
	for c := int64(0); c < cycles; c++ {
		a.Step()
		b.Step()
		if a.Now()%every != 0 && c != cycles-1 {
			continue
		}
		ta.Append(a.Now(), a.ComponentDigests(), digest.Counters{})
		tb.Append(b.Now(), b.ComponentDigests(), digest.Counters{})
		last := len(ta.Records) - 1
		if d, ok := digest.Compare(ta.Records[last:], tb.Records[last:]); ok {
			return d, true
		}
	}
	return digest.Divergence{}, false
}

// ParallelSerial builds two sessions over the same options — one forced
// serial (Parallelism=1), one using the configured worker pool — runs the
// same co-run through both, and bisects their digest trails. A non-false
// result is a determinism violation in the parallel runner.
func ParallelSerial(o experiments.Options, specs []*kernels.Spec, policy string, ctas []int, every int64) (digest.Divergence, bool) {
	serial := o
	serial.Parallelism = 1
	par := o
	if par.Parallelism == 1 {
		par.Parallelism = 0
	}
	ta := experiments.NewSession(serial).DigestTrail(specs, policy, ctas, every)
	tb := experiments.NewSession(par).DigestTrail(specs, policy, ctas, every)
	return Trails(ta, tb)
}
