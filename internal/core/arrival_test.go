package core

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
)

// TestThirdKernelArrivalRepartitions reproduces Figure 2e: two kernels
// co-run, a third arrives later, and the controller launches a new
// repartitioning phase covering all three.
func TestThirdKernelArrivalRepartitions(t *testing.T) {
	c := fastController()
	// This test exercises arrival mechanics, not the fallback: tolerate
	// any loss so the intra-SM partition is always chosen.
	c.LossThresholdScale = 10
	g := gpu.New(config.Baseline(), c)
	// Short-iteration variants so resident CTAs drain quickly after the
	// repartition (the late kernel can only start on freed resources).
	img, mm := *kernels.ByAbbr("IMG"), *kernels.ByAbbr("MM")
	img.Iterations, mm.Iterations = 40, 40
	g.AddKernel(&img, 0)
	g.AddKernel(&mm, 0)
	third := g.AddKernelAt(kernels.ByAbbr("BLK"), 0, 15000)

	// Phase 1: decide for the first two kernels.
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 500)
	if !c.Decided() {
		t.Fatal("initial decision missing")
	}
	if c.ChoseSpatial {
		t.Skip("initial phase chose spatial; partition-size checks not applicable")
	}
	if len(c.Partition) != 2 {
		t.Fatalf("initial partition %v, want 2 kernels", c.Partition)
	}
	if third.Arrived() {
		t.Fatal("third kernel arrived too early")
	}

	// Phase 2: arrival at 15000 restarts profiling; after warm-up +
	// sample the controller must have a 3-way decision.
	g.RunCycles(15000 + c.ArrivalWarmup + c.SampleCycles + 2000 - g.Now())
	if !third.Arrived() {
		t.Fatal("third kernel never arrived")
	}
	if !c.Decided() {
		t.Fatal("controller stuck after arrival")
	}
	if !c.ChoseSpatial && len(c.Partition) != 3 {
		t.Fatalf("post-arrival partition %v, want 3 kernels", c.Partition)
	}

	// The late kernel must make progress under the new partition.
	g.RunCycles(20000)
	if g.KernelInsts(third.Slot) == 0 {
		t.Fatal("third kernel starved after repartitioning")
	}
}

func TestUnarrivedKernelDoesNotLaunch(t *testing.T) {
	c := fastController()
	g := gpu.New(config.Baseline(), c)
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	late := g.AddKernelAt(kernels.ByAbbr("DXT"), 0, 50000)
	g.RunCycles(5000)
	for _, s := range g.SMs {
		if s.ResidentCTAs(late.Slot) != 0 {
			t.Fatal("unarrived kernel has resident CTAs")
		}
	}
	// The profiling layout must cover only the arrived kernel: every SM
	// belongs to IMG.
	total := 0
	for _, s := range g.SMs {
		total += s.ResidentCTAs(0)
	}
	if total == 0 {
		t.Fatal("arrived kernel not profiled anywhere")
	}
}

func TestArrivalBeforeFirstDecisionIsAbsorbed(t *testing.T) {
	c := fastController()
	g := gpu.New(config.Baseline(), c)
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	// Arrives mid-warm-up of the first profiling phase.
	g.AddKernelAt(kernels.ByAbbr("MM"), 0, c.WarmupCycles/2)
	g.RunCycles(c.WarmupCycles/2 + c.ArrivalWarmup + c.SampleCycles + 2000)
	if !c.Decided() {
		t.Fatal("controller never decided after mid-warmup arrival")
	}
	if !c.ChoseSpatial && len(c.Partition) != 2 {
		t.Fatalf("partition %v, want both kernels covered", c.Partition)
	}
}
