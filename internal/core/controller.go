package core

import (
	"warpedslicer/internal/assert"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/metrics"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/policy"
	"warpedslicer/internal/sm"
)

// controller phases.
const (
	phaseWarmup = iota
	phaseSample
	phaseDelay
	phaseDecided
)

// Controller is the Warped-Slicer runtime: a gpu.Dispatcher that profiles
// each kernel at staggered CTA counts on disjoint SM groups (Figure 4),
// estimates performance-vs-occupancy curves with the bandwidth-imbalance
// correction of Eq. 2-4, partitions SM resources with WaterFill, and falls
// back to spatial multitasking when any kernel's predicted loss exceeds the
// threshold of §IV.
type Controller struct {
	// WarmupCycles precede the sampling window (paper: 20K).
	WarmupCycles int64 //simlint:nodigest -- config: policy knob, set before Run and never mutated
	// SampleCycles is the profiling window length (paper: 5K).
	SampleCycles int64 //simlint:nodigest -- config: policy knob, set before Run and never mutated
	// AlgorithmDelay models the partitioning computation time between the
	// end of sampling and the repartition (paper Fig. 10a: 1K-10K has
	// <1.5% impact).
	AlgorithmDelay int64 //simlint:nodigest -- config: policy knob, set before Run and never mutated
	// UseScaledIPC enables the Eq. 3-4 bandwidth correction (ablation
	// point; the paper always enables it).
	UseScaledIPC bool //simlint:nodigest -- config: policy knob, set before Run and never mutated
	// SymmetricScaling also scales DOWN samples from SMs profiled below
	// the average occupancy (the literal reading of Eq. 4, where ψ goes
	// negative). The default applies the correction only as the paper
	// motivates it — offsetting the bandwidth-contention penalty of
	// above-average SMs — which keeps bandwidth-saturated kernels' curves
	// flat instead of artificially rising.
	SymmetricScaling bool //simlint:nodigest -- config: policy knob, set before Run and never mutated
	// LossThresholdScale sets the spatial-fallback threshold to
	// Scale/K (paper: 1.2, i.e. 120%/K maximum tolerated loss).
	LossThresholdScale float64 //simlint:nodigest -- config: policy knob, set before Run and never mutated

	// ArrivalWarmup is the shortened warm-up used when a newly arrived
	// kernel triggers re-profiling (the machine is already warm).
	ArrivalWarmup int64 //simlint:nodigest -- config: policy knob, set before Run and never mutated

	// RepeatOnPhaseChange enables §IV-B phase monitoring: when the
	// device IPC shifts by more than PhaseDeltaFrac between consecutive
	// PhaseWindow-cycle windows after the decision, profiling restarts.
	RepeatOnPhaseChange bool    //simlint:nodigest -- config: policy knob, set before Run and never mutated
	PhaseWindow         int64   //simlint:nodigest -- config: policy knob, set before Run and never mutated
	PhaseDeltaFrac      float64 //simlint:nodigest -- config: policy knob, set before Run and never mutated

	// Log, when non-nil, receives the controller's decision trail:
	// profile_start, sample_start, per-kernel curves, the water-filling
	// decision, and the exact cycle each repartition landed. It is the
	// audited record of every partitioning episode (tests assert on it,
	// the CLI dumps it, the Chrome-trace exporter draws it).
	//simlint:nodigest -- observability: decision event log, output only, never read back by the model
	Log *obs.EventLog

	// Results (valid once Decided).
	Partition    []int
	ChoseSpatial bool
	Curves       [][]float64 // Curves[i][j]: kernel i scaled IPC at j CTAs

	state       int
	warmupEnd   int64
	sampleStart int64
	decideAt    int64

	// profiled is the set of kernels covered by the current profiling
	// layout (arrived and not yet finished).
	profiled []*gpu.Kernel

	owner []int // SM -> profiled kernel index
	cap   []int // SM -> CTA cap during profiling

	baseInsts    []uint64
	baseSlots    []uint64
	baseStallMem []uint64

	lastPhaseInsts uint64
	lastPhaseIPC   float64
	nextPhaseCheck int64
	reprofiles     int
}

// NewController returns a controller with the paper's defaults.
func NewController() *Controller {
	return &Controller{
		WarmupCycles:       20000,
		SampleCycles:       5000,
		ArrivalWarmup:      5000,
		UseScaledIPC:       true,
		LossThresholdScale: 1.2,
		PhaseWindow:        5000,
		PhaseDeltaFrac:     0.5,
	}
}

// Decided reports whether the partition has been installed.
func (c *Controller) Decided() bool { return c.state == phaseDecided }

// Reprofiles returns how many times phase monitoring restarted profiling.
func (c *Controller) Reprofiles() int { return c.reprofiles }

// Setup implements gpu.Dispatcher: installs the profiling layout.
func (c *Controller) Setup(g *gpu.GPU) {
	c.state = phaseWarmup
	c.warmupEnd = c.WarmupCycles
	c.applyProfilingLayout(g)
	c.emitProfileStart(g, "setup")
}

// OnKernelArrival implements gpu.ArrivalAware: a kernel entering a busy
// GPU launches a new repartitioning phase covering all resident kernels
// (Figure 2e).
func (c *Controller) OnKernelArrival(g *gpu.GPU, _ *gpu.Kernel) {
	c.state = phaseWarmup
	c.warmupEnd = g.Now() + c.ArrivalWarmup
	c.applyProfilingLayout(g)
	c.emitProfileStart(g, "arrival")
}

// emitProfileStart records a new profiling episode and what triggered it.
func (c *Controller) emitProfileStart(g *gpu.GPU, trigger string) {
	if c.Log == nil {
		return
	}
	slots := make([]int, len(c.profiled))
	for i, kn := range c.profiled {
		slots[i] = kn.Slot
	}
	c.Log.Emit(g.Now(), obs.EvProfileStart, map[string]any{
		"trigger":    trigger,
		"kernels":    slots,
		"warmup_end": c.warmupEnd,
	})
}

// applyProfilingLayout splits SMs into one group per kernel and assigns
// sequentially increasing CTA caps within each group.
func (c *Controller) applyProfilingLayout(g *gpu.GPU) {
	c.profiled = c.profiled[:0]
	for _, kn := range g.Kernels {
		if kn.Arrived() && !kn.Done {
			c.profiled = append(c.profiled, kn)
		}
	}
	k := len(c.profiled)
	if k == 0 {
		return
	}
	n := len(g.SMs)
	c.owner = make([]int, n)
	c.cap = make([]int, n)
	for i, s := range g.SMs {
		ki := i * k / n
		if ki >= k {
			ki = k - 1
		}
		// Position within the kernel's group determines the CTA cap.
		groupStart := (ki*n + k - 1) / k
		pos := i - groupStart
		spec := c.profiled[ki].Spec
		maxC := spec.MaxCTAs(g.Cfg.SM.Registers, g.Cfg.SM.SharedMemBytes,
			g.Cfg.SM.MaxThreads, g.Cfg.SM.MaxCTAs)
		cp := pos + 1
		if cp > maxC {
			cp = maxC
		}
		if cp < 1 {
			cp = 1
		}
		c.owner[i] = ki
		c.cap[i] = cp

		s.SetAllowed(map[int]bool{c.profiled[ki].Slot: true})
		q := sm.Unlimited()
		q.CTAs = cp
		s.SetQuota(c.profiled[ki].Slot, q)
	}
}

// Fill implements gpu.Dispatcher.
func (c *Controller) Fill(g *gpu.GPU) { policy.FillInterleaved(g) }

// Tick implements gpu.Dispatcher: drives the profiling state machine.
func (c *Controller) Tick(g *gpu.GPU) {
	now := g.Now()
	switch c.state {
	case phaseWarmup:
		if now >= c.warmupEnd {
			c.snapshot(g)
			c.sampleStart = now
			c.state = phaseSample
			c.Log.Emit(now, obs.EvSampleStart, map[string]any{
				"sample_end": now + c.SampleCycles,
			})
		}
	case phaseSample:
		if now >= c.sampleStart+c.SampleCycles {
			c.computeCurves(g)
			c.decideAt = now + c.AlgorithmDelay
			c.state = phaseDelay
		}
	case phaseDelay:
		if now >= c.decideAt {
			c.decide(g)
			c.state = phaseDecided
			c.nextPhaseCheck = now + c.PhaseWindow
			c.lastPhaseInsts = totalInsts(g)
			c.lastPhaseIPC = -1
			c.Fill(g)
		}
	case phaseDecided:
		if !c.RepeatOnPhaseChange || now < c.nextPhaseCheck {
			return
		}
		insts := totalInsts(g)
		ipc := metrics.IPC(insts-c.lastPhaseInsts, c.PhaseWindow)
		c.lastPhaseInsts = insts
		c.nextPhaseCheck = now + c.PhaseWindow
		if c.lastPhaseIPC > 0 {
			delta := ipc - c.lastPhaseIPC
			if delta < 0 {
				delta = -delta
			}
			if delta > c.PhaseDeltaFrac*c.lastPhaseIPC {
				// Sustained shift: re-profile.
				c.reprofiles++
				c.Log.Emit(now, obs.EvReprofile, map[string]any{
					"ipc":      ipc,
					"last_ipc": c.lastPhaseIPC,
				})
				c.applyProfilingLayout(g)
				c.sampleStart = now
				c.snapshot(g)
				c.state = phaseSample
				// Re-profiling skips warm-up (the machine is hot), so the
				// sampling window opens on the same cycle.
				c.Log.Emit(now, obs.EvSampleStart, map[string]any{
					"sample_end": now + c.SampleCycles,
				})
				c.Fill(g)
				return
			}
		}
		c.lastPhaseIPC = ipc
	}
}

// ScaledIPC applies the paper's bandwidth-imbalance correction (Eq. 2-4):
// an SM profiled with more CTAs than the device average under-received
// memory bandwidth during sampling, so its IPC is scaled up in proportion
// to its memory-stall fraction phiMem; SMs below the average are scaled
// down symmetrically. ψ ≈ CTA_i/CTA_avg − 1 and factor = 1 + φmem·ψ,
// clamped to stay positive.
func ScaledIPC(ipcSampled, phiMem float64, ctas int, ctaAvg float64) float64 {
	if ctaAvg <= 0 {
		return ipcSampled
	}
	psi := float64(ctas)/ctaAvg - 1
	factor := 1 + phiMem*psi
	if factor < 0.1 {
		factor = 0.1
	}
	return ipcSampled * factor
}

func totalInsts(g *gpu.GPU) uint64 {
	var t uint64
	for _, k := range g.Kernels {
		t += g.KernelInsts(k.Slot)
	}
	return t
}

// snapshot records per-SM counters at the start of the sampling window.
func (c *Controller) snapshot(g *gpu.GPU) {
	n := len(g.SMs)
	c.baseInsts = make([]uint64, n)
	c.baseSlots = make([]uint64, n)
	c.baseStallMem = make([]uint64, n)
	for i, s := range g.SMs {
		st := s.Stats()
		c.baseInsts[i] = st.PerKernel[c.profiled[c.owner[i]].Slot%sm.MaxKernels].ThreadInsts
		c.baseSlots[i] = st.Slots
		c.baseStallMem[i] = st.StallMem
	}
}

// computeCurves turns window deltas into per-kernel scaled IPC curves.
func (c *Controller) computeCurves(g *gpu.GPU) {
	k := len(c.profiled)
	c.Curves = make([][]float64, k)
	for i, kn := range c.profiled {
		maxC := kn.Spec.MaxCTAs(g.Cfg.SM.Registers, g.Cfg.SM.SharedMemBytes,
			g.Cfg.SM.MaxThreads, g.Cfg.SM.MaxCTAs)
		c.Curves[i] = make([]float64, maxC+1)
	}

	// CTAavg across all profiled SMs (Eq. 4 denominator).
	sumCap := 0
	for _, cp := range c.cap {
		sumCap += cp
	}
	ctaAvg := float64(sumCap) / float64(len(c.cap))

	for i, s := range g.SMs {
		st := s.Stats()
		ki := c.owner[i]
		slot := c.profiled[ki].Slot % sm.MaxKernels
		dInsts := st.PerKernel[slot].ThreadInsts - c.baseInsts[i]
		dSlots := st.Slots - c.baseSlots[i]
		dMem := st.StallMem - c.baseStallMem[i]

		ipc := metrics.IPC(dInsts, c.SampleCycles)
		if c.UseScaledIPC && dSlots > 0 {
			phiMem := float64(dMem) / float64(dSlots)
			if c.SymmetricScaling || float64(c.cap[i]) >= ctaAvg {
				ipc = ScaledIPC(ipc, phiMem, c.cap[i], ctaAvg)
			}
		}
		j := c.cap[i]
		if j < len(c.Curves[ki]) && ipc > c.Curves[ki][j] {
			c.Curves[ki][j] = ipc
		}
	}

	// Extend unsampled high occupancies with the last measured value
	// (groups may be smaller than a kernel's CTA limit).
	for _, curve := range c.Curves {
		last := 0.0
		for j := 1; j < len(curve); j++ {
			if curve[j] == 0 {
				curve[j] = last
			} else {
				last = curve[j]
			}
		}
	}

	if c.Log != nil {
		for i, kn := range c.profiled {
			c.Log.Emit(g.Now(), obs.EvCurves, map[string]any{
				"kernel": kn.Slot,
				"abbr":   kn.Spec.Abbr,
				"curve":  append([]float64(nil), c.Curves[i]...),
			})
		}
	}
}

// decide runs the partitioner and installs the result.
func (c *Controller) decide(g *gpu.GPU) {
	k := len(c.profiled)
	demands := make([]Demand, k)
	for i, kn := range c.profiled {
		demands[i] = Demand{
			Perf: c.Curves[i],
			Need: sm.Quota{
				Regs:    kn.Spec.RegsPerCTA(),
				Shm:     kn.Spec.SharedMemPerTA,
				Threads: kn.Spec.BlockDim,
				CTAs:    1,
			},
		}
	}
	total := sm.Quota{
		Regs:    g.Cfg.SM.Registers,
		Shm:     g.Cfg.SM.SharedMemBytes,
		Threads: g.Cfg.SM.MaxThreads,
		CTAs:    g.Cfg.SM.MaxCTAs,
	}

	alloc, err := WaterFill(demands, total)
	threshold := c.LossThresholdScale / float64(k)
	fallback := err != nil
	if !fallback {
		for _, p := range alloc.NormPerf {
			if 1-p > threshold {
				fallback = true
				break
			}
		}
	}

	if c.Log != nil {
		slots := make([]int, k)
		for i, kn := range c.profiled {
			slots[i] = kn.Slot
		}
		data := map[string]any{
			"kernels":   slots,
			"threshold": threshold,
			"spatial":   fallback,
			"total":     []int{total.Regs, total.Shm, total.Threads, total.CTAs},
		}
		if err != nil {
			data["error"] = err.Error()
		} else {
			data["partition"] = append([]int(nil), alloc.CTAs...)
			data["norm_perf"] = append([]float64(nil), alloc.NormPerf...)
			data["min_norm_perf"] = alloc.MinNormPerf
		}
		c.Log.Emit(g.Now(), obs.EvDecision, data)
	}

	if fallback {
		c.ChoseSpatial = true
		c.Partition = nil
		// Drop the profiling layout's restrictive CTA caps before
		// switching to inter-SM slicing; otherwise the SM that profiled
		// a kernel at 1 CTA would stay capped at 1 forever.
		for _, s := range g.SMs {
			s.ClearQuotas()
		}
		policy.ApplySpatialTo(g, c.profiled)
		c.Log.Emit(g.Now(), obs.EvSpatialFallback, map[string]any{
			"threshold": threshold,
		})
		return
	}
	c.ChoseSpatial = false
	if assert.Enabled {
		// Water-fill feasibility: the chosen partition must fit the Table I
		// resource totals it was solved against.
		var need sm.Quota
		for i, d := range demands {
			n := alloc.CTAs[i]
			need.Regs += d.Need.Regs * n
			need.Shm += d.Need.Shm * n
			need.Threads += d.Need.Threads * n
			need.CTAs += d.Need.CTAs * n
		}
		if need.Regs > total.Regs || need.Shm > total.Shm ||
			need.Threads > total.Threads || need.CTAs > total.CTAs {
			assert.Failf("core: water-fill partition %v oversubscribes the SM: need %+v, total %+v",
				alloc.CTAs, need, total)
		}
	}
	// Map active-kernel allocations back to kernel slots for ApplyFixed.
	full := make([]int, len(g.Kernels))
	for i, kn := range c.profiled {
		full[kn.Slot] = alloc.CTAs[i]
	}
	c.Partition = alloc.CTAs
	policy.ApplyFixed(g, full)
	// The quotas are installed this cycle: this event's Cycle is the
	// exact cycle the repartition landed (warmup + sample + delay from
	// the episode's start; the CTA counts then converge as replacement
	// launches honor the new caps).
	c.Log.Emit(g.Now(), obs.EvRepartition, map[string]any{
		"partition": append([]int(nil), alloc.CTAs...),
		"slots":     full,
	})
}
