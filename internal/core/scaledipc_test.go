package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScaledIPCNeutralAtAverage(t *testing.T) {
	// An SM profiled exactly at the average occupancy needs no correction.
	if got := ScaledIPC(10, 0.9, 4, 4); got != 10 {
		t.Fatalf("ScaledIPC at average = %v, want 10", got)
	}
}

func TestScaledIPCBoostsAboveAverage(t *testing.T) {
	// ψ = 8/4 − 1 = 1; factor = 1 + 0.5·1 = 1.5.
	if got := ScaledIPC(10, 0.5, 8, 4); math.Abs(got-15) > 1e-9 {
		t.Fatalf("ScaledIPC = %v, want 15", got)
	}
}

func TestScaledIPCDampensBelowAverage(t *testing.T) {
	// ψ = 1/4 − 1 = −0.75; factor = 1 − 0.8·0.75 = 0.4.
	if got := ScaledIPC(10, 0.8, 1, 4); math.Abs(got-4) > 1e-9 {
		t.Fatalf("ScaledIPC = %v, want 4", got)
	}
}

func TestScaledIPCComputeKernelsUnaffected(t *testing.T) {
	// φmem = 0 (no memory stalls): no correction regardless of occupancy.
	for _, ctas := range []int{1, 4, 8} {
		if got := ScaledIPC(10, 0, ctas, 4); got != 10 {
			t.Fatalf("compute kernel scaled at %d CTAs: %v", ctas, got)
		}
	}
}

func TestScaledIPCClampsPositive(t *testing.T) {
	// Extreme negative ψ with φmem near 1 must not zero or negate IPC.
	got := ScaledIPC(10, 1.0, 1, 100)
	if got <= 0 {
		t.Fatalf("ScaledIPC = %v, want positive", got)
	}
	if got != 1 { // clamped at factor 0.1
		t.Fatalf("ScaledIPC = %v, want clamp to 1.0", got)
	}
}

func TestScaledIPCZeroAverage(t *testing.T) {
	if got := ScaledIPC(10, 0.5, 4, 0); got != 10 {
		t.Fatalf("zero average should be identity, got %v", got)
	}
}

// Property: the correction is monotone in occupancy — for fixed φmem and
// average, more CTAs never yield a smaller factor.
func TestScaledIPCMonotoneProperty(t *testing.T) {
	f := func(phiRaw, aRaw uint8) bool {
		phi := float64(phiRaw%101) / 100
		avg := float64(aRaw%8) + 1
		prev := -1.0
		for ctas := 1; ctas <= 8; ctas++ {
			v := ScaledIPC(100, phi, ctas, avg)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling is linear in the sampled IPC.
func TestScaledIPCLinearProperty(t *testing.T) {
	f := func(ipcRaw uint16, phiRaw, cRaw uint8) bool {
		ipc := float64(ipcRaw%1000) + 1
		phi := float64(phiRaw%101) / 100
		ctas := int(cRaw%8) + 1
		a := ScaledIPC(ipc, phi, ctas, 4.5)
		b := ScaledIPC(2*ipc, phi, ctas, 4.5)
		return math.Abs(b-2*a) < 1e-6*math.Max(1, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
