package core

import (
	"testing"
	"testing/quick"

	"warpedslicer/internal/rng"
	"warpedslicer/internal/sm"
)

func quota(regs, shm, threads, ctas int) sm.Quota {
	return sm.Quota{Regs: regs, Shm: shm, Threads: threads, CTAs: ctas}
}

// smTotal mirrors the baseline SM.
func smTotal() sm.Quota { return quota(32768, 48*1024, 1536, 8) }

// linear returns a linearly rising performance curve over n CTAs.
func linear(n int) []float64 {
	p := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		p[j] = float64(j)
	}
	return p
}

// saturating rises then flattens after knee.
func saturating(n, knee int) []float64 {
	p := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		if j <= knee {
			p[j] = float64(j)
		} else {
			p[j] = float64(knee)
		}
	}
	return p
}

// peaked rises to peak then degrades (cache-sensitive).
func peaked(n, peak int) []float64 {
	p := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		if j <= peak {
			p[j] = float64(j)
		} else {
			p[j] = float64(peak) - 0.5*float64(j-peak)
		}
	}
	return p
}

func TestWaterFillSingleKernelGetsEverything(t *testing.T) {
	d := []Demand{{Perf: linear(8), Need: quota(4096, 0, 192, 1)}}
	a, err := WaterFill(d, smTotal())
	if err != nil {
		t.Fatal(err)
	}
	if a.CTAs[0] != 8 {
		t.Fatalf("single kernel got %d CTAs, want 8", a.CTAs[0])
	}
	if a.MinNormPerf != 1 {
		t.Fatalf("min norm perf %v, want 1", a.MinNormPerf)
	}
}

func TestWaterFillRespectsResourceConstraint(t *testing.T) {
	// Each CTA needs half the registers: only 2 fit in total.
	d := []Demand{
		{Perf: linear(8), Need: quota(16384, 0, 64, 1)},
		{Perf: linear(8), Need: quota(16384, 0, 64, 1)},
	}
	a, err := WaterFill(d, smTotal())
	if err != nil {
		t.Fatal(err)
	}
	if a.CTAs[0]+a.CTAs[1] != 2 {
		t.Fatalf("allocated %v, want total 2", a.CTAs)
	}
}

func TestWaterFillPrefersNeedyKernel(t *testing.T) {
	// Kernel 0 saturates at 2 CTAs; kernel 1 keeps scaling. The extra
	// capacity should go to kernel 1.
	d := []Demand{
		{Perf: saturating(8, 2), Need: quota(2048, 0, 128, 1)},
		{Perf: linear(8), Need: quota(2048, 0, 128, 1)},
	}
	a, err := WaterFill(d, smTotal())
	if err != nil {
		t.Fatal(err)
	}
	if a.CTAs[0] > 3 {
		t.Fatalf("saturating kernel got %d CTAs; should not hog", a.CTAs[0])
	}
	if a.CTAs[1] < 6 {
		t.Fatalf("scaling kernel got %d CTAs, want >= 6", a.CTAs[1])
	}
}

func TestWaterFillStopsAtCachePeak(t *testing.T) {
	// Cache-sensitive kernel peaks at 3 CTAs: it must never receive more
	// (the envelope excludes degrading points).
	d := []Demand{
		{Perf: peaked(8, 3), Need: quota(2048, 0, 128, 1)},
		{Perf: linear(8), Need: quota(2048, 0, 128, 1)},
	}
	a, err := WaterFill(d, smTotal())
	if err != nil {
		t.Fatal(err)
	}
	if a.CTAs[0] > 3 {
		t.Fatalf("cache-sensitive kernel got %d CTAs beyond its peak 3", a.CTAs[0])
	}
}

func TestWaterFillInfeasible(t *testing.T) {
	d := []Demand{
		{Perf: linear(2), Need: quota(32768, 0, 128, 1)},
		{Perf: linear(2), Need: quota(32768, 0, 128, 1)},
	}
	if _, err := WaterFill(d, smTotal()); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestWaterFillRejectsBadInput(t *testing.T) {
	if _, err := WaterFill(nil, smTotal()); err == nil {
		t.Fatal("nil demands accepted")
	}
	if _, err := WaterFill([]Demand{{Perf: []float64{1, 2}}}, smTotal()); err == nil {
		t.Fatal("Perf[0] != 0 accepted")
	}
	if _, err := WaterFill([]Demand{{Perf: []float64{0}}}, smTotal()); err == nil {
		t.Fatal("empty curve accepted")
	}
	if _, err := WaterFill([]Demand{{Perf: []float64{0, 0}}}, smTotal()); err == nil {
		t.Fatal("all-zero curve accepted")
	}
}

func TestWaterFillMatchesBruteForceOnPaperShapes(t *testing.T) {
	cases := [][]Demand{
		{
			{Perf: saturating(8, 5), Need: quota(1792, 0, 64, 1)}, // IMG-like
			{Perf: peaked(4, 3), Need: quota(7605, 0, 169, 1)},    // NN-like
		},
		{
			{Perf: linear(6), Need: quota(4608, 1536, 256, 1)},     // HOT-like
			{Perf: saturating(4, 1), Need: quota(7936, 0, 128, 1)}, // BLK-like
		},
		{
			{Perf: saturating(8, 6), Need: quota(2304, 2048, 64, 1)}, // DXT-like
			{Perf: saturating(5, 1), Need: quota(6360, 0, 120, 1)},   // LBM-like
		},
	}
	for i, d := range cases {
		wf, err := WaterFill(d, smTotal())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		bf, err := BruteForce(d, smTotal())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if wf.MinNormPerf < bf.MinNormPerf-1e-9 {
			t.Errorf("case %d: water-fill min %.3f < brute-force %.3f (CTAs %v vs %v)",
				i, wf.MinNormPerf, bf.MinNormPerf, wf.CTAs, bf.CTAs)
		}
	}
}

// randomDemands builds K random monotone-or-peaked curves with random
// resource footprints that always admit one CTA each.
func randomDemands(seed uint64, k int) []Demand {
	r := rng.NewStream(seed)
	total := smTotal()
	out := make([]Demand, k)
	for i := 0; i < k; i++ {
		n := 2 + r.Intn(7)
		perf := make([]float64, n+1)
		v := 0.0
		peak := 1 + r.Intn(n)
		for j := 1; j <= n; j++ {
			if j <= peak {
				v += 0.1 + float64(r.Intn(100))/50
			} else {
				v -= float64(r.Intn(50)) / 100
				if v < 0.05 {
					v = 0.05
				}
			}
			perf[j] = v
		}
		out[i] = Demand{
			Perf: perf,
			Need: quota(
				256+r.Intn(total.Regs/(2*k)),
				r.Intn(total.Shm/(2*k)+1),
				32+r.Intn(total.Threads/(2*k)),
				1),
		}
	}
	return out
}

// Property: water-filling achieves the brute-force optimal min-norm-perf
// (the paper's claim that Algorithm 1 solves Eq. 1 exactly for discrete
// monotone envelopes).
func TestWaterFillOptimalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		k := 2 + int(seed%2)
		d := randomDemands(seed, k)
		wf, errW := WaterFill(d, smTotal())
		bf, errB := BruteForce(d, smTotal())
		if (errW != nil) != (errB != nil) {
			return false
		}
		if errW != nil {
			return true
		}
		return wf.MinNormPerf >= bf.MinNormPerf-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the returned allocation always fits in the budget.
func TestWaterFillFeasibilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDemands(seed, 2+int(seed%3))
		a, err := WaterFill(d, smTotal())
		if err != nil {
			return true
		}
		var used sm.Quota
		for i, n := range a.CTAs {
			used = addQ(used, d[i].Need, n)
		}
		tot := smTotal()
		return used.Regs <= tot.Regs && used.Shm <= tot.Shm &&
			used.Threads <= tot.Threads && used.CTAs <= tot.CTAs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every kernel receives at least one CTA.
func TestWaterFillEveryKernelRunsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDemands(seed, 2)
		a, err := WaterFill(d, smTotal())
		if err != nil {
			return true
		}
		for _, n := range a.CTAs {
			if n < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	d := []Demand{{Perf: linear(2), Need: quota(1<<20, 0, 1, 1)}}
	if _, err := BruteForce(d, smTotal()); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestFinishAllocationNormalizes(t *testing.T) {
	d := []Demand{{Perf: []float64{0, 2, 4}, Need: quota(1, 0, 1, 1)}}
	a := finishAllocation(d, []int{1})
	if a.NormPerf[0] != 0.5 {
		t.Fatalf("norm perf = %v, want 0.5", a.NormPerf[0])
	}
	a = finishAllocation(d, []int{2})
	if a.NormPerf[0] != 1 {
		t.Fatalf("norm perf = %v, want 1", a.NormPerf[0])
	}
}
