// Package core implements the paper's contribution: the Warped-Slicer
// dynamic intra-SM slicing policy. It contains
//
//   - the water-filling resource partitioner (Algorithm 1), which picks the
//     per-kernel CTA counts maximizing the minimum normalized performance
//     subject to the SM's multi-dimensional resource constraint, in O(K·N)
//     time;
//   - a brute-force O(N^K) reference optimizer used to validate it; and
//   - the online profiling controller (Figure 4) that estimates each
//     kernel's performance-vs-CTA curve from a short staggered-occupancy
//     sample, corrects it for bandwidth imbalance (Eq. 2-4), runs the
//     partitioner, and falls back to spatial multitasking when any kernel
//     would lose too much performance.
package core

import (
	"errors"
	"fmt"

	"warpedslicer/internal/sm"
)

// Demand describes one kernel's input to the partitioner.
type Demand struct {
	// Perf[j] is the kernel's measured performance with j CTAs resident
	// on an SM; Perf[0] must be 0. Values need not be monotone (cache-
	// sensitive kernels peak early); the partitioner builds the monotone
	// envelope internally (the paper's Q/M vectors).
	Perf []float64
	// Need is the per-CTA resource vector.
	Need sm.Quota
}

// maxCTAs returns the largest CTA count with a defined performance point.
func (d Demand) maxCTAs() int { return len(d.Perf) - 1 }

// peak returns the maximum of the performance curve.
func (d Demand) peak() float64 {
	var m float64
	for _, p := range d.Perf {
		if p > m {
			m = p
		}
	}
	return m
}

// Allocation is the partitioner's result.
type Allocation struct {
	// CTAs[i] is the number of thread blocks assigned to kernel i.
	CTAs []int
	// NormPerf[i] is kernel i's normalized performance at CTAs[i]
	// (relative to its own peak).
	NormPerf []float64
	// MinNormPerf is the smallest entry of NormPerf (the objective).
	MinNormPerf float64
}

// ErrInfeasible is returned when even one CTA per kernel does not fit.
var ErrInfeasible = errors.New("core: one CTA per kernel exceeds SM resources")

func fits(used, need, total sm.Quota) bool {
	return used.Regs+need.Regs <= total.Regs &&
		used.Shm+need.Shm <= total.Shm &&
		used.Threads+need.Threads <= total.Threads &&
		used.CTAs+need.CTAs <= total.CTAs
}

func addQ(a, b sm.Quota, n int) sm.Quota {
	return sm.Quota{
		Regs:    a.Regs + b.Regs*n,
		Shm:     a.Shm + b.Shm*n,
		Threads: a.Threads + b.Threads*n,
		CTAs:    a.CTAs + b.CTAs*n,
	}
}

// WaterFill implements Algorithm 1 of the paper. Given each kernel's
// performance-vs-CTA curve and per-CTA resource vector, it returns the CTA
// assignment that maximizes the minimum normalized performance under the
// total resource budget. Complexity is O(K·N) in time and space.
func WaterFill(demands []Demand, total sm.Quota) (Allocation, error) {
	k := len(demands)
	if k == 0 {
		return Allocation{}, errors.New("core: no kernels")
	}

	// Build the monotone performance envelopes: Q[i][d] is the d-th
	// strictly increasing best performance, M[i][d] the CTA count that
	// achieves it (Algorithm 1 lines 5-15).
	type env struct {
		Q []float64
		M []int
	}
	envs := make([]env, k)
	for i, d := range demands {
		if d.maxCTAs() < 1 {
			return Allocation{}, fmt.Errorf("core: kernel %d has no performance points", i)
		}
		if d.Perf[0] != 0 {
			return Allocation{}, fmt.Errorf("core: kernel %d Perf[0] must be 0", i)
		}
		peak := d.peak()
		if peak <= 0 {
			return Allocation{}, fmt.Errorf("core: kernel %d has non-positive peak performance", i)
		}
		var e env
		best := 0.0
		for j := 1; j <= d.maxCTAs(); j++ {
			if d.Perf[j] > best {
				best = d.Perf[j]
				e.Q = append(e.Q, d.Perf[j]/peak)
				e.M = append(e.M, j)
			}
		}
		envs[i] = e
	}

	// Initial allocation: one CTA per kernel (lines 13-15).
	t := make([]int, k)     // Ti: CTAs assigned
	g := make([]int, k)     // gi: index into Q/M
	full := make([]bool, k) // Full(i)
	var used sm.Quota
	for i, d := range demands {
		// Each kernel starts at its first envelope point (>= 1 CTA).
		first := envs[i].M[0]
		need := addQ(sm.Quota{}, d.Need, first)
		if !fits(used, need, total) {
			// Try literally one CTA if the first envelope point needs more.
			if first > 1 && fits(used, d.Need, total) {
				first = 1
			} else {
				return Allocation{}, ErrInfeasible
			}
		}
		t[i] = first
		g[i] = 0
		used = addQ(used, d.Need, first)
	}

	// Water-filling loop (lines 16-32): repeatedly grow the kernel with
	// the minimum current normalized performance.
	for {
		sel := -1
		minPerf := 0.0
		for i := range demands {
			if full[i] || g[i]+1 >= len(envs[i].Q) {
				continue
			}
			p := envs[i].Q[g[i]]
			if sel < 0 || p < minPerf {
				sel, minPerf = i, p
			}
		}
		if sel < 0 {
			break
		}
		dT := envs[sel].M[g[sel]+1] - envs[sel].M[g[sel]]
		if fits(used, addQ(sm.Quota{}, demands[sel].Need, dT), total) {
			used = addQ(used, demands[sel].Need, dT)
			g[sel]++
			t[sel] += dT
		} else {
			full[sel] = true
		}
	}

	return finishAllocation(demands, t), nil
}

// finishAllocation computes normalized performances for an assignment.
func finishAllocation(demands []Demand, t []int) Allocation {
	alloc := Allocation{CTAs: t, NormPerf: make([]float64, len(t)), MinNormPerf: 1}
	for i, d := range demands {
		peak := d.peak()
		j := t[i]
		if j > d.maxCTAs() {
			j = d.maxCTAs()
		}
		// Performance at Ti is the best achievable with <= Ti CTAs (the
		// runtime would simply not launch harmful extra CTAs... but the
		// envelope construction already guarantees Ti is an envelope
		// point, so Perf[j] is that best value).
		p := 0.0
		for jj := 0; jj <= j; jj++ {
			if d.Perf[jj] > p {
				p = d.Perf[jj]
			}
		}
		alloc.NormPerf[i] = p / peak
		if alloc.NormPerf[i] < alloc.MinNormPerf {
			alloc.MinNormPerf = alloc.NormPerf[i]
		}
	}
	return alloc
}

// BruteForce exhaustively searches all CTA combinations for the assignment
// maximizing the minimum normalized performance (the O(N^K) comparison
// point of §IV). Ties are broken toward higher total normalized
// performance. It is exported for validation and ablation benchmarks.
func BruteForce(demands []Demand, total sm.Quota) (Allocation, error) {
	k := len(demands)
	if k == 0 {
		return Allocation{}, errors.New("core: no kernels")
	}
	best := Allocation{MinNormPerf: -1}
	cur := make([]int, k)
	var rec func(i int, used sm.Quota)
	rec = func(i int, used sm.Quota) {
		if i == k {
			a := finishAllocation(demands, append([]int(nil), cur...))
			sum := 0.0
			for _, p := range a.NormPerf {
				sum += p
			}
			bsum := 0.0
			for _, p := range best.NormPerf {
				bsum += p
			}
			if a.MinNormPerf > best.MinNormPerf ||
				(a.MinNormPerf == best.MinNormPerf && sum > bsum) {
				best = a
			}
			return
		}
		for n := 1; n <= demands[i].maxCTAs(); n++ {
			nu := addQ(used, demands[i].Need, n)
			if !fits(sm.Quota{}, nu, total) {
				break
			}
			cur[i] = n
			rec(i+1, nu)
		}
	}
	rec(0, sm.Quota{})
	if best.MinNormPerf < 0 {
		return Allocation{}, ErrInfeasible
	}
	return best, nil
}
