package core

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
)

// fastController shortens windows so tests stay quick while preserving the
// warmup -> sample -> decide sequence.
func fastController() *Controller {
	c := NewController()
	c.WarmupCycles = 2000
	c.SampleCycles = 2000
	return c
}

func newDynGPU(c *Controller, abbrs ...string) *gpu.GPU {
	g := gpu.New(config.Baseline(), c)
	for _, a := range abbrs {
		g.AddKernel(kernels.ByAbbr(a), 0)
	}
	return g
}

func TestProfilingLayoutSplitsSMs(t *testing.T) {
	c := fastController()
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(10)
	// During profiling, the first 8 SMs host IMG with caps 1..8, the rest
	// BLK with caps 1..4 (clamped at BLK's register limit).
	for i := 0; i < 8; i++ {
		want := i + 1
		if got := g.SMs[i].ResidentCTAs(0); got != want {
			t.Fatalf("SM%d IMG CTAs = %d, want %d", i, got, want)
		}
		if g.SMs[i].ResidentCTAs(1) != 0 {
			t.Fatalf("SM%d hosts BLK during IMG profiling", i)
		}
	}
	for i := 8; i < 16; i++ {
		want := i - 8 + 1
		if want > 4 {
			want = 4 // BLK occupancy limit
		}
		if got := g.SMs[i].ResidentCTAs(1); got != want {
			t.Fatalf("SM%d BLK CTAs = %d, want %d", i, got, want)
		}
	}
}

func TestControllerDecidesAndPartitionFits(t *testing.T) {
	c := fastController()
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 200)
	if !c.Decided() {
		t.Fatal("controller never decided")
	}
	if c.ChoseSpatial {
		t.Skip("chose spatial for this pair; partition checks not applicable")
	}
	if len(c.Partition) != 2 {
		t.Fatalf("partition = %v, want 2 entries", c.Partition)
	}
	cfg := config.Baseline()
	img, blk := kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")
	regs := c.Partition[0]*img.RegsPerCTA() + c.Partition[1]*blk.RegsPerCTA()
	if regs > cfg.SM.Registers {
		t.Fatalf("partition %v exceeds register file (%d > %d)", c.Partition, regs, cfg.SM.Registers)
	}
	if c.Partition[0] < 1 || c.Partition[1] < 1 {
		t.Fatalf("partition %v starves a kernel", c.Partition)
	}
}

func TestControllerCurvesPopulated(t *testing.T) {
	c := fastController()
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 200)
	if len(c.Curves) != 2 {
		t.Fatalf("curves = %d, want 2", len(c.Curves))
	}
	// IMG was profiled at 1..8 CTAs; each point must be positive.
	for j := 1; j < len(c.Curves[0]); j++ {
		if c.Curves[0][j] <= 0 {
			t.Fatalf("IMG curve[%d] = %v, want > 0", j, c.Curves[0][j])
		}
	}
	// Performance at 8 CTAs should comfortably beat 1 CTA for a compute
	// kernel.
	if c.Curves[0][8] < 2*c.Curves[0][1] {
		t.Fatalf("IMG curve not scaling: %v", c.Curves[0])
	}
}

func TestCoRunProgressesAfterDecision(t *testing.T) {
	c := fastController()
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 5000)
	if g.KernelInsts(0) == 0 || g.KernelInsts(1) == 0 {
		t.Fatal("kernels stalled after repartition")
	}
}

func TestScaledIPCDisablesCleanly(t *testing.T) {
	c := fastController()
	c.UseScaledIPC = false
	g := newDynGPU(c, "IMG", "LBM")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 200)
	if !c.Decided() {
		t.Fatal("controller without scaling never decided")
	}
}

func TestSpatialFallbackOnTinyThreshold(t *testing.T) {
	c := fastController()
	c.LossThresholdScale = 0.0001 // no loss tolerated -> must fall back
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 200)
	if !c.ChoseSpatial {
		t.Fatal("controller should have fallen back to spatial multitasking")
	}
	// Verify the spatial layout is actually in force.
	g.RunCycles(2000)
	for i, s := range g.SMs {
		if s.ResidentCTAs(0) > 0 && s.ResidentCTAs(1) > 0 {
			t.Fatalf("SM%d hosts both kernels after spatial fallback", i)
		}
	}
}

func TestThreeKernelController(t *testing.T) {
	c := fastController()
	g := newDynGPU(c, "IMG", "MM", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 3000)
	if !c.Decided() {
		t.Fatal("3-kernel controller never decided")
	}
	if !c.ChoseSpatial && len(c.Partition) != 3 {
		t.Fatalf("partition = %v, want 3 entries", c.Partition)
	}
	for k := 0; k < 3; k++ {
		if g.KernelInsts(k) == 0 {
			t.Fatalf("kernel %d made no progress", k)
		}
	}
}

func TestAlgorithmDelayDefersDecision(t *testing.T) {
	c := fastController()
	c.AlgorithmDelay = 3000
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 1000)
	if c.Decided() {
		t.Fatal("decision should still be pending during algorithm delay")
	}
	g.RunCycles(3000)
	if !c.Decided() {
		t.Fatal("decision never landed after delay")
	}
}

func TestReprofileOnPhaseChange(t *testing.T) {
	c := fastController()
	c.RepeatOnPhaseChange = true
	c.PhaseWindow = 1000
	c.PhaseDeltaFrac = 0.000001 // any jitter retriggers
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 20000)
	if c.Reprofiles() == 0 {
		t.Fatal("hair-trigger phase monitor never re-profiled")
	}
}

func TestNoReprofileWhenStable(t *testing.T) {
	c := fastController()
	c.RepeatOnPhaseChange = true
	c.PhaseWindow = 2000
	c.PhaseDeltaFrac = 100 // effectively never
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 20000)
	if c.Reprofiles() != 0 {
		t.Fatal("stable run should not re-profile")
	}
}

// TestSpatialFallbackClearsProfilingQuotas guards against the fallback
// path inheriting the profiling layout's restrictive per-SM CTA caps: the
// SM that profiled a kernel at 1 CTA must be able to fill up again once
// spatial multitasking is in force.
func TestSpatialFallbackClearsProfilingQuotas(t *testing.T) {
	c := fastController()
	c.LossThresholdScale = 0.0001 // force the fallback
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 20000)
	if !c.ChoseSpatial {
		t.Fatal("expected spatial fallback")
	}
	// Under spatial, IMG owns SMs 0..7. SM0 profiled IMG at cap 1; after
	// the fallback it must reach IMG's full occupancy (8 CTAs).
	if got := g.SMs[0].ResidentCTAs(0); got != 8 {
		t.Fatalf("SM0 IMG occupancy after fallback = %d, want 8 (stale profiling quota?)", got)
	}
}
