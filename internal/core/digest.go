package core

import "warpedslicer/internal/digest"

// DigestInto walks the controller's mutable state: the profiling state
// machine, the current profiling layout, the per-kernel sample baselines,
// phase-monitoring state, and the decision results. Configuration knobs
// are static inputs and excluded; profiled kernels are identified by
// their GPU slot (the kernel records themselves digest under the GPU's
// "kernels" component).
func (c *Controller) DigestInto(h *digest.Hasher) {
	h.Int(c.state)
	h.I64(c.warmupEnd)
	h.I64(c.sampleStart)
	h.I64(c.decideAt)
	h.Int(len(c.profiled))
	for _, k := range c.profiled {
		h.Int(k.Slot)
	}
	digestInts(h, c.owner)
	digestInts(h, c.cap)
	digestU64s(h, c.baseInsts)
	digestU64s(h, c.baseSlots)
	digestU64s(h, c.baseStallMem)
	h.U64(c.lastPhaseInsts)
	h.F64(c.lastPhaseIPC)
	h.I64(c.nextPhaseCheck)
	h.Int(c.reprofiles)
	digestInts(h, c.Partition)
	h.Bool(c.ChoseSpatial)
	h.Int(len(c.Curves))
	for _, row := range c.Curves {
		h.Int(len(row))
		for _, v := range row {
			h.F64(v)
		}
	}
}

func digestInts(h *digest.Hasher, vs []int) {
	h.Int(len(vs))
	for _, v := range vs {
		h.Int(v)
	}
}

func digestU64s(h *digest.Hasher, vs []uint64) {
	h.Int(len(vs))
	for _, v := range vs {
		h.U64(v)
	}
}
