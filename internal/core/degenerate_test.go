package core

import (
	"math"
	"testing"
)

// TestZeroSampleWindowStaysFinite pins the cycleguard fix in
// computeCurves: a degenerate zero-cycle sampling window (the kind a
// sensitivity sweep can produce) must yield zero IPC samples, never
// NaN/Inf curves, and the controller must still reach a decision.
func TestZeroSampleWindowStaysFinite(t *testing.T) {
	c := fastController()
	c.SampleCycles = 0
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + 500)

	if !c.Decided() {
		t.Fatal("controller never decided")
	}
	for i, curve := range c.Curves {
		for j, v := range curve {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Curves[%d][%d] = %v, must be finite", i, j, v)
			}
		}
	}
	// A zero-length window measures zero IPC for everyone; the controller
	// must resolve that degenerate input one way or the other, not wedge.
	if !c.ChoseSpatial && len(c.Partition) == 0 {
		t.Fatal("controller neither partitioned nor fell back to spatial")
	}
}
