package core

import (
	"reflect"
	"testing"

	"warpedslicer/internal/obs"
)

// TestDecisionEventLogRecordsExactRepartition is the primary mechanism for
// observing a repartition landing (the trace package's CTA-direction
// heuristic is now only a fallback): the controller must log the exact
// water-filling partition and the exact cycle its quotas were installed.
func TestDecisionEventLogRecordsExactRepartition(t *testing.T) {
	c := fastController()
	c.AlgorithmDelay = 1000
	log := obs.NewEventLog()
	c.Log = log
	g := newDynGPU(c, "IMG", "BLK")
	g.Log = log
	g.RunCycles(c.WarmupCycles + c.SampleCycles + c.AlgorithmDelay + 200)

	if !c.Decided() {
		t.Fatal("controller never decided")
	}
	if c.ChoseSpatial {
		t.Skip("chose spatial for this pair; repartition event not applicable")
	}

	// The decision trail must appear in order with exact cycles.
	start, ok := log.First(obs.EvProfileStart)
	if !ok || start.Cycle != 0 {
		t.Fatalf("profile_start = %+v ok=%v, want cycle 0", start, ok)
	}
	if kset, _ := start.Ints("kernels"); !reflect.DeepEqual(kset, []int{0, 1}) {
		t.Fatalf("profile_start kernels = %v", kset)
	}
	smp, ok := log.First(obs.EvSampleStart)
	if !ok || smp.Cycle != c.WarmupCycles {
		t.Fatalf("sample_start cycle = %d ok=%v, want %d", smp.Cycle, ok, c.WarmupCycles)
	}
	if curves := log.Filter(obs.EvCurves); len(curves) != 2 {
		t.Fatalf("curves events = %d, want 2", len(curves))
	}

	wantCycle := c.WarmupCycles + c.SampleCycles + c.AlgorithmDelay
	dec, ok := log.First(obs.EvDecision)
	if !ok || dec.Cycle != wantCycle {
		t.Fatalf("decision cycle = %d ok=%v, want %d", dec.Cycle, ok, wantCycle)
	}
	if p, _ := dec.Ints("partition"); !reflect.DeepEqual(p, c.Partition) {
		t.Fatalf("decision partition = %v, want %v", p, c.Partition)
	}

	rep, ok := log.First(obs.EvRepartition)
	if !ok {
		t.Fatal("no repartition event")
	}
	if rep.Cycle != wantCycle {
		t.Fatalf("repartition landed at %d, want exactly %d", rep.Cycle, wantCycle)
	}
	p, ok := rep.Ints("partition")
	if !ok || !reflect.DeepEqual(p, c.Partition) {
		t.Fatalf("repartition partition = %v, want the water-filling result %v", p, c.Partition)
	}
	if slots, _ := rep.Ints("slots"); !reflect.DeepEqual(slots, c.Partition) {
		// Both kernels arrived at slot 0 and 1, so the per-slot map equals
		// the profiled-order partition here.
		t.Fatalf("repartition slots = %v, want %v", slots, c.Partition)
	}
}

func TestSpatialFallbackEmitsEvents(t *testing.T) {
	c := fastController()
	c.LossThresholdScale = 0.0001 // no loss tolerated -> must fall back
	log := obs.NewEventLog()
	c.Log = log
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 200)
	if !c.ChoseSpatial {
		t.Fatal("expected spatial fallback")
	}
	dec, ok := log.First(obs.EvDecision)
	if !ok || dec.Data["spatial"] != true {
		t.Fatalf("decision = %+v ok=%v, want spatial=true", dec, ok)
	}
	if _, ok := log.First(obs.EvSpatialFallback); !ok {
		t.Fatal("no spatial_fallback event")
	}
	if _, ok := log.First(obs.EvRepartition); ok {
		t.Fatal("spatial fallback must not log a repartition")
	}
}

func TestReprofileEmitsNewEpisode(t *testing.T) {
	c := fastController()
	c.RepeatOnPhaseChange = true
	c.PhaseWindow = 1000
	c.PhaseDeltaFrac = 0.000001 // any jitter retriggers
	log := obs.NewEventLog()
	c.Log = log
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 20000)
	if c.Reprofiles() == 0 {
		t.Fatal("hair-trigger phase monitor never re-profiled")
	}
	if got := len(log.Filter(obs.EvReprofile)); got != c.Reprofiles() {
		t.Fatalf("reprofile events = %d, want %d", got, c.Reprofiles())
	}
	// Each re-profile opens a fresh sampling window and lands a fresh
	// decision — except possibly the last episode, which may still be
	// sampling when the run ends.
	if got := len(log.Filter(obs.EvDecision)); got < c.Reprofiles() || got > c.Reprofiles()+1 {
		t.Fatalf("decision events = %d, want %d or %d", got, c.Reprofiles(), c.Reprofiles()+1)
	}
}

func TestControllerNilLogIsSafe(t *testing.T) {
	c := fastController()
	g := newDynGPU(c, "IMG", "BLK")
	g.RunCycles(c.WarmupCycles + c.SampleCycles + 200)
	if !c.Decided() {
		t.Fatal("controller with nil log never decided")
	}
}
