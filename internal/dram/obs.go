package dram

import "warpedslicer/internal/obs"

// Register wires the channel's counters into the registry under the given
// labels (typically "chan","<i>"). Bus-busy over ticks is the channel's
// bandwidth utilization; queue occupancy over ticks its mean queue depth.
func (ch *Channel) Register(r *obs.Registry, kv ...string) {
	r.Collector(func(emit obs.Emit) {
		st := ch.Stats
		c := func(name string, v uint64) {
			emit(obs.Label(name, kv...), obs.Counter, float64(v))
		}
		c("ws_dram_served_total", st.Served)
		c("ws_dram_row_hits_total", st.RowHits)
		c("ws_dram_row_misses_total", st.RowMisses)
		c("ws_dram_writes_total", st.Writes)
		c("ws_dram_bus_busy_total", st.BusBusy)
		c("ws_dram_ticks_total", st.Ticks)
		c("ws_dram_queue_occupancy_total", st.QueueOccupancy)
		emit(obs.Label("ws_dram_queue_len", kv...), obs.Gauge, float64(ch.QueueLen()))
		hitKV := append(append([]string(nil), kv...), "row", "hit")
		missKV := append(append([]string(nil), kv...), "row", "miss")
		ch.RowHitService.Emit(emit, "ws_dram_service_cycles", hitKV...)
		ch.RowMissService.Emit(emit, "ws_dram_service_cycles", missKV...)
	})
}
