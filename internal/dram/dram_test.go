package dram

import (
	"testing"

	"warpedslicer/internal/memreq"
)

func testCfg() Config {
	return Config{
		Banks: 4, RowBytes: 2048,
		TCL: 12, TRP: 12, TRCD: 12, TRRD: 6,
		BurstCycles: 4, QueueDepth: 8,
	}
}

// run advances the channel until n requests complete or limit ticks pass.
func run(t *testing.T, ch *Channel, n int, limit int64) []memreq.Request {
	t.Helper()
	var done []memreq.Request
	for now := int64(0); now < limit && len(done) < n; now++ {
		done = append(done, ch.Tick(now)...)
	}
	if len(done) < n {
		t.Fatalf("only %d of %d requests completed in %d ticks", len(done), n, limit)
	}
	return done
}

func TestSingleRequestTiming(t *testing.T) {
	ch := NewChannel(testCfg())
	ch.Enqueue(memreq.Request{LineAddr: 0}, 0)
	var doneAt int64 = -1
	for now := int64(0); now < 200; now++ {
		if len(ch.Tick(now)) > 0 {
			doneAt = now
			break
		}
	}
	// Cold row: TRP+TRCD+TCL+Burst = 12+12+12+4 = 40.
	if doneAt != 40 {
		t.Fatalf("first request completed at %d, want 40", doneAt)
	}
	if ch.Stats.RowMisses != 1 || ch.Stats.RowHits != 0 {
		t.Fatalf("row stats = %d hits / %d misses, want 0/1", ch.Stats.RowHits, ch.Stats.RowMisses)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	// Two requests to the same row: second should be a row hit.
	ch := NewChannel(testCfg())
	ch.Enqueue(memreq.Request{LineAddr: 0}, 0)
	ch.Enqueue(memreq.Request{LineAddr: 128}, 0)
	run(t, ch, 2, 500)
	if ch.Stats.RowHits != 1 || ch.Stats.RowMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", ch.Stats.RowHits, ch.Stats.RowMisses)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := testCfg()
	ch := NewChannel(cfg)
	// Open row 0 of bank 0.
	ch.Enqueue(memreq.Request{LineAddr: 0}, 0)
	run(t, ch, 1, 200)
	// Now enqueue: first an address in a DIFFERENT row of bank 0, then a
	// row-0 hit. FR-FCFS should serve the hit first.
	other := uint64(2048 * 4) // same bank (4 banks), next row
	ch.Enqueue(memreq.Request{LineAddr: other}, 100)
	ch.Enqueue(memreq.Request{LineAddr: 128}, 100)
	var first memreq.Request
	got := false
	for now := int64(100); now < 500 && !got; now++ {
		for _, d := range ch.Tick(now) {
			first = d
			got = true
			break
		}
	}
	if !got || first.LineAddr != 128 {
		t.Fatalf("first served = %#x, want row-hit 0x80", first.LineAddr)
	}
}

func TestQueueBackpressure(t *testing.T) {
	ch := NewChannel(testCfg())
	for i := 0; i < 8; i++ {
		if !ch.Enqueue(memreq.Request{LineAddr: uint64(i) * 128}, 0) {
			t.Fatalf("enqueue %d rejected below depth", i)
		}
	}
	if !ch.Full() {
		t.Fatal("queue should be full")
	}
	if ch.Enqueue(memreq.Request{LineAddr: 9999}, 0) {
		t.Fatal("enqueue beyond depth accepted")
	}
}

func TestAllRequestsEventuallyServed(t *testing.T) {
	ch := NewChannel(testCfg())
	const n = 64
	enq := 0
	var done int
	for now := int64(0); now < 100000 && done < n; now++ {
		if enq < n && !ch.Full() {
			ch.Enqueue(memreq.Request{LineAddr: uint64(enq*37) * 128}, now)
			enq++
		}
		done += len(ch.Tick(now))
	}
	if done != n {
		t.Fatalf("served %d of %d", done, n)
	}
	if !ch.Drained() {
		t.Fatal("channel should be drained")
	}
	if ch.Stats.Served != n {
		t.Fatalf("Stats.Served = %d, want %d", ch.Stats.Served, n)
	}
}

func TestBandwidthBoundedByBurst(t *testing.T) {
	// Saturating stream: throughput cannot exceed 1 transaction per
	// BurstCycles.
	ch := NewChannel(testCfg())
	served := 0
	addr := uint64(0)
	const ticks = 4000
	for now := int64(0); now < ticks; now++ {
		for !ch.Full() {
			ch.Enqueue(memreq.Request{LineAddr: addr}, now)
			addr += 128
		}
		served += len(ch.Tick(now))
	}
	maxPossible := ticks / int64(testCfg().BurstCycles)
	if int64(served) > maxPossible {
		t.Fatalf("served %d > bus bound %d", served, maxPossible)
	}
	if served < int(maxPossible*7/10) {
		t.Fatalf("streaming throughput %d well below bus bound %d", served, maxPossible)
	}
	if u := ch.Stats.BandwidthUtil(); u < 0.7 || u > 1.0 {
		t.Fatalf("bandwidth util %.2f outside (0.7,1.0]", u)
	}
}

func TestWritesCounted(t *testing.T) {
	ch := NewChannel(testCfg())
	ch.Enqueue(memreq.Request{LineAddr: 0, Write: true}, 0)
	run(t, ch, 1, 200)
	if ch.Stats.Writes != 1 {
		t.Fatalf("writes = %d, want 1", ch.Stats.Writes)
	}
}

func TestRandomTrafficRowHitRateBelowStreaming(t *testing.T) {
	stream := NewChannel(testCfg())
	random := NewChannel(testCfg())
	var sAddr uint64
	seed := uint64(12345)
	feed := func(ch *Channel, now int64, next func() uint64) {
		for !ch.Full() {
			ch.Enqueue(memreq.Request{LineAddr: next()}, now)
		}
	}
	for now := int64(0); now < 20000; now++ {
		feed(stream, now, func() uint64 { sAddr += 128; return sAddr })
		feed(random, now, func() uint64 {
			seed = seed*6364136223846793005 + 1
			return (seed >> 20) &^ 127
		})
		stream.Tick(now)
		random.Tick(now)
	}
	sRate := float64(stream.Stats.RowHits) / float64(stream.Stats.RowHits+stream.Stats.RowMisses)
	rRate := float64(random.Stats.RowHits) / float64(random.Stats.RowHits+random.Stats.RowMisses)
	if sRate <= rRate {
		t.Fatalf("streaming row-hit rate %.2f not above random %.2f", sRate, rRate)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewChannel(Config{})
}

func TestTRRDSpacesActivates(t *testing.T) {
	// Two row-miss requests to different banks: the second activate must
	// wait at least tRRD after the first.
	cfg := testCfg()
	ch := NewChannel(cfg)
	ch.Enqueue(memreq.Request{LineAddr: 0}, 0)            // bank 0
	ch.Enqueue(memreq.Request{LineAddr: cfg.RowBytes}, 0) // bank 1
	var done []int64
	for now := int64(0); now < 500 && len(done) < 2; now++ {
		for range ch.Tick(now) {
			done = append(done, now)
		}
	}
	if len(done) != 2 {
		t.Fatal("requests not served")
	}
	// First: TRP+TRCD+TCL+Burst = 40. Second activate delayed by tRRD
	// relative to the first, plus bus serialization of 4 cycles.
	if done[1]-done[0] < int64(cfg.BurstCycles) {
		t.Fatalf("second completion %d too close to first %d", done[1], done[0])
	}
}

func TestQueueOccupancyStat(t *testing.T) {
	ch := NewChannel(testCfg())
	ch.Enqueue(memreq.Request{LineAddr: 0}, 0)
	ch.Tick(0)
	if ch.Stats.Ticks == 0 {
		t.Fatal("ticks not counted")
	}
}

// TestServiceHistogramsMatchRowStats checks the per-outcome service-time
// histograms: their counts equal the row-hit/row-miss counters, and a row
// miss (precharge + activate) is never serviced faster than the fastest
// possible row hit.
func TestServiceHistogramsMatchRowStats(t *testing.T) {
	ch := NewChannel(testCfg())
	const n = 64
	enq, done := 0, 0
	for now := int64(0); now < 100000 && done < n; now++ {
		if enq < n && !ch.Full() {
			// Mixed stream: bursts of same-row traffic with row changes.
			ch.Enqueue(memreq.Request{LineAddr: uint64(enq/8)*8192 + uint64(enq%8)*128}, now)
			enq++
		}
		done += len(ch.Tick(now))
	}
	if done != n {
		t.Fatalf("served %d of %d", done, n)
	}
	if got := ch.RowHitService.Count(); got != ch.Stats.RowHits {
		t.Errorf("row-hit histogram count = %d, Stats.RowHits = %d", got, ch.Stats.RowHits)
	}
	if got := ch.RowMissService.Count(); got != ch.Stats.RowMisses {
		t.Errorf("row-miss histogram count = %d, Stats.RowMisses = %d", got, ch.Stats.RowMisses)
	}
	if ch.Stats.RowHits == 0 || ch.Stats.RowMisses == 0 {
		t.Fatal("traffic pattern produced no hit/miss mix; test is vacuous")
	}
	cfg := testCfg()
	minMiss := uint64(cfg.TRP + cfg.TRCD + cfg.TCL + cfg.BurstCycles)
	if mean := float64(ch.RowMissService.Sum()) / float64(ch.RowMissService.Count()); mean < float64(minMiss) {
		t.Errorf("mean row-miss service %.1f below timing floor %d", mean, minMiss)
	}
}
