// Package dram models one GDDR5 memory channel with an FR-FCFS
// (first-ready, first-come-first-served) scheduler and a row-buffer timing
// model, per Table I of the paper (6 MCs, FR-FCFS, 924MHz, tCL=12 tRP=12
// tRC=40 tRAS=28 tRCD=12 tRRD=6).
//
// All times inside this package are memory-clock cycles; the memory
// partition (package mem) converts between core and memory clock domains.
package dram

import (
	"fmt"

	"warpedslicer/internal/assert"
	"warpedslicer/internal/memreq"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/span"
)

// Config holds the channel geometry and timing.
type Config struct {
	Banks       int
	RowBytes    uint64
	TCL         int // CAS latency
	TRP         int // row precharge
	TRCD        int // RAS-to-CAS delay
	TRRD        int // activate-to-activate (different banks)
	BurstCycles int // data-bus occupancy per transaction
	QueueDepth  int // FR-FCFS scheduling window
}

// Stats counts channel activity.
type Stats struct {
	Served    uint64 // transactions completed
	RowHits   uint64
	RowMisses uint64
	Writes    uint64
	// BusBusy accumulates memory cycles the data bus was occupied; divide
	// by elapsed cycles for bandwidth utilization.
	BusBusy uint64
	// QueueOccupancy accumulates queue length per Tick for averaging.
	QueueOccupancy uint64
	Ticks          uint64
}

// BandwidthUtil returns the fraction of ticks the data bus was busy.
func (s Stats) BandwidthUtil() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.BusBusy) / float64(s.Ticks)
}

type bank struct {
	openRow  uint64
	rowValid bool
	readyAt  int64
}

type pending struct {
	req     memreq.Request
	arrival int64
}

type inflight struct {
	req  memreq.Request
	done int64
}

// Channel is one memory controller + DRAM device group.
type Channel struct {
	cfg       Config //simlint:nodigest -- config: timing parameters, fixed at construction
	banks     []bank
	queue     []pending
	inflight  []inflight
	busFreeAt int64
	lastActAt int64 // for tRRD

	Stats Stats

	// Spans, when set, receives row-buffer outcome and queue/service
	// annotations for traced requests (see package span). The memory
	// partition injects it; a nil collector disables the hook.
	//simlint:nodigest -- observability: span-trace hook, never read by the model
	Spans *span.Collector

	// RowHitService / RowMissService record per-transaction service time
	// (arrival to data-complete, memory cycles) split by row-buffer
	// outcome. A row miss pays precharge+activate, so the two
	// distributions separate cleanly; their counts match
	// Stats.RowHits/RowMisses by construction.
	RowHitService  obs.Hist //simlint:nodigest -- observability: exported histogram; the digest pins Stats counters instead
	RowMissService obs.Hist //simlint:nodigest -- observability: exported histogram; the digest pins Stats counters instead
}

// NewChannel constructs a channel. Zero-valued timing fields are rejected.
func NewChannel(cfg Config) *Channel {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 || cfg.QueueDepth <= 0 || cfg.BurstCycles <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	return &Channel{cfg: cfg, banks: make([]bank, cfg.Banks), lastActAt: -1 << 60}
}

// Full reports whether the scheduling queue cannot accept another request.
func (ch *Channel) Full() bool { return len(ch.queue) >= ch.cfg.QueueDepth }

// QueueLen returns the current queue occupancy.
func (ch *Channel) QueueLen() int { return len(ch.queue) }

// Enqueue admits a request. It returns false when the queue is full.
func (ch *Channel) Enqueue(req memreq.Request, now int64) bool {
	if ch.Full() {
		return false
	}
	ch.queue = append(ch.queue, pending{req: req, arrival: now})
	return true
}

func (ch *Channel) bankOf(lineAddr uint64) int {
	return int((lineAddr / ch.cfg.RowBytes) % uint64(ch.cfg.Banks))
}

func (ch *Channel) rowOf(lineAddr uint64) uint64 {
	return lineAddr / (ch.cfg.RowBytes * uint64(ch.cfg.Banks))
}

// Tick advances the channel to memory-clock cycle `now`: it issues at most
// one scheduled transaction and returns all requests whose data completed
// at or before `now`.
func (ch *Channel) Tick(now int64) []memreq.Request {
	ch.Stats.Ticks++
	ch.Stats.QueueOccupancy += uint64(len(ch.queue))

	if assert.Enabled {
		if len(ch.queue) > ch.cfg.QueueDepth {
			assert.Failf("dram: scheduling queue overflow: %d > %d", len(ch.queue), ch.cfg.QueueDepth)
		}
		if ch.Stats.RowHits+ch.Stats.RowMisses != ch.Stats.Served {
			assert.Failf("dram: row-buffer accounting broken: hits %d + misses %d != served %d",
				ch.Stats.RowHits, ch.Stats.RowMisses, ch.Stats.Served)
		}
	}

	ch.issue(now)

	var done []memreq.Request
	kept := ch.inflight[:0]
	for _, f := range ch.inflight {
		if f.done <= now {
			done = append(done, f.req)
		} else {
			kept = append(kept, f)
		}
	}
	ch.inflight = kept
	return done
}

// issue applies FR-FCFS: the oldest row-buffer-hitting request whose bank is
// ready wins; otherwise the oldest request whose bank is ready.
func (ch *Channel) issue(now int64) {
	if len(ch.queue) == 0 {
		return
	}
	if ch.busFreeAt > now+int64(ch.cfg.TCL) {
		// The data bus is already booked past the earliest possible CAS;
		// issuing now gains nothing and would forfeit FR-FCFS choice
		// flexibility (and overstate bus-busy accounting).
		return
	}

	pick := -1
	rowHit := false
	for i, p := range ch.queue {
		b := &ch.banks[ch.bankOf(p.req.LineAddr)]
		if b.readyAt > now {
			continue
		}
		if b.rowValid && b.openRow == ch.rowOf(p.req.LineAddr) {
			pick, rowHit = i, true
			break // oldest row hit wins immediately
		}
		if pick < 0 {
			pick = i
		}
	}
	if pick < 0 {
		return
	}

	p := ch.queue[pick]
	bi := ch.bankOf(p.req.LineAddr)
	b := &ch.banks[bi]

	var casAt int64
	if rowHit {
		casAt = now
		ch.Stats.RowHits++
	} else {
		// Precharge + activate. Respect tRRD between activates.
		actAt := now + int64(ch.cfg.TRP)
		if min := ch.lastActAt + int64(ch.cfg.TRRD); actAt < min {
			actAt = min
		}
		ch.lastActAt = actAt
		casAt = actAt + int64(ch.cfg.TRCD)
		ch.Stats.RowMisses++
		b.openRow = ch.rowOf(p.req.LineAddr)
		b.rowValid = true
	}

	dataAt := casAt + int64(ch.cfg.TCL)
	if dataAt < ch.busFreeAt {
		dataAt = ch.busFreeAt
	}
	done := dataAt + int64(ch.cfg.BurstCycles)
	ch.busFreeAt = done
	b.readyAt = casAt + int64(ch.cfg.BurstCycles)

	ch.Stats.BusBusy += uint64(ch.cfg.BurstCycles)
	ch.Stats.Served++
	if p.req.Write {
		ch.Stats.Writes++
	}
	if rowHit {
		ch.RowHitService.Observe(done - p.arrival)
	} else {
		ch.RowMissService.Observe(done - p.arrival)
	}
	if p.req.Span != 0 {
		// Memory-clock annotation: how the queue wait and device service
		// split inside the core-clock dram stage the span already times.
		ch.Spans.MarkDRAMIssue(p.req.Span, rowHit, now-p.arrival, done-now)
	}

	ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)
	ch.inflight = append(ch.inflight, inflight{req: p.req, done: done})
}

// Drained reports whether no work remains queued or in flight.
func (ch *Channel) Drained() bool { return len(ch.queue) == 0 && len(ch.inflight) == 0 }

// Pending returns the number of transactions queued or in flight. The
// fast-forward quiescence check (mem.OnlyRepliesInFlight) requires it to
// be zero: an in-flight transaction's completion still has to fill L2 and
// wake waiters, so its downstream wake-ups are not yet stamped.
func (ch *Channel) Pending() int { return len(ch.queue) + len(ch.inflight) }
