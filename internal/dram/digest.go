package dram

import "warpedslicer/internal/digest"

// DigestInto walks the channel's architectural state: per-bank row-buffer
// and timing state, the FR-FCFS scheduling queue in arrival order, the
// in-flight transactions in issue order, bus/activate timing, and the
// counters. The span collector and service-time histograms are
// observability and excluded.
func (ch *Channel) DigestInto(h *digest.Hasher) {
	h.Int(len(ch.banks))
	for i := range ch.banks {
		b := &ch.banks[i]
		h.U64(b.openRow)
		h.Bool(b.rowValid)
		h.I64(b.readyAt)
	}
	h.Int(len(ch.queue))
	for i := range ch.queue {
		p := &ch.queue[i]
		p.req.DigestInto(h)
		h.I64(p.arrival)
	}
	h.Int(len(ch.inflight))
	for i := range ch.inflight {
		f := &ch.inflight[i]
		f.req.DigestInto(h)
		h.I64(f.done)
	}
	h.I64(ch.busFreeAt)
	h.I64(ch.lastActAt)
	h.U64(ch.Stats.Served)
	h.U64(ch.Stats.RowHits)
	h.U64(ch.Stats.RowMisses)
	h.U64(ch.Stats.Writes)
	h.U64(ch.Stats.BusBusy)
	h.U64(ch.Stats.QueueOccupancy)
	h.U64(ch.Stats.Ticks)
}
