package runlog

import (
	"fmt"
	"strings"
)

// MetricDelta is one headline metric compared across two records.
type MetricDelta struct {
	Name string  `json:"name"`
	A    float64 `json:"a"`
	B    float64 `json:"b"`
}

// SeriesDiff locates the first differing window of two recorded series.
type SeriesDiff struct {
	// Index is the point index of the first difference; Name the first
	// differing column at that point (empty for structural differences —
	// see Kind: "cycle", "length", "names", "stride").
	Index  int    `json:"index"`
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	CycleA int64  `json:"cycle_a"`
	CycleB int64  `json:"cycle_b"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
}

// DiffResult is the outcome of comparing two run records: every metric
// delta, the first differing metric and series window, and whether the
// digest chains diverge (the cue to hand off to the bisector).
type DiffResult struct {
	KeyA         string        `json:"key_a"`
	KeyB         string        `json:"key_b"`
	SameInputs   bool          `json:"same_inputs"`
	CyclesA      int64         `json:"cycles_a"`
	CyclesB      int64         `json:"cycles_b"`
	Deltas       []MetricDelta `json:"deltas,omitempty"`
	FirstMetric  string        `json:"first_metric,omitempty"`
	Series       *SeriesDiff   `json:"series,omitempty"`
	ChainDiffers bool          `json:"chain_differs,omitempty"`
	Identical    bool          `json:"identical"`
}

// Diff compares two run records: metric deltas in record order, the
// first differing series window, and the digest-chain verdict.
func Diff(a, b *RunRecord) DiffResult {
	d := DiffResult{
		KeyA:       a.Key,
		KeyB:       b.Key,
		SameInputs: a.Key == b.Key,
		CyclesA:    a.Cycles,
		CyclesB:    b.Cycles,
	}
	seen := make(map[string]bool, len(a.Metrics))
	for _, m := range a.Metrics {
		seen[m.Name] = true
		bv, _ := b.Metric(m.Name)
		if m.Value != bv {
			d.Deltas = append(d.Deltas, MetricDelta{Name: m.Name, A: m.Value, B: bv})
			if d.FirstMetric == "" {
				d.FirstMetric = m.Name
			}
		}
	}
	for _, m := range b.Metrics {
		if seen[m.Name] {
			continue
		}
		d.Deltas = append(d.Deltas, MetricDelta{Name: m.Name, A: 0, B: m.Value})
		if d.FirstMetric == "" {
			d.FirstMetric = m.Name
		}
	}
	d.Series = diffSeries(a.Series, b.Series)
	d.ChainDiffers = a.DigestChain != b.DigestChain || a.DigestRecords != b.DigestRecords
	d.Identical = len(d.Deltas) == 0 && d.Series == nil && !d.ChainDiffers &&
		d.CyclesA == d.CyclesB && a.Timeout == b.Timeout
	return d
}

// diffSeries walks two series to the first differing window. A nil
// return means no difference (including both series absent).
func diffSeries(a, b *Series) *SeriesDiff {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil || b == nil:
		return &SeriesDiff{Kind: "length"}
	}
	if len(a.Names) != len(b.Names) {
		return &SeriesDiff{Kind: "names"}
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			return &SeriesDiff{Kind: "names", Name: a.Names[i] + "/" + b.Names[i]}
		}
	}
	if a.WindowsPerPoint != b.WindowsPerPoint {
		return &SeriesDiff{Kind: "stride", A: float64(a.WindowsPerPoint), B: float64(b.WindowsPerPoint)}
	}
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	for i := 0; i < n; i++ {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Cycle != pb.Cycle {
			return &SeriesDiff{Index: i, Kind: "cycle", CycleA: pa.Cycle, CycleB: pb.Cycle}
		}
		for j := range a.Names {
			if pa.Values[j] != pb.Values[j] {
				return &SeriesDiff{
					Index: i, Kind: "value", Name: a.Names[j],
					CycleA: pa.Cycle, CycleB: pb.Cycle,
					A: pa.Values[j], B: pb.Values[j],
				}
			}
		}
	}
	if len(a.Points) != len(b.Points) {
		return &SeriesDiff{Index: n, Kind: "length", A: float64(len(a.Points)), B: float64(len(b.Points))}
	}
	return nil
}

// FormatDiff renders a diff result for the `runs diff` CLI (and its
// golden test). Output is fully determined by the records.
func FormatDiff(d DiffResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "diff %s vs %s\n", d.KeyA, d.KeyB)
	if d.SameInputs {
		b.WriteString("inputs: identical content address (same run)\n")
	}
	if d.Identical {
		b.WriteString("records identical\n")
		return b.String()
	}
	if d.CyclesA != d.CyclesB {
		fmt.Fprintf(&b, "cycles: %d vs %d\n", d.CyclesA, d.CyclesB)
	}
	for _, m := range d.Deltas {
		fmt.Fprintf(&b, "metric %-32s %.6g vs %.6g (%+.6g)\n", m.Name, m.A, m.B, m.B-m.A)
	}
	if d.FirstMetric != "" {
		fmt.Fprintf(&b, "first differing metric: %s\n", d.FirstMetric)
	}
	if s := d.Series; s != nil {
		switch s.Kind {
		case "value":
			fmt.Fprintf(&b, "first differing window: point %d (cycle %d) %s: %g vs %g\n",
				s.Index, s.CycleA, s.Name, s.A, s.B)
		case "cycle":
			fmt.Fprintf(&b, "series cadence differs at point %d: cycle %d vs %d\n", s.Index, s.CycleA, s.CycleB)
		case "length":
			fmt.Fprintf(&b, "series lengths differ at point %d: %g vs %g points\n", s.Index, s.A, s.B)
		case "stride":
			fmt.Fprintf(&b, "series strides differ: %g vs %g windows/point\n", s.A, s.B)
		default:
			fmt.Fprintf(&b, "series columns differ: %s\n", s.Name)
		}
	}
	if d.ChainDiffers {
		b.WriteString("digest chains differ: run the bisector for the first divergent cycle\n")
	}
	return b.String()
}
