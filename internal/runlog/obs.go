package runlog

import "warpedslicer/internal/obs"

// Register wires the ledger's counters into a registry. A ledger is
// shared across a session's runs while each run has its own registry, so
// the closures read under the mutex (snapshots happen on simulation
// goroutines concurrent with other workers' appends).
func (l *Ledger) Register(r *obs.Registry) {
	if l == nil {
		return
	}
	r.Counter("ws_runlog_appends_total", func() uint64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.appends
	})
	r.Counter("ws_runlog_dedup_hits_total", func() uint64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.dedupHits
	})
}

// Register wires the recorder's counters into its run's registry. The
// recorder lives on the run's own simulation goroutine (Monitor hook),
// the same one that takes snapshots, so plain reads suffice.
func (rec *Recorder) Register(r *obs.Registry) {
	if rec == nil {
		return
	}
	r.Counter("ws_runlog_series_points_total", func() uint64 { return rec.pointsTotal })
	r.Counter("ws_runlog_series_downsamples_total", func() uint64 { return rec.downsamplesTotal })
	r.Counter("ws_runlog_series_windows_total", func() uint64 { return rec.windowsTotal })
}
