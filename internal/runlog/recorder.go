package runlog

import "warpedslicer/internal/obs"

// DefaultMaxPoints bounds a recorded series. Even by construction: the
// downsampler merges adjacent point pairs, so an even capacity always
// halves cleanly.
const DefaultMaxPoints = 128

// DefaultSeries is the registry counter set recorded into run records:
// the device-wide issue/stall composition, the scheduler fast-path and
// fast-forward opportunity meters, and DRAM bus utilization. All are
// label-free device aggregates, so the series stays small and its
// column order is fixed here, not derived from a map.
func DefaultSeries() []string {
	return []string{
		"ws_sm_issued_total",
		"ws_sm_stall_mem_total",
		"ws_sm_stall_raw_total",
		"ws_sm_stall_exec_total",
		"ws_sm_stall_ibuf_total",
		"ws_sm_stall_idle_total",
		"ws_sm_sched_fastpath_total",
		"ws_gpu_ff_skippable_cycles_total",
	}
}

// SeriesPoint is one aggregated window: the cycle at the window's end
// and the counter deltas accumulated over it, parallel to Series.Names.
type SeriesPoint struct {
	Cycle  int64     `json:"cycle"`
	Values []float64 `json:"values"`
}

// Series is the bounded per-window time series stored in a RunRecord.
// Names and each point's Values are parallel slices — explicit order,
// no map — and WindowsPerPoint reports the downsampling factor the run
// ended at (1 when the series never hit capacity).
type Series struct {
	Names           []string      `json:"names"`
	WindowsPerPoint int           `json:"windows_per_point"`
	Downsamples     int           `json:"downsamples"`
	Points          []SeriesPoint `json:"points"`
}

// Recorder accumulates registry snapshot diffs into a fixed-size,
// deterministically downsampled Series. It is driven from the GPU's
// Monitor hook: each Observe diffs the snapshot against the previous one
// (one window), windows accumulate until the current windows-per-point
// factor is reached, and when the series hits capacity adjacent points
// merge pairwise and the factor doubles. The resulting series depends
// only on the snapshot sequence, never on wall time or goroutine
// interleaving.
type Recorder struct {
	names  []string
	max    int
	factor int
	points []SeriesPoint

	prev     *obs.Snapshot
	havePrev bool
	acc      []float64
	accN     int

	// ws_runlog_* counters (registered via Register in obs.go).
	pointsTotal      uint64
	downsamplesTotal uint64
	windowsTotal     uint64
}

// NewRecorder builds a recorder over the named counters with the given
// point capacity (<= 0 selects DefaultMaxPoints; odd capacities round up
// so pair-merging always halves cleanly).
func NewRecorder(names []string, maxPoints int) *Recorder {
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	if maxPoints%2 != 0 {
		maxPoints++
	}
	return &Recorder{
		names:  append([]string(nil), names...),
		max:    maxPoints,
		factor: 1,
		acc:    make([]float64, len(names)),
	}
}

// Observe ingests one monitor firing. The first call establishes the
// baseline snapshot; every later call closes one window of counter
// deltas.
func (r *Recorder) Observe(cycle int64, snap *obs.Snapshot) {
	if r == nil || snap == nil {
		return
	}
	if !r.havePrev {
		r.prev = snap
		r.havePrev = true
		return
	}
	for i, name := range r.names {
		r.acc[i] += snap.Delta(r.prev, name)
	}
	r.prev = snap
	r.accN++
	r.windowsTotal++
	if r.accN < r.factor {
		return
	}
	vals := append([]float64(nil), r.acc...)
	r.points = append(r.points, SeriesPoint{Cycle: cycle, Values: vals})
	r.pointsTotal++
	for i := range r.acc {
		r.acc[i] = 0
	}
	r.accN = 0
	if len(r.points) >= r.max {
		r.downsample()
	}
}

// downsample merges adjacent point pairs in place and doubles the
// windows-per-point factor. Capacity is even, so the merge is exact.
func (r *Recorder) downsample() {
	half := r.points[:0]
	for i := 0; i+1 < len(r.points); i += 2 {
		a, b := r.points[i], r.points[i+1]
		for j := range b.Values {
			b.Values[j] += a.Values[j]
		}
		half = append(half, b)
	}
	r.points = half
	r.factor *= 2
	r.downsamplesTotal++
}

// Series snapshots the recorded series. The returned value owns copies
// of the points, so a record outlives its recorder.
func (r *Recorder) Series() *Series {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	pts := make([]SeriesPoint, len(r.points))
	for i, p := range r.points {
		pts[i] = SeriesPoint{Cycle: p.Cycle, Values: append([]float64(nil), p.Values...)}
	}
	return &Series{
		Names:           append([]string(nil), r.names...),
		WindowsPerPoint: r.factor,
		Downsamples:     int(r.downsamplesTotal),
		Points:          pts,
	}
}
