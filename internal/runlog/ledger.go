package runlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"warpedslicer/internal/digest"
)

// journalName is the append-only index file under the ledger dir.
const journalName = "ledger.jsonl"

// Entry is one journal line: the run's key plus just enough identity to
// render a listing without opening the record file, and the observed
// wall/CPU cost. Timing is deliberately journal-only — the journal is
// the non-canonical side of the ledger (append order and durations vary
// run to run), while records/<key>.json stays byte-deterministic.
type Entry struct {
	Key      string  `json:"key"`
	Kind     string  `json:"kind"`
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	Cycles   int64   `json:"cycles"`
	IPC      float64 `json:"ipc"`
	Timeout  bool    `json:"timeout,omitempty"`
	WallNs   int64   `json:"wall_ns,omitempty"`
	CPUNs    int64   `json:"cpu_ns,omitempty"`
}

// View is the /runs JSON shape served by the obs Hub: the ledger
// location, its counters, and the sorted run listing.
type View struct {
	Dir       string  `json:"dir"`
	Appends   uint64  `json:"appends_total"`
	DedupHits uint64  `json:"dedup_hits_total"`
	Runs      []Entry `json:"runs"`
}

// Ledger is the on-disk, content-addressed run store:
//
//	<dir>/ledger.jsonl        append-only journal (one Entry per append)
//	<dir>/records/<key>.json  canonical RunRecord, content-addressed
//	<dir>/trails/<key>.jsonl  digest trail for bisection, when captured
//
// Append dedupes by key, so re-running identical inputs leaves one
// entry — the behavior a memoizing result cache (ROADMAP item 1) will
// build on. The ledger is safe for concurrent appends from a parallel
// session's workers; journal line order is the only thing that varies,
// and List/View sort it away.
type Ledger struct {
	// WallNow/CPUNow, when non-nil, supply nanosecond timestamps for the
	// journal's timing columns. They are injected by non-sim callers
	// (cmd/wslicer wires time.Now; tests leave them nil for zero timing):
	// the sim side of the tree takes no clock dependency.
	WallNow func() int64
	CPUNow  func() int64

	dir string

	mu        sync.Mutex
	keys      map[string]bool
	entries   []Entry
	appends   uint64
	dedupHits uint64
}

// Open creates (or reopens) a ledger directory, loading the journal so
// dedupe and listings persist across processes.
func Open(dir string) (*Ledger, error) {
	for _, sub := range []string{"", "records", "trails"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("runlog: open ledger: %w", err)
		}
	}
	l := &Ledger{dir: dir, keys: make(map[string]bool)}
	f, err := os.Open(filepath.Join(dir, journalName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return l, nil
		}
		return nil, fmt.Errorf("runlog: open journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			// A torn trailing line (crashed writer) must not brick the
			// ledger; everything before it is intact.
			continue
		}
		if !l.keys[e.Key] {
			l.keys[e.Key] = true
			l.entries = append(l.entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runlog: read journal: %w", err)
	}
	return l, nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

// Now reads the injected clocks (zeros when none are wired).
func (l *Ledger) Now() (wallNs, cpuNs int64) {
	if l == nil {
		return 0, 0
	}
	if l.WallNow != nil {
		wallNs = l.WallNow()
	}
	if l.CPUNow != nil {
		cpuNs = l.CPUNow()
	}
	return wallNs, cpuNs
}

// Append stores a run record. The canonical record file is written
// atomically under records/<key>.json and a journal line is appended;
// if the key already exists the call is a dedup hit and nothing is
// written. Returns whether the record was newly added.
func (l *Ledger) Append(rec *RunRecord, wallNs, cpuNs int64) (bool, error) {
	if rec.Key == "" {
		key, err := rec.Inputs.Key()
		if err != nil {
			return false, err
		}
		rec.Key = key
	}
	data, err := MarshalRecord(rec)
	if err != nil {
		return false, err
	}
	ipc, _ := rec.Metric("ipc")
	e := Entry{
		Key:      rec.Key,
		Kind:     rec.Inputs.Kind,
		Workload: rec.Inputs.Workload,
		Policy:   rec.Inputs.Policy,
		Cycles:   rec.Cycles,
		IPC:      ipc,
		Timeout:  rec.Timeout,
		WallNs:   wallNs,
		CPUNs:    cpuNs,
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.keys[rec.Key] {
		l.dedupHits++
		return false, nil
	}
	if err := AtomicWriteFile(l.recordPath(rec.Key), data, 0o644); err != nil {
		return false, err
	}
	if err := l.appendJournal(e); err != nil {
		return false, err
	}
	l.keys[rec.Key] = true
	l.entries = append(l.entries, e)
	l.appends++
	return true, nil
}

// appendJournal writes one journal line under the held mutex. O_APPEND
// keeps concurrent processes from interleaving partial lines.
func (l *Ledger) appendJournal(e Entry) error {
	f, err := os.OpenFile(filepath.Join(l.dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runlog: append journal: %w", err)
	}
	defer f.Close()
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runlog: marshal entry: %w", err)
	}
	_, err = f.Write(append(data, '\n'))
	return err
}

func (l *Ledger) recordPath(key string) string {
	return filepath.Join(l.dir, "records", key+".json")
}

// Get loads the record for a key, accepting any unambiguous prefix (so
// `runs show 9f3a` works like a short git hash).
func (l *Ledger) Get(keyPrefix string) (*RunRecord, error) {
	key, err := l.resolve(keyPrefix)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(l.recordPath(key))
	if err != nil {
		return nil, fmt.Errorf("runlog: read record %s: %w", key, err)
	}
	var rec RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("runlog: parse record %s: %w", key, err)
	}
	return &rec, nil
}

// resolve expands a key prefix against the known keys, sorted so the
// ambiguity report is deterministic.
func (l *Ledger) resolve(prefix string) (string, error) {
	if prefix == "" {
		return "", fmt.Errorf("runlog: empty key")
	}
	l.mu.Lock()
	keys := make([]string, 0, len(l.keys))
	for k := range l.keys {
		keys = append(keys, k)
	}
	l.mu.Unlock()
	sort.Strings(keys)
	var matches []string
	for _, k := range keys {
		if k == prefix {
			return k, nil
		}
		if strings.HasPrefix(k, prefix) {
			matches = append(matches, k)
		}
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("runlog: no run with key %q", prefix)
	case 1:
		return matches[0], nil
	default:
		return "", fmt.Errorf("runlog: key %q is ambiguous (%s)", prefix, strings.Join(matches, ", "))
	}
}

// List returns the run entries sorted by (kind, workload, policy, key) —
// a deterministic listing regardless of journal append order.
func (l *Ledger) List() []Entry {
	l.mu.Lock()
	out := append([]Entry(nil), l.entries...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Key < b.Key
	})
	return out
}

// View assembles the /runs JSON view.
func (l *Ledger) View() View {
	runs := l.List()
	l.mu.Lock()
	v := View{Dir: l.dir, Appends: l.appends, DedupHits: l.dedupHits, Runs: runs}
	l.mu.Unlock()
	return v
}

func (l *Ledger) trailPath(key string) string {
	return filepath.Join(l.dir, "trails", key+".jsonl")
}

// PutTrail stores a run's digest trail next to its record, giving `runs
// diff` something to hand the divergence bisector.
func (l *Ledger) PutTrail(key string, t *digest.Trail) error {
	if t == nil || len(t.Records) == 0 {
		return nil
	}
	var b strings.Builder
	if err := t.WriteJSONL(&b); err != nil {
		return fmt.Errorf("runlog: marshal trail %s: %w", key, err)
	}
	return AtomicWriteFile(l.trailPath(key), []byte(b.String()), 0o644)
}

// HasTrail reports whether a trail is stored for the key.
func (l *Ledger) HasTrail(key string) bool {
	_, err := os.Stat(l.trailPath(key))
	return err == nil
}

// Trail loads the stored digest trail for a key.
func (l *Ledger) Trail(key string) (*digest.Trail, error) {
	f, err := os.Open(l.trailPath(key))
	if err != nil {
		return nil, fmt.Errorf("runlog: open trail %s: %w", key, err)
	}
	defer f.Close()
	t, err := digest.ReadTrailJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("runlog: read trail %s: %w", key, err)
	}
	return t, nil
}

// AtomicWriteFile writes data to path via a temp file in the same
// directory plus rename, so readers (and interrupted writers) never see
// a truncated file. Exported for the bench rig's BENCH_*.json writes.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("runlog: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmpName, perm)
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runlog: atomic write %s: %w", path, werr)
	}
	return nil
}
