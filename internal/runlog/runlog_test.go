package runlog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/obs"
)

func testInputs() Inputs {
	return Inputs{
		Schema:        SchemaVersion,
		DigestVersion: digest.Version,
		Kind:          "corun",
		Workload:      "HOT_BLK",
		Kernels:       []string{"HOT", "BLK"},
		Policy:        "warped",
		CTAs:          []int{4, 3},
		Targets:       []uint64{1000, 2000},
		Sched:         "gto",
		Windows:       Windows{Isolation: 10000, MaxCoRun: 50000, Warmup: 500, Sample: 2000},
		Config:        config.Baseline(),
	}
}

func TestInputsKeyDeterministicAndSensitive(t *testing.T) {
	in := testInputs()
	k1, err := in.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := in.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same inputs hashed to %s and %s", k1, k2)
	}
	if len(k1) != 16 {
		t.Fatalf("key %q is not a 16-hex-digit sum", k1)
	}

	// Every identity-bearing field must move the key.
	variants := []func(*Inputs){
		func(in *Inputs) { in.Kind = "iso" },
		func(in *Inputs) { in.Workload = "HOT" },
		func(in *Inputs) { in.Kernels = []string{"HOT"} },
		func(in *Inputs) { in.Policy = "even" },
		func(in *Inputs) { in.CTAs = []int{3, 4} },
		func(in *Inputs) { in.Targets = []uint64{1000, 2001} },
		func(in *Inputs) { in.Sched = "lrr" },
		func(in *Inputs) { in.Windows.MaxCoRun = 50001 },
		func(in *Inputs) { in.Config.NumSMs++ },
		func(in *Inputs) { in.Schema++ },
		func(in *Inputs) { in.DigestVersion++ },
	}
	for i, mutate := range variants {
		v := testInputs()
		mutate(&v)
		kv, err := v.Key()
		if err != nil {
			t.Fatal(err)
		}
		if kv == k1 {
			t.Errorf("variant %d did not change the key", i)
		}
	}
}

func snapSeq(t *testing.T, vals []uint64) []*obs.Snapshot {
	t.Helper()
	var cur uint64
	reg := obs.NewRegistry()
	reg.Counter("c", func() uint64 { return cur })
	snaps := make([]*obs.Snapshot, len(vals))
	for i, v := range vals {
		cur = v
		snaps[i] = reg.Snapshot()
	}
	return snaps
}

func TestRecorderWindowsAndDownsample(t *testing.T) {
	// Capacity 4: reaching 4 points merges pairs and doubles the stride,
	// so 9 snapshots (8 windows) downsample twice — once at windows 1-4,
	// again when windows 5-8 refill the capacity — leaving two 4-window
	// points whose values telescope exactly (deltas 1..8 sum to 10 + 26).
	rec := NewRecorder([]string{"c"}, 4)
	vals := []uint64{0, 1, 3, 6, 10, 15, 21, 28, 36} // deltas 1..8
	for i, s := range snapSeq(t, vals) {
		rec.Observe(int64(i*100), s)
	}
	got := rec.Series()
	if got == nil {
		t.Fatal("no series recorded")
	}
	if got.WindowsPerPoint != 4 || got.Downsamples != 2 {
		t.Fatalf("stride %d downsamples %d, want 4 and 2", got.WindowsPerPoint, got.Downsamples)
	}
	want := []SeriesPoint{
		{Cycle: 400, Values: []float64{10}}, // windows 1-4
		{Cycle: 800, Values: []float64{26}}, // windows 5-8
	}
	if len(got.Points) != len(want) {
		t.Fatalf("got %d points, want %d: %+v", len(got.Points), len(want), got.Points)
	}
	for i := range want {
		if got.Points[i].Cycle != want[i].Cycle || got.Points[i].Values[0] != want[i].Values[0] {
			t.Errorf("point %d = %+v, want %+v", i, got.Points[i], want[i])
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Observe(0, nil)
	if rec.Series() != nil {
		t.Fatal("nil recorder produced a series")
	}
	live := NewRecorder([]string{"c"}, 4)
	live.Observe(0, nil) // ignored
	if live.Series() != nil {
		t.Fatal("recorder with no windows produced a series")
	}
}

func testRecord(key string) *RunRecord {
	in := testInputs()
	return &RunRecord{
		Key:    key,
		Inputs: in,
		Cycles: 12345,
		Metrics: []Metric{
			{Name: "ipc", Value: 1.5},
			{Name: "sched_fastpath_frac", Value: 0.62},
		},
	}
}

func TestLedgerRoundTripDedupeReopen(t *testing.T) {
	dir := t.TempDir()
	led, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("")
	added, err := led.Append(rec, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !added || rec.Key == "" {
		t.Fatalf("first append: added=%v key=%q", added, rec.Key)
	}

	// Identical inputs dedupe to the existing entry.
	again := testRecord("")
	added, err = led.Append(again, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("identical inputs were appended twice")
	}
	if again.Key != rec.Key {
		t.Fatalf("identical inputs keyed %s vs %s", again.Key, rec.Key)
	}
	v := led.View()
	if v.Appends != 1 || v.DedupHits != 1 || len(v.Runs) != 1 {
		t.Fatalf("view = appends %d dedup %d runs %d", v.Appends, v.DedupHits, len(v.Runs))
	}

	// Round trip through the record file, including prefix resolution.
	got, err := led.Get(rec.Key[:6])
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != rec.Cycles || len(got.Metrics) != len(rec.Metrics) {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// A reopened ledger still dedupes and lists the run.
	led2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	added, err = led2.Append(testRecord(""), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Fatal("reopened ledger lost the dedupe set")
	}
	if got := led2.List(); len(got) != 1 || got[0].Key != rec.Key {
		t.Fatalf("reopened listing: %+v", got)
	}
}

func TestLedgerTrailRoundTrip(t *testing.T) {
	led, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := &digest.Trail{}
	tr.Append(100, []digest.Component{{Name: "sm", Sum: 42}}, digest.Counters{Issued: 7})
	tr.Append(200, []digest.Component{{Name: "sm", Sum: 43}}, digest.Counters{Issued: 9})
	if err := led.PutTrail("cafe", tr); err != nil {
		t.Fatal(err)
	}
	if !led.HasTrail("cafe") || led.HasTrail("dead") {
		t.Fatal("HasTrail wrong")
	}
	got, err := led.Trail("cafe")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 || got.Chain() != tr.Chain() {
		t.Fatalf("trail round trip: %d records chain %s vs %s", len(got.Records), got.Chain(), tr.Chain())
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicWriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("read %q", data)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestTrajectoryAppendReadBaselineCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traj.jsonl")
	pts, err := ReadTrajectory(path)
	if err != nil || pts != nil {
		t.Fatalf("missing file: %v %v", pts, err)
	}
	for i, ns := range []float64{100, 120, 110} {
		p := TrajectoryPoint{Fingerprint: "host/8-cores/7x10000-cycles", UnixNs: int64(i + 1), NsPerCycle: ns}
		if err := AppendTrajectory(path, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := AppendTrajectory(path, TrajectoryPoint{Fingerprint: "other", NsPerCycle: 999}, 0); err != nil {
		t.Fatal(err)
	}
	pts, err = ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}

	base, n := TrajectoryBaseline(pts, "host/8-cores/7x10000-cycles", 5)
	if n != 3 || base != 110 {
		t.Fatalf("baseline = %g over %d points, want median 110 over 3", base, n)
	}
	if _, n := TrajectoryBaseline(pts, "unknown", 5); n != 0 {
		t.Fatalf("unknown fingerprint found %d points", n)
	}

	// The cap drops oldest points.
	if err := AppendTrajectory(path, TrajectoryPoint{Fingerprint: "tail", NsPerCycle: 1}, 2); err != nil {
		t.Fatal(err)
	}
	pts, err = ReadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].Fingerprint != "tail" {
		t.Fatalf("capped trajectory: %+v", pts)
	}
}

func TestDiffAndFormatGolden(t *testing.T) {
	a := testRecord("aaaa000000000000")
	a.Series = &Series{
		Names:           []string{"ws_sm_issued_total"},
		WindowsPerPoint: 1,
		Points: []SeriesPoint{
			{Cycle: 100, Values: []float64{50}},
			{Cycle: 200, Values: []float64{60}},
		},
	}
	a.DigestChain = 1

	b := testRecord("bbbb000000000000")
	b.Cycles = 12350
	b.Metrics = []Metric{
		{Name: "ipc", Value: 1.25},
		{Name: "sched_fastpath_frac", Value: 0.62},
	}
	b.Series = &Series{
		Names:           []string{"ws_sm_issued_total"},
		WindowsPerPoint: 1,
		Points: []SeriesPoint{
			{Cycle: 100, Values: []float64{50}},
			{Cycle: 200, Values: []float64{61}},
		},
	}
	b.DigestChain = 2

	d := Diff(a, b)
	if d.Identical || d.SameInputs {
		t.Fatalf("diff verdict: %+v", d)
	}
	if d.FirstMetric != "ipc" || len(d.Deltas) != 1 {
		t.Fatalf("deltas: %+v", d.Deltas)
	}
	if d.Series == nil || d.Series.Kind != "value" || d.Series.Index != 1 {
		t.Fatalf("series diff: %+v", d.Series)
	}
	if !d.ChainDiffers {
		t.Fatal("chain difference missed")
	}

	const want = `diff aaaa000000000000 vs bbbb000000000000
cycles: 12345 vs 12350
metric ipc                              1.5 vs 1.25 (-0.25)
first differing metric: ipc
first differing window: point 1 (cycle 200) ws_sm_issued_total: 60 vs 61
digest chains differ: run the bisector for the first divergent cycle
`
	if got := FormatDiff(d); got != want {
		t.Fatalf("FormatDiff:\n%s\nwant:\n%s", got, want)
	}

	// Identical records say so.
	same := Diff(a, a)
	if !same.Identical {
		t.Fatalf("self diff not identical: %+v", same)
	}
	if got := FormatDiff(same); !bytes.Contains([]byte(got), []byte("records identical")) {
		t.Fatalf("self diff output: %q", got)
	}
}

func TestMarshalRecordStable(t *testing.T) {
	r := testRecord("feed000000000000")
	d1, err := MarshalRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := MarshalRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("record marshal not byte-stable")
	}
	if d1[len(d1)-1] != '\n' {
		t.Fatal("record file missing trailing newline")
	}
}
