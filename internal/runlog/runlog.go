// Package runlog is the persistent run-provenance layer: an append-only,
// content-addressed ledger of completed simulation runs plus a windowed
// time-series recorder over obs registry snapshots. Every other
// observability surface in the tree (registry, spans, profiler, digest
// trails) dies with its process; the ledger is what survives — each run
// lands as a RunRecord keyed by a digest of its inputs (config, kernel
// specs, policy, windows), so identical runs dedupe to one entry and the
// key doubles as the memoization hook for a future result cache (ROADMAP
// item 1).
//
// The package is a Sim package under the simlint determinism contract:
// no clocks, no environment reads, no goroutines, no map iteration in
// any serialized path. Wall/CPU timing is injected by non-sim callers
// through Ledger.WallNow/CPUNow and recorded only in the (explicitly
// non-canonical) journal — the content-addressed record files are
// byte-identical for identical inputs at any parallelism.
package runlog

import (
	"encoding/json"
	"fmt"

	"warpedslicer/internal/config"
	"warpedslicer/internal/digest"
)

// SchemaVersion tags the RunRecord layout. It is hashed into every
// content address, so records written under different schemas never
// collide on a key.
const SchemaVersion = 1

// Windows captures every cycle window that shapes a run's behavior.
// It is part of the content address: two runs with different windows are
// different runs even over the same kernels and policy.
type Windows struct {
	Isolation        int64   `json:"isolation"`
	MaxCoRun         int64   `json:"max_corun"`
	Warmup           int64   `json:"warmup"`
	Sample           int64   `json:"sample"`
	AlgDelay         int64   `json:"alg_delay"`
	OracleTargetFrac float64 `json:"oracle_target_frac"`
	UseScaledIPC     bool    `json:"use_scaled_ipc"`
	SymmetricScaling bool    `json:"symmetric_scaling"`
}

// Inputs is the canonical identity of a run: everything that determines
// its architectural outcome, and nothing that doesn't (observability
// attachments, parallelism, clocks). The content address is a digest of
// this struct's canonical JSON, so adding a field — like adding a field
// to a digested struct — changes every key, which is the safe failure
// mode for a memoization cache.
type Inputs struct {
	Schema        int        `json:"schema"`
	DigestVersion int        `json:"digest_version"`
	Kind          string     `json:"kind"`
	Workload      string     `json:"workload"`
	Kernels       []string   `json:"kernels"`
	Policy        string     `json:"policy"`
	CTAs          []int      `json:"ctas,omitempty"`
	Targets       []uint64   `json:"targets,omitempty"`
	Sched         string     `json:"sched"`
	Windows       Windows    `json:"windows"`
	Config        config.GPU `json:"config"`
}

// Key computes the run's content address: the canonical JSON of the
// inputs fed through the digest hasher. encoding/json sorts map keys and
// struct fields marshal in declaration order, so the byte stream — and
// therefore the key — is deterministic.
func (in Inputs) Key() (string, error) {
	data, err := json.Marshal(in)
	if err != nil {
		return "", fmt.Errorf("runlog: marshal inputs: %w", err)
	}
	h := digest.NewHasher()
	h.Str("runlog-inputs")
	h.Bytes(data)
	return h.Sum().String(), nil
}

// Metric is one named headline value. Records carry an ordered slice
// rather than a map so the serialized order (and any diff walk) is
// explicit and deterministic.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// RunRecord is one completed run: its content address, full canonical
// inputs (so a record is self-describing without the session that wrote
// it), outcome, headline metrics, digest-trail summary, and the windowed
// counter series. Everything serialized here is deterministic; wall/CPU
// timing lives in the journal Entry instead.
type RunRecord struct {
	Key     string `json:"key"`
	Inputs  Inputs `json:"inputs"`
	Cycles  int64  `json:"cycles"`
	Timeout bool   `json:"timeout,omitempty"`

	// DigestChain/DigestRecords summarize the state-digest audit trail
	// when one was armed (zero otherwise). The full trail, when captured,
	// is stored next to the record (see Ledger.PutTrail) for the
	// divergence bisector.
	DigestChain   digest.Sum `json:"digest_chain,omitempty"`
	DigestRecords uint64     `json:"digest_records,omitempty"`

	Metrics []Metric `json:"metrics"`
	Series  *Series  `json:"series,omitempty"`
}

// Metric returns the named metric's value and whether it is present.
func (r *RunRecord) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// MarshalRecord renders the canonical record bytes stored under
// records/<key>.json: indented JSON with a trailing newline, stable
// across processes and parallelism.
func MarshalRecord(r *RunRecord) ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runlog: marshal record: %w", err)
	}
	return append(data, '\n'), nil
}
