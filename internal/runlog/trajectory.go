package runlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strings"
)

// DefaultTrajectoryCap bounds BENCH_trajectory.jsonl: appends beyond it
// drop the oldest points, so the file stays a bounded sliding window of
// the repo's performance history.
const DefaultTrajectoryCap = 512

// TrajectoryPoint is one cross-PR performance measurement: ns/cycle and
// its phase split under a named bench fingerprint (host/core/methodology
// identity — points only compare within a fingerprint). UnixNs is
// stamped by the non-sim bench caller; zero means unstamped.
type TrajectoryPoint struct {
	Fingerprint       string             `json:"fingerprint"`
	UnixNs            int64              `json:"unix_ns,omitempty"`
	NsPerCycle        float64            `json:"ns_per_cycle"`
	PhaseNsPerCycle   map[string]float64 `json:"phase_ns_per_cycle,omitempty"`
	DigestNsPerRecord float64            `json:"digest_ns_per_record,omitempty"`
	FFSkippableFrac   float64            `json:"fast_forward_skippable_frac,omitempty"`
	SchedFastFrac     float64            `json:"sched_fastpath_frac,omitempty"`
}

// ReadTrajectory parses a trajectory JSONL file in append order. A
// missing file is an empty trajectory, not an error; torn lines are
// skipped.
func ReadTrajectory(path string) ([]TrajectoryPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("runlog: open trajectory: %w", err)
	}
	defer f.Close()
	var pts []TrajectoryPoint
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var p TrajectoryPoint
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			continue
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runlog: read trajectory: %w", err)
	}
	return pts, nil
}

// AppendTrajectory appends one point, keeping at most cap points (<= 0
// selects DefaultTrajectoryCap). The whole file is rewritten atomically,
// so an interrupted append can't tear it.
func AppendTrajectory(path string, p TrajectoryPoint, capPoints int) error {
	if capPoints <= 0 {
		capPoints = DefaultTrajectoryCap
	}
	pts, err := ReadTrajectory(path)
	if err != nil {
		return err
	}
	pts = append(pts, p)
	if len(pts) > capPoints {
		pts = pts[len(pts)-capPoints:]
	}
	var b strings.Builder
	for i := range pts {
		data, err := json.Marshal(&pts[i])
		if err != nil {
			return fmt.Errorf("runlog: marshal trajectory point: %w", err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return AtomicWriteFile(path, []byte(b.String()), 0o644)
}

// TrajectoryTail returns the last k points recorded under the
// fingerprint, oldest first.
func TrajectoryTail(pts []TrajectoryPoint, fingerprint string, k int) []TrajectoryPoint {
	var out []TrajectoryPoint
	for _, p := range pts {
		if p.Fingerprint == fingerprint {
			out = append(out, p)
		}
	}
	if k > 0 && len(out) > k {
		out = out[len(out)-k:]
	}
	return out
}

// TrajectoryBaseline returns the median ns/cycle of the fingerprint's
// last k points and how many points backed it (0 means no baseline: a
// fresh machine or methodology change, the cue to rebase rather than
// compare). The median makes one noisy historical point unable to move
// the regression gate.
func TrajectoryBaseline(pts []TrajectoryPoint, fingerprint string, k int) (float64, int) {
	tail := TrajectoryTail(pts, fingerprint, k)
	if len(tail) == 0 {
		return 0, 0
	}
	vs := make([]float64, len(tail))
	for i, p := range tail {
		vs[i] = p.NsPerCycle
	}
	sort.Float64s(vs)
	return vs[len(vs)/2], len(tail)
}
