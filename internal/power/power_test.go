package power

import (
	"testing"

	"warpedslicer/internal/mem"
	"warpedslicer/internal/sm"
)

func sampleStats(scale uint64) (sm.Stats, mem.Stats) {
	var a sm.Stats
	a.ALUBusy = 1000 * scale
	a.SFUBusy = 200 * scale
	a.LDSTBusy = 500 * scale
	a.PerKernel[0].WarpInsts = 2000 * scale
	a.L1.Loads = 600 * scale
	a.L1.Stores = 100 * scale
	var m mem.Stats
	m.L2.Loads = 200 * scale
	m.L2.Stores = 100 * scale
	m.DRAMServed[0] = 150 * scale
	return a, m
}

func TestEnergyPositiveAndAdditive(t *testing.T) {
	model := Default()
	a, m := sampleStats(1)
	b := model.Energy(a, m, 100000)
	if b.DynamicJ <= 0 || b.LeakageJ <= 0 {
		t.Fatalf("non-positive energy: %+v", b)
	}
	if b.TotalJ != b.DynamicJ+b.LeakageJ {
		t.Fatal("total != dynamic + leakage")
	}
	if b.Seconds <= 0 || b.AvgDynPowerW <= 0 {
		t.Fatalf("bad derived values: %+v", b)
	}
}

func TestEnergyScalesWithActivity(t *testing.T) {
	model := Default()
	a1, m1 := sampleStats(1)
	a2, m2 := sampleStats(2)
	b1 := model.Energy(a1, m1, 100000)
	b2 := model.Energy(a2, m2, 100000)
	if b2.DynamicJ <= b1.DynamicJ {
		t.Fatal("doubling activity should raise dynamic energy")
	}
	if b2.LeakageJ != b1.LeakageJ {
		t.Fatal("leakage must depend only on time")
	}
}

func TestLeakageScalesWithTime(t *testing.T) {
	model := Default()
	a, m := sampleStats(1)
	b1 := model.Energy(a, m, 100000)
	b2 := model.Energy(a, m, 200000)
	if b2.LeakageJ <= b1.LeakageJ {
		t.Fatal("leakage must grow with cycles")
	}
}

func TestShorterRunSavesEnergy(t *testing.T) {
	// Same total work finished in fewer cycles must cost less total energy
	// (the mechanism behind the paper's 16% §V-G saving).
	model := Default()
	a, m := sampleStats(4)
	slow := model.Energy(a, m, 400000)
	fast := model.Energy(a, m, 300000)
	if fast.TotalJ >= slow.TotalJ {
		t.Fatalf("faster run not cheaper: %.3fJ vs %.3fJ", fast.TotalJ, slow.TotalJ)
	}
}

func TestZeroCycles(t *testing.T) {
	model := Default()
	a, m := sampleStats(1)
	b := model.Energy(a, m, 0)
	if b.LeakageJ != 0 || b.Seconds != 0 || b.AvgDynPowerW != 0 {
		t.Fatalf("zero-cycle run should have zero time-based terms: %+v", b)
	}
}

func TestOverheadMatchesPaper(t *testing.T) {
	r := Overhead(16)
	// §V-I: total 0.05 mm^2 -> ~0.01% of 704 mm^2.
	if r.TotalMM2 < 0.045 || r.TotalMM2 > 0.055 {
		t.Fatalf("total area = %.3f mm^2, want ~0.05", r.TotalMM2)
	}
	if r.AreaPct > 0.02 {
		t.Fatalf("area overhead = %.3f%%, want ~0.01%%", r.AreaPct)
	}
	// 54 mW dynamic = ~0.14% of 37.7W; 0.27 mW leakage ~0.001%.
	if r.DynPct < 0.1 || r.DynPct > 0.2 {
		t.Fatalf("dynamic power overhead = %.3f%%, want ~0.14%%", r.DynPct)
	}
	if r.LeakPct > 0.01 {
		t.Fatalf("leakage overhead = %.4f%%, want ~0.001%%", r.LeakPct)
	}
}

func TestOverheadScalesWithSMs(t *testing.T) {
	r16, r32 := Overhead(16), Overhead(32)
	if r32.TotalMM2 <= r16.TotalMM2 {
		t.Fatal("more SMs need more counter area")
	}
	// Relative overhead stays roughly constant.
	diff := r32.AreaPct - r16.AreaPct
	if diff < -0.01 || diff > 0.01 {
		t.Fatalf("area %% changed too much: %.4f vs %.4f", r16.AreaPct, r32.AreaPct)
	}
}
