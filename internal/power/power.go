// Package power provides (1) an event-energy model in the spirit of
// GPUWattch/McPAT used for the paper's §V-G energy comparison, and (2) the
// analytic hardware-overhead calculator reproducing §V-I's synthesis
// numbers for the Warped-Slicer profiling counters.
//
// The event energies are calibrated so a fully-utilized baseline GPU
// dissipates roughly the paper's 37.7W dynamic + 34.6W leakage; only
// *relative* energy between policies is meaningful, which is all the paper
// reports (16% energy saving, +3.1% dynamic power).
package power

import (
	"warpedslicer/internal/mem"
	"warpedslicer/internal/sm"
)

// Model holds per-event energies (picojoules) and static power.
type Model struct {
	// Per warp-instruction execution energies by unit.
	ALUOpPJ  float64
	SFUOpPJ  float64
	LDSTOpPJ float64
	// Register-file energy per warp instruction (operand reads+write).
	RFAccessPJ float64
	// Cache and DRAM energies per line transaction.
	L1AccessPJ   float64
	L2AccessPJ   float64
	DRAMAccessPJ float64
	// Static/background power.
	LeakageW float64 // whole-GPU leakage (paper: 34.6W)
	IdleDynW float64 // clock-tree and always-on dynamic power
	// CoreClockMHz converts cycles to seconds.
	CoreClockMHz int
}

// Default returns the calibrated baseline model.
func Default() Model {
	return Model{
		ALUOpPJ:      220,
		SFUOpPJ:      600,
		LDSTOpPJ:     180,
		RFAccessPJ:   190,
		L1AccessPJ:   160,
		L2AccessPJ:   340,
		DRAMAccessPJ: 5200,
		LeakageW:     34.6,
		IdleDynW:     6.0,
		CoreClockMHz: 1400,
	}
}

// Breakdown is the computed energy split for one run.
type Breakdown struct {
	DynamicJ float64
	LeakageJ float64
	TotalJ   float64
	// AvgDynPowerW is the run's average dynamic power.
	AvgDynPowerW float64
	// Seconds is the wall-clock duration of the simulated window.
	Seconds float64
}

// Energy evaluates the model over aggregated SM and memory statistics.
func (m Model) Energy(agg sm.Stats, ms mem.Stats, cycles int64) Breakdown {
	seconds := float64(cycles) / (float64(m.CoreClockMHz) * 1e6)

	var warpInsts uint64
	for _, k := range agg.PerKernel {
		warpInsts += k.WarpInsts
	}
	dynPJ := float64(agg.ALUBusy)*m.ALUOpPJ +
		float64(agg.SFUBusy)*m.SFUOpPJ +
		float64(agg.LDSTBusy)*m.LDSTOpPJ +
		float64(warpInsts)*m.RFAccessPJ +
		float64(agg.L1.Loads+agg.L1.Stores)*m.L1AccessPJ +
		float64(ms.L2.Loads+ms.L2.Stores)*m.L2AccessPJ +
		float64(sumServed(ms))*m.DRAMAccessPJ

	dynJ := dynPJ*1e-12 + m.IdleDynW*seconds
	leakJ := m.LeakageW * seconds
	b := Breakdown{
		DynamicJ: dynJ,
		LeakageJ: leakJ,
		TotalJ:   dynJ + leakJ,
		Seconds:  seconds,
	}
	if seconds > 0 {
		b.AvgDynPowerW = dynJ / seconds
	}
	return b
}

func sumServed(ms mem.Stats) uint64 {
	var t uint64
	for _, v := range ms.DRAMServed {
		t += v
	}
	return t
}

// Overhead reproduces the §V-I implementation-cost analysis. The paper
// synthesized the profiling counters and the Algorithm 1 logic in NCSU PDK
// 45nm: 714 um^2 of counters per SM plus 0.04 mm^2 of global logic, against
// a 704 mm^2, 37.7W-dynamic / 34.6W-leakage 16-SM GPU.
type OverheadReport struct {
	PerSMCounterUM2 float64 // counters per SM (um^2)
	GlobalLogicMM2  float64 // partitioning logic (mm^2)
	TotalMM2        float64
	GPUAreaMM2      float64
	AreaPct         float64 // of GPU area

	DynPowerMW  float64
	LeakPowerMW float64
	DynPct      float64 // of GPU dynamic power
	LeakPct     float64 // of GPU leakage power
}

// Overhead computes the report for a GPU with numSMs SMs.
func Overhead(numSMs int) OverheadReport {
	const (
		perSMCounterUM2 = 714.0
		globalLogicMM2  = 0.04
		gpuAreaPer16SM  = 704.0
		gpuDynW         = 37.7
		gpuLeakW        = 34.6
		// Synthesis: total 54 mW dynamic, 0.27 mW leakage for 16 SMs.
		dynMWPer16 = 54.0
		lkMWPer16  = 0.27
	)
	scale := float64(numSMs) / 16.0
	r := OverheadReport{
		PerSMCounterUM2: perSMCounterUM2,
		GlobalLogicMM2:  globalLogicMM2,
		GPUAreaMM2:      gpuAreaPer16SM * scale,
		DynPowerMW:      dynMWPer16 * scale,
		LeakPowerMW:     lkMWPer16 * scale,
	}
	r.TotalMM2 = float64(numSMs)*perSMCounterUM2*1e-6 + globalLogicMM2
	r.AreaPct = r.TotalMM2 / r.GPUAreaMM2 * 100
	r.DynPct = r.DynPowerMW / (gpuDynW * scale * 1000) * 100
	r.LeakPct = r.LeakPowerMW / (gpuLeakW * scale * 1000) * 100
	return r
}
