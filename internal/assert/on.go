//go:build simassert

package assert

import "fmt"

// Enabled reports whether runtime invariant checks are compiled in.
const Enabled = true

// Failf reports an invariant violation. Violations are programming
// errors, never data errors, so it panics: the stack trace points at the
// cycle and component that broke the contract.
func Failf(format string, args ...any) {
	panic("simassert: " + fmt.Sprintf(format, args...))
}
