// Package assert provides build-tag-gated runtime invariant checks for
// the simulator's hot loop.
//
// By default (no tags) Enabled is the constant false and Failf is a
// no-op, so guarded checks compile to nothing — the observability
// overhead budget (BENCH_obs.json) holds. Building with
//
//	go test -tags simassert ./...
//
// flips Enabled to true and makes Failf panic with the violated
// invariant, turning every simulated cycle into a self-checking test:
//
//	if assert.Enabled {
//		if got != want {
//			assert.Failf("sm %d: ...", id)
//		}
//	}
//
// The `if assert.Enabled` guard is required at every call site: it is
// what lets the compiler delete both the check and its operand
// computation in the default build.
//
// The invariants asserted across the tree are the contracts the paper's
// numbers rest on: per-tick issue-slot conservation and Table I occupancy
// bounds in internal/sm, water-fill feasibility in internal/core, quota
// sanity in internal/policy, and MSHR/queue bounds in internal/cache,
// internal/dram and internal/mem. CI runs the full suite with
// `go test -race -tags simassert ./...` so they hold on every push.
package assert
