//go:build !simassert

package assert

// Enabled reports whether runtime invariant checks are compiled in.
const Enabled = false

// Failf is a no-op in the default build. Call sites must still guard
// with `if assert.Enabled` so argument computation is eliminated too.
func Failf(format string, args ...any) {}
