package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	if SplitMix64(42) != SplitMix64(42) {
		t.Fatal("SplitMix64 not deterministic")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("SplitMix64 collision on adjacent inputs")
	}
}

func TestSplitMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	f := func(x uint64, bit uint8) bool {
		b := uint(bit % 64)
		d := SplitMix64(x) ^ SplitMix64(x^(1<<b))
		pop := 0
		for d != 0 {
			pop++
			d &= d - 1
		}
		return pop >= 8 && pop <= 56
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixersDiffer(t *testing.T) {
	if Mix2(1, 2) == Mix2(2, 1) {
		t.Fatal("Mix2 should not be symmetric")
	}
	if Mix3(1, 2, 3) == Mix3(3, 2, 1) {
		t.Fatal("Mix3 should not be symmetric")
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(7), NewStream(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with equal seeds diverged")
		}
	}
}

func TestStreamZeroSeed(t *testing.T) {
	r := NewStream(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed degenerated")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewStream(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewStream(1)
	r.Intn(0)
}

func TestPctExtremes(t *testing.T) {
	r := NewStream(3)
	for i := 0; i < 100; i++ {
		if r.Pct(0) {
			t.Fatal("Pct(0) returned true")
		}
		if !r.Pct(100) {
			t.Fatal("Pct(100) returned false")
		}
	}
}

func TestPctFrequency(t *testing.T) {
	r := NewStream(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Pct(30) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Pct(30) frequency %.3f outside [0.28,0.32]", frac)
	}
}

func TestStreamDistribution(t *testing.T) {
	// Coarse uniformity check over 16 buckets.
	r := NewStream(11)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Next()%16]++
	}
	for i, c := range buckets {
		if c < n/16*8/10 || c > n/16*12/10 {
			t.Fatalf("bucket %d count %d deviates >20%% from uniform", i, c)
		}
	}
}
