// Package rng provides small deterministic hash/PRNG utilities used to
// generate synthetic workloads. Everything in the simulator that looks
// random is a pure function of stable identifiers (kernel, CTA, warp,
// iteration), so runs are exactly reproducible and safely parallelizable.
package rng

// SplitMix64 is the splitmix64 finalizer: a high-quality 64-bit mixing
// function. It maps any input to a well-distributed output and is its own
// one-step PRNG when fed a counter.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix2 hashes two values into one.
func Mix2(a, b uint64) uint64 { return SplitMix64(a ^ SplitMix64(b)) }

// Mix3 hashes three values into one.
func Mix3(a, b, c uint64) uint64 { return SplitMix64(a ^ Mix2(b, c)) }

// Stream is a tiny stateful PRNG (xorshift64*) seeded deterministically.
type Stream struct{ s uint64 }

// NewStream returns a Stream seeded from the given value. A zero seed is
// remapped so the generator never degenerates.
func NewStream(seed uint64) Stream {
	s := SplitMix64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return Stream{s: s}
}

// State exposes the generator's internal state word for canonical-state
// digests and (later) checkpointing. Two streams with equal state produce
// identical futures.
func (r *Stream) State() uint64 { return r.s }

// Next returns the next pseudo-random 64-bit value.
func (r *Stream) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random value in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Pct reports true with probability pct/100.
func (r *Stream) Pct(pct int) bool {
	if pct <= 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	return int(r.Next()%100) < pct
}
