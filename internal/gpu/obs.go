package gpu

import (
	"strconv"

	"warpedslicer/internal/obs"
)

// Register wires the whole device into the registry: the cycle clock,
// per-kernel progress (instructions, resident CTAs, completion), the
// device-wide SM aggregate, per-SM detail, and the memory subsystem.
// Registration is pull-based — it adds nothing to the simulation hot path
// until someone takes a Snapshot.
func (g *GPU) Register(r *obs.Registry) {
	r.Gauge("ws_gpu_cycle", func() float64 { return float64(g.now) })
	r.Gauge("ws_gpu_kernels", func() float64 { return float64(len(g.Kernels)) })

	// Per-kernel progress. The collector walks g.Kernels at snapshot time,
	// so kernels added after Register (or arriving late) appear without
	// re-wiring.
	r.Collector(func(emit obs.Emit) {
		for _, k := range g.Kernels {
			kl := strconv.Itoa(k.Slot)
			emit(obs.Label("ws_kernel_thread_insts_total", "kernel", kl),
				obs.Counter, float64(g.KernelInsts(k.Slot)))
			ctas := 0
			for _, s := range g.SMs {
				ctas += s.ResidentCTAs(k.Slot)
			}
			emit(obs.Label("ws_kernel_ctas_resident", "kernel", kl), obs.Gauge, float64(ctas))
			done := 0.0
			if k.Done {
				done = 1
			}
			emit(obs.Label("ws_kernel_done", "kernel", kl), obs.Gauge, done)
			emit(obs.Label("ws_kernel_arrived", "kernel", kl), obs.Gauge, boolGauge(k.arrived))
		}
	})

	// Device-wide SM aggregate (one Stats walk per snapshot). The
	// label-free per-kernel stall series feed the trace layer's
	// per-kernel stall tracks.
	r.Collector(func(emit obs.Emit) {
		agg := g.AggregateSM()
		agg.EmitObs(emit)
		agg.EmitKernelObs(emit)
		agg.L1.EmitObs(emit, "cache", "l1")
		emit("ws_gpu_ff_skippable_cycles_total", obs.Counter, float64(g.ffSkippable))
	})

	// State-digest surface. Emitted only while digesting is armed, so
	// golden outputs of digest-off runs are untouched. The 64-bit chain
	// is split into two 32-bit gauges: float64 holds 52 mantissa bits and
	// would silently corrupt a whole chain.
	r.Collector(func(emit obs.Emit) {
		if g.DigestEvery <= 0 {
			return
		}
		emit("ws_digest_records_total", obs.Counter, float64(g.digestRecords))
		emit("ws_digest_period", obs.Gauge, float64(g.DigestEvery))
		emit("ws_digest_chain_lo", obs.Gauge, float64(uint32(g.digestChain)))
		emit("ws_digest_chain_hi", obs.Gauge, float64(uint32(uint64(g.digestChain)>>32)))
	})

	for _, s := range g.SMs {
		s.Register(r)
	}
	g.Mem.Register(r)
	g.Prof.Register(r)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
