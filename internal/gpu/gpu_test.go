package gpu

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/sm"
)

// greedy is a minimal dispatcher: fill every SM with every kernel.
type greedy struct{}

func (greedy) Setup(*GPU) {}
func (greedy) Fill(g *GPU) {
	for _, s := range g.SMs {
		for {
			any := false
			for _, k := range g.Kernels {
				if g.LaunchCTA(s, k) {
					any = true
				}
			}
			if !any {
				break
			}
		}
	}
}
func (greedy) Tick(*GPU) {}

func TestIsolationRunProducesInstructions(t *testing.T) {
	cfg := config.Baseline()
	for _, spec := range kernels.Suite() {
		spec := spec
		t.Run(spec.Abbr, func(t *testing.T) {
			g := New(cfg, greedy{})
			g.AddKernel(spec, 0)
			g.RunCycles(20000)
			insts := g.KernelInsts(0)
			if insts == 0 {
				t.Fatalf("%s executed no instructions in 20K cycles", spec.Abbr)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Baseline()
	run := func() (uint64, uint64) {
		g := New(cfg, greedy{})
		g.AddKernel(kernels.Blackscholes(), 0)
		g.AddKernel(kernels.ImageDenoising(), 0)
		g.RunCycles(15000)
		return g.KernelInsts(0), g.KernelInsts(1)
	}
	a0, a1 := run()
	b0, b1 := run()
	if a0 != b0 || a1 != b1 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a0, a1, b0, b1)
	}
}

func TestMaxCTAsMatchesDesign(t *testing.T) {
	cfg := config.Baseline()
	want := map[string]int{
		"BLK": 4, "BFS": 3, "DXT": 8, "HOT": 6, "IMG": 8,
		"KNN": 6, "LBM": 5, "MM": 5, "MVP": 8, "NN": 4,
	}
	for _, spec := range kernels.Suite() {
		got := spec.MaxCTAs(cfg.SM.Registers, cfg.SM.SharedMemBytes, cfg.SM.MaxThreads, cfg.SM.MaxCTAs)
		if got != want[spec.Abbr] {
			t.Errorf("%s max CTAs = %d, want %d", spec.Abbr, got, want[spec.Abbr])
		}
	}
}

func TestOccupancyMatchesLimit(t *testing.T) {
	cfg := config.Baseline()
	g := New(cfg, greedy{})
	g.AddKernel(kernels.Blackscholes(), 0)
	g.RunCycles(100)
	for _, s := range g.SMs {
		if got := s.ResidentCTAs(0); got != 4 {
			t.Fatalf("SM%d resident BLK CTAs = %d, want 4 (register-limited)", s.ID, got)
		}
	}
}

func TestRunToTargetHaltsKernel(t *testing.T) {
	cfg := config.Baseline()
	g := New(cfg, greedy{})
	k := g.AddKernel(kernels.ImageDenoising(), 50000)
	cycles := g.Run(2_000_000)
	if !k.Done {
		t.Fatalf("kernel did not reach target in %d cycles", cycles)
	}
	if k.Insts < 50000 {
		t.Fatalf("halted at %d insts, below target", k.Insts)
	}
	// All resources must be released.
	for _, s := range g.SMs {
		if s.ResidentCTAs(0) != 0 {
			t.Fatal("halted kernel still resident")
		}
	}
}

func TestTwoKernelCoRun(t *testing.T) {
	cfg := config.Baseline()
	g := New(cfg, greedy{})
	g.AddKernel(kernels.ImageDenoising(), 40000)
	g.AddKernel(kernels.NeuralNetwork(), 40000)
	g.Run(3_000_000)
	if !g.AllDone() {
		t.Fatal("co-run did not finish both kernels")
	}
}

func TestQuotaRestrictsOccupancy(t *testing.T) {
	cfg := config.Baseline()
	g := New(cfg, greedy{})
	k := g.AddKernel(kernels.ImageDenoising(), 0)
	for _, s := range g.SMs {
		q := sm.Unlimited()
		q.CTAs = 2
		s.SetQuota(k.Slot, q)
	}
	g.RunCycles(100)
	for _, s := range g.SMs {
		if got := s.ResidentCTAs(0); got != 2 {
			t.Fatalf("resident CTAs = %d, want quota 2", got)
		}
	}
}

func TestStallAttributionSumsToSlots(t *testing.T) {
	cfg := config.Baseline()
	g := New(cfg, greedy{})
	g.AddKernel(kernels.LatticeBoltzmann(), 0)
	g.RunCycles(20000)
	agg := g.AggregateSM()
	total := agg.Issued + agg.StallMem + agg.StallRAW + agg.StallExec + agg.StallIBuf + agg.StallIdle
	if total != agg.Slots {
		t.Fatalf("issued+stalls = %d, slots = %d", total, agg.Slots)
	}
}
