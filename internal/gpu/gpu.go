// Package gpu assembles the full device: an array of SMs sharing one memory
// subsystem, kernel instances, and a pluggable Dispatcher that decides where
// CTAs launch (the multiprogramming policy under study).
//
// It also implements the paper's evaluation methodology (§V-A): each kernel
// is first run in isolation to record an instruction target; in a
// multiprogrammed run every kernel executes until it reaches its target,
// a finished kernel's resources are released immediately, and the total
// elapsed cycles are the workload's execution time.
package gpu

import (
	"fmt"

	"warpedslicer/internal/config"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/mem"
	"warpedslicer/internal/memreq"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/sm"
)

// MaxKernels mirrors the per-kernel accounting bound.
const MaxKernels = sm.MaxKernels

// Kernel is one resident kernel instance.
type Kernel struct {
	Spec *kernels.Spec
	// Slot is the kernel's accounting slot (0-based).
	Slot int
	// Base is the kernel's global-memory base address.
	Base uint64
	// NextCTA indexes the next grid CTA to dispatch.
	NextCTA int
	// TargetInsts, when non-zero, halts the kernel once this many thread
	// instructions have executed (the paper's run-to-target methodology).
	TargetInsts uint64
	// Done marks a halted kernel. FinishCycle records when.
	Done        bool
	FinishCycle int64
	// Insts is the last sampled cumulative thread-instruction count.
	Insts uint64
	// ArrivalCycle delays the kernel: it cannot launch CTAs (and does not
	// count toward completion) before this cycle (Figure 2e's scenario of
	// a kernel entering a busy GPU).
	ArrivalCycle int64
	arrived      bool
}

// Arrived reports whether the kernel has entered the system.
func (k *Kernel) Arrived() bool { return k.arrived }

// GridExhausted reports whether all grid CTAs have been dispatched.
func (k *Kernel) GridExhausted() bool { return k.NextCTA >= k.Spec.GridDim }

// ArrivalAware dispatchers are notified when a delayed kernel enters the
// system (so a controller can launch a new repartitioning phase, Figure
// 2e).
type ArrivalAware interface {
	OnKernelArrival(g *GPU, k *Kernel)
}

// Dispatcher is the multiprogramming policy hook.
type Dispatcher interface {
	// Setup runs once before the first cycle (e.g. to split SMs or set
	// quotas).
	Setup(g *GPU)
	// Fill launches CTAs onto SMs with free resources. It is called at
	// start-up and whenever a CTA completes or a kernel halts.
	Fill(g *GPU)
	// Tick runs every cycle (profiling controllers use it).
	Tick(g *GPU)
}

// GPU is the simulated device.
type GPU struct {
	Cfg     config.GPU
	Mem     *mem.Subsystem
	SMs     []*sm.SM
	Kernels []*Kernel

	// Log, when non-nil, receives kernel lifecycle events (arrival,
	// completion). Dispatchers that hold their own reference (the
	// Warped-Slicer controller) add decision events to the same log.
	Log *obs.EventLog
	// Monitor, when non-nil, is invoked every MonitorEvery cycles — the
	// hook live sinks (registry snapshot publishing) attach to. It runs on
	// the simulation goroutine, so it may read the device freely.
	Monitor      func(*GPU)
	MonitorEvery int64

	// Prof, when non-nil, samples wall-clock phase costs of the cycle
	// loop (see internal/prof). It never feeds back into simulator state:
	// runs with and without a profiler are byte-identical in every
	// counter and CSV.
	Prof *prof.Profiler

	// DigestEvery, when > 0, records a chained whole-GPU state digest
	// every DigestEvery cycles into Digests and/or Flight (see
	// internal/digest). Zero (the default) keeps digesting entirely off
	// the hot path: Step pays one predicted-not-taken branch.
	DigestEvery int64
	// Digests, when non-nil, accumulates every digest record of the run
	// (the audit trail the divergence bisector compares).
	Digests *digest.Trail
	// Flight, when non-nil, keeps only the most recent records (the
	// flight recorder dumped as a black box on panic).
	Flight *digest.Ring
	// BlackBoxPath, when non-empty and a flight recorder is armed, is
	// where Run/RunCycles write the black-box JSON report if the
	// simulation panics (simassert violations panic too).
	BlackBoxPath string
	// ObsSnapshot, when non-nil, supplies the obs registry snapshot for
	// black-box reports (instrument wires it when a registry exists).
	ObsSnapshot func() any

	dispatcher Dispatcher
	now        int64
	needFill   bool

	// digestChain threads the chained digest when only a Flight ring is
	// attached; digestRecords counts records for the obs surface.
	digestChain   digest.Sum
	digestRecords uint64
	smNames       []string

	// ffSkippable counts device cycles where every SM was in a
	// known-wakeup stall or idle AND the memory hierarchy held nothing
	// but stamped replies — cycles an event-driven fast-forward loop
	// (ROADMAP item 2a) could skip outright. Deterministic by
	// construction: derived purely from cycle classification, no wall
	// clock.
	ffSkippable uint64
}

// New builds a GPU with the given configuration and policy.
func New(cfg config.GPU, d Dispatcher) *GPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &GPU{Cfg: cfg, Mem: mem.New(cfg), dispatcher: d}
	for i := 0; i < cfg.NumSMs; i++ {
		s := sm.New(i, cfg, g.Mem)
		s.OnCTAComplete = func(smID, kernel, gridID int) { g.needFill = true }
		g.SMs = append(g.SMs, s)
	}
	return g
}

// AddKernel registers a kernel; targetInsts of zero means "run the grid".
func (g *GPU) AddKernel(spec *kernels.Spec, targetInsts uint64) *Kernel {
	return g.AddKernelAt(spec, targetInsts, 0)
}

// AddKernelAt registers a kernel that arrives at the given cycle. Until
// then it launches no CTAs; on arrival, ArrivalAware dispatchers are
// notified so they can repartition (Figure 2e).
func (g *GPU) AddKernelAt(spec *kernels.Spec, targetInsts uint64, arrival int64) *Kernel {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if len(g.Kernels) >= MaxKernels {
		panic(fmt.Sprintf("gpu: more than %d kernels", MaxKernels))
	}
	k := &Kernel{
		Spec:         spec,
		Slot:         len(g.Kernels),
		Base:         uint64(len(g.Kernels)+1) << 40,
		TargetInsts:  targetInsts,
		ArrivalCycle: arrival,
		arrived:      arrival <= 0,
	}
	g.Kernels = append(g.Kernels, k)
	return k
}

// Now returns the current core-clock cycle.
func (g *GPU) Now() int64 { return g.now }

// SetSchedulers switches every SM's warp scheduler.
func (g *GPU) SetSchedulers(kind sm.SchedulerKind) {
	for _, s := range g.SMs {
		s.Sched = kind
	}
}

// LaunchCTA dispatches kernel k's next grid CTA onto SM s, if it fits.
func (g *GPU) LaunchCTA(s *sm.SM, k *Kernel) bool {
	if k.Done || !k.arrived || k.GridExhausted() {
		return false
	}
	if !s.Launch(k.Slot, k.Spec, k.Base, k.NextCTA) {
		return false
	}
	k.NextCTA++
	return true
}

// KernelInsts returns kernel slot's cumulative thread instructions across
// all SMs. Out-of-range slots read as 0: wrapping them modulo MaxKernels
// would silently charge one kernel's progress to another.
func (g *GPU) KernelInsts(slot int) uint64 {
	if slot < 0 || slot >= MaxKernels {
		return 0
	}
	var total uint64
	for _, s := range g.SMs {
		total += s.Stats().PerKernel[slot].ThreadInsts
	}
	return total
}

// haltKernel releases every resource held by the kernel (paper §V-A: a
// kernel that reaches its instruction target is halted and its resources
// are freed for the remaining kernels).
func (g *GPU) haltKernel(k *Kernel) {
	k.Done = true
	k.FinishCycle = g.now
	// Re-sample at halt time: k.Insts may lag by up to the checkTargets
	// period, and the emitted kernel_done count must agree with what any
	// later KernelInsts read (the run's CoRun.Insts and targets) reports.
	k.Insts = g.KernelInsts(k.Slot)
	for _, s := range g.SMs {
		s.HaltKernel(k.Slot)
		s.SetQuota(k.Slot, sm.Quota{}) // no relaunches
	}
	g.needFill = true
	g.Log.Emit(g.now, obs.EvKernelDone, map[string]any{"kernel": k.Slot, "insts": k.Insts})
}

// AllDone reports whether every kernel has halted.
func (g *GPU) AllDone() bool {
	for _, k := range g.Kernels {
		if !k.Done {
			return false
		}
	}
	return len(g.Kernels) > 0
}

// Step advances the device one core cycle. On profiler-elected cycles it
// routes through the phase-marked twins (sm.CycleProfiled,
// mem.TickProfiled); on every other cycle — and always when g.Prof is nil
// — the pre-profiler hot path runs unchanged.
func (g *GPU) Step() {
	p := g.Prof
	profiled := p.StartCycle()

	if g.now == 0 {
		g.dispatcher.Setup(g)
		g.dispatcher.Fill(g)
	}

	// Deliver kernel arrivals.
	for _, k := range g.Kernels {
		if !k.arrived && g.now >= k.ArrivalCycle {
			k.arrived = true
			g.Log.Emit(g.now, obs.EvKernelArrival, map[string]any{"kernel": k.Slot})
			if aa, ok := g.dispatcher.(ArrivalAware); ok {
				aa.OnKernelArrival(g, k)
			}
			g.needFill = true
		}
	}
	if profiled {
		p.Mark(prof.Controller)
	}

	// allSkip tracks whether every SM's wake-up time this cycle is known
	// (stalled-known or idle); combined with a quiescent-except-replies
	// memory system below, the whole device cycle is skippable.
	allSkip := true
	if profiled {
		for _, s := range g.SMs {
			if cl := s.CycleProfiled(g.now, p); cl == sm.ClassIssuing || cl == sm.ClassStallUnknown {
				allSkip = false
			}
		}
	} else {
		for _, s := range g.SMs {
			if cl := s.Cycle(g.now); cl == sm.ClassIssuing || cl == sm.ClassStallUnknown {
				allSkip = false
			}
		}
	}

	var replies []memreq.Request
	if profiled {
		replies = g.Mem.TickProfiled(g.now, p)
	} else {
		replies = g.Mem.Tick(g.now)
	}
	for _, reply := range replies {
		if reply.SM >= 0 && reply.SM < len(g.SMs) {
			g.SMs[reply.SM].OnReply(reply.LineAddr)
		}
	}
	if profiled {
		p.Mark(prof.L1)
	}

	if allSkip && g.Mem.OnlyRepliesInFlight() {
		g.ffSkippable++
	}

	g.dispatcher.Tick(g)

	if g.now%64 == 0 {
		g.checkTargets()
	}
	if profiled {
		p.Mark(prof.Controller)
	}
	if g.MonitorEvery > 0 && g.Monitor != nil && g.now%g.MonitorEvery == 0 {
		// The monitor runs on its own cadence (deliberately coprime to
		// the profiler's sampling period), so it is timed as a rare
		// phase on every firing: a sampled Mark here essentially never
		// coincided with a monitor cycle and reported obs_drain as a
		// constant 0.
		//simlint:allow determtaint -- rare-phase stamp: opaque token handed back to RareEnd, never compared to sim state
		t0 := p.RareStart()
		g.Monitor(g)
		p.RareEnd(prof.ObsDrain, t0)
	}
	if g.needFill {
		g.needFill = false
		g.dispatcher.Fill(g)
		if profiled {
			p.Mark(prof.Controller)
		}
	}
	if g.DigestEvery > 0 && g.now%g.DigestEvery == 0 {
		//simlint:allow determtaint -- rare-phase stamp: opaque token handed back to RareEnd, never compared to sim state
		t0 := p.RareStart()
		g.recordDigest()
		p.RareEnd(prof.Digest, t0)
	}
	g.now++
}

// checkTargets samples instruction counts and halts kernels that reached
// their targets (or exhausted their grids).
func (g *GPU) checkTargets() {
	for _, k := range g.Kernels {
		if k.Done {
			continue
		}
		k.Insts = g.KernelInsts(k.Slot)
		reached := k.TargetInsts > 0 && k.Insts >= k.TargetInsts
		drained := k.GridExhausted() && !g.anyResident(k.Slot)
		if reached || drained {
			g.haltKernel(k)
		}
	}
}

func (g *GPU) anyResident(slot int) bool {
	for _, s := range g.SMs {
		if s.ResidentCTAs(slot) > 0 {
			return true
		}
	}
	return false
}

// Run executes until all kernels halt or maxCycles elapse; it returns the
// elapsed cycles. If the simulation panics (simassert violations panic)
// and a flight recorder is armed with a BlackBoxPath, the black-box
// report is dumped before the panic propagates.
func (g *GPU) Run(maxCycles int64) int64 {
	defer g.recoverToBlackBox()
	for g.now < maxCycles && !g.AllDone() {
		g.Step()
	}
	g.checkTargets()
	return g.now
}

// RunCycles advances exactly n further cycles (ignoring targets), with
// the same black-box-on-panic behavior as Run.
func (g *GPU) RunCycles(n int64) {
	defer g.recoverToBlackBox()
	end := g.now + n
	for g.now < end {
		g.Step()
	}
}

// AggregateSM sums SM statistics across the device.
func (g *GPU) AggregateSM() sm.Stats {
	var agg sm.Stats
	for _, s := range g.SMs {
		st := s.Stats()
		agg.Cycles = st.Cycles
		agg.Slots += st.Slots
		agg.Issued += st.Issued
		agg.StallMem += st.StallMem
		agg.StallRAW += st.StallRAW
		agg.StallExec += st.StallExec
		agg.StallIBuf += st.StallIBuf
		agg.StallIdle += st.StallIdle
		agg.SchedFastSlots += st.SchedFastSlots
		agg.ALUBusy += st.ALUBusy
		agg.SFUBusy += st.SFUBusy
		agg.LDSTBusy += st.LDSTBusy
		agg.RegCycles += st.RegCycles
		agg.ShmCycles += st.ShmCycles
		agg.CycIssuing += st.CycIssuing
		agg.CycStallKnown += st.CycStallKnown
		agg.CycStallUnknown += st.CycStallUnknown
		agg.CycIdle += st.CycIdle
		for i := range agg.PerKernel {
			agg.PerKernel[i].WarpInsts += st.PerKernel[i].WarpInsts
			agg.PerKernel[i].ThreadInsts += st.PerKernel[i].ThreadInsts
			agg.PerKernel[i].CTAsDone += st.PerKernel[i].CTAsDone
			agg.PerKernel[i].CTAsLaunched += st.PerKernel[i].CTAsLaunched
			agg.PerKernel[i].LoadsIssued += st.PerKernel[i].LoadsIssued
			agg.PerKernel[i].StallMem += st.PerKernel[i].StallMem
			agg.PerKernel[i].StallRAW += st.PerKernel[i].StallRAW
			agg.PerKernel[i].StallExec += st.PerKernel[i].StallExec
			agg.PerKernel[i].StallIBuf += st.PerKernel[i].StallIBuf
		}
		agg.L1.Loads += st.L1.Loads
		agg.L1.LoadHits += st.L1.LoadHits
		agg.L1.LoadMiss += st.L1.LoadMiss
		agg.L1.Stores += st.L1.Stores
		agg.L1.Fills += st.L1.Fills
		agg.L1.Merged += st.L1.Merged
		agg.L1.ResFails += st.L1.ResFails
		agg.L1.Evictions += st.L1.Evictions
		agg.L1.Probes += st.L1.Probes
	}
	return agg
}

// Profile is the engine self-profile: the deterministic fast-forward
// opportunity meter (always populated) plus, when a profiler is attached,
// the sampled wall-clock phase costs. Served as JSON on /profile and the
// source of figengineprof rows.
type Profile struct {
	Cycles int64 `json:"cycles"`
	SMs    int   `json:"sms"`

	// SM-cycle classification totals across the device; the four sum to
	// SMs × Cycles.
	CycIssuing      uint64 `json:"cyc_issuing"`
	CycStallKnown   uint64 `json:"cyc_stall_known"`
	CycStallUnknown uint64 `json:"cyc_stall_unknown"`
	CycIdle         uint64 `json:"cyc_idle"`

	// FFSkippableCycles counts whole-device cycles an event-driven loop
	// could skip; FFSkippableFrac is that over Cycles — the upper bound
	// on ROADMAP item 2a's payoff for this workload.
	FFSkippableCycles uint64  `json:"ff_skippable_cycles"`
	FFSkippableFrac   float64 `json:"fast_forward_skippable_frac"`

	// SchedFastFrac is the fraction of issue slots the ready-set
	// scheduler resolved on its cached fast path (no walk over the warp
	// list) — the realized half of the opportunity the meter above bounds.
	SchedFastFrac float64 `json:"sched_fastpath_frac"`

	// Phases is the wall-clock side; nil when no profiler is attached.
	Phases *prof.Summary `json:"phases,omitempty"`
}

// Profile snapshots the engine self-profile at the current cycle.
func (g *GPU) Profile() Profile {
	agg := g.AggregateSM()
	pr := Profile{
		Cycles:            g.now,
		SMs:               len(g.SMs),
		CycIssuing:        agg.CycIssuing,
		CycStallKnown:     agg.CycStallKnown,
		CycStallUnknown:   agg.CycStallUnknown,
		CycIdle:           agg.CycIdle,
		FFSkippableCycles: g.ffSkippable,
	}
	if agg.Slots > 0 {
		pr.SchedFastFrac = float64(agg.SchedFastSlots) / float64(agg.Slots)
	}
	if g.now > 0 {
		pr.FFSkippableFrac = float64(g.ffSkippable) / float64(g.now)
	}
	if g.Prof != nil {
		s := g.Prof.Summary()
		pr.Phases = &s
	}
	return pr
}
