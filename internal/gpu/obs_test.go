package gpu_test

import (
	"strconv"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/policy"
)

func TestGPURegisterExposesAllLayers(t *testing.T) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	r := obs.NewRegistry()
	g.Register(r)

	g.RunCycles(3000)
	s := r.Snapshot()

	for _, name := range []string{
		"ws_gpu_cycle",
		"ws_gpu_kernels",
		`ws_kernel_thread_insts_total{kernel="0"}`,
		`ws_kernel_ctas_resident{kernel="1"}`,
		"ws_sm_slots_total",
		`ws_sm_slots_total{sm="0"}`,
		`ws_cache_loads_total{cache="l1"}`,
		`ws_cache_loads_total{cache="l1",sm="0"}`,
		`ws_cache_loads_total{cache="l2",chan="0"}`,
		"ws_dram_bus_busy_total",
		"ws_dram_ticks_total",
		`ws_dram_served_total{chan="0"}`,
		`ws_dram_served_total{kernel="0"}`,
		`ws_sm_kernel_stall_mem_total{kernel="0"}`,
		`ws_sm_kernel_stall_raw_total{kernel="1"}`,
		`ws_sm_kernel_stall_mem_total{sm="0",kernel="0"}`,
		`ws_l1_miss_roundtrip_cycles_bucket{le="+Inf"}`,
		`ws_l1_miss_roundtrip_cycles_count`,
		`ws_l2_queue_wait_cycles_bucket{le="+Inf"}`,
		`ws_dram_row_hit_service_cycles_bucket{le="+Inf"}`,
		`ws_dram_row_miss_service_cycles_bucket{le="+Inf"}`,
		`ws_dram_service_cycles_bucket{chan="0",row="hit",le="+Inf"}`,
		`ws_cache_eviction_age_ops_bucket{cache="l2",chan="0",le="+Inf"}`,
	} {
		if !s.Has(name) {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if s.Get("ws_gpu_cycle") != 3000 {
		t.Fatalf("ws_gpu_cycle = %v, want 3000", s.Get("ws_gpu_cycle"))
	}
	if s.Get(`ws_kernel_thread_insts_total{kernel="0"}`) <= 0 {
		t.Fatal("kernel 0 executed no instructions")
	}
	if s.Get("ws_sm_slots_total") <= 0 {
		t.Fatal("aggregate SM slots not counted")
	}

	// Counters are monotonic between snapshots and diffs are windowed.
	g.RunCycles(2000)
	s2 := r.Snapshot()
	if d := s2.Delta(s, `ws_kernel_thread_insts_total{kernel="0"}`); d <= 0 {
		t.Fatalf("windowed insts delta = %v, want > 0", d)
	}
	if s2.Get("ws_gpu_cycle") != 5000 {
		t.Fatalf("ws_gpu_cycle = %v, want 5000", s2.Get("ws_gpu_cycle"))
	}
}

func TestGPUMonitorHookFires(t *testing.T) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	var calls int
	g.MonitorEvery = 500
	g.Monitor = func(*gpu.GPU) { calls++ }
	g.RunCycles(2000)
	if calls != 4 {
		t.Fatalf("monitor fired %d times, want 4", calls)
	}
}

func TestGPUEmitsKernelLifecycleEvents(t *testing.T) {
	log := obs.NewEventLog()
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.Log = log
	g.AddKernel(kernels.ByAbbr("IMG"), 40_000)
	g.AddKernelAt(kernels.ByAbbr("BLK"), 40_000, 1000)
	g.Run(2_000_000)

	arr, ok := log.First(obs.EvKernelArrival)
	if !ok {
		t.Fatal("no kernel_arrival event")
	}
	if slot, _ := arr.Int("kernel"); slot != 1 {
		t.Fatalf("arrival kernel = %d, want 1", slot)
	}
	if arr.Cycle != 1000 {
		t.Fatalf("arrival cycle = %d, want 1000", arr.Cycle)
	}
	done := log.Filter(obs.EvKernelDone)
	if len(done) != 2 {
		t.Fatalf("kernel_done events = %d, want 2", len(done))
	}
	for _, ev := range done {
		if insts, ok := ev.Int("insts"); !ok || insts < 40_000 {
			t.Fatalf("kernel_done insts = %v", ev.Data)
		}
	}
}

// TestKernelDoneInstsMatchFinalCount is the regression test for the stale
// kernel_done payload: haltKernel used to emit the instruction count from
// the previous checkTargets sample, which could trail the true count by up
// to the sampling period. The emitted insts must equal what KernelInsts
// reports after the run (a halted kernel executes nothing further) and be
// at or past the target that triggered the halt.
func TestKernelDoneInstsMatchFinalCount(t *testing.T) {
	log := obs.NewEventLog()
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.Log = log
	const target = 40_000
	g.AddKernel(kernels.ByAbbr("IMG"), target)
	g.AddKernel(kernels.ByAbbr("BLK"), target)
	g.Run(2_000_000)
	if !g.AllDone() {
		t.Fatal("co-run did not finish")
	}

	done := log.Filter(obs.EvKernelDone)
	if len(done) != 2 {
		t.Fatalf("kernel_done events = %d, want 2", len(done))
	}
	for _, ev := range done {
		slot, ok := ev.Int("kernel")
		if !ok {
			t.Fatalf("kernel_done without slot: %+v", ev)
		}
		insts, ok := ev.Int("insts")
		if !ok {
			t.Fatalf("kernel_done without insts: %+v", ev)
		}
		final := g.KernelInsts(int(slot))
		if uint64(insts) != final {
			t.Errorf("slot %d: kernel_done insts = %d, final count = %d", slot, insts, final)
		}
		if insts < target {
			t.Errorf("slot %d: halted below target: %d < %d", slot, insts, target)
		}
		if k := g.Kernels[slot]; k.Insts != final {
			t.Errorf("slot %d: Kernel.Insts = %d, final count = %d", slot, k.Insts, final)
		}
	}
}

// TestKernelInstsInvalidSlot is the regression test for the modulo-wrap
// bug: an out-of-range slot used to alias another kernel's counters via
// slot%MaxKernels. Invalid slots must read as zero.
func TestKernelInstsInvalidSlot(t *testing.T) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.RunCycles(2000)
	if g.KernelInsts(0) == 0 {
		t.Fatal("kernel 0 executed no instructions")
	}
	for _, slot := range []int{-1, gpu.MaxKernels, gpu.MaxKernels + 1, 8 + 0} {
		if slot >= 0 && slot < gpu.MaxKernels {
			continue
		}
		if got := g.KernelInsts(slot); got != 0 {
			t.Errorf("KernelInsts(%d) = %d, want 0 (must not wrap onto a valid slot)", slot, got)
		}
	}
}

// TestDeviceStallConservation checks the attribution invariant device-wide
// on a real co-run: the aggregate per-kernel stall counters sum to the
// aggregate SM-wide classes, and the obs series agree with the Stats walk.
func TestDeviceStallConservation(t *testing.T) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	r := obs.NewRegistry()
	g.Register(r)
	g.RunCycles(20000)

	agg := g.AggregateSM()
	var mem, raw, exec, ibuf uint64
	for _, ks := range agg.PerKernel {
		mem += ks.StallMem
		raw += ks.StallRAW
		exec += ks.StallExec
		ibuf += ks.StallIBuf
	}
	if mem != agg.StallMem || raw != agg.StallRAW || exec != agg.StallExec || ibuf != agg.StallIBuf {
		t.Fatalf("per-kernel sums (%d/%d/%d/%d) != device-wide (%d/%d/%d/%d)",
			mem, raw, exec, ibuf, agg.StallMem, agg.StallRAW, agg.StallExec, agg.StallIBuf)
	}
	if mem == 0 {
		t.Fatal("co-run recorded no memory stalls; test is vacuous")
	}
	s := r.Snapshot()
	var fromObs float64
	for k := 0; k < gpu.MaxKernels; k++ {
		fromObs += s.Get(obs.Label("ws_sm_kernel_stall_mem_total", "kernel", strconv.Itoa(k)))
	}
	if fromObs != float64(agg.StallMem) {
		t.Fatalf("obs kernel mem-stall sum %g != aggregate %d", fromObs, agg.StallMem)
	}
}
