package gpu

import (
	"fmt"
	"os"

	"warpedslicer/internal/digest"
)

// DefaultDigestEvery is the default digest period when a caller arms
// digesting without choosing one. A whole-GPU record walks every cache
// line, warp scoreboard and queue in the device (tens of microseconds),
// so the default amortizes it to well under a percent of cycle cost; the
// bench rig (TestEngineProfileBudget) enforces the budget.
const DefaultDigestEvery = 1024

// ComponentDigests hashes every component of the device at the current
// cycle, in fixed order: each SM, the three memory-hierarchy sections,
// the kernel table, and the dispatcher. This is the whole-GPU canonical
// state walk (DESIGN.md "The canonical-state traversal contract").
func (g *GPU) ComponentDigests() []digest.Component {
	comps := make([]digest.Component, 0, len(g.SMs)+5)
	for i, s := range g.SMs {
		comps = append(comps, digest.Component{Name: g.smName(i), Sum: digest.Of(s)})
	}
	h := digest.NewHasher()
	g.Mem.DigestIcnt(h)
	comps = append(comps, digest.Component{Name: "icnt", Sum: h.Sum()})
	h = digest.NewHasher()
	g.Mem.DigestL2(h)
	comps = append(comps, digest.Component{Name: "l2", Sum: h.Sum()})
	h = digest.NewHasher()
	g.Mem.DigestDRAM(h)
	comps = append(comps, digest.Component{Name: "dram", Sum: h.Sum()})

	h = digest.NewHasher()
	h.I64(g.now)
	h.Bool(g.needFill)
	h.U64(g.ffSkippable)
	h.Int(len(g.Kernels))
	for _, k := range g.Kernels {
		k.digestInto(h)
	}
	comps = append(comps, digest.Component{Name: "kernels", Sum: h.Sum()})

	h = digest.NewHasher()
	if d, ok := g.dispatcher.(digest.Digester); ok {
		h.Bool(true)
		d.DigestInto(h)
	} else {
		h.Bool(false)
	}
	comps = append(comps, digest.Component{Name: "controller", Sum: h.Sum()})
	return comps
}

func (k *Kernel) digestInto(h *digest.Hasher) {
	h.Str(k.Spec.Abbr)
	h.Int(k.Slot)
	h.U64(k.Base)
	h.Int(k.NextCTA)
	h.U64(k.TargetInsts)
	h.Bool(k.Done)
	h.I64(k.FinishCycle)
	h.U64(k.Insts)
	h.I64(k.ArrivalCycle)
	h.Bool(k.arrived)
}

func (g *GPU) smName(i int) string {
	if g.smNames == nil {
		g.smNames = make([]string, len(g.SMs))
		for j := range g.SMs {
			g.smNames[j] = fmt.Sprintf("sm%d", j)
		}
	}
	return g.smNames[i]
}

// digestCounters snapshots the key architectural counters stored next to
// each digest record, so a black-box reader can orient the crash window
// without replaying the run.
func (g *GPU) digestCounters() digest.Counters {
	var c digest.Counters
	for _, s := range g.SMs {
		st := s.Stats()
		c.Issued += st.Issued
		for k := range st.PerKernel {
			c.ThreadInsts += st.PerKernel[k].ThreadInsts
		}
	}
	ms := g.Mem.Stats()
	c.L2Misses = ms.L2.LoadMiss
	for _, v := range ms.DRAMServed {
		c.DRAMServed += v
	}
	return c
}

// recordDigest appends one chained digest record to every attached sink.
// Called from Step on DigestEvery boundaries only.
func (g *GPU) recordDigest() {
	comps := g.ComponentDigests()
	g.digestChain = digest.ChainStep(g.digestChain, g.now, comps)
	rec := digest.Record{Cycle: g.now, Chain: g.digestChain, Components: comps, Counters: g.digestCounters()}
	if g.Digests != nil {
		g.Digests.AppendRecord(rec)
	}
	if g.Flight != nil {
		g.Flight.AppendRecord(rec)
	}
	g.digestRecords++
}

// DigestChain returns the current chained whole-GPU digest (zero until
// the first record).
func (g *GPU) DigestChain() digest.Sum { return g.digestChain }

// DigestRecords returns how many digest records the run has taken.
func (g *GPU) DigestRecords() uint64 { return g.digestRecords }

// ArmFlightRecorder attaches a flight recorder of `depth` records taken
// every `every` cycles (zeros select the defaults), dumping a black-box
// report to path if the run panics.
func (g *GPU) ArmFlightRecorder(depth int, every int64, path string) {
	if every <= 0 {
		every = DefaultDigestEvery
	}
	g.DigestEvery = every
	g.Flight = digest.NewRing(depth)
	g.BlackBoxPath = path
}

// BlackBox assembles the crash report: the flight-recorder window (or
// the tail of a full trail if only that is attached) plus every
// observability surface the run carries — self-profile, obs snapshot,
// recent events, span summary. All best-effort: a missing surface is
// simply omitted.
func (g *GPU) BlackBox(reason string) *digest.BlackBox {
	bb := &digest.BlackBox{
		DigestVersion: digest.Version,
		Reason:        reason,
		Cycle:         g.now,
		Chain:         g.digestChain,
		RecordsTotal:  g.digestRecords,
	}
	switch {
	case g.Flight != nil:
		bb.Records = g.Flight.Snapshot()
	case g.Digests != nil:
		recs := g.Digests.Records
		if len(recs) > digest.DefaultFlightDepth {
			recs = recs[len(recs)-digest.DefaultFlightDepth:]
		}
		bb.Records = append([]digest.Record(nil), recs...)
	}
	bb.Profile = g.Profile()
	if g.ObsSnapshot != nil {
		bb.Snapshot = g.ObsSnapshot()
	}
	if evs := g.Log.Events(); len(evs) > 0 {
		const keep = 64
		if len(evs) > keep {
			evs = evs[len(evs)-keep:]
		}
		bb.Events = evs
	}
	if g.Mem != nil && g.Mem.Spans != nil {
		bb.Spans = g.Mem.Spans.Summary()
	}
	return bb
}

// recoverToBlackBox is installed via defer by Run/RunCycles: on panic —
// including simassert violations, which panic with a "simassert:"
// prefix — it dumps the black-box report to BlackBoxPath (when a flight
// recorder is armed with a path) and re-panics with the original value.
func (g *GPU) recoverToBlackBox() {
	r := recover()
	if r == nil {
		return
	}
	if g.BlackBoxPath != "" && (g.Flight != nil || g.Digests != nil) {
		if f, err := os.Create(g.BlackBoxPath); err == nil {
			// Best-effort on the crash path: a report we cannot write
			// must not mask the original panic.
			_ = g.BlackBox(fmt.Sprint(r)).WriteJSON(f)
			_ = f.Close()
		}
	}
	panic(r)
}
