package gpu

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/kernels"
)

// TestDivergenceReducesThroughput verifies end-to-end that SIMT divergence
// costs performance: the divergent BFS variant must retire fewer thread
// instructions than plain BFS in the same window (each divergent op
// serializes into two passes).
func TestDivergenceReducesThroughput(t *testing.T) {
	run := func(spec *kernels.Spec) uint64 {
		g := New(config.Baseline(), greedy{})
		g.AddKernel(spec, 0)
		g.RunCycles(20000)
		return g.KernelInsts(0)
	}
	plain := run(kernels.BreadthFirstSearch())
	div := run(kernels.DivergentBFS())
	if div >= plain {
		t.Fatalf("divergent BFS (%d) not slower than plain (%d)", div, plain)
	}
}

// TestGoldenDeterminism pins exact instruction counts for a fixed scenario.
// These values change ONLY when simulation semantics change; if this test
// fails after a refactor that should have been behaviour-preserving, the
// refactor was not. Update the constants deliberately when semantics are
// intentionally revised (and re-run the full evaluation).
func TestGoldenDeterminism(t *testing.T) {
	g := New(config.Baseline(), greedy{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	g.RunCycles(10000)
	img, blk := g.KernelInsts(0), g.KernelInsts(1)
	if img == 0 || blk == 0 {
		t.Fatal("no instructions executed")
	}
	// Re-run: counts must match exactly.
	g2 := New(config.Baseline(), greedy{})
	g2.AddKernel(kernels.ByAbbr("IMG"), 0)
	g2.AddKernel(kernels.ByAbbr("BLK"), 0)
	g2.RunCycles(10000)
	if g2.KernelInsts(0) != img || g2.KernelInsts(1) != blk {
		t.Fatalf("determinism broken: (%d,%d) vs (%d,%d)",
			img, blk, g2.KernelInsts(0), g2.KernelInsts(1))
	}
}

// TestResourceAccountingNeverNegative drives heavy CTA churn and checks
// the SM resource pools stay consistent.
func TestResourceAccountingNeverNegative(t *testing.T) {
	spec := *kernels.ByAbbr("DXT")
	spec.Iterations = 8 // rapid churn
	g := New(config.Baseline(), greedy{})
	g.AddKernel(&spec, 0)
	for i := 0; i < 200; i++ {
		g.RunCycles(100)
		for _, s := range g.SMs {
			u := s.Used()
			if u.Regs < 0 || u.Shm < 0 || u.Threads < 0 || u.CTAs < 0 {
				t.Fatalf("negative resource usage: %+v", u)
			}
			if u.CTAs > g.Cfg.SM.MaxCTAs || u.Threads > g.Cfg.SM.MaxThreads {
				t.Fatalf("over-allocated: %+v", u)
			}
		}
	}
}

// TestInstructionCountMonotone: cumulative counters never decrease.
func TestInstructionCountMonotone(t *testing.T) {
	g := New(config.Baseline(), greedy{})
	g.AddKernel(kernels.ByAbbr("MM"), 0)
	var prev uint64
	for i := 0; i < 50; i++ {
		g.RunCycles(200)
		cur := g.KernelInsts(0)
		if cur < prev {
			t.Fatalf("instruction count decreased: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

// TestIPCBoundedByIssueWidth: no SM can retire more warp instructions per
// cycle than it has schedulers.
func TestIPCBoundedByIssueWidth(t *testing.T) {
	g := New(config.Baseline(), greedy{})
	g.AddKernel(kernels.ByAbbr("DXT"), 0)
	g.RunCycles(20000)
	agg := g.AggregateSM()
	maxIssue := uint64(g.Cfg.NumSMs*g.Cfg.SM.Schedulers) * uint64(agg.Cycles)
	if agg.Issued > maxIssue {
		t.Fatalf("issued %d warp insts > issue-slot bound %d", agg.Issued, maxIssue)
	}
}

// TestHaltDuringProfiling: halting a kernel that still has in-flight
// memory replies must not corrupt the other kernel.
func TestHaltMidFlight(t *testing.T) {
	g := New(config.Baseline(), greedy{})
	a := g.AddKernel(kernels.ByAbbr("LBM"), 1) // absurdly small target: halts almost immediately
	b := g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.RunCycles(30000)
	if !a.Done {
		t.Fatal("tiny-target kernel never halted")
	}
	if g.KernelInsts(b.Slot) == 0 {
		t.Fatal("surviving kernel made no progress after halt")
	}
	for _, s := range g.SMs {
		if s.ResidentCTAs(a.Slot) != 0 {
			t.Fatal("halted kernel still resident")
		}
	}
}

// TestBankConflictsReduceThroughput: a DXT variant whose shared-memory
// accesses conflict 8-way must run slower than conflict-free DXT.
func TestBankConflictsReduceThroughput(t *testing.T) {
	run := func(spec *kernels.Spec) uint64 {
		g := New(config.Baseline(), greedy{})
		g.AddKernel(spec, 0)
		g.RunCycles(15000)
		return g.KernelInsts(0)
	}
	plain := kernels.DXTCompression()
	conflicted := kernels.DXTCompression()
	for i := range conflicted.Body {
		if conflicted.Body[i].Kind.IsMemory() && !conflicted.Body[i].Kind.IsGlobal() {
			conflicted.Body[i].BankConflicts = 8
		}
	}
	p, c := run(plain), run(conflicted)
	if c >= p {
		t.Fatalf("8-way conflicted DXT (%d) not slower than plain (%d)", c, p)
	}
}

// TestGridExhaustionCompletesKernel: a tiny grid must drain and halt the
// kernel without an instruction target.
func TestGridExhaustionCompletesKernel(t *testing.T) {
	spec := *kernels.ByAbbr("IMG")
	spec.GridDim = 20
	spec.Iterations = 10
	g := New(config.Baseline(), greedy{})
	k := g.AddKernel(&spec, 0)
	cycles := g.Run(2_000_000)
	if !k.Done {
		t.Fatalf("kernel never drained its %d-CTA grid (ran %d cycles)", spec.GridDim, cycles)
	}
	if !k.GridExhausted() {
		t.Fatal("grid not exhausted")
	}
	agg := g.AggregateSM()
	if got := agg.PerKernel[0].CTAsDone; got != 20 {
		t.Fatalf("CTAs done = %d, want 20", got)
	}
}

// TestArrivalOrderIndependentSlots: slots are assigned by AddKernel order,
// not arrival time.
func TestArrivalOrderIndependentSlots(t *testing.T) {
	g := New(config.Baseline(), greedy{})
	a := g.AddKernelAt(kernels.ByAbbr("IMG"), 0, 5000)
	b := g.AddKernel(kernels.ByAbbr("MM"), 0)
	if a.Slot != 0 || b.Slot != 1 {
		t.Fatalf("slots = %d/%d, want 0/1", a.Slot, b.Slot)
	}
	if a.Arrived() {
		t.Fatal("delayed kernel marked arrived at construction")
	}
	if !b.Arrived() {
		t.Fatal("immediate kernel not arrived")
	}
	g.RunCycles(5100)
	if !a.Arrived() {
		t.Fatal("delayed kernel never arrived")
	}
}

// TestAggregateSMAddsUp: aggregate counters equal the sum over SMs.
func TestAggregateSMAddsUp(t *testing.T) {
	g := New(config.Baseline(), greedy{})
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	g.RunCycles(5000)
	agg := g.AggregateSM()
	var issued, insts uint64
	for _, s := range g.SMs {
		st := s.Stats()
		issued += st.Issued
		insts += st.PerKernel[0].ThreadInsts
	}
	if agg.Issued != issued || agg.PerKernel[0].ThreadInsts != insts {
		t.Fatal("aggregate does not match per-SM sums")
	}
}
