package gpu

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/kernels"
)

// bomb is greedy plus a seeded panic at a chosen cycle, standing in for a
// simassert violation (simassert panics with a "simassert:" prefix).
type bomb struct {
	greedy
	at int64
}

func (b bomb) Tick(g *GPU) {
	if g.Now() == b.at {
		panic("simassert: seeded violation for the flight recorder")
	}
}

// TestBlackBoxDumpOnPanic is the acceptance test for the flight recorder:
// an armed run that panics must leave a parseable black-box report behind
// and still propagate the original panic value.
func TestBlackBoxDumpOnPanic(t *testing.T) {
	const at = 900
	path := filepath.Join(t.TempDir(), "blackbox.json")
	g := New(config.Baseline(), bomb{at: at})
	g.AddKernel(kernels.ByAbbr("HOT"), 0)
	g.ArmFlightRecorder(8, 64, path)

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("seeded panic did not propagate")
			}
			if s, ok := r.(string); !ok || !strings.HasPrefix(s, "simassert:") {
				t.Fatalf("recovered %v, want the original simassert panic", r)
			}
		}()
		g.RunCycles(2_000)
	}()

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("black box not written: %v", err)
	}
	defer f.Close()
	bb, err := digest.ReadBlackBox(f)
	if err != nil {
		t.Fatalf("black box not parseable: %v", err)
	}
	if bb.DigestVersion != digest.Version {
		t.Errorf("digest_version = %d, want %d", bb.DigestVersion, digest.Version)
	}
	if !strings.Contains(bb.Reason, "simassert: seeded violation") {
		t.Errorf("reason %q does not carry the panic value", bb.Reason)
	}
	if bb.Cycle != at {
		t.Errorf("crash cycle = %d, want %d", bb.Cycle, at)
	}
	if len(bb.Records) != 8 {
		t.Fatalf("flight window holds %d records, want the full ring of 8", len(bb.Records))
	}
	// Ring keeps the newest 8 of the 64-cycle cadence: cycles 448..896.
	for i, rec := range bb.Records {
		if want := int64(448 + 64*i); rec.Cycle != want {
			t.Errorf("record %d at cycle %d, want %d", i, rec.Cycle, want)
		}
		if rec.Chain == 0 {
			t.Errorf("record %d has a zero chain", i)
		}
		if len(rec.Components) == 0 {
			t.Errorf("record %d has no components", i)
		}
	}
	if bb.Chain != bb.Records[len(bb.Records)-1].Chain {
		t.Errorf("report chain %s != last record chain %s",
			bb.Chain, bb.Records[len(bb.Records)-1].Chain)
	}
}

// TestRunWithoutArmedRecorderStillPanics: the recover/re-panic path must
// be inert when nothing is armed.
func TestRunWithoutArmedRecorderStillPanics(t *testing.T) {
	g := New(config.Baseline(), bomb{at: 10})
	g.AddKernel(kernels.ByAbbr("HOT"), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("panic swallowed")
		}
	}()
	g.RunCycles(100)
}
