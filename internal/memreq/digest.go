package memreq

import "warpedslicer/internal/digest"

// DigestInto hashes the request's architectural identity. The span
// handle is excluded: it is observability metadata and never influences
// how the memory system treats the request.
func (r Request) DigestInto(h *digest.Hasher) {
	h.U64(r.LineAddr)
	h.Int(r.SM)
	h.Int(r.Kernel)
	h.Bool(r.Write)
	h.I64(r.Issued)
}
