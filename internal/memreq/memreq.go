// Package memreq defines the memory request/reply record that flows between
// the SMs, the interconnect, the L2 banks and the DRAM controllers.
package memreq

import "warpedslicer/internal/span"

// Request is one cache-line-sized memory transaction.
type Request struct {
	// LineAddr is the line-aligned byte address.
	LineAddr uint64
	// SM is the originating streaming multiprocessor.
	SM int
	// Kernel is the GPU kernel slot that issued the access (used for
	// per-kernel bandwidth and MPKI accounting during profiling).
	Kernel int
	// Write marks a store (no reply is routed back to the SM).
	Write bool
	// Issued is the core-clock cycle at which the SM issued the request
	// (used for latency accounting).
	Issued int64
	// Span is the request's trace handle; zero (the common case) means
	// the request was not sampled and every recording call ignores it.
	//simlint:nodigest -- observability: sampling identity for the span tracer, not architectural state
	Span span.Handle
}
