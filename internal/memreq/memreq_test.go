package memreq

import "testing"

func TestRequestZeroValue(t *testing.T) {
	var r Request
	if r.Write || r.LineAddr != 0 || r.SM != 0 || r.Kernel != 0 || r.Issued != 0 {
		t.Fatalf("zero value not neutral: %+v", r)
	}
}

func TestRequestIsValueType(t *testing.T) {
	a := Request{LineAddr: 0x80, SM: 3, Kernel: 1, Write: true, Issued: 42}
	b := a
	b.LineAddr = 0x100
	if a.LineAddr != 0x80 {
		t.Fatal("copy aliased the original")
	}
	if a == b {
		t.Fatal("distinct requests compare equal")
	}
	if (a == Request{LineAddr: 0x80, SM: 3, Kernel: 1, Write: true, Issued: 42}) == false {
		t.Fatal("identical requests must compare equal (used as map/set members)")
	}
}
