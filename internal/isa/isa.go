// Package isa defines the SIMT instruction set executed by the simulator.
//
// Instructions are warp-granular: one Instr represents the lockstep
// execution of the same operation by all active threads of a warp, which is
// the granularity at which GPGPU-Sim-class simulators schedule and at which
// the Warped-Slicer paper measures pipeline utilization.
package isa

import "fmt"

// Kind classifies an instruction by the functional unit it occupies.
type Kind uint8

const (
	// ALU is an integer or single-precision floating-point operation
	// executed on the SP/ALU pipelines.
	ALU Kind = iota
	// SFU is a special-function operation (transcendentals, rsqrt, ...)
	// executed on the narrower SFU pipeline.
	SFU
	// LDG is a load from global memory through the L1/L2/DRAM hierarchy.
	LDG
	// STG is a store to global memory.
	STG
	// LDS is a shared-memory access (fixed latency, no cache traffic).
	LDS
	// BAR is a CTA-wide barrier (__syncthreads()).
	BAR
	// EXIT terminates the warp.
	EXIT

	numKinds
)

// NumKinds is the number of distinct instruction kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{"ALU", "SFU", "LDG", "STG", "LDS", "BAR", "EXIT"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMemory reports whether the instruction goes through the LD/ST unit.
func (k Kind) IsMemory() bool { return k == LDG || k == STG || k == LDS }

// IsGlobal reports whether the instruction accesses global memory (and thus
// the cache hierarchy).
func (k Kind) IsGlobal() bool { return k == LDG || k == STG }

// NoReg marks an absent register operand.
const NoReg int8 = -1

// Instr is one warp-level instruction.
type Instr struct {
	Kind Kind
	// Dest is the destination register, or NoReg.
	Dest int8
	// Src are source registers; NoReg entries are unused.
	Src [2]int8
	// Addr is the first byte address touched by a global-memory access.
	Addr uint64
	// Lines is the number of distinct cache-line transactions the access
	// generates after coalescing (1 for a fully coalesced warp access).
	Lines uint8
	// ActivePct is the percentage of the warp's threads executing this
	// instruction (SIMT divergence); 0 means all threads are active.
	ActivePct uint8
}

// ActiveFraction returns the active-lane fraction in (0,1].
func (in Instr) ActiveFraction() float64 {
	if in.ActivePct == 0 || in.ActivePct >= 100 {
		return 1
	}
	return float64(in.ActivePct) / 100
}

// Reads reports whether the instruction reads register r.
func (in Instr) Reads(r int8) bool {
	return r != NoReg && (in.Src[0] == r || in.Src[1] == r)
}

func (in Instr) String() string {
	switch {
	case in.Kind == BAR || in.Kind == EXIT:
		return in.Kind.String()
	case in.Kind.IsGlobal():
		return fmt.Sprintf("%s r%d, [%#x] x%d", in.Kind, in.Dest, in.Addr, in.Lines)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Kind, in.Dest, in.Src[0], in.Src[1])
	}
}
