package isa

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		ALU: "ALU", SFU: "SFU", LDG: "LDG", STG: "STG",
		LDS: "LDS", BAR: "BAR", EXIT: "EXIT",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should include its value")
	}
}

func TestKindClassification(t *testing.T) {
	for _, k := range []Kind{LDG, STG, LDS} {
		if !k.IsMemory() {
			t.Errorf("%v should be memory", k)
		}
	}
	for _, k := range []Kind{ALU, SFU, BAR, EXIT} {
		if k.IsMemory() {
			t.Errorf("%v should not be memory", k)
		}
	}
	if !LDG.IsGlobal() || !STG.IsGlobal() {
		t.Error("LDG/STG should be global")
	}
	if LDS.IsGlobal() {
		t.Error("LDS is shared memory, not global")
	}
}

func TestInstrReads(t *testing.T) {
	in := Instr{Kind: ALU, Dest: 3, Src: [2]int8{1, NoReg}}
	if !in.Reads(1) {
		t.Error("should read r1")
	}
	if in.Reads(2) {
		t.Error("should not read r2")
	}
	if in.Reads(NoReg) {
		t.Error("NoReg is never read")
	}
}

func TestInstrString(t *testing.T) {
	if got := (Instr{Kind: BAR}).String(); got != "BAR" {
		t.Errorf("BAR string = %q", got)
	}
	mem := Instr{Kind: LDG, Dest: 5, Addr: 0x1000, Lines: 2}
	if !strings.Contains(mem.String(), "0x1000") || !strings.Contains(mem.String(), "x2") {
		t.Errorf("LDG string missing fields: %q", mem.String())
	}
	alu := Instr{Kind: ALU, Dest: 2, Src: [2]int8{1, 0}}
	if !strings.Contains(alu.String(), "ALU") {
		t.Errorf("ALU string = %q", alu.String())
	}
}

func TestNumKinds(t *testing.T) {
	if NumKinds != 7 {
		t.Fatalf("NumKinds = %d, want 7", NumKinds)
	}
}
