// Package config defines the GPU hardware configuration used by the
// simulator. The default configuration reproduces Table I of the
// Warped-Slicer paper (ISCA 2016): a 16-SM Fermi-class GPU as modeled by
// GPGPU-Sim v3.2.2.
package config

import "fmt"

// GPU describes the full simulated device.
type GPU struct {
	// NumSMs is the number of streaming multiprocessors ("Compute Units"
	// in Table I).
	NumSMs int
	// CoreClockMHz is the SM clock (1400 MHz in Table I).
	CoreClockMHz int
	// MemClockMHz is the memory clock (924 MHz in Table I).
	MemClockMHz int

	SM     SM
	L1     Cache
	L2     Cache
	Memory Memory
	Icnt   Interconnect
}

// SM describes per-SM execution resources (Table I, "Resources / Core").
type SM struct {
	// MaxThreads is the per-SM thread limit (1536).
	MaxThreads int
	// WarpSize is the number of threads per warp (32).
	WarpSize int
	// Registers is the per-SM register file size in 32-bit registers (32768).
	Registers int
	// MaxCTAs is the per-SM concurrent thread-block limit (8).
	MaxCTAs int
	// SharedMemBytes is the per-SM shared memory (48 KB).
	SharedMemBytes int
	// Schedulers is the number of warp schedulers per SM (2).
	Schedulers int
	// SIMTWidth is the number of lanes fed per cycle (16x2 in Table I; a
	// 32-thread warp issues over WarpSize/SIMTWidth cycles).
	SIMTWidth int

	// ALULatency, SFULatency, LDSLatency are result latencies in core
	// cycles for arithmetic, special-function, and shared-memory ops.
	ALULatency int
	SFULatency int
	LDSLatency int
	// SFUInitInterval is the initiation interval of the SFU pipeline: a
	// new warp instruction may enter only every this many cycles (SFUs are
	// narrower than ALUs).
	SFUInitInterval int
	// ALUUnits is the number of ALU pipelines that can each accept one
	// warp instruction per cycle.
	ALUUnits int

	// FetchDelay is the added delay, in cycles, when a warp's next
	// instruction misses in the instruction cache model.
	FetchDelay int
}

// Cache describes one cache level.
type Cache struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the cache-line (sector) size.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// MSHRs is the number of miss-status holding registers.
	MSHRs int
	// HitLatency is the access latency on a hit, in core cycles.
	HitLatency int
}

// Memory describes the DRAM subsystem (Table I, GDDR5 timing).
type Memory struct {
	// Channels is the number of memory controllers (6 in Table I).
	Channels int
	// BanksPerChannel models DRAM banks for row-buffer locality.
	BanksPerChannel int
	// Timings are in memory-clock cycles. The simplified controller
	// timing model consumes TCL/TRP/TRCD/TRRD; TRC and TRAS are carried
	// for Table I fidelity and bound the others (TRC >= TRAS + TRP).
	TCL, TRP, TRC, TRAS, TRCD, TRRD int
	// BurstCycles is the data-bus occupancy per 128B transaction in
	// memory-clock cycles.
	BurstCycles int
	// QueueDepth is the per-channel scheduling window of the FR-FCFS
	// controller.
	QueueDepth int
}

// Interconnect describes the SM<->memory-partition network.
type Interconnect struct {
	// LatencyCycles is the one-way traversal latency.
	LatencyCycles int
	// FlitsPerCycle is the total request (and, independently, reply)
	// bandwidth in packets per core cycle.
	FlitsPerCycle int
}

// Baseline returns the Table I configuration of the paper.
func Baseline() GPU {
	return GPU{
		NumSMs:       16,
		CoreClockMHz: 1400,
		MemClockMHz:  924,
		SM: SM{
			MaxThreads:      1536,
			WarpSize:        32,
			Registers:       32768,
			MaxCTAs:         8,
			SharedMemBytes:  48 * 1024,
			Schedulers:      2,
			SIMTWidth:       16,
			ALULatency:      10,
			SFULatency:      20,
			LDSLatency:      24,
			SFUInitInterval: 4,
			ALUUnits:        2,
			FetchDelay:      12,
		},
		L1: Cache{
			SizeBytes:  16 * 1024,
			LineBytes:  128,
			Assoc:      4,
			MSHRs:      64,
			HitLatency: 28,
		},
		L2: Cache{
			// 128KB per memory channel (Table I).
			SizeBytes:  128 * 1024,
			LineBytes:  128,
			Assoc:      8,
			MSHRs:      128,
			HitLatency: 120,
		},
		Memory: Memory{
			Channels:        6,
			BanksPerChannel: 8,
			TCL:             12,
			TRP:             12,
			TRC:             40,
			TRAS:            28,
			TRCD:            12,
			TRRD:            6,
			BurstCycles:     4,
			QueueDepth:      32,
		},
		Icnt: Interconnect{
			LatencyCycles: 8,
			FlitsPerCycle: 12,
		},
	}
}

// LargeSM returns the §V-H sensitivity configuration: 256KB register file,
// 96KB shared memory, 32 max CTAs and 64 max warps per SM.
func LargeSM() GPU {
	g := Baseline()
	g.SM.Registers = 256 * 1024 / 4 // 256KB of 32-bit registers
	g.SM.SharedMemBytes = 96 * 1024
	g.SM.MaxCTAs = 32
	g.SM.MaxThreads = 64 * g.SM.WarpSize
	return g
}

// MaxWarps returns the per-SM warp limit implied by MaxThreads.
func (s SM) MaxWarps() int { return s.MaxThreads / s.WarpSize }

// MemClockRatio returns memory-clock cycles per core-clock cycle.
func (g GPU) MemClockRatio() float64 {
	return float64(g.MemClockMHz) / float64(g.CoreClockMHz)
}

// Validate reports an error if the configuration is internally inconsistent.
func (g GPU) Validate() error {
	switch {
	case g.NumSMs <= 0:
		return fmt.Errorf("config: NumSMs must be positive, got %d", g.NumSMs)
	case g.SM.WarpSize <= 0:
		return fmt.Errorf("config: WarpSize must be positive, got %d", g.SM.WarpSize)
	case g.SM.MaxThreads%g.SM.WarpSize != 0:
		return fmt.Errorf("config: MaxThreads %d not a multiple of WarpSize %d", g.SM.MaxThreads, g.SM.WarpSize)
	case g.SM.Schedulers <= 0:
		return fmt.Errorf("config: Schedulers must be positive, got %d", g.SM.Schedulers)
	case g.SM.Registers <= 0 || g.SM.SharedMemBytes < 0:
		return fmt.Errorf("config: invalid SM storage (regs=%d shm=%d)", g.SM.Registers, g.SM.SharedMemBytes)
	case g.SM.MaxCTAs <= 0:
		return fmt.Errorf("config: MaxCTAs must be positive, got %d", g.SM.MaxCTAs)
	case g.L1.LineBytes <= 0 || g.L2.LineBytes <= 0:
		return fmt.Errorf("config: cache line sizes must be positive")
	case g.L1.SizeBytes%(g.L1.LineBytes*g.L1.Assoc) != 0:
		return fmt.Errorf("config: L1 size %d not divisible by line*assoc", g.L1.SizeBytes)
	case g.L2.SizeBytes%(g.L2.LineBytes*g.L2.Assoc) != 0:
		return fmt.Errorf("config: L2 size %d not divisible by line*assoc", g.L2.SizeBytes)
	case g.Memory.Channels <= 0:
		return fmt.Errorf("config: Channels must be positive, got %d", g.Memory.Channels)
	case g.Icnt.FlitsPerCycle <= 0:
		return fmt.Errorf("config: FlitsPerCycle must be positive, got %d", g.Icnt.FlitsPerCycle)
	}
	return nil
}
