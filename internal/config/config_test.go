package config

import "testing"

func TestBaselineMatchesTableI(t *testing.T) {
	g := Baseline()
	if g.NumSMs != 16 {
		t.Errorf("NumSMs = %d, want 16", g.NumSMs)
	}
	if g.CoreClockMHz != 1400 || g.MemClockMHz != 924 {
		t.Errorf("clocks = %d/%d, want 1400/924", g.CoreClockMHz, g.MemClockMHz)
	}
	if g.SM.MaxThreads != 1536 || g.SM.Registers != 32768 {
		t.Errorf("threads/regs = %d/%d, want 1536/32768", g.SM.MaxThreads, g.SM.Registers)
	}
	if g.SM.MaxCTAs != 8 || g.SM.SharedMemBytes != 48*1024 {
		t.Errorf("ctas/shm = %d/%d, want 8/48K", g.SM.MaxCTAs, g.SM.SharedMemBytes)
	}
	if g.SM.Schedulers != 2 {
		t.Errorf("schedulers = %d, want 2", g.SM.Schedulers)
	}
	if g.L1.SizeBytes != 16*1024 || g.L1.Assoc != 4 || g.L1.MSHRs != 64 {
		t.Errorf("L1 = %+v, want 16KB 4-way 64 MSHR", g.L1)
	}
	if g.L2.SizeBytes != 128*1024 || g.L2.Assoc != 8 {
		t.Errorf("L2 = %+v, want 128KB 8-way per channel", g.L2)
	}
	if g.Memory.Channels != 6 {
		t.Errorf("channels = %d, want 6", g.Memory.Channels)
	}
	tm := g.Memory
	if tm.TCL != 12 || tm.TRP != 12 || tm.TRC != 40 || tm.TRAS != 28 || tm.TRCD != 12 || tm.TRRD != 6 {
		t.Errorf("GDDR5 timing %+v does not match Table I", tm)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSMMatchesSectionVH(t *testing.T) {
	g := LargeSM()
	if g.SM.Registers != 256*1024/4 {
		t.Errorf("regs = %d, want 64K (256KB)", g.SM.Registers)
	}
	if g.SM.SharedMemBytes != 96*1024 {
		t.Errorf("shm = %d, want 96KB", g.SM.SharedMemBytes)
	}
	if g.SM.MaxCTAs != 32 {
		t.Errorf("max CTAs = %d, want 32", g.SM.MaxCTAs)
	}
	if g.SM.MaxWarps() != 64 {
		t.Errorf("max warps = %d, want 64", g.SM.MaxWarps())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWarps(t *testing.T) {
	if got := Baseline().SM.MaxWarps(); got != 48 {
		t.Fatalf("baseline max warps = %d, want 48", got)
	}
}

func TestMemClockRatio(t *testing.T) {
	r := Baseline().MemClockRatio()
	if r < 0.65 || r > 0.67 {
		t.Fatalf("mem clock ratio = %v, want ~0.66", r)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mutations := map[string]func(*GPU){
		"no SMs":         func(g *GPU) { g.NumSMs = 0 },
		"zero warp":      func(g *GPU) { g.SM.WarpSize = 0 },
		"ragged threads": func(g *GPU) { g.SM.MaxThreads = 100 },
		"no scheds":      func(g *GPU) { g.SM.Schedulers = 0 },
		"no regs":        func(g *GPU) { g.SM.Registers = 0 },
		"no ctas":        func(g *GPU) { g.SM.MaxCTAs = 0 },
		"bad L1":         func(g *GPU) { g.L1.SizeBytes = 1000 },
		"bad L2":         func(g *GPU) { g.L2.SizeBytes = 1000 },
		"no channels":    func(g *GPU) { g.Memory.Channels = 0 },
		"no flits":       func(g *GPU) { g.Icnt.FlitsPerCycle = 0 },
	}
	for name, mutate := range mutations {
		g := Baseline()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}
