package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Directive comment prefixes. //simlint:allow waives named rules on the
// same or the next line; //simlint:nodigest is the field-level form of a
// statecov waiver (it sits on a struct field declaration and documents why
// the field is deliberately outside the canonical-state traversal). The
// marker directives //simlint:readiness and //simlint:wakehook are not
// waivers — they declare contract surface and are parsed by the wakehook
// analyzer itself.
const (
	directivePrefix = "//simlint:allow"
	nodigestPrefix  = "//simlint:nodigest"
)

// waiver is one parsed suppression directive. Each rule named by an
// //simlint:allow comment gets its own waiver so staleness is tracked per
// rule, not per comment.
type waiver struct {
	pos    token.Position // of the directive comment
	rule   string         // analyzer name, or "all"
	kind   string         // "allow" or "nodigest"
	reason string         // the human justification after "--" (allow) or the trailing text (nodigest)
	used   bool           // set when the waiver suppresses at least one finding
}

// directives indexes waivers by file and line, suite-wide. A waiver on
// line N suppresses findings of the named rule on line N (trailing
// comment) and on line N+1 (comment above the statement). The rule name
// "all" waives every analyzer. //simlint:nodigest parses as a statecov
// waiver: the statecov analyzer reports undigested fields at their
// declaration, which is exactly where the directive sits.
type directives struct {
	// byLine maps filename -> line -> waivers declared there.
	byLine map[string]map[int][]*waiver
	// order keeps every waiver in deterministic (position) order for the
	// stale audit.
	order []*waiver
}

func collectDirectives(pkgs []*Package) *directives {
	d := &directives{byLine: make(map[string]map[int][]*waiver)}
	add := func(w *waiver) {
		lines := d.byLine[w.pos.Filename]
		if lines == nil {
			lines = make(map[int][]*waiver)
			d.byLine[w.pos.Filename] = lines
		}
		lines[w.pos.Line] = append(lines[w.pos.Line], w)
		d.order = append(d.order, w)
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := p.Fset.Position(c.Pos())
					if text, ok := strings.CutPrefix(c.Text, nodigestPrefix); ok {
						add(&waiver{
							pos:    pos,
							rule:   "statecov",
							kind:   "nodigest",
							reason: trimReason(text),
						})
						continue
					}
					text, ok := strings.CutPrefix(c.Text, directivePrefix)
					if !ok {
						continue
					}
					// Everything after "--" is the human justification.
					rules, reason, _ := strings.Cut(text, "--")
					for _, r := range strings.Fields(rules) {
						add(&waiver{pos: pos, rule: r, kind: "allow", reason: strings.TrimSpace(reason)})
					}
				}
			}
		}
	}
	sort.Slice(d.order, func(i, j int) bool { return posLess(d.order[i].pos, d.order[j].pos) })
	return d
}

// trimReason normalizes the free text after a nodigest directive: both
// "//simlint:nodigest -- reason" and "//simlint:nodigest reason" carry the
// justification.
func trimReason(text string) string {
	text = strings.TrimSpace(text)
	text = strings.TrimPrefix(text, "--")
	return strings.TrimSpace(text)
}

// allowed reports whether a finding of rule at pos is waived, marking any
// matching waiver as used (the stale audit reports the rest).
func (d *directives) allowed(pos token.Position, rule string) bool {
	lines := d.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, w := range lines[line] {
			if w.rule == rule || w.rule == "all" {
				w.used = true
				hit = true
			}
		}
	}
	return hit
}

// audit returns one "stalewaiver" diagnostic per waiver that suppressed
// nothing (restricted to rules that actually ran, so a -rules subset does
// not misreport the others' waivers) and per waiver lacking a written
// justification. Stale waivers are how contract rot hides: the code they
// excused has moved or been fixed, and the blanket suppression is waiting
// to swallow the next genuine finding on that line.
func (d *directives) audit(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, w := range d.order {
		covered := ran[w.rule] || (w.rule == "all" && len(ran) > 0)
		if !covered {
			continue
		}
		name := directivePrefix
		if w.kind == "nodigest" {
			name = nodigestPrefix
		}
		switch {
		case w.reason == "":
			out = append(out, Diagnostic{
				Pos:  w.pos,
				Rule: "stalewaiver",
				Msg:  fmt.Sprintf("%s %s has no written justification; add one after \"--\"", name, w.rule),
			})
		case !w.used:
			msg := fmt.Sprintf("%s %s suppresses no finding; the code it excused has moved or been fixed — remove it", name, w.rule)
			if w.kind == "nodigest" {
				msg = fmt.Sprintf("%s marks a field statecov does not flag (it is digested, or its type has no digest method); remove the directive", name)
			}
			out = append(out, Diagnostic{Pos: w.pos, Rule: "stalewaiver", Msg: msg})
		}
	}
	return out
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
