package lint

import (
	"go/token"
	"strings"
)

// directives indexes //simlint:allow waivers by file and line. A waiver on
// line N suppresses findings of the named rule on line N (trailing comment)
// and on line N+1 (comment above the statement). The rule name "all"
// waives every analyzer.
type directives struct {
	// byLine maps filename -> line -> set of waived rule names.
	byLine map[string]map[int]map[string]bool
}

const directivePrefix = "//simlint:allow"

func collectDirectives(p *Package) directives {
	d := directives{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Everything after "--" is the human justification.
				text, _, _ = strings.Cut(text, "--")
				pos := p.Fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					d.byLine[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = make(map[string]bool)
					lines[pos.Line] = rules
				}
				for _, r := range strings.Fields(text) {
					rules[r] = true
				}
			}
		}
	}
	return d
}

func (d directives) allowed(pos token.Position, rule string) bool {
	lines := d.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if rules := lines[line]; rules != nil && (rules[rule] || rules["all"]) {
			return true
		}
	}
	return false
}
