package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages with one shared FileSet and
// importer, so cross-package object identities resolve consistently. The
// importer compiles dependencies from source via the go command — no
// export data, no network, stdlib only.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load resolves package patterns into analyzed packages. A pattern is a
// directory, or a directory followed by "/..." for a recursive walk.
// testdata, vendor, and hidden directories are skipped, matching the go
// tool's behaviour for the ./... pattern.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = filepath.Clean(root)
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir, or (nil, nil) if dir holds no
// buildable Go files. File selection goes through go/build so build
// constraints apply — e.g. the simassert-tagged assertion bodies are
// excluded under the default (assert-off) configuration, exactly like a
// plain go build.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}

	importPath := importPathFor(dir)
	p := &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.Fset,
		Sim:        simPackage(importPath),
	}

	sort.Strings(bp.GoFiles)
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
		p.FileNames = append(p.FileNames, name)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error; the
	// errors are already captured above for the driver to surface.
	p.Types, _ = conf.Check(importPath, l.Fset, p.Files, p.Info)
	return p, nil
}

// importPathFor derives the module import path for dir by locating the
// enclosing go.mod. It falls back to the directory base name when no
// module is found; the result is only an identifier, never imported.
func importPathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.Base(dir)
	}
	for root := abs; ; {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			if mod := modulePath(data); mod != "" {
				rel, err := filepath.Rel(root, abs)
				if err != nil || rel == "." {
					return mod
				}
				return mod + "/" + filepath.ToSlash(rel)
			}
		}
		parent := filepath.Dir(root)
		if parent == root {
			return filepath.Base(abs)
		}
		root = parent
	}
}

func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// simPackage reports whether an import path falls under the determinism
// contract: simulator code under internal/, excluding the lint tool
// itself (developer tooling that never runs inside a simulation).
func simPackage(importPath string) bool {
	if !strings.Contains(importPath, "internal/") {
		return false
	}
	if strings.Contains(importPath, "internal/lint") {
		return false
	}
	return true
}
