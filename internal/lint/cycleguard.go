package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// CycleGuard flags division or modulo where the denominator is a cycle,
// tick, instruction, slot, or window count and the enclosing function
// never compares that expression against zero. This is the RunFixedCycles
// bug class from PR 2: a zero-cycle (or zero-instruction) denominator
// turns a rate into NaN/Inf — or panics for integers — exactly in the
// degenerate configurations sweeps love to produce. Constant denominators
// are exempt; internal/metrics has guarded helpers (IPC, Frac, MPKI) for
// the common rates.
var CycleGuard = &Analyzer{
	Name: "cycleguard",
	Doc:  "division/modulo by a cycle or instruction count must be zero-guarded in the same function",
	Run:  runCycleGuard,
}

// cycleish denominator name fragments (lower-cased substring match).
var cycleKeywords = []string{"cycle", "tick", "inst", "slot", "win"}

func runCycleGuard(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			guards := collectGuards(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.QUO && be.Op != token.REM) {
					return true
				}
				denom := stripConversions(p, be.Y)
				if isConstExpr(p, denom) || !cycleishExpr(denom) {
					return true
				}
				key := types.ExprString(denom)
				if guards[key] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  p.Fset.Position(be.Pos()),
					Rule: "cycleguard",
					Msg: fmt.Sprintf("unguarded %s by %q; compare it against zero first "+
						"(or use the guarded helpers in internal/metrics)", opName(be.Op), key),
				})
				return true
			})
		}
	}
	return diags
}

func opName(op token.Token) string {
	if op == token.REM {
		return "modulo"
	}
	return "division"
}

// collectGuards gathers every expression the function compares against a
// small constant (0 or 1) with ==, !=, <, <=, >, >= — `if cycles == 0 {
// return 0 }` and `if cycles > 0 { ... }` both count. The guard scope is
// the whole function: flow-sensitivity is not worth the false positives
// at this codebase's function sizes.
func collectGuards(p *Package, body *ast.BlockStmt) map[string]bool {
	guards := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		if isSmallConst(p, be.Y) {
			guards[types.ExprString(stripConversions(p, be.X))] = true
		}
		if isSmallConst(p, be.X) {
			guards[types.ExprString(stripConversions(p, be.Y))] = true
		}
		return true
	})
	return guards
}

// stripConversions unwraps parentheses and type conversions, so
// float64(s.Cycles) and s.Cycles compare equal between guard and use.
func stripConversions(p *Package, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := p.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

// isConstExpr reports whether the expression has a compile-time constant
// value (typed or untyped) — dividing by a constant needs no guard.
func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// isSmallConst matches the constants 0 and 1, the values meaningful as
// zero-guard bounds.
func isSmallConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return false
	}
	n, ok := constant.Int64Val(v)
	return ok && (n == 0 || n == 1)
}

// cycleishExpr reports whether any identifier in the expression names a
// cycle/instruction-like quantity.
func cycleishExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && cycleishName(id.Name) {
			found = true
		}
		return !found
	})
	return found
}

func cycleishName(name string) bool {
	lower := strings.ToLower(name)
	for _, kw := range cycleKeywords {
		if strings.Contains(lower, kw) {
			return true
		}
	}
	return false
}
