package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism enforces the reproducibility contract on the simulator
// packages: a run must be a pure function of its inputs, so the parallel
// experiment runner (PR 2) and every figure sweep produce byte-identical
// output regardless of scheduling, environment, or host clock.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global PRNGs, environment reads, unsanctioned " +
		"goroutines, and order-dependent map iteration in simulator packages",
	Run: runDeterminism,
}

// bannedImports are packages whose presence alone breaks reproducibility.
var bannedImports = map[string]string{
	"math/rand":    "global PRNG is seeded from the clock; use internal/rng (deterministic, seed-threaded)",
	"math/rand/v2": "PRNG state is process-global; use internal/rng (deterministic, seed-threaded)",
}

// bannedCalls maps "pkgpath.Func" to the reason it is forbidden.
var bannedCalls = map[string]string{
	"time.Now":     "wall-clock read; simulator time must derive from the cycle counter",
	"time.Since":   "wall-clock read; simulator time must derive from the cycle counter",
	"time.Until":   "wall-clock read; simulator time must derive from the cycle counter",
	"os.Getenv":    "environment read makes results depend on ambient state; thread it through Options/Config",
	"os.LookupEnv": "environment read makes results depend on ambient state; thread it through Options/Config",
	"os.Environ":   "environment read makes results depend on ambient state; thread it through Options/Config",
}

// goroutineAllow lists the sanctioned concurrency sites, as slash-separated
// file-path suffixes: the experiments worker pool (which re-joins before
// any result is observed) and the obs HTTP listener (pull-only, outside
// the simulated state).
var goroutineAllow = []string{
	"internal/experiments/parallel.go",
	"internal/obs/server.go",
}

func runDeterminism(p *Package) []Diagnostic {
	if !p.Sim {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: "determinism",
			Msg:  fmt.Sprintf(format, args...),
		})
	}

	for i, f := range p.Files {
		// Test files never ship in a simulation binary; the loader already
		// excludes them (go/build GoFiles), but keep the intent explicit.
		_ = i

		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, ok := bannedImports[path]; ok {
				report(imp, "import %q is banned in simulator packages: %s", path, why)
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil {
					key := fn.Pkg().Path() + "." + fn.Name()
					if why, ok := bannedCalls[key]; ok {
						report(n, "call to %s is banned in simulator packages: %s", key, why)
					}
				}
			case *ast.GoStmt:
				file := filepath.ToSlash(p.Fset.Position(n.Pos()).Filename)
				for _, allow := range goroutineAllow {
					if strings.HasSuffix(file, allow) {
						return true
					}
				}
				report(n, "go statement outside the sanctioned worker pool (%s); "+
					"goroutine interleaving is nondeterministic", strings.Join(goroutineAllow, ", "))
			case *ast.RangeStmt:
				checkMapRange(p, f, n, report)
			}
			return true
		})
	}
	return diags
}

// calleeFunc resolves the called function of a call expression, or nil.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// checkMapRange flags `range m` over a map whose body has order-dependent
// effects: floating-point accumulation (FP addition does not commute),
// appending to a slice declared outside the loop (element order leaks), or
// writing output (CSV/trace rows come out in map order). Iterating a map
// for order-insensitive work — summing integers, building another map —
// is fine, and so is the canonical fix itself: collecting keys into a
// slice that is then passed to sort/slices sorting in the same file.
func checkMapRange(p *Package, f *ast.File, rng *ast.RangeStmt, report func(ast.Node, string, ...any)) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if kind, target := orderDependentAssign(p, rng, n); kind != "" {
				if target != nil && sortedLater(p, f, target) {
					return false
				}
				report(rng, "map iteration order leaks: body %s; sort the keys first", kind)
				return false
			}
		case *ast.CallExpr:
			if name := outputCall(p, n); name != "" {
				report(rng, "map iteration order leaks: body writes output via %s; sort the keys first", name)
				return false
			}
		}
		return true
	})
}

// orderDependentAssign classifies an assignment inside a map-range body as
// order-dependent. It returns a description (or "") and, for appends, the
// target slice object so the caller can recognize the keys-then-sort idiom.
func orderDependentAssign(p *Package, rng *ast.RangeStmt, as *ast.AssignStmt) (string, types.Object) {
	// Floating-point compound accumulation: x += f, x -= f, x *= f, x /= f.
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
		if len(as.Lhs) == 1 && isFloat(p, as.Lhs[0]) {
			return "accumulates floating-point values (FP addition is not associative)", nil
		}
	}
	// Append to a slice that outlives the loop: x = append(x, ...).
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) {
			continue
		}
		if i < len(as.Lhs) && declaredOutside(p, rng, as.Lhs[i]) {
			var target types.Object
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				target = p.Info.Uses[id]
			}
			return "appends to a slice declared outside the loop (element order follows map order)", target
		}
	}
	return "", nil
}

// sortFuncs are the sort/slices entry points that make a collected key
// slice order-independent again.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Strings": true, "Ints": true,
	"Float64s": true, "Slice": true, "SliceStable": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedLater reports whether obj is passed to a sort call anywhere in the
// file — the collect-keys-then-sort idiom the analyzer recommends.
func sortedLater(p *Package, f *ast.File, obj types.Object) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if (pkg != "sort" && pkg != "slices") || !sortFuncs[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isFloat(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// declaredOutside reports whether the assigned expression refers to
// storage declared outside the range statement (so successive iterations
// accumulate into it in map order).
func declaredOutside(p *Package, rng *ast.RangeStmt, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[lhs]
		if obj == nil {
			obj = p.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Field or element of something addressable; conservatively treat
		// as outer storage.
		return true
	}
	return false
}

// outputCall reports whether a call writes external output (printing,
// io/csv writers, encoders), returning a short name for the message.
func outputCall(p *Package, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return "fmt." + name
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteAll", "Encode":
		return fn.Pkg().Name() + "." + name
	}
	return ""
}
