package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ObsRegister cross-checks a package's counters against its observability
// surface: every uint64 counter field (or array/slice of them) and every
// obs.Hist that the package increments must be referenced from the
// package's obs.go — directly or through package-local helpers obs.go
// calls. An incremented-but-unregistered counter silently breaks the
// per-kernel conservation invariant (PR 3) and under-reports on the
// Prometheus surface. Packages without an obs.go are exempt (they have no
// observability surface to keep in sync).
var ObsRegister = &Analyzer{
	Name: "obsregister",
	Doc:  "every counter/histogram field a package increments must be registered in its obs.go",
	Run:  runObsRegister,
}

func runObsRegister(p *Package) []Diagnostic {
	obsFile := -1
	for i, name := range p.FileNames {
		if name == "obs.go" {
			obsFile = i
			break
		}
	}
	if obsFile < 0 || p.Types == nil {
		return nil
	}

	// Field objects reachable from obs.go: seed with obs.go itself, then
	// follow package-local calls (e.g. mem's obs.go emits via Stats(),
	// which is where the per-kernel arrays are actually read).
	registered := make(map[*types.Var]bool)
	decls := packageFuncDecls(p)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(body ast.Node)
	visit = func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						registered[v] = true
					}
				}
			case *ast.Ident:
				obj := p.Info.Uses[n]
				if obj == nil {
					obj = p.Info.Defs[n]
				}
				switch obj := obj.(type) {
				case *types.Var:
					if obj.IsField() {
						registered[obj] = true
					}
				case *types.Func:
					if obj.Pkg() == p.Types {
						if d := decls[obj]; d != nil && !visited[d] {
							visited[d] = true
							visit(d.Body)
						}
					}
				}
			}
			return true
		})
	}
	visit(p.Files[obsFile])

	// Counter increment sites across the whole package.
	type site struct {
		obj  *types.Var
		pos  token.Pos
		text string
	}
	var sites []site
	seen := make(map[*types.Var]bool)
	record := func(e ast.Expr) {
		v, text := counterField(p, e)
		if v == nil || seen[v] {
			return
		}
		seen[v] = true
		sites = append(sites, site{obj: v, pos: e.Pos(), text: text})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				if n.Tok == token.INC {
					record(n.X)
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
					record(n.Lhs[0])
				}
			case *ast.CallExpr:
				// Histogram samples: <field>.Observe(v).
				if se, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && se.Sel.Name == "Observe" {
					if recv, ok := ast.Unparen(se.X).(*ast.SelectorExpr); ok && isObsHist(p, recv) {
						record(recv)
					}
				}
			}
			return true
		})
	}

	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	var diags []Diagnostic
	for _, s := range sites {
		if registered[s.obj] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:  p.Fset.Position(s.pos),
			Rule: "obsregister",
			Msg: fmt.Sprintf("counter %s is incremented here but never referenced from obs.go; "+
				"register it or the observability surface silently under-reports", s.text),
		})
	}
	return diags
}

// packageFuncDecls maps each function/method object to its declaration.
func packageFuncDecls(p *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// counterField resolves an incremented expression to a counter-typed field
// of a struct declared in this package. It unwraps indexing, so
// perK[slot]++ attributes to the perK array field. The second return is
// the field expression rendered for messages.
func counterField(p *Package, e ast.Expr) (*types.Var, string) {
	e = ast.Unparen(e)
	for {
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
			continue
		}
		break
	}
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := p.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil, ""
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok || v.Pkg() != p.Types {
		return nil, ""
	}
	if !isCounterType(v.Type()) && !isObsHistType(v.Type()) {
		return nil, ""
	}
	return v, types.ExprString(se)
}

// isCounterType reports whether t is uint64 or an array/slice of uint64 —
// the repo's counter convention.
func isCounterType(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Basic:
		return t.Kind() == types.Uint64
	case *types.Array:
		return isCounterType(t.Elem())
	case *types.Slice:
		return isCounterType(t.Elem())
	}
	return false
}

func isObsHist(p *Package, se *ast.SelectorExpr) bool {
	sel, ok := p.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return false
	}
	v, ok := sel.Obj().(*types.Var)
	return ok && v.Pkg() == p.Types && isObsHistType(v.Type())
}

// isObsHistType matches internal/obs.Hist (by value or pointer).
func isObsHistType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Hist" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}
