package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// StateCov enforces the canonical-state traversal contract (DESIGN §4):
// every field — exported and unexported — of a type with a digest or
// serializer method must be read somewhere in that method's static call
// closure, or carry a //simlint:nodigest directive naming why it is
// outside the architectural state. This closes the blind spot in the
// reflection shape test, which can fingerprint struct layout but cannot
// see whether DigestInto actually visits a field, and it is the coverage
// checker for the future checkpoint serializer: WriteState methods are
// held to the same rule the moment they exist.
var StateCov = &Analyzer{
	Name: "statecov",
	Doc: "every field of a type with a DigestInto/WriteState method must be read " +
		"in that method's call closure or carry //simlint:nodigest <reason>",
	RunAll: runStateCov,
}

// digestMethodNames are the method names held to full-field coverage.
// Unexported spellings are included because gpu.Kernel's digest hook is
// digestInto (called from the GPU's own DigestInto).
var digestMethodNames = map[string]bool{
	"DigestInto": true, "digestInto": true,
	"WriteState": true, "writeState": true,
}

func runStateCov(pkgs []*Package) []Diagnostic {
	s := newSuite(pkgs)
	var diags []Diagnostic
	// checked dedupes (type, field) pairs so a type with several digest
	// methods in the set reports each uncovered field once, attributed to
	// the first method in suite order.
	checked := make(map[string]bool)
	for _, key := range s.order {
		node := s.fns[key]
		if !node.pkg.Sim || !digestMethodNames[node.decl.Name.Name] || node.decl.Recv == nil {
			continue
		}
		sig, ok := node.obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := namedOf(sig.Recv().Type())
		if recv == nil {
			continue
		}
		st, ok := derefStruct(recv)
		if !ok {
			continue
		}
		recvKey := typeKey(recv)

		// Collect every field of the receiver type mentioned anywhere in
		// the method's call closure. A mention is any selector that
		// resolves to the field — reads and writes both count; a digest
		// method that writes its own state would be caught by review, not
		// this analyzer.
		mentioned := make(map[string]bool)
		for reached := range s.reachable(key) {
			rn := s.fns[reached]
			if rn == nil {
				continue
			}
			ast.Inspect(rn.decl.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if typ, field, ok := fieldOwner(rn.pkg, sel); ok && typ == recvKey {
					mentioned[field] = true
				}
				return true
			})
		}

		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if mentioned[f.Name()] {
				continue
			}
			pair := recvKey + "." + f.Name()
			if checked[pair] {
				continue
			}
			checked[pair] = true
			diags = append(diags, Diagnostic{
				Pos:  node.pkg.Fset.Position(f.Pos()),
				Rule: "statecov",
				Msg: fmt.Sprintf("field %s.%s is not read in %s (or its callees); digest it or mark the field //simlint:nodigest <reason>",
					shortKey(recvKey), f.Name(), node.decl.Name.Name),
			})
		}
	}
	return diags
}
