package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetermTaint upgrades the determinism analyzer from per-call-site bans to
// interprocedural taint. The per-site rules catch a time.Now in a
// simulator package, but not a helper that wraps it: once `func now()
// int64 { return time.Now().UnixNano() }` exists anywhere in the analyzed
// set, every caller launders wall-clock state past the ban. This pass
// computes, to a fixpoint over the whole package set, which functions
// *return* values derived from a nondeterminism source — wall clock,
// environment, or map iteration order — and flags every call to such a
// function from a simulator package, with the taint chain in the message.
//
// Scope (documented, deliberate): taint propagates through return values
// only. Writes of tainted values into struct fields or globals are not
// tracked — the runtime digest/schedref cross-checks cover state-borne
// nondeterminism — and a tainted argument does not taint the callee's
// result. This keeps the analysis precise enough that a finding is always
// actionable: some function in the chain really does return clock-,
// env-, or map-order-derived data.
var DetermTaint = &Analyzer{
	Name: "determtaint",
	Doc: "flag calls to functions that (transitively) return wall-clock, environment, " +
		"or map-iteration-order derived values in simulator packages",
	RunAll: runDetermTaint,
}

const mapOrderSource = "map iteration order"

func runDetermTaint(pkgs []*Package) []Diagnostic {
	s := newSuite(pkgs)

	// tainted maps funcKey -> the immediate source of its taint: a banned
	// call key ("time.Now"), mapOrderSource, or the funcKey of a tainted
	// callee whose result flows to this function's return.
	tainted := make(map[string]string)
	for changed := true; changed; {
		changed = false
		for _, key := range s.order {
			if _, done := tainted[key]; done {
				continue
			}
			if via, ok := returnsTaint(s.fns[key], tainted); ok {
				tainted[key] = via
				changed = true
			}
		}
	}

	var diags []Diagnostic
	for _, key := range s.order {
		node := s.fns[key]
		if !node.pkg.Sim {
			continue
		}
		for _, e := range node.calls {
			if e.callee == key {
				continue // recursion: the definition site carries the chain already
			}
			if _, ok := tainted[e.callee]; !ok {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:  node.pkg.Fset.Position(e.pos),
				Rule: "determtaint",
				Msg: fmt.Sprintf("call to %s returns a nondeterminism-derived value (taint: %s); "+
					"derive it from simulation state instead, or waive with //simlint:allow determtaint -- <reason>",
					shortKey(e.callee), taintChain(e.callee, tainted)),
			})
		}
	}
	return diags
}

// taintChain renders the via links from a tainted function down to the
// root source, e.g. "prof.Profiler.RareStart <- prof.Profiler.now <-
// time.Since (wall clock)".
func taintChain(key string, tainted map[string]string) string {
	var parts []string
	for hops := 0; hops < 16; hops++ {
		parts = append(parts, shortKey(key))
		via, ok := tainted[key]
		if !ok {
			break
		}
		if _, isFn := tainted[via]; !isFn {
			parts = append(parts, sourceLabel(via))
			break
		}
		key = via
	}
	return strings.Join(parts, " <- ")
}

func sourceLabel(src string) string {
	switch {
	case src == mapOrderSource:
		return src
	case strings.HasPrefix(src, "time."):
		return src + " (wall clock)"
	case strings.HasPrefix(src, "os."):
		return src + " (environment)"
	}
	return src
}

// returnsTaint reports whether fn returns a value derived from a
// nondeterminism source, and names the immediate source. The per-function
// analysis is flow-insensitive: local variables assigned from a tainted
// expression become tainted anywhere in the body, iterated to a fixpoint.
func returnsTaint(fn *fnNode, tainted map[string]string) (string, bool) {
	p := fn.pkg
	local := make(map[types.Object]string)

	// exprTaint returns the immediate taint source of an expression, or "".
	var exprTaint func(e ast.Expr) string
	exprTaint = func(e ast.Expr) string {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return exprTaint(e.X)
		case *ast.Ident:
			if obj := p.Info.Uses[e]; obj != nil {
				return local[obj]
			}
		case *ast.CallExpr:
			// Conversion int64(x) passes taint through.
			if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return exprTaint(e.Args[0])
			}
			if callee := calleeFunc(p, e); callee != nil && callee.Pkg() != nil {
				if _, banned := bannedCalls[callee.Pkg().Path()+"."+callee.Name()]; banned {
					return callee.Pkg().Path() + "." + callee.Name()
				}
				ck := funcKey(callee)
				if _, ok := tainted[ck]; ok && ck != fn.key {
					return ck
				}
			}
			// A method or function applied to a tainted operand keeps the
			// taint: time.Now().UnixNano(), tainted.Truncate(...), and
			// append(taintedSlice, x).
			if isBuiltinAppend(p, e) {
				for _, a := range e.Args {
					if via := exprTaint(a); via != "" {
						return via
					}
				}
				return ""
			}
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				return exprTaint(sel.X)
			}
		case *ast.SelectorExpr:
			// Field reads are untracked (see analyzer doc); but a
			// selector over a tainted local (x.field where x is tainted)
			// keeps the taint.
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil {
					return local[obj]
				}
			}
		case *ast.UnaryExpr:
			return exprTaint(e.X)
		case *ast.StarExpr:
			return exprTaint(e.X)
		case *ast.IndexExpr:
			return exprTaint(e.X)
		case *ast.BinaryExpr:
			if via := exprTaint(e.X); via != "" {
				return via
			}
			return exprTaint(e.Y)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if via := exprTaint(elt); via != "" {
					return via
				}
			}
		}
		return ""
	}

	taintObj := func(e ast.Expr, via string) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil || local[obj] != "" {
			return false
		}
		local[obj] = via
		return true
	}

	// Local fixpoint: propagate taint through assignments and map-order
	// slice accumulation until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					if via := exprTaint(n.Rhs[0]); via != "" {
						for _, lhs := range n.Lhs {
							if taintObj(lhs, via) {
								changed = true
							}
						}
					}
					return true
				}
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if via := exprTaint(rhs); via != "" {
						if taintObj(n.Lhs[i], via) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				// Appending to an outer slice while ranging a map bakes
				// iteration order into the slice — unless the collect-
				// then-sort idiom cleans it up later in the file.
				if tv, ok := p.Info.Types[n.X]; !ok || tv.Type == nil {
					return true
				} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				file := fileOf(p, n.Pos())
				ast.Inspect(n.Body, func(m ast.Node) bool {
					as, ok := m.(*ast.AssignStmt)
					if !ok {
						return true
					}
					if kind, target := orderDependentAssign(p, n, as); kind != "" && target != nil {
						if file != nil && sortedLater(p, file, target) {
							return true
						}
						if local[target] == "" {
							local[target] = mapOrderSource
							changed = true
						}
					}
					return true
				})
			}
			return true
		})
	}

	// A function is tainted if any returned expression is, including the
	// named results of a naked return.
	var via string
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if via != "" {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a closure's returns are not this function's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			if res := fn.decl.Type.Results; res != nil {
				for _, f := range res.List {
					for _, name := range f.Names {
						if obj := p.Info.Defs[name]; obj != nil && local[obj] != "" {
							via = local[obj]
							return false
						}
					}
				}
			}
			return true
		}
		for _, r := range ret.Results {
			if v := exprTaint(r); v != "" {
				via = v
				return false
			}
		}
		return true
	})
	return via, via != ""
}

// fileOf finds the *ast.File in p containing pos.
func fileOf(p *Package, pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
