// Package cycle_bad holds positive cases for the cycleguard analyzer.
package cycle_bad

func ipc(insts uint64, cycles int64) float64 {
	return float64(insts) / float64(cycles) // flagged: cycles unguarded
}

func phase(now int64, window int64) int64 {
	return now % window // flagged: window unguarded
}

func rate(stalls, slots uint64) float64 {
	return float64(stalls) / float64(slots) // flagged: slots unguarded
}

// A guard on a different expression does not cover the denominator.
func wrongGuard(insts uint64, cycles int64) float64 {
	if insts == 0 {
		return 0
	}
	return float64(insts) / float64(cycles) // flagged: cycles still unguarded
}
