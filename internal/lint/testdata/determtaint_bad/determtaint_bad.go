// Package determtaint_bad seeds the laundering patterns the
// interprocedural taint pass exists to catch: the per-call-site
// determinism rules flag only the innermost read (time.Now, os.Getenv,
// the map range), while every wrapper above it slips through. determtaint
// taints each function that returns a nondeterminism-derived value and
// flags its call sites, so the two-level wrapper chain below produces a
// finding at every link.
package determtaint_bad

import (
	"os"
	"time"
)

// stamp is the direct read: determinism flags the time.Now call site.
func stamp() time.Time {
	return time.Now()
}

// nowNanos launders the clock one level up: no banned call appears here,
// but the returned value derives from stamp — determtaint flags the call.
func nowNanos() int64 {
	return stamp().UnixNano()
}

// jitter is the second wrapper level: still tainted, still flagged.
func jitter() int64 {
	return nowNanos() % 1024
}

// seedLatency feeds the laundered clock into a quantity the simulation
// would consume; the call to jitter is the actionable finding.
func seedLatency() int64 {
	return jitter() + 100
}

// tenant wraps an environment read; callers inherit the taint.
func tenant() string {
	return os.Getenv("TENANT")
}

func cacheKey() string {
	return "run:" + tenant()
}

// keysOf bakes map iteration order into the returned slice (determinism
// flags the range); firstKey inherits the order-taint through the return
// value.
func keysOf(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func firstKey(m map[string]int) string {
	return keysOf(m)[0]
}
