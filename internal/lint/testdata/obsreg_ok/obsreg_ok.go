// Package obsreg_ok holds negative cases for the obsregister analyzer:
// a package without an obs.go has no observability surface to keep in
// sync, so its counters are never flagged.
package obsreg_ok

type counters struct {
	Events uint64
}

func (c *counters) bump() {
	c.Events++
}
