package obsreg_bad

// register is this package's observability surface. It reaches Hits
// directly and Emitted through a helper, so both count as registered;
// Misses, Ops, PerSlot and Latency do not appear and must be flagged at
// their increment sites.
func (e *engine) register(emit func(string, float64)) {
	emit("hits", float64(e.s.Hits))
	e.emitHists(emit)
}

func (e *engine) emitHists(emit func(string, float64)) {
	_ = e.s.Emitted
	emit("emitted", 0)
}
