// Package obsreg_bad holds positive cases for the obsregister analyzer:
// counters incremented here but absent from obs.go must be flagged.
package obsreg_bad

import "warpedslicer/internal/obs"

type stats struct {
	Hits     uint64
	Misses   uint64
	Ops      uint64
	PerSlot  [4]uint64
	Latency  obs.Hist
	Emitted  obs.Hist
	notACtr  int
	fraction float64
}

type engine struct {
	s stats
}

func (e *engine) work(slot int, lat int64) {
	e.s.Hits++          // registered in obs.go: ok
	e.s.Misses++        // flagged: never referenced from obs.go
	e.s.Ops += 2        // flagged: never referenced from obs.go
	e.s.PerSlot[slot]++ // flagged: never referenced from obs.go
	e.s.Latency.Observe(lat)
	e.s.Emitted.Observe(lat)
	e.s.notACtr++       // int, not a counter: ignored
	e.s.fraction += 1.5 // float, not a counter: ignored
}
