// Package determtaint_ok pins the sanctioned shapes: a wall-clock helper
// whose read and whose single consumer both carry written waivers (the
// internal/prof metering pattern), and the collect-keys-then-sort idiom
// that makes a map-derived slice order-independent again — no taint, no
// findings.
package determtaint_ok

import (
	"sort"
	"time"
)

// hostNanos is host-cost metering: the clock read itself is waived, and
// because the function returns the value, every caller needs either a fix
// or a justified determtaint waiver.
func hostNanos() int64 {
	//simlint:allow determinism -- host-cost metering stamp; exported to telemetry, never read by the model
	return time.Now().UnixNano()
}

// meter is the one sanctioned consumer; the waiver names why the taint
// stops here.
func meter() int64 {
	//simlint:allow determtaint -- host-cost metering; the value feeds counters exported after the run, never simulation state
	return hostNanos()
}

// sortedKeys is the canonical cleanup: collecting into a slice is fine
// once the slice is sorted before use, so neither determinism (map range)
// nor determtaint (return taint) fires.
func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func first(m map[string]int) string {
	ks := sortedKeys(m)
	if len(ks) == 0 {
		return ""
	}
	return ks[0]
}
