// Package determ_timer pins the approved wall-clock windowed-timer idiom
// used by the engine self-profiler (internal/prof): clock reads are
// allowed in simulator packages only behind a simlint waiver, only to
// measure the host's cost of simulating, and only on a sampled subset of
// cycles so nothing downstream of the reading can feed back into
// simulation state. Every other clock read stays banned — the final
// function shows the finding an unwaived read produces.
package determ_timer

import "time"

// windowTimer accumulates host-side phase cost on elected cycles.
type windowTimer struct {
	last  time.Time
	spent [4]int64 // ns per phase; observability output, never sim input
}

// startCycle stamps the window's origin. The waiver is legitimate
// because the stamp is taken before any simulation work and the value is
// only ever subtracted from a later stamp — simulated state never
// branches on it.
func (w *windowTimer) startCycle() {
	//simlint:allow determinism -- profiler origin stamp; host-cost metering only, never read by the model
	w.last = time.Now()
}

// mark charges the time since the previous stamp to one phase. Same
// argument: the delta feeds counters that are exported, not consumed.
func (w *windowTimer) mark(phase int) {
	//simlint:allow determinism -- profiler phase delta; host-cost metering only, never read by the model
	d := time.Since(w.last)
	w.spent[phase] += d.Nanoseconds()
	w.last = w.last.Add(d)
}

// seedFromClock is the leak the analyzer exists to catch: the clock
// value reaches a quantity the simulation consumes, so two runs of the
// same configuration diverge. No waiver — this one must be flagged.
func seedFromClock() int64 {
	return time.Now().UnixNano()
}
