// Package wakehook_bad seeds the readiness-contract violations: a state
// transition on a //simlint:readiness field performed by a function that
// neither reaches the //simlint:wakehook hook nor is shielded by hooked
// callers. This is the PR 7 bug class — the ready set silently diverges
// from a rescan until the schedref cross-check catches a byte divergence.
package wakehook_bad

type warp struct {
	//simlint:readiness
	state int
	pc    uint64
}

type sched struct {
	warps []*warp
	ready []int
}

// markStale is the registered wake hook.
//
//simlint:wakehook
func (s *sched) markStale(i int) {
	s.ready = append(s.ready, i)
}

// block performs the transition and the readiness update — legal.
func (s *sched) block(i int) {
	s.warps[i].state = 1
	s.markStale(i)
}

// silentTransition forgets the readiness update entirely — flagged.
func (s *sched) silentTransition(i int) {
	s.warps[i].state = 2
}

// bump mutates through an IncDecStmt, still without a hook — flagged.
func (s *sched) bump(i int) {
	s.warps[i].state++
}

// transition is a leaf mutator: it would be legal if every caller were
// hooked, but drain below is not, so the write is flagged (the unhooked
// path exists).
func (w *warp) transition(v int) {
	w.state = v
}

func (s *sched) wake(i int) {
	s.warps[i].transition(0)
	s.markStale(i)
}

func (s *sched) drain(i int) {
	s.warps[i].transition(3)
}

// advance writes an untagged field; no hook required.
func (s *sched) advance(i int) {
	s.warps[i].pc++
}
