package obsreg_span

// register is this package's observability surface. It reaches Sampled
// directly and the nested per-kernel counters through emitKernel, so
// Stages, EndToEnd and Completed all count as registered; Dropped never
// appears and must be flagged at its increment site.
func (c *collector) register(emit func(string, float64)) {
	emit("sampled", float64(c.t.Sampled))
	for k := range c.t.PerKernel {
		c.emitKernel(k, emit)
	}
}

func (c *collector) emitKernel(k int, emit func(string, float64)) {
	t := &c.t.PerKernel[k]
	emit("completed", float64(t.Completed))
	emit("end_to_end", float64(t.EndToEnd))
	for _, v := range t.Stages {
		emit("stage", float64(v))
	}
}
