// Package obsreg_span mirrors the span collector's aggregation shape:
// counters nested one struct and two array indexes deep
// (totals.PerKernel[k].Stages[st] += d), some bumped through a pointer
// into the array element. The analyzer must attribute each increment to
// its field through every layer and match it against obs.go.
package obsreg_span

type stageTotals struct {
	Stages    [8]uint64
	EndToEnd  uint64
	Completed uint64
	Dropped   uint64
}

type totals struct {
	PerKernel [4]stageTotals
	Sampled   uint64
}

type collector struct {
	t totals
}

func (c *collector) complete(k, st int, d uint64) {
	c.t.Sampled++                    // registered in obs.go: ok
	c.t.PerKernel[k].Stages[st] += d // registered via emitKernel: ok
	pk := &c.t.PerKernel[k]
	pk.EndToEnd += d // registered through the element pointer: ok
	pk.Completed++   // registered: ok
	pk.Dropped++     // flagged: never referenced from obs.go
}
