// Package stalewaiver exercises the waiver audit: directives that
// suppress no finding are themselves findings (rule "stalewaiver"), and
// so are waivers with no written justification. Stale waivers are how
// contract rot hides — the code they excused has moved or been fixed, and
// the leftover suppression is waiting to swallow the next real finding on
// that line.
package stalewaiver

type hasher struct{ acc uint64 }

func (h *hasher) U64(v uint64) { h.acc = h.acc*31 + v }

type counter struct {
	ticks uint64
	//simlint:nodigest -- stale: the field IS digested below, so this directive suppresses nothing
	beats uint64
}

func (c *counter) DigestInto(h *hasher) {
	h.U64(c.ticks)
	h.U64(c.beats)
}

// rate already guards the denominator, so the waiver below it suppresses
// nothing — reported as stale.
func rate(done, cycles uint64) uint64 {
	if cycles == 0 {
		return 0
	}
	//simlint:allow cycleguard -- stale: the guard above already handles zero
	return done / cycles
}

// perCycle's waiver does suppress a real cycleguard finding, but carries
// no justification — reported for the missing reason.
func perCycle(done, cycles uint64) uint64 {
	//simlint:allow cycleguard
	return done / cycles
}

// frac shows the healthy case: a used waiver with a reason produces no
// audit finding.
func frac(part, cycles uint64) uint64 {
	//simlint:allow cycleguard -- caller validates cycles > 0 at config parse time
	return part / cycles
}
