// Package wakehook_ok pins every legal way to write a //simlint:readiness
// field: inside the hook itself, in a function that transitively reaches
// the hook, in a leaf mutator whose every caller is hooked, in a
// constructor's composite literal (the object is not yet scheduler-
// visible), and behind an explicit waiver with a written reason.
package wakehook_ok

type warp struct {
	//simlint:readiness
	state int
}

type sched struct {
	warps []*warp
	ready []int
}

// markStale is the registered wake hook; it may touch readiness state
// itself.
//
//simlint:wakehook
func (s *sched) markStale(i int) {
	s.ready = append(s.ready, i)
}

// sleep reaches the hook directly.
func (s *sched) sleep(i int) {
	s.warps[i].state = 1
	s.markStale(i)
}

// wakeAll reaches the hook through an intermediate call.
func (s *sched) wakeAll() {
	for i := range s.warps {
		s.sleep(i)
	}
}

// transition is a leaf mutator with no hook of its own; it is legal
// because its only callers (sleep2, below) are hooked.
func (w *warp) transition(v int) {
	w.state = v
}

func (s *sched) sleep2(i int) {
	s.warps[i].transition(2)
	s.markStale(i)
}

// newWarp initializes state in a composite literal: a brand-new warp is
// not yet scheduler-visible, so constructors are exempt by construction.
func newWarp() *warp {
	return &warp{state: 1}
}

// reset is unreachable from the hook, but the caller contract is written
// down: the waiver keeps the finding suppressed and audited.
func (s *sched) reset(i int) {
	s.warps[i].state = 0 //simlint:allow wakehook -- caller rebuilds the whole ready set immediately after reset
}
