// Package determ_ok holds negative cases for the determinism analyzer:
// nothing here may be flagged.
package determ_ok

import (
	"sort"
	"time"
)

// Integer accumulation over a map is order-independent.
func sumInts(counts map[string]uint64) uint64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// Building another map is order-independent.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// The canonical fix: collect keys, sort, iterate — the key-collecting
// append inside the map range must not be flagged.
func sortedSum(weights map[string]float64) float64 {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += weights[k]
	}
	return total
}

// An explicit duration constant is fine; only clock reads are banned.
const pollInterval = 50 * time.Millisecond

// Appending inside a range over a slice is ordered input, not a map.
func copySlice(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// A waived goroutine: the justification directive suppresses the finding.
func waived(done chan struct{}) {
	//simlint:allow determinism -- test fixture for the waiver mechanism
	go func() {
		close(done)
	}()
}
