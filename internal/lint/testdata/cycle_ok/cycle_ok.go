// Package cycle_ok holds negative cases for the cycleguard analyzer.
package cycle_ok

// The denominator is compared against zero in the same function.
func ipc(insts uint64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(insts) / float64(cycles)
}

// A positive-direction guard also counts.
func rate(stalls, slots uint64) float64 {
	out := 0.0
	if slots > 0 {
		out = float64(stalls) / float64(slots)
	}
	return out
}

// Constant denominators need no guard.
func bucket(cycle int64) int64 {
	const lanes = 32
	return cycle / lanes
}

// Non-cycleish denominators are out of scope.
func mean(sum float64, n int) float64 {
	return sum / float64(n)
}

// A waiver with justification suppresses the finding.
func waived(insts uint64, cycles int64) float64 {
	//simlint:allow cycleguard -- caller validates cycles > 0
	return float64(insts) / float64(cycles)
}
