// Package statecov_ok pins the compliant shapes: every field of a
// digested type is either read in the digest method's call closure
// (directly or through a helper) or carries a //simlint:nodigest
// directive with a written reason.
package statecov_ok

type hasher struct{ acc uint64 }

func (h *hasher) U64(v uint64) { h.acc = h.acc*31 + v }

type core struct {
	pc    uint64
	stall uint64
	//simlint:nodigest -- derived: recomputed from pc on restore, never diverges on its own
	scratch uint64
}

func (c *core) DigestInto(h *hasher) {
	h.U64(c.pc)
	c.digestRest(h)
}

// digestRest pins the transitive rule: a read inside a callee counts.
func (c *core) digestRest(h *hasher) {
	h.U64(c.stall)
}
