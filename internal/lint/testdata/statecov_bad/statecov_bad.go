// Package statecov_bad seeds the violations the statecov analyzer exists
// to catch: a field of a digested type that the digest method never reads
// (the "removed a field read" regression), and a serializer WriteState
// method with the same gap. Both fields lack //simlint:nodigest, so both
// must be flagged.
package statecov_bad

// hasher stands in for digest.Hasher; statecov matches digest methods by
// name, not by parameter type, so fixtures stay dependency-free.
type hasher struct{ acc uint64 }

func (h *hasher) U64(v uint64) { h.acc = h.acc*31 + v }

// core is architectural state: pc and stall are digested (stall through a
// helper, pinning the transitive-read rule), but scratch is silently
// skipped — exactly the drift DigestInto reviews miss.
type core struct {
	pc      uint64
	stall   uint64
	scratch uint64
}

func (c *core) DigestInto(h *hasher) {
	h.U64(c.pc)
	c.digestRest(h)
}

func (c *core) digestRest(h *hasher) {
	h.U64(c.stall)
}

// snap is a future-serializer shape: WriteState methods are held to the
// same coverage rule the moment they exist, so the unwritten note field
// is flagged too.
type snap struct {
	cycles uint64
	note   string
}

func (s *snap) WriteState(h *hasher) {
	h.U64(s.cycles)
}
