// Package determ_bad holds positive cases for the determinism analyzer:
// every construct here must produce exactly one finding.
package determ_bad

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func ambient() string {
	return os.Getenv("WS_SEED")
}

func prng() int {
	return rand.Int()
}

func spawn(done chan struct{}) {
	go func() {
		close(done)
	}()
}

func accumulate(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return total
}

func collect(rows map[int]string) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r)
	}
	return out
}

func dump(rows map[int]string) {
	for k, v := range rows {
		fmt.Println(k, v)
	}
}
