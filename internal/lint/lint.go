// Package lint is simlint's analysis engine: a stdlib-only (go/parser,
// go/ast, go/types — no module dependencies) static-analysis suite that
// machine-checks the two contracts this repository's results rest on:
//
//   - byte-identical reproducibility: the parallel experiment runner and
//     every figure sweep assume a simulation is a pure function of its
//     inputs, so wall-clock reads, ambient environment, global PRNGs,
//     unsanctioned goroutines, and order-dependent map iteration are
//     forbidden in the simulator packages (analyzer "determinism");
//   - counter conservation: every counter a package increments must be
//     registered on that package's observability surface (obs.go), or the
//     per-kernel/SM-wide conservation invariants and the Prometheus
//     endpoint silently under-report (analyzer "obsregister"); and
//     divisions by cycle or instruction counts must be zero-guarded, the
//     bug class that produced NaN rows in early CSV output (analyzer
//     "cycleguard").
//
// Findings can be waived with an explicit justification comment on the
// offending line (or the line above):
//
//	//simlint:allow <rule> -- <reason>
//
// The cmd/simlint driver runs every analyzer over a package pattern and
// exits non-zero on any unwaived finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	// Dir is the package directory; ImportPath its module import path
	// (used only as an identifier for testdata packages).
	Dir        string
	ImportPath string

	Fset  *token.FileSet
	Files []*ast.File
	// FileNames holds the base name of each file, parallel to Files.
	FileNames []string

	Types *types.Package
	Info  *types.Info

	// Sim marks packages subject to the determinism contract: the
	// simulator packages under internal/, minus the lint tool itself
	// (developer tooling, not part of any simulated run).
	Sim bool

	// TypeErrors collects type-checker errors. The tree must build before
	// linting (CI runs go build first); errors degrade analysis precision,
	// so the driver reports them and fails.
	TypeErrors []error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one named analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, ObsRegister, CycleGuard}
}

// Run applies the given analyzers to every package, drops findings waived
// by //simlint:allow directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		dirs := collectDirectives(p)
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if dirs.allowed(d.Pos, a.Name) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
