// Package lint is simlint's analysis engine: a stdlib-only (go/parser,
// go/ast, go/types — no module dependencies) static-analysis suite that
// machine-checks the contracts this repository's results rest on:
//
//   - byte-identical reproducibility: the parallel experiment runner and
//     every figure sweep assume a simulation is a pure function of its
//     inputs, so wall-clock reads, ambient environment, global PRNGs,
//     unsanctioned goroutines, and order-dependent map iteration are
//     forbidden in the simulator packages (analyzer "determinism"); the
//     interprocedural companion "determtaint" propagates the same sources
//     through return values, so a wrapper helper cannot launder a
//     time.Now past the per-call-site bans;
//   - counter conservation: every counter a package increments must be
//     registered on that package's observability surface (obs.go), or the
//     per-kernel/SM-wide conservation invariants and the Prometheus
//     endpoint silently under-report (analyzer "obsregister"); and
//     divisions by cycle or instruction counts must be zero-guarded, the
//     bug class that produced NaN rows in early CSV output (analyzer
//     "cycleguard");
//   - canonical state: every field of a type with a DigestInto (or future
//     WriteState serializer) method is read inside that method's call
//     closure or carries a //simlint:nodigest directive naming why it is
//     outside the architectural state (analyzer "statecov");
//   - readiness maintenance: fields tagged //simlint:readiness may only be
//     written by functions that transitively reach a //simlint:wakehook
//     function, so a new state transition cannot forget the ready-set
//     update (analyzer "wakehook").
//
// Findings can be waived with an explicit justification comment on the
// offending line (or the line above):
//
//	//simlint:allow <rule> -- <reason>
//
// and struct fields deliberately excluded from digesting carry the
// field-level form:
//
//	//simlint:nodigest <reason>
//
// Waivers that suppress nothing are themselves reported by the
// "stalewaiver" audit (cmd/simlint -strict-waivers). The cmd/simlint
// driver runs every analyzer over a package pattern and exits non-zero on
// any unwaived finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	// Dir is the package directory; ImportPath its module import path
	// (used only as an identifier for testdata packages).
	Dir        string
	ImportPath string

	Fset  *token.FileSet
	Files []*ast.File
	// FileNames holds the base name of each file, parallel to Files.
	FileNames []string

	Types *types.Package
	Info  *types.Info

	// Sim marks packages subject to the determinism contract: the
	// simulator packages under internal/, minus the lint tool itself
	// (developer tooling, not part of any simulated run).
	Sim bool

	// TypeErrors collects type-checker errors. The tree must build before
	// linting (CI runs go build first); errors degrade analysis precision,
	// so the driver reports them and fails.
	TypeErrors []error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Analyzer is one named analysis pass. Per-package passes set Run;
// interprocedural passes that need the whole loaded package set at once
// (call graphs, cross-package taint) set RunAll instead.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
	// RunAll receives every loaded package in one call; diagnostics are
	// waiver-filtered exactly like Run's.
	RunAll func([]*Package) []Diagnostic
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, ObsRegister, CycleGuard, StateCov, WakeHook, DetermTaint}
}

// Run applies the given analyzers to every package, drops findings waived
// by //simlint:allow directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	findings, _ := RunAudited(pkgs, analyzers)
	return findings
}

// RunAudited is Run plus the waiver audit: the second slice reports
// directives that suppressed no finding of any analyzer that ran (rule
// "stalewaiver"), for -strict-waivers mode. Both slices are sorted by
// position.
func RunAudited(pkgs []*Package, analyzers []*Analyzer) (findings, stale []Diagnostic) {
	dirs := collectDirectives(pkgs)
	ran := make(map[string]bool, len(analyzers))
	emit := func(name string, ds []Diagnostic) {
		for _, d := range ds {
			if dirs.allowed(d.Pos, name) {
				continue
			}
			findings = append(findings, d)
		}
	}
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.RunAll != nil {
			emit(a.Name, a.RunAll(pkgs))
			continue
		}
		for _, p := range pkgs {
			emit(a.Name, a.Run(p))
		}
	}
	stale = dirs.audit(ran)
	SortDiagnostics(findings)
	SortDiagnostics(stale)
	return findings, stale
}

// SortDiagnostics orders diagnostics by file, line, column, then rule —
// the canonical output order for the CLI and golden fixtures.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}
