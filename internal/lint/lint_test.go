package lint

import (
	"strings"
	"testing"
)

// TestLoadSkipsTestdata checks the recursive pattern walk excludes
// testdata (and so the fixture packages never leak into a ./... run).
func TestLoadSkipsTestdata(t *testing.T) {
	pkgs, err := NewLoader().Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("testdata package loaded: %s", p.Dir)
		}
		if p.ImportPath != "warpedslicer/internal/lint" {
			t.Errorf("unexpected package under internal/lint: %s", p.ImportPath)
		}
	}
}

// TestSimPackageScope pins which packages the determinism contract
// covers: simulator code under internal/, minus the lint tool itself and
// anything outside internal/ (cmd, examples — wall-clock use is
// legitimate there).
func TestSimPackageScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"warpedslicer/internal/sm", true},
		{"warpedslicer/internal/experiments", true},
		{"warpedslicer/internal/assert", true},
		{"warpedslicer/internal/lint", false},
		{"warpedslicer/internal/lint/testdata/determ_bad", false},
		{"warpedslicer/cmd/wslicer", false},
		{"warpedslicer/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := simPackage(c.path); got != c.want {
			t.Errorf("simPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestDirectiveParsing checks waiver placement: same line and the line
// above suppress, two lines above does not, and "all" waives any rule.
func TestDirectiveParsing(t *testing.T) {
	loader := NewLoader()
	p, err := loader.LoadDir("testdata/cycle_ok")
	if err != nil {
		t.Fatal(err)
	}
	d := collectDirectives([]*Package{p})
	var file string
	for f := range d.byLine {
		file = f
	}
	if file == "" {
		t.Fatal("no directives collected from testdata/cycle_ok")
	}
	var line int
	for l := range d.byLine[file] {
		line = l
	}
	pos := p.Fset.Position(p.Files[0].Pos())
	pos.Line = line
	if !d.allowed(pos, "cycleguard") {
		t.Errorf("directive on line %d does not waive its own line", line)
	}
	pos.Line = line + 1
	if !d.allowed(pos, "cycleguard") {
		t.Errorf("directive on line %d does not waive the next line", line)
	}
	pos.Line = line + 2
	if d.allowed(pos, "cycleguard") {
		t.Errorf("directive on line %d must not waive two lines below", line)
	}
	pos.Line = line
	if d.allowed(pos, "determinism") {
		t.Error("cycleguard waiver must not cover other rules")
	}
}
