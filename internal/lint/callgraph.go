package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The interprocedural analyzers (statecov, wakehook, determtaint) share a
// static call graph over the whole loaded package set. Nodes are keyed by
// string ("pkgpath.Recv.Name" for methods, "pkgpath.Name" for functions)
// rather than by *types.Func identity: the loader type-checks each
// directly-loaded package with a source importer, so a dependency that is
// also loaded directly exists twice as distinct types.Object trees — the
// string key unifies the two views.

// fnNode is one function declaration in the analyzed set.
type fnNode struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func
	// calls lists static call sites inside the body (including calls from
	// function literals declared in it — a closure's effects belong to the
	// function that runs it or stores it).
	calls []callEdge
}

// callEdge is one call site.
type callEdge struct {
	callee string // funcKey of the resolved callee
	pos    token.Pos
}

// suite is the call graph plus indexes the interprocedural analyzers need.
type suite struct {
	pkgs []*Package
	// fns maps funcKey -> node for every FuncDecl with a body in pkgs.
	fns map[string]*fnNode
	// order lists the keys of fns in deterministic (package, file,
	// position) order so analyzer output never depends on map iteration.
	order []string
	// callers indexes reverse edges: callee key -> caller keys (deduped,
	// sorted). Only calls resolved to suite functions appear.
	callers map[string][]string
}

func newSuite(pkgs []*Package) *suite {
	s := &suite{pkgs: pkgs, fns: make(map[string]*fnNode), callers: make(map[string][]string)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := funcKey(obj)
				node := &fnNode{key: key, pkg: p, decl: fd, obj: obj}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeFunc(p, call); callee != nil {
						node.calls = append(node.calls, callEdge{callee: funcKey(callee), pos: call.Pos()})
					}
					return true
				})
				s.fns[key] = node
				s.order = append(s.order, key)
			}
		}
	}
	seen := make(map[[2]string]bool)
	for _, key := range s.order {
		for _, e := range s.fns[key].calls {
			if _, inSuite := s.fns[e.callee]; !inSuite {
				continue
			}
			pair := [2]string{e.callee, key}
			if seen[pair] {
				continue
			}
			seen[pair] = true
			s.callers[e.callee] = append(s.callers[e.callee], key)
		}
	}
	for _, cs := range s.callers {
		sort.Strings(cs)
	}
	return s
}

// reachable returns the set of suite functions reachable from start by
// following static call edges, including start itself.
func (s *suite) reachable(start string) map[string]bool {
	seen := map[string]bool{start: true}
	work := []string{start}
	for len(work) > 0 {
		key := work[len(work)-1]
		work = work[:len(work)-1]
		node := s.fns[key]
		if node == nil {
			continue
		}
		for _, e := range node.calls {
			if !seen[e.callee] {
				seen[e.callee] = true
				work = append(work, e.callee)
			}
		}
	}
	return seen
}

// funcKey builds the suite-wide string key for a function object:
// "pkgpath.Recv.Name" for methods (pointerness erased), "pkgpath.Name"
// otherwise.
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return pkg + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// shortKey trims the import-path prefix of a funcKey or typeKey down to
// the last path element, for readable messages: "warpedslicer/internal/sm.SM.markStale"
// -> "sm.SM.markStale".
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// typeKey is the suite-wide key of a named type: "pkgpath.Name".
func typeKey(n *types.Named) string {
	obj := n.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + obj.Name()
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// fieldOwner resolves a selector expression that denotes a struct field
// access to ("pkgpath.Type", fieldName). It returns ok=false for method
// selections, package-qualified identifiers, and fields of unnamed types.
func fieldOwner(p *Package, sel *ast.SelectorExpr) (typ string, field string, ok bool) {
	selection, found := p.Info.Selections[sel]
	if !found || selection.Kind() != types.FieldVal {
		return "", "", false
	}
	if _, isVar := selection.Obj().(*types.Var); !isVar {
		return "", "", false
	}
	// Walk the selection's index path from the receiver type so embedded
	// promotions attribute the field to the struct that declares it.
	t := selection.Recv()
	idx := selection.Index()
	for i, fi := range idx {
		owner := namedOf(t)
		st, isStruct := derefStruct(t)
		if !isStruct || fi >= st.NumFields() {
			return "", "", false
		}
		f := st.Field(fi)
		if i == len(idx)-1 {
			if owner == nil {
				return "", "", false
			}
			return typeKey(owner), f.Name(), true
		}
		t = f.Type()
	}
	return "", "", false
}

// derefStruct unwraps one level of pointer, then named, down to a struct.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}
