package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata expect.golden files")

// TestGolden runs the full analyzer suite over each testdata package and
// compares the rendered diagnostics against the package's expect.golden.
// Regenerate with: go test ./internal/lint -run TestGolden -update
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			p, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if p == nil {
				t.Fatalf("no buildable Go files in %s", dir)
			}
			for _, terr := range p.TypeErrors {
				t.Errorf("testdata must type-check: %v", terr)
			}
			// Testdata exercises the simulator-package rules regardless of
			// its location under internal/lint.
			p.Sim = true

			// Goldens pin findings and the stale-waiver audit together, so
			// fixtures exercise both sides of every directive.
			findings, stale := RunAudited([]*Package{p}, Analyzers())
			var b strings.Builder
			for _, d := range append(findings, stale...) {
				fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
			}
			got := b.String()

			golden := filepath.Join(dir, "expect.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
