package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WakeHook enforces the ready-set maintenance contract from the PR 7
// scheduler rewrite: every mutation of scheduler-visible warp/resident
// state must be followed by a readiness update (markStale and friends), or
// the incrementally-maintained ready set silently diverges from a rescan —
// the bug class the schedref cross-check catches only after the fact, as a
// byte divergence.
//
// The contract surface is declared in source with two markers:
//
//	//simlint:readiness   on a struct field: writes to it require a hook
//	//simlint:wakehook    on a function: this is a readiness-update hook
//
// A write to a readiness field is legal inside a function that (a) is a
// hook, (b) transitively calls a hook over the static call graph, or (c)
// has at least one caller and every caller is itself hooked — case (c)
// covers leaf mutators like warp.Issue whose sm-side callers perform the
// markStale. Composite-literal initialization (constructors) is exempt:
// a brand-new object is not yet scheduler-visible.
var WakeHook = &Analyzer{
	Name: "wakehook",
	Doc: "fields tagged //simlint:readiness may only be written by functions that " +
		"transitively reach a //simlint:wakehook function",
	RunAll: runWakeHook,
}

const (
	readinessMarker = "//simlint:readiness"
	wakehookMarker  = "//simlint:wakehook"
)

func runWakeHook(pkgs []*Package) []Diagnostic {
	s := newSuite(pkgs)
	readiness := readinessFields(pkgs)
	if len(readiness) == 0 {
		return nil
	}

	// Seed: explicitly tagged hook functions.
	hooked := make(map[string]bool)
	for _, key := range s.order {
		if hasMarker(s.fns[key].decl.Doc, wakehookMarker) {
			hooked[key] = true
		}
	}

	// Case (b): reverse-reachability over the caller index — a function
	// from which some hook is reachable by forward calls is exactly a
	// function reachable from that hook by reverse (caller) edges.
	work := make([]string, 0, len(hooked))
	for k := range hooked {
		work = append(work, k)
	}
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range s.callers[k] {
			if !hooked[caller] {
				hooked[caller] = true
				work = append(work, caller)
			}
		}
	}

	// Case (c) fixpoint: a function whose every caller is hooked inherits
	// hooked-ness (the readiness update happens around the call).
	for changed := true; changed; {
		changed = false
		for _, k := range s.order {
			if hooked[k] {
				continue
			}
			callers := s.callers[k]
			if len(callers) == 0 {
				continue
			}
			all := true
			for _, c := range callers {
				if !hooked[c] {
					all = false
					break
				}
			}
			if all {
				hooked[k] = true
				changed = true
			}
		}
	}

	var diags []Diagnostic
	for _, key := range s.order {
		node := s.fns[key]
		if !node.pkg.Sim || hooked[key] {
			continue
		}
		reportWrite := func(pos token.Pos, field string) {
			diags = append(diags, Diagnostic{
				Pos:  node.pkg.Fset.Position(pos),
				Rule: "wakehook",
				Msg: fmt.Sprintf("readiness field %s is written in %s, which neither reaches a wake hook nor is called only from hooked functions; "+
					"add the readiness update or tag the hook with %s", shortKey(field), shortKey(key), wakehookMarker),
			})
		}
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if f, ok := writtenReadinessField(node.pkg, lhs, readiness); ok {
						reportWrite(lhs.Pos(), f)
					}
				}
			case *ast.IncDecStmt:
				if f, ok := writtenReadinessField(node.pkg, n.X, readiness); ok {
					reportWrite(n.Pos(), f)
				}
			}
			return true
		})
	}
	return diags
}

// writtenReadinessField resolves an assignment target down to a readiness
// field key, peeling index expressions (s.have[i] = v mutates field have).
func writtenReadinessField(p *Package, lhs ast.Expr, readiness map[string]bool) (string, bool) {
	e := ast.Unparen(lhs)
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	typ, field, ok := fieldOwner(p, sel)
	if !ok {
		return "", false
	}
	key := typ + "." + field
	if !readiness[key] {
		return "", false
	}
	return key, true
}

// readinessFields collects "pkgpath.Type.field" keys for every struct
// field carrying the //simlint:readiness marker (in its doc comment or
// trailing line comment).
func readinessFields(pkgs []*Package) map[string]bool {
	out := make(map[string]bool)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := tn.Type().(*types.Named)
					if !ok {
						continue
					}
					tkey := typeKey(named)
					for _, field := range st.Fields.List {
						if !hasMarker(field.Doc, readinessMarker) && !hasMarker(field.Comment, readinessMarker) {
							continue
						}
						for _, name := range field.Names {
							out[tkey+"."+name.Name] = true
						}
					}
				}
			}
		}
	}
	return out
}

// hasMarker reports whether any comment in the group is the given marker
// (alone or followed by explanatory text).
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}
