// Package metrics computes the evaluation metrics used in the paper:
// IPC, geometric means, stall and utilization fractions, and the
// multiprogramming fairness metrics of Figure 9 (minimum speedup and
// average normalized turnaround time).
package metrics

import (
	"errors"
	"math"
)

// IPC returns instructions per cycle.
func IPC(insts uint64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(insts) / float64(cycles)
}

// Gmean returns the geometric mean of strictly positive values.
func Gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ErrMismatch reports slices of different lengths.
var ErrMismatch = errors.New("metrics: slice length mismatch")

// Speedups returns per-kernel shared-mode speedups: sharedIPC[i]/aloneIPC[i].
// In a multiprogrammed run each kernel's IPC is its instruction count over
// the cycles until it finished.
func Speedups(sharedIPC, aloneIPC []float64) ([]float64, error) {
	if len(sharedIPC) != len(aloneIPC) {
		return nil, ErrMismatch
	}
	out := make([]float64, len(sharedIPC))
	for i := range sharedIPC {
		if aloneIPC[i] <= 0 {
			return nil, errors.New("metrics: non-positive alone IPC")
		}
		out[i] = sharedIPC[i] / aloneIPC[i]
	}
	return out, nil
}

// MinSpeedup is the paper's fairness metric (Figure 9a): the minimum
// per-kernel speedup relative to running alone.
func MinSpeedup(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	m := speedups[0]
	for _, s := range speedups[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

// ANTT is the average normalized turnaround time (Figure 9b): the mean of
// per-kernel slowdowns (1/speedup). Lower is better; 1.0 is no slowdown.
func ANTT(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range speedups {
		if s <= 0 {
			return math.Inf(1)
		}
		sum += 1 / s
	}
	return sum / float64(len(speedups))
}

// WeightedSpeedup is the sum of per-kernel speedups (system throughput).
func WeightedSpeedup(speedups []float64) float64 {
	sum := 0.0
	for _, s := range speedups {
		sum += s
	}
	return sum
}

// Frac returns a/b, or 0 when b is 0.
func Frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// MPKI returns misses per kilo-instruction.
func MPKI(misses, insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(insts)
}
