package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIPC(t *testing.T) {
	if !almost(IPC(100, 50), 2) {
		t.Fatal("IPC(100,50) != 2")
	}
	if IPC(100, 0) != 0 {
		t.Fatal("IPC with zero cycles should be 0")
	}
}

func TestGmean(t *testing.T) {
	if !almost(Gmean([]float64{2, 8}), 4) {
		t.Fatalf("gmean(2,8) = %v, want 4", Gmean([]float64{2, 8}))
	}
	if Gmean(nil) != 0 {
		t.Fatal("gmean of empty should be 0")
	}
	if Gmean([]float64{1, 0}) != 0 {
		t.Fatal("gmean with non-positive should be 0")
	}
}

func TestGmeanBetweenMinAndMaxProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Gmean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestSpeedups(t *testing.T) {
	s, err := Speedups([]float64{2, 3}, []float64{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s[0], 0.5) || !almost(s[1], 1) {
		t.Fatalf("speedups = %v", s)
	}
	if _, err := Speedups([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Fatal("length mismatch not detected")
	}
	if _, err := Speedups([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero alone IPC not detected")
	}
}

func TestMinSpeedupAndANTT(t *testing.T) {
	sp := []float64{0.5, 0.8}
	if !almost(MinSpeedup(sp), 0.5) {
		t.Fatal("min speedup wrong")
	}
	// ANTT = mean(1/0.5, 1/0.8) = mean(2, 1.25) = 1.625
	if !almost(ANTT(sp), 1.625) {
		t.Fatalf("ANTT = %v, want 1.625", ANTT(sp))
	}
	if MinSpeedup(nil) != 0 || ANTT(nil) != 0 {
		t.Fatal("empty metrics should be 0")
	}
	if !math.IsInf(ANTT([]float64{0}), 1) {
		t.Fatal("ANTT with zero speedup should be +Inf")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	if !almost(WeightedSpeedup([]float64{0.5, 0.8}), 1.3) {
		t.Fatal("weighted speedup wrong")
	}
}

func TestFracAndMPKI(t *testing.T) {
	if !almost(Frac(1, 4), 0.25) || Frac(1, 0) != 0 {
		t.Fatal("Frac wrong")
	}
	if !almost(MPKI(5, 1000), 5) || MPKI(5, 0) != 0 {
		t.Fatal("MPKI wrong")
	}
}

// Property: ANTT >= 1/MinSpeedup / n relation — specifically ANTT is at
// least 1/max-speedup and at most 1/min-speedup.
func TestANTTBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sp := make([]float64, len(raw))
		for i, r := range raw {
			sp[i] = float64(r%100)/100 + 0.01
		}
		antt := ANTT(sp)
		min, max := sp[0], sp[0]
		for _, s := range sp {
			min = math.Min(min, s)
			max = math.Max(max, s)
		}
		return antt <= 1/min+1e-9 && antt >= 1/max-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
