package cache

import (
	"testing"
	"testing/quick"
)

func newTest() *Cache { return New(1024, 64, 4, 4) } // 4 sets, 4-way

func TestMissThenHit(t *testing.T) {
	c := newTest()
	if got := c.Access(0x100, false); got != Miss {
		t.Fatalf("first access = %v, want Miss", got)
	}
	c.Fill(0x100)
	if got := c.Access(0x100, false); got != Hit {
		t.Fatalf("after fill = %v, want Hit", got)
	}
	if got := c.Access(0x13f, false); got != Hit {
		t.Fatalf("same line other byte = %v, want Hit", got)
	}
}

func TestMissMerge(t *testing.T) {
	c := newTest()
	if got := c.Access(0x200, false); got != Miss {
		t.Fatalf("first = %v, want Miss", got)
	}
	if got := c.Access(0x200, false); got != MissMerged {
		t.Fatalf("second = %v, want MissMerged", got)
	}
	if c.Stats.Merged != 1 {
		t.Fatalf("merged count = %d, want 1", c.Stats.Merged)
	}
}

func TestMSHRExhaustion(t *testing.T) {
	c := newTest() // 4 MSHRs
	for i := 0; i < 4; i++ {
		if got := c.Access(uint64(i)*64, false); got != Miss {
			t.Fatalf("access %d = %v, want Miss", i, got)
		}
	}
	if !c.MSHRFull() {
		t.Fatal("MSHRFull should be true")
	}
	if got := c.Access(5*64, false); got != ReservationFail {
		t.Fatalf("fifth distinct miss = %v, want ReservationFail", got)
	}
	// Merges still allowed when full.
	if got := c.Access(0, false); got != MissMerged {
		t.Fatalf("merge while full = %v, want MissMerged", got)
	}
	c.Fill(0)
	if c.MSHRFull() {
		t.Fatal("fill should release an MSHR")
	}
}

func TestLRUEviction(t *testing.T) {
	// One set: line addresses that map to set 0 are multiples of 4*64=256.
	c := newTest()
	for i := 0; i < 4; i++ {
		c.Access(uint64(i)*256, false)
		c.Fill(uint64(i) * 256)
	}
	// Touch lines 1..3 so line 0 is LRU.
	for i := 1; i < 4; i++ {
		if got := c.Access(uint64(i)*256, false); got != Hit {
			t.Fatalf("line %d should hit", i)
		}
	}
	c.Access(4*256, false)
	c.Fill(4 * 256)
	if got := c.Access(0, false); got != Miss {
		t.Fatalf("evicted LRU line should miss, got %v", got)
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestStoresWriteThroughNoAllocate(t *testing.T) {
	c := newTest()
	if got := c.Access(0x300, true); got != Miss {
		t.Fatalf("store miss = %v, want Miss", got)
	}
	if c.MSHRInUse() != 0 {
		t.Fatal("store must not allocate an MSHR")
	}
	// Store to a resident line hits and refreshes LRU.
	c.Access(0x400, false)
	c.Fill(0x400)
	if got := c.Access(0x400, true); got != Hit {
		t.Fatalf("store to resident line = %v, want Hit", got)
	}
	if c.Stats.Stores != 2 {
		t.Fatalf("stores = %d, want 2", c.Stats.Stores)
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := newTest()
	if c.Probe(0x500) {
		t.Fatal("probe of absent line reported present")
	}
	if c.Stats.Loads != 0 || c.MSHRInUse() != 0 {
		t.Fatal("probe mutated state")
	}
	c.Access(0x500, false)
	c.Fill(0x500)
	if !c.Probe(0x500) {
		t.Fatal("probe of resident line reported absent")
	}
}

func TestHasMSHR(t *testing.T) {
	c := newTest()
	c.Access(0x600, false)
	if !c.HasMSHR(0x600) || !c.HasMSHR(0x63f) {
		t.Fatal("HasMSHR should see outstanding line")
	}
	c.Fill(0x600)
	if c.HasMSHR(0x600) {
		t.Fatal("HasMSHR should clear after fill")
	}
}

func TestFillIdempotentWhenPresent(t *testing.T) {
	c := newTest()
	c.Access(0x700, false)
	c.Fill(0x700)
	c.Fill(0x700) // racing fill: must not duplicate the line
	present := 0
	for i := 0; i < 4; i++ {
		if c.Probe(0x700) {
			present = 1
		}
	}
	if present != 1 {
		t.Fatal("line not present exactly once")
	}
}

func TestReset(t *testing.T) {
	c := newTest()
	c.Access(0x100, false)
	c.Fill(0x100)
	c.Reset()
	if c.Probe(0x100) || c.MSHRInUse() != 0 || c.Stats.Loads != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestMissRate(t *testing.T) {
	c := newTest()
	c.Access(0x100, false) // miss
	c.Fill(0x100)
	c.Access(0x100, false) // hit
	if mr := c.Stats.MissRate(); mr != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", mr)
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Fatal("empty stats miss rate should be 0")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1000, 64, 3, 4) // 1000 not divisible by 192
}

// Property: after Fill(addr), Access(addr) hits, for arbitrary addresses.
func TestFillThenHitProperty(t *testing.T) {
	c := New(16*1024, 128, 4, 64)
	f := func(addr uint64) bool {
		switch c.Access(addr, false) {
		case Hit:
			return true
		case Miss, MissMerged:
			c.Fill(addr)
			return c.Access(addr, false) == Hit
		default: // ReservationFail
			c.Fill(addr)
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: MSHR occupancy never exceeds the configured maximum.
func TestMSHRBoundProperty(t *testing.T) {
	c := New(4096, 64, 2, 8)
	f := func(addrs []uint64) bool {
		for _, a := range addrs {
			c.Access(a, false)
			if c.MSHRInUse() > 8 {
				return false
			}
			if c.MSHRInUse() == 8 {
				// Drain one arbitrary MSHR to keep making progress.
				c.Fill(a)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: working sets no larger than one way-count per set never evict
// under repeated access (LRU retention).
func TestSmallWorkingSetAlwaysHitsProperty(t *testing.T) {
	c := New(1024, 64, 4, 16) // 4 sets x 4 ways
	// 4 lines in distinct sets, accessed repeatedly after initial fill.
	lines := []uint64{0, 64, 128, 192}
	for _, a := range lines {
		c.Access(a, false)
		c.Fill(a)
	}
	for round := 0; round < 50; round++ {
		for _, a := range lines {
			if got := c.Access(a, false); got != Hit {
				t.Fatalf("round %d addr %#x = %v, want Hit", round, a, got)
			}
		}
	}
}

// TestEvictionAgeHistogram: every eviction records the victim's age on the
// LRU clock, so the histogram count tracks Stats.Evictions exactly.
func TestEvictionAgeHistogram(t *testing.T) {
	c := newTest() // 4 sets, 4-way
	// Fill one set beyond capacity: lines mapping to set 0 are 64-byte
	// lines at stride sets*64 = 256.
	for i := 0; i < 6; i++ {
		addr := uint64(i) * 256
		if c.Access(addr, false) == Miss {
			c.Fill(addr)
		}
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("no evictions; test is vacuous")
	}
	if got := c.EvictionAge.Count(); got != c.Stats.Evictions {
		t.Fatalf("eviction-age observations = %d, Stats.Evictions = %d", got, c.Stats.Evictions)
	}
	c.Reset()
	if c.EvictionAge.Count() != 0 {
		t.Fatal("Reset did not clear the eviction-age histogram")
	}
}
