// Package cache implements the set-associative, MSHR-backed caches used for
// both the per-SM L1 data caches and the per-memory-partition L2 banks
// (Table I: 16KB 4-way L1 with 64 MSHRs; 128KB 8-way L2 per channel).
//
// Loads allocate on miss; stores are write-through no-allocate, mirroring
// the GPGPU-Sim global-memory policy the paper models. Timing is owned by
// the caller: Access classifies the access and manages MSHR state, Fill
// installs the line when the refill returns.
package cache

import (
	"fmt"

	"warpedslicer/internal/assert"
	"warpedslicer/internal/obs"
)

// Result classifies an access.
type Result uint8

const (
	// Hit: line present; data available after the hit latency.
	Hit Result = iota
	// Miss: line absent; a new downstream request must be issued and an
	// MSHR has been allocated.
	Miss
	// MissMerged: line absent but an MSHR for it is already outstanding;
	// no new downstream request is needed.
	MissMerged
	// ReservationFail: no MSHR available; the access must be retried
	// (structural stall).
	ReservationFail
)

func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MissMerged:
		return "merged"
	case ReservationFail:
		return "resfail"
	default:
		return fmt.Sprintf("Result(%d)", uint8(r))
	}
}

type line struct {
	tag   uint64
	valid bool
	used  uint64 // LRU stamp
}

// Stats counts cache activity.
type Stats struct {
	Loads     uint64 // load accesses (excluding MSHR-full retries)
	LoadHits  uint64
	LoadMiss  uint64 // includes merged misses
	Stores    uint64
	Fills     uint64
	Merged    uint64
	ResFails  uint64
	Evictions uint64
	Probes    uint64 // side-effect-free presence checks (Probe)
}

// MissRate returns load misses / loads.
func (s Stats) MissRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadMiss) / float64(s.Loads)
}

// Cache is one set-associative cache with an MSHR file.
type Cache struct {
	sets      int    //simlint:nodigest -- config: cache geometry, fixed at construction
	assoc     int    //simlint:nodigest -- config: cache geometry, fixed at construction
	lineBytes uint64 //simlint:nodigest -- config: cache geometry, fixed at construction
	mshrMax   int    //simlint:nodigest -- config: cache geometry, fixed at construction

	lines []line // sets*assoc, row-major by set
	mshr  map[uint64]struct{}
	tick  uint64

	Stats Stats

	// EvictionAge records, for each eviction, how many cache operations
	// (the LRU clock) the victim survived since its last touch. A
	// left-shifted distribution means lines die before reuse — the
	// thrashing signature intra-SM sharing can induce.
	//simlint:nodigest -- observability: exported histogram; the digest pins Stats counters instead
	EvictionAge obs.Hist
}

// New constructs a cache. sizeBytes must be divisible by lineBytes*assoc.
func New(sizeBytes, lineBytes, assoc, mshrs int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || assoc <= 0 || mshrs <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry size=%d line=%d assoc=%d mshrs=%d",
			sizeBytes, lineBytes, assoc, mshrs))
	}
	if sizeBytes%(lineBytes*assoc) != 0 {
		panic(fmt.Sprintf("cache: size %d not divisible by line*assoc %d", sizeBytes, lineBytes*assoc))
	}
	sets := sizeBytes / (lineBytes * assoc)
	return &Cache{
		sets:      sets,
		assoc:     assoc,
		lineBytes: uint64(lineBytes),
		mshrMax:   mshrs,
		lines:     make([]line, sets*assoc),
		mshr:      make(map[uint64]struct{}, mshrs),
	}
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (c.lineBytes - 1) }

// setIndex distributes lines across sets; the tag is the full line address.
func (c *Cache) setIndex(lineAddr uint64) int {
	return int((lineAddr / c.lineBytes) % uint64(c.sets))
}

// Access performs a load or store lookup.
//
// Loads: Hit, Miss (MSHR allocated; caller must send the refill request and
// later call Fill), MissMerged (caller waits on the existing refill), or
// ReservationFail (caller retries later).
//
// Stores: write-through no-allocate. A store returns Hit if the line is
// present (updating LRU) and Miss otherwise; it never allocates an MSHR and
// the caller always forwards the store downstream.
func (c *Cache) Access(addr uint64, write bool) Result {
	la := c.LineAddr(addr)
	set := c.setIndex(la)
	c.tick++

	base := set * c.assoc
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == la {
			l.used = c.tick
			if write {
				c.Stats.Stores++
			} else {
				c.Stats.Loads++
				c.Stats.LoadHits++
			}
			return Hit
		}
	}
	if write {
		c.Stats.Stores++
		return Miss
	}
	if _, ok := c.mshr[la]; ok {
		c.Stats.Loads++
		c.Stats.LoadMiss++
		c.Stats.Merged++
		return MissMerged
	}
	if len(c.mshr) >= c.mshrMax {
		c.Stats.ResFails++
		return ReservationFail
	}
	c.mshr[la] = struct{}{}
	if assert.Enabled && len(c.mshr) > c.mshrMax {
		assert.Failf("cache: MSHR overflow after allocation: %d > %d", len(c.mshr), c.mshrMax)
	}
	c.Stats.Loads++
	c.Stats.LoadMiss++
	return Miss
}

// Probe reports whether the line containing addr is present, without
// touching LRU state or the access statistics (it counts only itself, so
// profiling probe traffic never skews hit/miss rates).
func (c *Cache) Probe(addr uint64) bool {
	c.Stats.Probes++
	la := c.LineAddr(addr)
	base := c.setIndex(la) * c.assoc
	for i := 0; i < c.assoc; i++ {
		l := c.lines[base+i]
		if l.valid && l.tag == la {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr (refill completion) and releases
// its MSHR if one is outstanding. Victim selection is LRU.
func (c *Cache) Fill(addr uint64) {
	la := c.LineAddr(addr)
	delete(c.mshr, la)
	set := c.setIndex(la)
	base := set * c.assoc
	c.tick++
	c.Stats.Fills++

	victim := base
	var oldest uint64 = ^uint64(0)
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == la { // already present (e.g. racing fills)
			l.used = c.tick
			return
		}
		if !l.valid {
			victim, oldest = base+i, 0
			continue
		}
		if l.used < oldest {
			victim, oldest = base+i, l.used
		}
	}
	if c.lines[victim].valid {
		c.Stats.Evictions++
		c.EvictionAge.Observe(int64(c.tick - c.lines[victim].used))
	}
	c.lines[victim] = line{tag: la, valid: true, used: c.tick}
}

// HasMSHR reports whether a refill for the line containing addr is already
// outstanding.
func (c *Cache) HasMSHR(addr uint64) bool {
	_, ok := c.mshr[c.LineAddr(addr)]
	return ok
}

// MSHRInUse returns the number of outstanding MSHRs.
func (c *Cache) MSHRInUse() int { return len(c.mshr) }

// MSHRFull reports whether no MSHR is available.
func (c *Cache) MSHRFull() bool { return len(c.mshr) >= c.mshrMax }

// Reset clears all lines, MSHRs and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.mshr = make(map[uint64]struct{}, c.mshrMax)
	c.tick = 0
	c.Stats = Stats{}
	c.EvictionAge = obs.Hist{}
}
