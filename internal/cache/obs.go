package cache

import "warpedslicer/internal/obs"

// EmitObs publishes the cache counters through an obs collector callback.
// The label pairs distinguish the cache instance (e.g. "cache","l1",
// "sm","3"); callers that own a Stats copy (aggregates) can emit it
// directly without a Cache.
func (s Stats) EmitObs(emit obs.Emit, kv ...string) {
	c := func(name string, v uint64) {
		emit(obs.Label(name, kv...), obs.Counter, float64(v))
	}
	c("ws_cache_loads_total", s.Loads)
	c("ws_cache_load_hits_total", s.LoadHits)
	c("ws_cache_load_misses_total", s.LoadMiss)
	c("ws_cache_stores_total", s.Stores)
	c("ws_cache_fills_total", s.Fills)
	c("ws_cache_merged_total", s.Merged)
	c("ws_cache_resfails_total", s.ResFails)
	c("ws_cache_evictions_total", s.Evictions)
	c("ws_cache_probes_total", s.Probes)
}

// Register wires this cache's live counters into the registry under the
// given labels, including the eviction-age histogram and the LRU clock
// (ws_cache_ops_total — the denominator for eviction-age rates, since the
// histogram's x-axis is measured in cache operations).
func (c *Cache) Register(r *obs.Registry, kv ...string) {
	r.Collector(func(emit obs.Emit) {
		c.Stats.EmitObs(emit, kv...)
		emit(obs.Label("ws_cache_ops_total", kv...), obs.Counter, float64(c.tick))
		c.EvictionAge.Emit(emit, "ws_cache_eviction_age_ops", kv...)
	})
}
