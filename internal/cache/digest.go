package cache

import (
	"slices"

	"warpedslicer/internal/digest"
)

// DigestInto walks the cache's architectural state: every line's tag,
// validity and LRU stamp in set order, the outstanding MSHRs in sorted
// address order, the LRU clock, and the access statistics. The eviction
// age histogram is excluded — it is pure observability and never feeds
// back into timing.
func (c *Cache) DigestInto(h *digest.Hasher) {
	h.Int(len(c.lines))
	for i := range c.lines {
		l := &c.lines[i]
		h.U64(l.tag)
		h.Bool(l.valid)
		h.U64(l.used)
	}
	keys := make([]uint64, 0, len(c.mshr))
	for la := range c.mshr {
		keys = append(keys, la)
	}
	slices.Sort(keys)
	h.Int(len(keys))
	for _, la := range keys {
		h.U64(la)
	}
	h.U64(c.tick)
	c.Stats.DigestInto(h)
}

// DigestInto hashes the counter block field by field.
func (s *Stats) DigestInto(h *digest.Hasher) {
	h.U64(s.Loads)
	h.U64(s.LoadHits)
	h.U64(s.LoadMiss)
	h.U64(s.Stores)
	h.U64(s.Fills)
	h.U64(s.Merged)
	h.U64(s.ResFails)
	h.U64(s.Evictions)
	h.U64(s.Probes)
}
