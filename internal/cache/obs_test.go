package cache

import (
	"testing"

	"warpedslicer/internal/obs"
)

// TestRegisterEmitsOpsCounter pins the obsregister fix: the LRU clock is
// the denominator for eviction-age rates, so Register must expose it as
// ws_cache_ops_total (one tick per Access or Fill).
func TestRegisterEmitsOpsCounter(t *testing.T) {
	c := newTest()
	c.Access(0x100, false) // miss, allocates MSHR
	c.Fill(0x100)
	c.Access(0x100, false) // hit

	r := obs.NewRegistry()
	c.Register(r)
	snap := r.Snapshot()

	if !snap.Has("ws_cache_ops_total") {
		t.Fatal("ws_cache_ops_total not emitted")
	}
	if got := snap.Get("ws_cache_ops_total"); got != 3 {
		t.Errorf("ws_cache_ops_total = %v, want 3 (2 accesses + 1 fill)", got)
	}
}
