package digest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// MarshalJSON renders a Sum as a fixed-width hex string.
func (s Sum) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON parses the hex form written by MarshalJSON.
func (s *Sum) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	v, err := strconv.ParseUint(str, 16, 64)
	if err != nil {
		return fmt.Errorf("digest: bad sum %q: %w", str, err)
	}
	*s = Sum(v)
	return nil
}

func (s Sum) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// ParseSum parses the fixed-width hex form produced by String — the
// inverse used by tooling that round-trips sums through text (run keys,
// CLI arguments).
func ParseSum(s string) (Sum, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("digest: bad sum %q: %w", s, err)
	}
	return Sum(v), nil
}

// Component is one named component's digest at a recorded cycle.
// Components appear in a fixed order within a Record; the order is part
// of the chain.
type Component struct {
	Name string `json:"name"`
	Sum  Sum    `json:"sum"`
}

// Counters are the key architectural counters snapshotted alongside each
// digest record — enough for a black-box reader to orient a crash window
// without replaying the run.
type Counters struct {
	Issued      uint64 `json:"issued"`
	ThreadInsts uint64 `json:"thread_insts"`
	L2Misses    uint64 `json:"l2_misses"`
	DRAMServed  uint64 `json:"dram_served"`
}

// Record is one digested cycle: the per-component sums, the chain digest
// (which commits to every prior record of the run), and key counters.
type Record struct {
	Cycle      int64       `json:"cycle"`
	Chain      Sum         `json:"chain"`
	Components []Component `json:"components"`
	Counters   Counters    `json:"counters"`
}

// ChainStep folds one cycle's component digests into the running chain:
// chain' = H(chain, cycle, name_0, sum_0, ..., name_n, sum_n). Because
// each step absorbs the previous chain, equal chains at cycle N imply
// equal digests at every recorded cycle up to N.
func ChainStep(prev Sum, cycle int64, comps []Component) Sum {
	h := NewHasher()
	h.U64(uint64(prev))
	h.I64(cycle)
	h.Int(len(comps))
	for _, c := range comps {
		h.Str(c.Name)
		h.U64(uint64(c.Sum))
	}
	return h.Sum()
}

// Trail is an append-only digest trail: every recorded cycle of a run,
// in order, with the chain threaded through.
type Trail struct {
	Records []Record
	chain   Sum
}

// Append records one cycle and returns the completed record (with the
// chain filled in).
func (t *Trail) Append(cycle int64, comps []Component, counters Counters) Record {
	t.chain = ChainStep(t.chain, cycle, comps)
	rec := Record{Cycle: cycle, Chain: t.chain, Components: comps, Counters: counters}
	t.Records = append(t.Records, rec)
	return rec
}

// AppendRecord appends a pre-chained record (a producer feeding several
// sinks computes the chain once; the record's chain becomes the trail's).
func (t *Trail) AppendRecord(rec Record) {
	t.Records = append(t.Records, rec)
	t.chain = rec.Chain
}

// Chain is the current chain digest (the last record's, or zero).
func (t *Trail) Chain() Sum { return t.chain }

// WriteJSONL streams the trail one Record per line.
func (t *Trail) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrailJSONL parses a trail written by WriteJSONL. The chain is
// restored from the last record, so a loaded trail can be extended.
func ReadTrailJSONL(r io.Reader) (*Trail, error) {
	t := &Trail{}
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	if n := len(t.Records); n > 0 {
		t.chain = t.Records[n-1].Chain
	}
	return t, nil
}

// Divergence locates the first difference between two digest trails.
type Divergence struct {
	// Cycle is the first recorded cycle at which the trails differ.
	Cycle int64 `json:"cycle"`
	// Component names the first differing component at that cycle, or is
	// empty when the difference is structural (see Kind).
	Component string `json:"component,omitempty"`
	// Kind classifies the difference: "component" (a component digest
	// differs), "chain" (component sums match but the chains differ —
	// the trails have different histories before their common window),
	// "cycle" (the records sample different cycles), or "length" (one
	// trail ends early).
	Kind string `json:"kind"`
	// A and B are the differing sums (component sums for "component",
	// chain sums for "chain"; record counts for "length").
	A Sum `json:"a"`
	B Sum `json:"b"`
}

func (d Divergence) String() string {
	switch d.Kind {
	case "component":
		return fmt.Sprintf("first divergence at cycle %d in component %q: %s vs %s", d.Cycle, d.Component, d.A, d.B)
	case "chain":
		return fmt.Sprintf("chains differ at cycle %d (%s vs %s) with equal components: histories diverged before the compared window", d.Cycle, d.A, d.B)
	case "cycle":
		return fmt.Sprintf("record cadence differs: cycle %d on one side vs %d on the other", int64(d.A), int64(d.B))
	default:
		return fmt.Sprintf("trail lengths differ: %d vs %d records (first missing cycle %d)", int64(d.A), int64(d.B), d.Cycle)
	}
}

// Compare bisects two record sequences and reports the first divergence.
// The second result is false when the trails are identical.
func Compare(a, b []Record) (Divergence, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		ra, rb := &a[i], &b[i]
		if ra.Cycle != rb.Cycle {
			return Divergence{Cycle: ra.Cycle, Kind: "cycle", A: Sum(ra.Cycle), B: Sum(rb.Cycle)}, true
		}
		if ra.Chain == rb.Chain {
			continue
		}
		if d, ok := compareComponents(ra, rb); ok {
			return d, true
		}
		return Divergence{Cycle: ra.Cycle, Kind: "chain", A: ra.Chain, B: rb.Chain}, true
	}
	if len(a) != len(b) {
		cyc := int64(0)
		if len(a) > n {
			cyc = a[n].Cycle
		} else if len(b) > n {
			cyc = b[n].Cycle
		}
		return Divergence{Cycle: cyc, Kind: "length", A: Sum(len(a)), B: Sum(len(b))}, true
	}
	return Divergence{}, false
}

func compareComponents(ra, rb *Record) (Divergence, bool) {
	n := len(ra.Components)
	if len(rb.Components) < n {
		n = len(rb.Components)
	}
	for i := 0; i < n; i++ {
		ca, cb := ra.Components[i], rb.Components[i]
		if ca.Name != cb.Name {
			return Divergence{Cycle: ra.Cycle, Component: ca.Name + "/" + cb.Name, Kind: "component", A: ca.Sum, B: cb.Sum}, true
		}
		if ca.Sum != cb.Sum {
			return Divergence{Cycle: ra.Cycle, Component: ca.Name, Kind: "component", A: ca.Sum, B: cb.Sum}, true
		}
	}
	if len(ra.Components) != len(rb.Components) {
		return Divergence{Cycle: ra.Cycle, Kind: "component", Component: "(count)",
			A: Sum(len(ra.Components)), B: Sum(len(rb.Components))}, true
	}
	return Divergence{}, false
}
