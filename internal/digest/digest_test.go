package digest_test

import (
	"bytes"
	"testing"

	"warpedslicer/internal/digest"
)

func TestHasherDeterministic(t *testing.T) {
	feed := func() digest.Sum {
		h := digest.NewHasher()
		h.U64(42)
		h.I64(-7)
		h.Str("l1")
		h.Bool(true)
		h.F64(0.25)
		h.Bytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
		return h.Sum()
	}
	if feed() != feed() {
		t.Fatal("identical write sequences produced different sums")
	}
}

func TestHasherOrderAndFramingMatter(t *testing.T) {
	sum := func(f func(h *digest.Hasher)) digest.Sum {
		h := digest.NewHasher()
		f(h)
		return h.Sum()
	}
	a := sum(func(h *digest.Hasher) { h.U64(1); h.U64(2) })
	b := sum(func(h *digest.Hasher) { h.U64(2); h.U64(1) })
	if a == b {
		t.Fatal("swapped write order left the sum unchanged")
	}
	// String framing: ("ab","c") must not alias ("a","bc").
	c := sum(func(h *digest.Hasher) { h.Str("ab"); h.Str("c") })
	d := sum(func(h *digest.Hasher) { h.Str("a"); h.Str("bc") })
	if c == d {
		t.Fatal("string boundary aliased")
	}
	// Sum must not consume the stream.
	h := digest.NewHasher()
	h.U64(9)
	s1 := h.Sum()
	if s2 := h.Sum(); s1 != s2 {
		t.Fatalf("Sum is not idempotent: %s vs %s", s1, s2)
	}
}

func comps(vals ...uint64) []digest.Component {
	names := []string{"sm0", "sm1", "mem"}
	out := make([]digest.Component, len(vals))
	for i, v := range vals {
		out[i] = digest.Component{Name: names[i%len(names)], Sum: digest.Sum(v)}
	}
	return out
}

func TestChainCommitsToHistory(t *testing.T) {
	var a, b digest.Trail
	a.Append(0, comps(1, 2, 3), digest.Counters{})
	b.Append(0, comps(1, 2, 9), digest.Counters{}) // differs at cycle 0
	// Identical state from cycle 64 on: chains must still differ.
	ra := a.Append(64, comps(4, 5, 6), digest.Counters{})
	rb := b.Append(64, comps(4, 5, 6), digest.Counters{})
	if ra.Chain == rb.Chain {
		t.Fatal("chain at cycle 64 forgot the cycle-0 divergence")
	}
	d, ok := digest.Compare(a.Records, b.Records)
	if !ok || d.Cycle != 0 || d.Component != "mem" || d.Kind != "component" {
		t.Fatalf("Compare = %+v, ok=%v; want component \"mem\" at cycle 0", d, ok)
	}
}

func TestCompareIdenticalAndLength(t *testing.T) {
	var a, b digest.Trail
	for cyc := int64(0); cyc < 5; cyc++ {
		a.Append(cyc*64, comps(uint64(cyc), 7, 8), digest.Counters{Issued: uint64(cyc)})
		b.Append(cyc*64, comps(uint64(cyc), 7, 8), digest.Counters{Issued: uint64(cyc)})
	}
	if d, ok := digest.Compare(a.Records, b.Records); ok {
		t.Fatalf("identical trails reported divergent: %+v", d)
	}
	b.Append(5*64, comps(9, 7, 8), digest.Counters{})
	d, ok := digest.Compare(a.Records, b.Records)
	if !ok || d.Kind != "length" || d.Cycle != 5*64 {
		t.Fatalf("Compare = %+v, ok=%v; want length divergence at cycle %d", d, ok, 5*64)
	}
}

func TestTrailJSONLRoundTrip(t *testing.T) {
	var tr digest.Trail
	for cyc := int64(0); cyc < 3; cyc++ {
		tr.Append(cyc*128, comps(uint64(cyc)+10, 20, 30), digest.Counters{ThreadInsts: 99})
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := digest.ReadTrailJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadTrailJSONL: %v", err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(tr.Records))
	}
	if d, ok := digest.Compare(tr.Records, got.Records); ok {
		t.Fatalf("round trip changed the trail: %+v", d)
	}
	if got.Chain() != tr.Chain() {
		t.Fatalf("round trip lost the chain: %s vs %s", got.Chain(), tr.Chain())
	}
	if got.Records[0].Counters.ThreadInsts != 99 {
		t.Fatalf("counters lost in round trip: %+v", got.Records[0].Counters)
	}
}

func TestRingEvictsOldestFirst(t *testing.T) {
	r := digest.NewRing(4)
	for cyc := int64(0); cyc < 10; cyc++ {
		r.Append(cyc, comps(uint64(cyc), 0, 0), digest.Counters{})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot kept %d records, want 4", len(snap))
	}
	for i, rec := range snap {
		if want := int64(6 + i); rec.Cycle != want {
			t.Fatalf("snapshot[%d].Cycle = %d, want %d (oldest-first)", i, rec.Cycle, want)
		}
	}
	// The ring chain matches a full trail over the same records.
	var tr digest.Trail
	for cyc := int64(0); cyc < 10; cyc++ {
		tr.Append(cyc, comps(uint64(cyc), 0, 0), digest.Counters{})
	}
	if r.Chain() != tr.Chain() {
		t.Fatalf("ring chain %s != trail chain %s over identical records", r.Chain(), tr.Chain())
	}
}

func TestBlackBoxRoundTrip(t *testing.T) {
	r := digest.NewRing(2)
	r.Append(100, comps(1, 2, 3), digest.Counters{DRAMServed: 5})
	bb := &digest.BlackBox{
		DigestVersion: digest.Version,
		Reason:        "simassert: waiters out of sync",
		Cycle:         100,
		Chain:         r.Chain(),
		RecordsTotal:  r.Total(),
		Records:       r.Snapshot(),
	}
	var buf bytes.Buffer
	if err := bb.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := digest.ReadBlackBox(&buf)
	if err != nil {
		t.Fatalf("ReadBlackBox: %v", err)
	}
	if got.Reason != bb.Reason || got.Cycle != 100 || got.Chain != bb.Chain || len(got.Records) != 1 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.Records[0].Counters.DRAMServed != 5 {
		t.Fatalf("counters lost: %+v", got.Records[0].Counters)
	}
}

func TestSumJSONHex(t *testing.T) {
	s := digest.Sum(0xdeadbeefcafef00d)
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeefcafef00d"` {
		t.Fatalf("MarshalJSON = %s", b)
	}
	var back digest.Sum
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: %x != %x", uint64(back), uint64(s))
	}
}

func TestParseSum(t *testing.T) {
	s := digest.Sum(0xdeadbeefcafef00d)
	got, err := digest.ParseSum(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("ParseSum(String) = %x, want %x", uint64(got), uint64(s))
	}
	for _, bad := range []string{"", "zz", "not-hex", "deadbeefcafef00d0"} {
		if _, err := digest.ParseSum(bad); err == nil {
			t.Errorf("ParseSum(%q) accepted", bad)
		}
	}
}
