// Package digest is the canonical-state hashing layer: every simulated
// component walks its architectural state in a fixed, documented order
// into a Hasher, and the per-component sums roll up into a chained
// whole-GPU digest per cycle. Two simulator states are "the same" exactly
// when their digests match; the walk order doubles as the traversal
// contract a future checkpoint/restore serializer will reuse (ROADMAP
// item 5).
//
// The package is stdlib-only and fully deterministic: fixed-width
// little-endian-style word encoding, no maps, no clocks. Digests are
// diagnostic identities, not cryptographic commitments.
package digest

import (
	"encoding/binary"
	"math"
)

// Version tags the canonical traversal. It MUST be bumped whenever the
// digested state set changes — a field added to or removed from any
// digested struct, a component added to the roll-up, or a change to the
// walk order. The version is mixed into every Hasher seed, so digests
// from different traversal versions never compare equal by accident.
// TestDigestedStructShapes pins the digested struct shapes to this
// constant.
const Version = 1

// Sum is a 64-bit component or chain digest. It marshals to JSON as a
// fixed-width hex string: JSON tooling (jq, Python) reads float64
// numbers and silently corrupts integers above 2^53.
type Sum uint64

// Digester is implemented by every simulated component that contributes
// architectural state to the whole-GPU digest. Implementations must walk
// state in a fixed order, sort any map keys before hashing, and skip
// derived caches (state reconstructible from what is already hashed) and
// pure observability (histograms, spans, wall-clock profilers) — see
// DESIGN.md "The canonical-state traversal contract".
type Digester interface {
	DigestInto(h *Hasher)
}

// Of hashes a single component under the current Version.
func Of(d Digester) Sum {
	h := NewHasher()
	d.DigestInto(h)
	return h.Sum()
}

// Hasher is a deterministic streaming hash over 64-bit words. Every
// input is widened to a tagged word before mixing, so value boundaries
// cannot alias ("" followed by 1 hashes differently from 1 followed by
// "").
//
// The streaming combine is FNV-1a-style — xor the word in, multiply by
// an odd prime — because the whole-GPU walk absorbs tens of thousands
// of words per record and running a full avalanche per word (as the
// first cut did, with the splitmix64 finalizer) made the walk ~3×
// slower for nothing: each combine step is a bijection of the state for
// a fixed word and injective in the word for a fixed state, so two
// same-shape walks differing in any single word can never collide, and
// multi-word accidental collisions stay ~2^-64. The splitmix64
// avalanche runs once, in Sum, so the weak per-step bit diffusion never
// shows in a published digest.
type Hasher struct {
	state uint64
}

// NewHasher seeds a hasher with the traversal Version.
func NewHasher() *Hasher {
	h := &Hasher{state: 0x9e3779b97f4a7c15}
	h.U64(Version)
	return h
}

// mix64 is the splitmix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators").
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// U64 absorbs one 64-bit word: one xor, one multiply by an odd
// full-width constant (the golden-ratio increment splitmix64 itself
// uses — full-width so a low-bit difference spreads across the word,
// odd so the step stays a bijection). See the Hasher comment.
func (h *Hasher) U64(v uint64) {
	h.state = (h.state ^ v) * 0x9e3779b97f4a7c15
}

// I64 absorbs a signed 64-bit value.
func (h *Hasher) I64(v int64) { h.U64(uint64(v)) }

// Int absorbs a machine int.
func (h *Hasher) Int(v int) { h.U64(uint64(int64(v))) }

// Bool absorbs a flag.
func (h *Hasher) Bool(v bool) {
	if v {
		h.U64(1)
	} else {
		h.U64(2)
	}
}

// F64 absorbs a float's exact bit pattern.
func (h *Hasher) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bytes absorbs a byte slice: length first, then bytes packed eight per
// word (little-endian whole words via encoding/binary, so the compiler
// emits one load per word instead of eight shift-or steps — the warp
// scoreboards make this the single hottest absorb in the whole-GPU
// walk). The length prefix disambiguates the zero-padded tail.
func (h *Hasher) Bytes(b []byte) {
	h.Int(len(b))
	for len(b) >= 8 {
		h.U64(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var w uint64
		for i, c := range b {
			w |= uint64(c) << (8 * i)
		}
		h.U64(w)
	}
}

// Str absorbs a string with the same framing as Bytes (strings are rare
// in the walk — kernel identities — so the byte loop is fine here).
func (h *Hasher) Str(s string) {
	h.Int(len(s))
	for len(s) > 0 {
		chunk := s
		if len(chunk) > 8 {
			chunk = chunk[:8]
		}
		var w uint64
		for i := 0; i < len(chunk); i++ {
			w |= uint64(chunk[i]) << (8 * i)
		}
		h.U64(w)
		s = s[len(chunk):]
	}
}

// Sum finalizes without disturbing the stream (further writes continue
// from the pre-Sum state).
func (h *Hasher) Sum() Sum {
	return Sum(mix64(h.state ^ 0xff51afd7ed558ccd))
}
