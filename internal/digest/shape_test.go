package digest_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"warpedslicer/internal/core"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/gpu"
)

// The digest layer promises that two runs with equal chains have equal
// architectural state — a promise that silently breaks when someone adds
// state to a component without extending its DigestInto walk. This test
// fingerprints the exported struct shape of everything reachable from the
// digest roots (the GPU and the dynamic controller) and pins one
// fingerprint per digest.Version: adding or removing an exported field
// anywhere in that graph fails the test until the digest version is
// bumped and the new shape is pinned, forcing a conscious decision about
// whether the new field belongs in the canonical-state traversal.

// skipPkgs are observability / static-configuration packages excluded
// from the canonical-state contract (their state is deliberately not
// digested, so shape changes there must not force a version bump).
var skipPkgs = map[string]bool{
	"warpedslicer/internal/obs":    true,
	"warpedslicer/internal/span":   true,
	"warpedslicer/internal/prof":   true,
	"warpedslicer/internal/trace":  true,
	"warpedslicer/internal/config": true,
}

// skipTypes are individual module-local types excluded from the walk:
// kernels.Spec is a static workload description (digested by identity
// only — its Abbr).
var skipTypes = map[string]bool{
	"warpedslicer/internal/kernels.Spec": true,
}

// shapeLines walks the module-local struct graph and returns one line per
// exported field: "pkg.Type.Field fieldType". Unexported fields are
// traversed (to reach nested module types) but not recorded — the pin
// covers the exported surface other packages can mutate.
func shapeLines(roots ...reflect.Type) []string {
	seen := map[reflect.Type]bool{}
	var lines []string
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		for {
			switch t.Kind() {
			case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map, reflect.Chan:
				t = t.Elem()
				continue
			}
			break
		}
		if t.Kind() != reflect.Struct || seen[t] {
			return
		}
		pkg := t.PkgPath()
		if !strings.HasPrefix(pkg, "warpedslicer/") || skipPkgs[pkg] || skipTypes[pkg+"."+t.Name()] {
			return
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.IsExported() {
				lines = append(lines, fmt.Sprintf("%s.%s.%s %s", pkg, t.Name(), f.Name, f.Type.String()))
			}
			walk(f.Type)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	sort.Strings(lines)
	return lines
}

func shapeFingerprint() digest.Sum {
	lines := shapeLines(
		reflect.TypeOf(gpu.GPU{}),
		reflect.TypeOf(core.Controller{}),
	)
	h := digest.NewHasher()
	h.Int(len(lines))
	for _, l := range lines {
		h.Str(l)
	}
	return h.Sum()
}

// pinnedShape maps each digest.Version to the struct-shape fingerprint it
// was audited against.
var pinnedShape = map[int]digest.Sum{
	1: 0xb0d4ce9983e357f4,
}

func TestStructShapePinnedToDigestVersion(t *testing.T) {
	want, ok := pinnedShape[digest.Version]
	if !ok {
		t.Fatalf("no pinned struct shape for digest.Version %d: audit the DigestInto walks and pin %s",
			digest.Version, shapeFingerprint())
	}
	got := shapeFingerprint()
	if got != want {
		t.Fatalf("exported state shape changed: fingerprint %s, pinned %s for digest.Version %d.\n"+
			"A struct reachable from the digest roots gained or lost an exported field. Decide whether the\n"+
			"field is architectural state: if yes, add it to the component's DigestInto walk; if no, document\n"+
			"the exclusion in internal/sm/digest.go or DESIGN.md. Then bump digest.Version and re-pin.\n"+
			"Current shape:\n  %s",
			got, want, digest.Version, strings.Join(shapeLines(
				reflect.TypeOf(gpu.GPU{}), reflect.TypeOf(core.Controller{})), "\n  "))
	}
}

// TestShapeWalkCoversKnownState guards the walker itself: if the walk
// ever stops descending (a refactor hides the graph behind interfaces),
// the fingerprint would freeze and the pin would stop protecting
// anything. Spot-check that known deep fields are in the line set.
func TestShapeWalkCoversKnownState(t *testing.T) {
	lines := shapeLines(reflect.TypeOf(gpu.GPU{}), reflect.TypeOf(core.Controller{}))
	for _, want := range []string{
		"warpedslicer/internal/gpu.Kernel.NextCTA int",
		"warpedslicer/internal/sm.Stats.Issued uint64",
		"warpedslicer/internal/warp.Warp.OutstandingLoads int",
		"warpedslicer/internal/core.Controller.Partition []int",
	} {
		found := false
		for _, l := range lines {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("shape walk lost %q — walker no longer descends this part of the graph", want)
		}
	}
}
