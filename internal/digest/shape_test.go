package digest_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"warpedslicer/internal/core"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/gpu"
)

// The digest layer promises that two runs with equal chains have equal
// architectural state — a promise that silently breaks when someone adds
// state to a component without extending its DigestInto walk. This test
// fingerprints the struct shape — exported AND unexported fields — of
// everything reachable from the digest roots (the GPU and the dynamic
// controller) and pins one fingerprint per digest.Version: adding or
// removing a field anywhere in that graph fails the test until the digest
// version is bumped and the new shape is pinned, forcing a conscious
// decision about whether the new field belongs in the canonical-state
// traversal.
//
// Division of labor with the statecov analyzer (internal/lint): this pin
// detects that a field APPEARED or VANISHED (layout drift, cross-version);
// statecov proves each field is actually READ by its type's DigestInto or
// carries a //simlint:nodigest justification (coverage, per-build). The
// pin cannot see an unread field; the analyzer cannot see a removed one
// that took its digest call along with it. Together they close both
// halves of the contract.

// skipPkgs are observability / static-configuration packages excluded
// from the canonical-state contract (their state is deliberately not
// digested, so shape changes there must not force a version bump).
var skipPkgs = map[string]bool{
	"warpedslicer/internal/obs":    true,
	"warpedslicer/internal/span":   true,
	"warpedslicer/internal/prof":   true,
	"warpedslicer/internal/trace":  true,
	"warpedslicer/internal/config": true,
}

// skipTypes are individual module-local types excluded from the walk:
// kernels.Spec is a static workload description (digested by identity
// only — its Abbr).
var skipTypes = map[string]bool{
	"warpedslicer/internal/kernels.Spec": true,
}

// shapeLines walks the module-local struct graph and returns one line per
// field — exported and unexported alike: "pkg.Type.Field fieldType".
// Unexported fields carry just as much architectural state (the warp
// scoreboard, the SM memory queue, the cache LRU clock), so the pin must
// see them; before PR 9 they were traversed but not recorded, which let
// an unexported-field add slip past the fingerprint.
func shapeLines(roots ...reflect.Type) []string {
	seen := map[reflect.Type]bool{}
	var lines []string
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		for {
			switch t.Kind() {
			case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map, reflect.Chan:
				t = t.Elem()
				continue
			}
			break
		}
		if t.Kind() != reflect.Struct || seen[t] {
			return
		}
		pkg := t.PkgPath()
		if !strings.HasPrefix(pkg, "warpedslicer/") || skipPkgs[pkg] || skipTypes[pkg+"."+t.Name()] {
			return
		}
		seen[t] = true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			lines = append(lines, fmt.Sprintf("%s.%s.%s %s", pkg, t.Name(), f.Name, f.Type.String()))
			walk(f.Type)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	sort.Strings(lines)
	return lines
}

func shapeFingerprint() digest.Sum {
	lines := shapeLines(
		reflect.TypeOf(gpu.GPU{}),
		reflect.TypeOf(core.Controller{}),
	)
	h := digest.NewHasher()
	h.Int(len(lines))
	for _, l := range lines {
		h.Str(l)
	}
	return h.Sum()
}

// pinnedShape maps each digest.Version to the struct-shape fingerprint it
// was audited against. (The Version 1 pin was re-recorded when the walk
// started including unexported fields — the struct graph itself did not
// change, only the fingerprint's coverage, so no version bump.)
var pinnedShape = map[int]digest.Sum{
	1: 0x85bd4ffe14d3673d,
}

func TestStructShapePinnedToDigestVersion(t *testing.T) {
	want, ok := pinnedShape[digest.Version]
	if !ok {
		t.Fatalf("no pinned struct shape for digest.Version %d: audit the DigestInto walks and pin %s",
			digest.Version, shapeFingerprint())
	}
	got := shapeFingerprint()
	if got != want {
		t.Fatalf("state shape changed: fingerprint %s, pinned %s for digest.Version %d.\n"+
			"A struct reachable from the digest roots gained or lost a field. Decide whether the\n"+
			"field is architectural state: if yes, add it to the component's DigestInto walk; if no, document\n"+
			"the exclusion in internal/sm/digest.go or DESIGN.md. Then bump digest.Version and re-pin.\n"+
			"Current shape:\n  %s",
			got, want, digest.Version, strings.Join(shapeLines(
				reflect.TypeOf(gpu.GPU{}), reflect.TypeOf(core.Controller{})), "\n  "))
	}
}

// TestShapeWalkCoversKnownState guards the walker itself: if the walk
// ever stops descending (a refactor hides the graph behind interfaces),
// the fingerprint would freeze and the pin would stop protecting
// anything. Spot-check that known deep fields are in the line set.
func TestShapeWalkCoversKnownState(t *testing.T) {
	lines := shapeLines(reflect.TypeOf(gpu.GPU{}), reflect.TypeOf(core.Controller{}))
	for _, want := range []string{
		"warpedslicer/internal/gpu.Kernel.NextCTA int",
		"warpedslicer/internal/sm.Stats.Issued uint64",
		"warpedslicer/internal/warp.Warp.OutstandingLoads int",
		"warpedslicer/internal/core.Controller.Partition []int",
		// Unexported architectural state must be in the line set too —
		// the PR 9 gap this file used to have.
		"warpedslicer/internal/warp.Warp.fetchReadyAt int64",
		"warpedslicer/internal/sm.SM.memQLen int",
		"warpedslicer/internal/cache.Cache.tick uint64",
	} {
		found := false
		for _, l := range lines {
			if l == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("shape walk lost %q — walker no longer descends this part of the graph", want)
		}
	}
}

// probeBase and probeGrown differ only by one unexported field; renaming
// probeGrown's lines to probeBase's name makes the extra field the sole
// difference between the two shapes.
type probeBase struct {
	Counter uint64
	hidden  int64
}

type probeGrown struct {
	Counter uint64
	hidden  int64
	slipped int64 // the unexported add the fingerprint must catch
}

// TestShapeFingerprintSeesUnexportedFields demonstrates the closed gap:
// adding an unexported field to a struct in the walked graph changes the
// recorded shape, so the pinned fingerprint fails until the addition is
// audited. reflect cannot synthesize unexported fields (StructOf rejects
// them), so the probes are declared types.
func TestShapeFingerprintSeesUnexportedFields(t *testing.T) {
	base := shapeLines(reflect.TypeOf(probeBase{}))
	grown := shapeLines(reflect.TypeOf(probeGrown{}))
	for i, l := range grown {
		grown[i] = strings.ReplaceAll(l, "probeGrown", "probeBase")
	}

	wantHidden := false
	for _, l := range base {
		if strings.HasSuffix(l, ".probeBase.hidden int64") {
			wantHidden = true
		}
	}
	if !wantHidden {
		t.Fatalf("unexported field not recorded by the shape walk:\n  %s", strings.Join(base, "\n  "))
	}

	hash := func(lines []string) digest.Sum {
		h := digest.NewHasher()
		h.Int(len(lines))
		for _, l := range lines {
			h.Str(l)
		}
		return h.Sum()
	}
	if hash(base) == hash(grown) {
		t.Fatal("adding an unexported field did not change the shape fingerprint")
	}
}
