package digest

import (
	"encoding/json"
	"io"
)

// DefaultFlightDepth is how many digest records the flight recorder
// retains — the crash window is DefaultFlightDepth × digest period
// cycles wide.
const DefaultFlightDepth = 64

// Ring is the flight recorder: a fixed ring of the most recent digest
// records, chained like a Trail but overwriting the oldest entry instead
// of growing. It is cheap enough to leave armed for an entire run.
type Ring struct {
	recs  []Record
	next  int
	total uint64
	chain Sum
}

// NewRing returns a flight recorder retaining the last k records.
func NewRing(k int) *Ring {
	if k <= 0 {
		k = DefaultFlightDepth
	}
	return &Ring{recs: make([]Record, 0, k)}
}

// Append records one cycle, evicting the oldest record once the ring is
// full, and returns the completed record.
func (r *Ring) Append(cycle int64, comps []Component, counters Counters) Record {
	r.chain = ChainStep(r.chain, cycle, comps)
	rec := Record{Cycle: cycle, Chain: r.chain, Components: comps, Counters: counters}
	if len(r.recs) < cap(r.recs) {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.next] = rec
		r.next = (r.next + 1) % cap(r.recs)
	}
	r.total++
	return rec
}

// AppendRecord appends a pre-chained record (see Trail.AppendRecord).
func (r *Ring) AppendRecord(rec Record) {
	if len(r.recs) < cap(r.recs) {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.next] = rec
		r.next = (r.next + 1) % cap(r.recs)
	}
	r.total++
	r.chain = rec.Chain
}

// Total is the number of records ever appended.
func (r *Ring) Total() uint64 { return r.total }

// Chain is the current chain digest.
func (r *Ring) Chain() Sum { return r.chain }

// Snapshot returns the retained records oldest-first.
func (r *Ring) Snapshot() []Record {
	out := make([]Record, 0, len(r.recs))
	out = append(out, r.recs[r.next:]...)
	out = append(out, r.recs[:r.next]...)
	return out
}

// BlackBox is the crash report dumped when an armed simulation panics
// (including simassert violations, which panic): the flight-recorder
// window plus whatever observability the run had attached. Every field
// beyond the digest window is best-effort — a crash report must never
// fail to write because a surface was missing.
type BlackBox struct {
	DigestVersion int      `json:"digest_version"`
	Reason        string   `json:"reason"`
	Cycle         int64    `json:"cycle"`
	Chain         Sum      `json:"chain"`
	RecordsTotal  uint64   `json:"records_total"`
	Records       []Record `json:"records"`
	// Profile is the engine self-profile (gpu.Profile), if any.
	Profile any `json:"profile,omitempty"`
	// Snapshot is the obs registry snapshot, if a registry was attached.
	Snapshot any `json:"snapshot,omitempty"`
	// Events are the most recent controller/experiment events.
	Events any `json:"events,omitempty"`
	// Spans is the span collector summary (the /spans JSON shape).
	Spans any `json:"spans,omitempty"`
}

// WriteJSON dumps the report, indented for humans.
func (b *BlackBox) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBlackBox parses a report written by WriteJSON.
func ReadBlackBox(r io.Reader) (*BlackBox, error) {
	var b BlackBox
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}
