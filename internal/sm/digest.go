package sm

import (
	"slices"

	"warpedslicer/internal/digest"
)

// The SM digests as named sections so the divergence bisector can point
// inside the SM, not just at it. The walk covers architectural state
// only:
//
//   - The derived scheduler caches are excluded — schedQ.list/staleQ/
//     greedy/ready/attr* and the per-resident cls/in/stale cache are
//     reconstructible from warp state (resyncSched does exactly that),
//     and excluding them keeps the reference rescan scheduler (CycleRef)
//     and the ready-set scheduler digest-identical, which is what the
//     schedref cross-check compares. schedQ.rrNext stays in: the
//     round-robin cursor is genuinely architectural (both scheduler
//     implementations advance it).
//   - Stats.SchedFastSlots is excluded for the same reason: it counts
//     ready-set cache hits, which the reference path by definition never
//     takes. Every other counter is deterministic and digested.
//   - cta.warpRefs is excluded (derived: the residents whose ctaSlot
//     points at the CTA).
//   - Pure scheduler wake-up ring events and the warp i-buffer are
//     excluded (ready-set issue-path bookkeeping and prefetch cache; see
//     digestExec and warp.DigestInto).
//
// See DESIGN.md "The canonical-state traversal contract".

// digestWarps covers the resident warp set in launch order plus the
// launch counters.
func (s *SM) digestWarps(h *digest.Hasher) {
	h.Int(s.warpSeq)
	h.I64(s.launchStamp)
	h.Int(len(s.warps))
	for _, r := range s.warps {
		h.Int(r.sched)
		h.Int(r.ctaSlot)
		h.Int(r.threads)
		h.Bool(r.gone)
		r.w.DigestInto(h)
	}
}

// digestCTAs covers the CTA slot table.
func (s *SM) digestCTAs(h *digest.Hasher) {
	h.Int(len(s.ctas))
	for _, c := range s.ctas {
		if c == nil {
			h.Bool(false)
			continue
		}
		h.Bool(true)
		h.Int(c.kernel)
		h.Int(c.gridID)
		h.Int(c.regs)
		h.Int(c.shm)
		h.Int(c.threads)
		h.Int(c.warpsLeft)
		h.Int(c.atBarrier)
		h.Int(c.numWarps)
		h.Bool(c.active)
	}
}

// digestSched covers the scheduling policy and the architectural
// round-robin cursors (the ready-set caches are derived and excluded).
func (s *SM) digestSched(h *digest.Hasher) {
	h.U64(uint64(s.Sched))
	h.Int(len(s.scheds))
	for i := range s.scheds {
		h.Int(s.scheds[i].rrNext)
	}
}

// digestAlloc covers resource allocation and partition state: usage
// integrals' inputs, per-kernel quotas and usage, and the spatial
// allow-list.
func (s *SM) digestAlloc(h *digest.Hasher) {
	h.Int(s.usedRegs)
	h.Int(s.usedShm)
	h.Int(s.usedThreads)
	h.Int(s.usedCTAs)
	h.Bool(s.hasQuota)
	for k := 0; k < MaxKernels; k++ {
		digestQuota(h, s.quotas[k])
		digestQuota(h, s.kUsed[k])
	}
	if s.allowed == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	keys := make([]int, 0, len(s.allowed))
	for k := range s.allowed {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	h.Int(len(keys))
	for _, k := range keys {
		h.Int(k)
		h.Bool(s.allowed[k])
	}
}

func digestQuota(h *digest.Hasher, q Quota) {
	h.Int(q.Regs)
	h.Int(q.Shm)
	h.Int(q.Threads)
	h.Int(q.CTAs)
}

// digestExec covers the execution back end: functional-unit timing, the
// LD/ST line-op ring, the scheduled writeback/wake ring, and the
// per-line load waiters in sorted order. Residents inside events are
// identified by their unique launch stamp (warp.Age), never by pointer.
func (s *SM) digestExec(h *digest.Hasher) {
	h.Int(len(s.aluFreeAt))
	for _, v := range s.aluFreeAt {
		h.I64(v)
	}
	h.I64(s.sfuFreeAt)
	h.I64(s.ldstFreeAt)

	h.Int(s.memQLen)
	for i := 0; i < s.memQLen; i++ {
		op := &s.memQ[(s.memQHead+i)&(s.memQCap-1)]
		h.U64(op.addr)
		h.Int(op.kernel)
		h.Bool(op.write)
		digestTracker(h, op.tracker)
	}

	// Pure scheduler wake-ups (wake: true) are excluded: the ready-set
	// path schedules them to re-classify stalled warps at known wake
	// times, while the reference rescan path never needs them — they are
	// issue-path bookkeeping, not architectural events. Writebacks and
	// tracker completions stay.
	h.Int(len(s.ring))
	for i := range s.ring {
		evs := s.ring[i]
		n := 0
		for j := range evs {
			if !evs[j].wake {
				n++
			}
		}
		h.Int(n)
		for j := range evs {
			ev := &evs[j]
			if ev.wake {
				continue
			}
			digestResident(h, ev.res)
			h.I64(int64(ev.reg))
			digestTracker(h, ev.tracker)
		}
	}

	keys := make([]uint64, 0, len(s.waiters))
	for la := range s.waiters {
		keys = append(keys, la)
	}
	slices.Sort(keys)
	h.Int(len(keys))
	for _, la := range keys {
		h.U64(la)
		ts := s.waiters[la]
		h.Int(len(ts))
		for _, t := range ts {
			digestTracker(h, t)
		}
	}
}

func digestResident(h *digest.Hasher, r *resident) {
	if r == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	h.I64(r.w.Age)
	h.Int(r.w.Kernel)
	h.Bool(r.gone)
}

func digestTracker(h *digest.Hasher, t *loadTracker) {
	if t == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	digestResident(h, t.res)
	h.I64(int64(t.reg))
	h.Int(t.remaining)
}

// digestStats covers every deterministic counter (SchedFastSlots and the
// L1 roll-up excluded — the L1 digests as its own section).
func (s *SM) digestStats(h *digest.Hasher) {
	st := &s.stats
	h.I64(st.Cycles)
	h.U64(st.Slots)
	h.U64(st.Issued)
	h.U64(st.StallMem)
	h.U64(st.StallRAW)
	h.U64(st.StallExec)
	h.U64(st.StallIBuf)
	h.U64(st.StallIdle)
	h.U64(st.CycIssuing)
	h.U64(st.CycStallKnown)
	h.U64(st.CycStallUnknown)
	h.U64(st.CycIdle)
	h.U64(st.ALUBusy)
	h.U64(st.SFUBusy)
	h.U64(st.LDSTBusy)
	h.U64(st.RegCycles)
	h.U64(st.ShmCycles)
	for k := 0; k < MaxKernels; k++ {
		ks := &st.PerKernel[k]
		h.U64(ks.WarpInsts)
		h.U64(ks.ThreadInsts)
		h.U64(ks.CTAsDone)
		h.U64(ks.CTAsLaunched)
		h.U64(ks.LoadsIssued)
		h.U64(ks.StallMem)
		h.U64(ks.StallRAW)
		h.U64(ks.StallExec)
		h.U64(ks.StallIBuf)
	}
}

// sectionNames fixes the section order for DigestInto and DigestSections.
var sectionNames = [...]string{"warps", "ctas", "sched", "alloc", "exec", "stats", "l1"}

func (s *SM) digestSection(h *digest.Hasher, i int) {
	switch i {
	case 0:
		s.digestWarps(h)
	case 1:
		s.digestCTAs(h)
	case 2:
		s.digestSched(h)
	case 3:
		s.digestAlloc(h)
	case 4:
		s.digestExec(h)
	case 5:
		s.digestStats(h)
	case 6:
		s.l1.DigestInto(h)
	}
}

// DigestInto walks every section in fixed order.
func (s *SM) DigestInto(h *digest.Hasher) {
	for i := range sectionNames {
		s.digestSection(h, i)
	}
}

// DigestSections returns one named digest per SM section, letting a
// bisector localize a divergence inside the SM (warps vs scheduler vs
// LD/ST pipeline vs L1 ...).
func (s *SM) DigestSections() []digest.Component {
	out := make([]digest.Component, len(sectionNames))
	for i, name := range sectionNames {
		h := digest.NewHasher()
		s.digestSection(h, i)
		out[i] = digest.Component{Name: name, Sum: h.Sum()}
	}
	return out
}
