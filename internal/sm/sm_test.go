package sm

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/isa"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/mem"
)

func newSM(t *testing.T) (*SM, config.GPU) {
	t.Helper()
	cfg := config.Baseline()
	sub := mem.New(cfg)
	return New(0, cfg, sub), cfg
}

// runSM steps the SM and its memory subsystem together.
func runSM(s *SM, sub *mem.Subsystem, cycles int64) {
	for now := int64(0); now < cycles; now++ {
		s.Cycle(now)
		for _, r := range sub.Tick(now) {
			s.OnReply(r.LineAddr)
		}
	}
}

func TestLaunchConsumesResources(t *testing.T) {
	s, _ := newSM(t)
	spec := kernels.ByAbbr("HOT")
	if !s.Launch(0, spec, 1<<40, 0) {
		t.Fatal("launch failed on empty SM")
	}
	u := s.Used()
	if u.Regs != spec.RegsPerCTA() || u.Shm != spec.SharedMemPerTA ||
		u.Threads != spec.BlockDim || u.CTAs != 1 {
		t.Fatalf("used = %+v, inconsistent with one HOT CTA", u)
	}
	if s.ResidentWarps() != spec.WarpsPerCTA(32) {
		t.Fatalf("resident warps = %d, want %d", s.ResidentWarps(), spec.WarpsPerCTA(32))
	}
}

func TestLaunchStopsAtLimit(t *testing.T) {
	s, cfg := newSM(t)
	spec := kernels.ByAbbr("BLK") // register-limited to 4
	n := 0
	for s.Launch(0, spec, 1<<40, n) {
		n++
		if n > 10 {
			t.Fatal("launch never refused")
		}
	}
	want := spec.MaxCTAs(cfg.SM.Registers, cfg.SM.SharedMemBytes, cfg.SM.MaxThreads, cfg.SM.MaxCTAs)
	if n != want {
		t.Fatalf("launched %d CTAs, want %d", n, want)
	}
}

func TestQuotaEnforced(t *testing.T) {
	s, _ := newSM(t)
	spec := kernels.ByAbbr("IMG")
	q := Unlimited()
	q.CTAs = 3
	s.SetQuota(0, q)
	n := 0
	for s.Launch(0, spec, 1<<40, n) {
		n++
	}
	if n != 3 {
		t.Fatalf("launched %d, want quota 3", n)
	}
	s.ClearQuotas()
	if !s.Launch(0, spec, 1<<40, n) {
		t.Fatal("clearing quotas should re-enable launches")
	}
}

func TestZeroQuotaBlocksLaunch(t *testing.T) {
	s, _ := newSM(t)
	s.SetQuota(0, Quota{})
	if s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0) {
		t.Fatal("zero quota should block launches")
	}
}

func TestAllowedRestriction(t *testing.T) {
	s, _ := newSM(t)
	s.SetAllowed(map[int]bool{1: true})
	if s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0) {
		t.Fatal("kernel 0 should be disallowed")
	}
	if !s.Launch(1, kernels.ByAbbr("IMG"), 1<<40, 0) {
		t.Fatal("kernel 1 should be allowed")
	}
	s.SetAllowed(nil)
	if !s.Launch(0, kernels.ByAbbr("IMG"), 2<<40, 1) {
		t.Fatal("nil allowed-set should allow all")
	}
}

func TestCTACompletionFreesResources(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := kernels.ByAbbr("IMG")
	short := *spec
	short.Iterations = 5
	completed := 0
	s.OnCTAComplete = func(smID, kernel, gridID int) { completed++ }
	if !s.Launch(0, &short, 1<<40, 0) {
		t.Fatal("launch failed")
	}
	runSM(s, sub, 30000)
	if completed != 1 {
		t.Fatalf("completions = %d, want 1", completed)
	}
	if u := s.Used(); u.CTAs != 0 || u.Regs != 0 || u.Threads != 0 {
		t.Fatalf("resources not freed: %+v", u)
	}
	if !s.Idle() {
		t.Fatal("SM should be idle")
	}
}

func TestBarrierKernelCompletes(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := kernels.ByAbbr("MM") // has BAR
	short := *spec
	short.Iterations = 5
	done := false
	s.OnCTAComplete = func(int, int, int) { done = true }
	s.Launch(0, &short, 1<<40, 0)
	runSM(s, sub, 60000)
	if !done {
		t.Fatal("barrier kernel CTA never completed (barrier deadlock?)")
	}
}

func TestHaltKernelReleasesEverything(t *testing.T) {
	s, _ := newSM(t)
	specA, specB := kernels.ByAbbr("IMG"), kernels.ByAbbr("DXT")
	s.Launch(0, specA, 1<<40, 0)
	s.Launch(0, specA, 1<<40, 1)
	s.Launch(1, specB, 2<<40, 0)
	s.HaltKernel(0)
	if s.ResidentCTAs(0) != 0 {
		t.Fatal("kernel 0 CTAs not released")
	}
	if s.ResidentCTAs(1) != 1 {
		t.Fatal("kernel 1 CTAs must survive")
	}
	u := s.Used()
	if u.Regs != specB.RegsPerCTA() {
		t.Fatalf("leaked registers: used=%d want=%d", u.Regs, specB.RegsPerCTA())
	}
}

func TestStatsAccumulate(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0)
	runSM(s, sub, 5000)
	st := s.Stats()
	if st.Cycles != 5000 {
		t.Fatalf("cycles = %d, want 5000", st.Cycles)
	}
	if st.PerKernel[0].WarpInsts == 0 || st.PerKernel[0].ThreadInsts == 0 {
		t.Fatal("no instructions recorded")
	}
	if st.ALUBusy == 0 {
		t.Fatal("IMG should exercise the ALU")
	}
	if st.Slots != uint64(cfg.SM.Schedulers)*5000 {
		t.Fatalf("slots = %d, want %d", st.Slots, cfg.SM.Schedulers*5000)
	}
	total := st.Issued + st.StallMem + st.StallRAW + st.StallExec + st.StallIBuf + st.StallIdle
	if total != st.Slots {
		t.Fatalf("slot accounting broken: %d != %d", total, st.Slots)
	}
}

func TestThreadInstsCountPartialWarps(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := kernels.ByAbbr("LBM") // 120 threads: warps of 32,32,32,24
	short := *spec
	short.Iterations = 2
	s.Launch(0, &short, 1<<40, 0)
	runSM(s, sub, 100000)
	st := s.Stats()
	// Each warp executes Iterations*len(Body)+1 instructions; thread
	// counts differ between full and partial warps.
	perWarp := uint64(short.Iterations*len(short.Body) + 1)
	wantThread := perWarp * (32 + 32 + 32 + 24)
	if st.PerKernel[0].ThreadInsts != wantThread {
		t.Fatalf("thread insts = %d, want %d", st.PerKernel[0].ThreadInsts, wantThread)
	}
}

func TestGTOVersusRRBothProgress(t *testing.T) {
	for _, kind := range []SchedulerKind{GTO, RR} {
		cfg := config.Baseline()
		sub := mem.New(cfg)
		s := New(0, cfg, sub)
		s.Sched = kind
		s.Launch(0, kernels.ByAbbr("DXT"), 1<<40, 0)
		s.Launch(0, kernels.ByAbbr("DXT"), 1<<40, 1)
		runSM(s, sub, 3000)
		if s.Stats().PerKernel[0].WarpInsts == 0 {
			t.Fatalf("%v scheduler made no progress", kind)
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if GTO.String() != "gto" || RR.String() != "rr" {
		t.Fatal("scheduler names wrong")
	}
}

func TestResidentCTAsPerKernel(t *testing.T) {
	s, _ := newSM(t)
	s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0)
	s.Launch(1, kernels.ByAbbr("DXT"), 2<<40, 0)
	s.Launch(1, kernels.ByAbbr("DXT"), 2<<40, 1)
	if s.ResidentCTAs(0) != 1 || s.ResidentCTAs(1) != 2 {
		t.Fatalf("resident = %d/%d, want 1/2", s.ResidentCTAs(0), s.ResidentCTAs(1))
	}
	if s.KernelUsed(1).Threads != 2*64 {
		t.Fatalf("kernel 1 threads = %d, want 128", s.KernelUsed(1).Threads)
	}
}

func TestMixedKernelsShareSM(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0)
	s.Launch(1, kernels.ByAbbr("BLK"), 2<<40, 0)
	runSM(s, sub, 10000)
	st := s.Stats()
	if st.PerKernel[0].WarpInsts == 0 || st.PerKernel[1].WarpInsts == 0 {
		t.Fatalf("co-resident kernels did not both progress: %d / %d",
			st.PerKernel[0].WarpInsts, st.PerKernel[1].WarpInsts)
	}
}

func TestExitWaitsForOutstandingLoads(t *testing.T) {
	// A kernel whose last body op is a global load: the warp must not
	// exit (and the CTA must not free) while the load is in flight.
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := *kernels.ByAbbr("LBM")
	spec.Iterations = 1
	done := false
	s.OnCTAComplete = func(int, int, int) { done = true }
	s.Launch(0, &spec, 1<<40, 0)
	// Without memory replies the loads never return; the CTA must stay
	// resident no matter how long we run the SM alone.
	for now := int64(0); now < 5000; now++ {
		s.Cycle(now)
		// Deliberately do NOT tick the memory subsystem.
	}
	if done {
		t.Fatal("CTA completed with loads still in flight")
	}
	// Now service memory: the CTA completes.
	for now := int64(5000); now < 200000 && !done; now++ {
		s.Cycle(now)
		for _, r := range sub.Tick(now) {
			s.OnReply(r.LineAddr)
		}
	}
	if !done {
		t.Fatal("CTA never completed after memory was serviced")
	}
}

func TestUsedNeverExceedsLimits(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	for _, spec := range kernels.Suite() {
		for s.Launch(0, spec, 1<<40, 0) {
		}
	}
	u := s.Used()
	if u.Regs > cfg.SM.Registers || u.Shm > cfg.SM.SharedMemBytes ||
		u.Threads > cfg.SM.MaxThreads || u.CTAs > cfg.SM.MaxCTAs {
		t.Fatalf("over-allocated: %+v", u)
	}
}

// TestPerKernelStallConservation pins the attribution invariant: with two
// kernels sharing one SM, every stalled issue slot of each class is charged
// to exactly one kernel, so per-kernel counters sum to the SM-wide class.
func TestPerKernelStallConservation(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	q := Unlimited()
	q.CTAs = 2
	s.SetQuota(0, q)
	s.SetQuota(1, q)
	for n := 0; s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, n); n++ {
	}
	for n := 0; s.Launch(1, kernels.ByAbbr("BLK"), 2<<40, n); n++ {
	}
	runSM(s, sub, 20000)

	st := s.Stats()
	var mem, raw, exec, ibuf uint64
	for _, ks := range st.PerKernel {
		mem += ks.StallMem
		raw += ks.StallRAW
		exec += ks.StallExec
		ibuf += ks.StallIBuf
	}
	if mem != st.StallMem || raw != st.StallRAW || exec != st.StallExec || ibuf != st.StallIBuf {
		t.Fatalf("per-kernel sums (%d/%d/%d/%d) != SM-wide (%d/%d/%d/%d)",
			mem, raw, exec, ibuf, st.StallMem, st.StallRAW, st.StallExec, st.StallIBuf)
	}
	if mem+raw+exec+ibuf == 0 {
		t.Fatal("co-run recorded no attributable stalls; test is vacuous")
	}
	if st.PerKernel[0].StallMem+st.PerKernel[0].StallRAW+st.PerKernel[0].StallExec+st.PerKernel[0].StallIBuf == 0 ||
		st.PerKernel[1].StallMem+st.PerKernel[1].StallRAW+st.PerKernel[1].StallExec+st.PerKernel[1].StallIBuf == 0 {
		t.Fatal("stalls attributed to only one of the two resident kernels")
	}
}

// aluSpec builds a minimal compute kernel for scheduler unit tests:
// `body` controls the op mix, one warp per CTA at BlockDim 32.
func aluSpec(t *testing.T, abbr string, blockDim int, body []kernels.Op, iters int) *kernels.Spec {
	t.Helper()
	spec := &kernels.Spec{
		Name: "sched-test-" + abbr, Abbr: abbr,
		GridDim: 64, BlockDim: blockDim,
		RegsPerThread: 32, SharedMemPerTA: 1024,
		Body: body, Iterations: iters,
		Class: kernels.Compute,
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec %s invalid: %v", abbr, err)
	}
	return spec
}

// TestGTOGreedyAtCycleZero pins the cycle-0 off-by-one fix: a warp that
// issued at cycle 0 must get greedy priority at cycle 1 over an older
// warp that has not issued yet. Before LastIssued was initialized to -1,
// the `last > 0` greedy guard treated "issued at cycle 0" as
// "never issued" and fell back to oldest-first.
func TestGTOGreedyAtCycleZero(t *testing.T) {
	cfg := config.Baseline()
	cfg.SM.SIMTWidth = cfg.SM.WarpSize // one cycle per warp: keeps units free each cycle
	sub := mem.New(cfg)
	s := New(0, cfg, sub)

	// Kernel A: LDS then a dependent ALU. Kernel B: independent ALUs.
	// Two warps each (BlockDim 64) so scheduler 1 holds A.w1 (older) and
	// B.w1. Cycle 0: scheduler 0's A.w0 takes the LD/ST unit, so A.w1 is
	// exec-blocked and B.w1 issues its first ALU. Cycle 1: both A.w1 and
	// B.w1 are issuable — greedy semantics must pick B.w1 (issued at 0).
	a := aluSpec(t, "GZA", 64, []kernels.Op{
		{Kind: isa.LDS},
		{Kind: isa.ALU, DependsPrev: true},
	}, 8)
	b := aluSpec(t, "GZB", 64, []kernels.Op{
		{Kind: isa.ALU},
		{Kind: isa.ALU},
	}, 8)
	if !s.Launch(0, a, 1<<40, 0) || !s.Launch(1, b, 2<<40, 0) {
		t.Fatal("launches failed")
	}
	aw1, bw1 := s.warps[1], s.warps[3]
	if aw1.sched != 1 || bw1.sched != 1 {
		t.Fatalf("warp-scheduler assignment changed: A.w1 sched %d, B.w1 sched %d, want 1,1",
			aw1.sched, bw1.sched)
	}
	runSM(s, sub, 2)
	if got := bw1.w.LastIssued; got != 1 {
		t.Fatalf("B.w1 LastIssued = %d, want 1 (greedy warp must keep priority at cycle 1)", got)
	}
	if got := aw1.w.LastIssued; got != -1 {
		t.Fatalf("A.w1 LastIssued = %d, want -1 (older warp must not beat the cycle-0 issuer)", got)
	}
}

// TestFreeCTANilsCompactionTail pins the retained-pointer fix: after a
// CTA retires, the tail of the s.warps backing array must be nil'd so the
// freed residents (and their warps) are unreachable.
func TestFreeCTANilsCompactionTail(t *testing.T) {
	sub := mem.New(config.Baseline())
	s := New(0, config.Baseline(), sub)
	spec := aluSpec(t, "NIL", 32, []kernels.Op{{Kind: isa.ALU}, {Kind: isa.ALU}}, 2)
	if !s.Launch(0, spec, 1<<40, 0) || !s.Launch(0, spec, 1<<40, 1) {
		t.Fatal("launches failed")
	}
	backing := s.warps
	origLen := len(backing)
	runSM(s, sub, 300)
	if done := s.Stats().PerKernel[0].CTAsDone; done != 2 {
		t.Fatalf("CTAs done = %d, want 2", done)
	}
	if len(s.warps) != 0 {
		t.Fatalf("warps still resident after both CTAs retired: %d", len(s.warps))
	}
	for i := len(s.warps); i < origLen; i++ {
		if backing[i] != nil {
			t.Fatalf("backing[%d] still references a retired warp (kernel %d): compaction tail not nil'd",
				i, backing[i].w.Kernel)
		}
	}
	for i := range s.scheds {
		if n := len(s.scheds[i].list); n != 0 {
			t.Fatalf("scheduler %d still lists %d residents after retirement", i, n)
		}
	}
}

// TestNewRejectsOversizedLatency pins the latency-clamp fix: a latency
// that cannot fit the writeback ring must be rejected at construction
// instead of being silently truncated at schedule time.
func TestNewRejectsOversizedLatency(t *testing.T) {
	cfg := config.Baseline()
	cfg.SM.SFULatency = 600 // > ring capacity of 512
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted SFULatency=600, which the 512-entry writeback ring cannot represent")
		}
	}()
	New(0, cfg, mem.New(cfg))
}

// TestLaunchAssignmentSurvivesHalt pins the scheduler-assignment fix:
// warp-to-scheduler assignment must come from a monotonic counter, not
// from len(s.warps), so replacement launches after a mid-run halt keep
// alternating instead of piling onto one parity.
func TestLaunchAssignmentSurvivesHalt(t *testing.T) {
	sub := mem.New(config.Baseline())
	s := New(0, config.Baseline(), sub)
	spec := aluSpec(t, "BAL", 32, []kernels.Op{{Kind: isa.ALU}, {Kind: isa.ALU}}, 64)
	if !s.Launch(0, spec, 1<<40, 0) || !s.Launch(1, spec, 2<<40, 0) {
		t.Fatal("launches failed")
	}
	s.HaltKernel(0) // removes the scheduler-0 warp; len(s.warps) is now 1
	if !s.Launch(2, spec, 3<<40, 0) {
		t.Fatal("relaunch failed")
	}
	r := s.warps[len(s.warps)-1]
	if r.w.Kernel != 2 {
		t.Fatalf("last resident belongs to kernel %d, want 2", r.w.Kernel)
	}
	if r.sched != 0 {
		t.Fatalf("replacement warp assigned to scheduler %d, want 0: "+
			"a len(warps)-based rule piles replacements onto the surviving parity", r.sched)
	}
	for i := range s.scheds {
		if n := len(s.scheds[i].list); n != 1 {
			t.Fatalf("scheduler %d holds %d warps, want 1 (balanced)", i, n)
		}
	}
}

// TestHaltKernelWithInFlightMemory pins that halting a kernel while its
// loads are outstanding drains the orphaned trackers without corrupting
// the surviving kernel, and that the waiters==MSHR invariant (which
// classify and the simassert build rely on) holds through the halt.
func TestHaltKernelWithInFlightMemory(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	q := Unlimited()
	q.CTAs = 2
	s.SetQuota(0, q)
	s.SetQuota(1, q)
	mvp, hot := kernels.ByAbbr("MVP"), kernels.ByAbbr("HOT")
	for g := 0; s.Launch(0, mvp, 1<<40, g); g++ {
	}
	for g := 0; s.Launch(1, hot, 2<<40, g); g++ {
	}

	checkWaiters := func(now int64) {
		if len(s.waiters) != s.l1.MSHRInUse() {
			t.Fatalf("cycle %d: waiters %d != L1 MSHRs in use %d", now, len(s.waiters), s.l1.MSHRInUse())
		}
	}

	// Run until the memory kernel has loads in flight.
	now := int64(0)
	for ; now < 20000 && len(s.waiters) == 0; now++ {
		s.Cycle(now)
		for _, r := range sub.Tick(now) {
			s.OnReply(r.LineAddr)
		}
		checkWaiters(now)
	}
	if len(s.waiters) == 0 {
		t.Fatal("MVP never put a load in flight")
	}

	s.HaltKernel(0)
	checkWaiters(now)
	if got := s.ResidentCTAs(0); got != 0 {
		t.Fatalf("halted kernel still holds %d CTAs", got)
	}
	hotBefore := s.Stats().PerKernel[1]
	mvpInsts := s.Stats().PerKernel[0].WarpInsts

	// Drain: in-flight replies to halted warps must complete harmlessly
	// while the surviving kernel keeps issuing.
	sawDrain := false
	for end := now + 20000; now < end; now++ {
		s.Cycle(now)
		for _, r := range sub.Tick(now) {
			s.OnReply(r.LineAddr)
		}
		checkWaiters(now)
		if len(s.waiters) == 0 {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("orphaned load trackers never drained after the halt")
	}
	st := s.Stats()
	if st.PerKernel[0].WarpInsts != mvpInsts {
		t.Fatalf("halted kernel kept issuing: %d -> %d warp insts", mvpInsts, st.PerKernel[0].WarpInsts)
	}
	if st.PerKernel[1].WarpInsts <= hotBefore.WarpInsts {
		t.Fatalf("surviving kernel stopped issuing after the halt: %d -> %d warp insts",
			hotBefore.WarpInsts, st.PerKernel[1].WarpInsts)
	}
}
