package sm

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/mem"
)

func newSM(t *testing.T) (*SM, config.GPU) {
	t.Helper()
	cfg := config.Baseline()
	sub := mem.New(cfg)
	return New(0, cfg, sub), cfg
}

// runSM steps the SM and its memory subsystem together.
func runSM(s *SM, sub *mem.Subsystem, cycles int64) {
	for now := int64(0); now < cycles; now++ {
		s.Cycle(now)
		for _, r := range sub.Tick(now) {
			s.OnReply(r.LineAddr)
		}
	}
}

func TestLaunchConsumesResources(t *testing.T) {
	s, _ := newSM(t)
	spec := kernels.ByAbbr("HOT")
	if !s.Launch(0, spec, 1<<40, 0) {
		t.Fatal("launch failed on empty SM")
	}
	u := s.Used()
	if u.Regs != spec.RegsPerCTA() || u.Shm != spec.SharedMemPerTA ||
		u.Threads != spec.BlockDim || u.CTAs != 1 {
		t.Fatalf("used = %+v, inconsistent with one HOT CTA", u)
	}
	if s.ResidentWarps() != spec.WarpsPerCTA(32) {
		t.Fatalf("resident warps = %d, want %d", s.ResidentWarps(), spec.WarpsPerCTA(32))
	}
}

func TestLaunchStopsAtLimit(t *testing.T) {
	s, cfg := newSM(t)
	spec := kernels.ByAbbr("BLK") // register-limited to 4
	n := 0
	for s.Launch(0, spec, 1<<40, n) {
		n++
		if n > 10 {
			t.Fatal("launch never refused")
		}
	}
	want := spec.MaxCTAs(cfg.SM.Registers, cfg.SM.SharedMemBytes, cfg.SM.MaxThreads, cfg.SM.MaxCTAs)
	if n != want {
		t.Fatalf("launched %d CTAs, want %d", n, want)
	}
}

func TestQuotaEnforced(t *testing.T) {
	s, _ := newSM(t)
	spec := kernels.ByAbbr("IMG")
	q := Unlimited()
	q.CTAs = 3
	s.SetQuota(0, q)
	n := 0
	for s.Launch(0, spec, 1<<40, n) {
		n++
	}
	if n != 3 {
		t.Fatalf("launched %d, want quota 3", n)
	}
	s.ClearQuotas()
	if !s.Launch(0, spec, 1<<40, n) {
		t.Fatal("clearing quotas should re-enable launches")
	}
}

func TestZeroQuotaBlocksLaunch(t *testing.T) {
	s, _ := newSM(t)
	s.SetQuota(0, Quota{})
	if s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0) {
		t.Fatal("zero quota should block launches")
	}
}

func TestAllowedRestriction(t *testing.T) {
	s, _ := newSM(t)
	s.SetAllowed(map[int]bool{1: true})
	if s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0) {
		t.Fatal("kernel 0 should be disallowed")
	}
	if !s.Launch(1, kernels.ByAbbr("IMG"), 1<<40, 0) {
		t.Fatal("kernel 1 should be allowed")
	}
	s.SetAllowed(nil)
	if !s.Launch(0, kernels.ByAbbr("IMG"), 2<<40, 1) {
		t.Fatal("nil allowed-set should allow all")
	}
}

func TestCTACompletionFreesResources(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := kernels.ByAbbr("IMG")
	short := *spec
	short.Iterations = 5
	completed := 0
	s.OnCTAComplete = func(smID, kernel, gridID int) { completed++ }
	if !s.Launch(0, &short, 1<<40, 0) {
		t.Fatal("launch failed")
	}
	runSM(s, sub, 30000)
	if completed != 1 {
		t.Fatalf("completions = %d, want 1", completed)
	}
	if u := s.Used(); u.CTAs != 0 || u.Regs != 0 || u.Threads != 0 {
		t.Fatalf("resources not freed: %+v", u)
	}
	if !s.Idle() {
		t.Fatal("SM should be idle")
	}
}

func TestBarrierKernelCompletes(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := kernels.ByAbbr("MM") // has BAR
	short := *spec
	short.Iterations = 5
	done := false
	s.OnCTAComplete = func(int, int, int) { done = true }
	s.Launch(0, &short, 1<<40, 0)
	runSM(s, sub, 60000)
	if !done {
		t.Fatal("barrier kernel CTA never completed (barrier deadlock?)")
	}
}

func TestHaltKernelReleasesEverything(t *testing.T) {
	s, _ := newSM(t)
	specA, specB := kernels.ByAbbr("IMG"), kernels.ByAbbr("DXT")
	s.Launch(0, specA, 1<<40, 0)
	s.Launch(0, specA, 1<<40, 1)
	s.Launch(1, specB, 2<<40, 0)
	s.HaltKernel(0)
	if s.ResidentCTAs(0) != 0 {
		t.Fatal("kernel 0 CTAs not released")
	}
	if s.ResidentCTAs(1) != 1 {
		t.Fatal("kernel 1 CTAs must survive")
	}
	u := s.Used()
	if u.Regs != specB.RegsPerCTA() {
		t.Fatalf("leaked registers: used=%d want=%d", u.Regs, specB.RegsPerCTA())
	}
}

func TestStatsAccumulate(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0)
	runSM(s, sub, 5000)
	st := s.Stats()
	if st.Cycles != 5000 {
		t.Fatalf("cycles = %d, want 5000", st.Cycles)
	}
	if st.PerKernel[0].WarpInsts == 0 || st.PerKernel[0].ThreadInsts == 0 {
		t.Fatal("no instructions recorded")
	}
	if st.ALUBusy == 0 {
		t.Fatal("IMG should exercise the ALU")
	}
	if st.Slots != uint64(cfg.SM.Schedulers)*5000 {
		t.Fatalf("slots = %d, want %d", st.Slots, cfg.SM.Schedulers*5000)
	}
	total := st.Issued + st.StallMem + st.StallRAW + st.StallExec + st.StallIBuf + st.StallIdle
	if total != st.Slots {
		t.Fatalf("slot accounting broken: %d != %d", total, st.Slots)
	}
}

func TestThreadInstsCountPartialWarps(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := kernels.ByAbbr("LBM") // 120 threads: warps of 32,32,32,24
	short := *spec
	short.Iterations = 2
	s.Launch(0, &short, 1<<40, 0)
	runSM(s, sub, 100000)
	st := s.Stats()
	// Each warp executes Iterations*len(Body)+1 instructions; thread
	// counts differ between full and partial warps.
	perWarp := uint64(short.Iterations*len(short.Body) + 1)
	wantThread := perWarp * (32 + 32 + 32 + 24)
	if st.PerKernel[0].ThreadInsts != wantThread {
		t.Fatalf("thread insts = %d, want %d", st.PerKernel[0].ThreadInsts, wantThread)
	}
}

func TestGTOVersusRRBothProgress(t *testing.T) {
	for _, kind := range []SchedulerKind{GTO, RR} {
		cfg := config.Baseline()
		sub := mem.New(cfg)
		s := New(0, cfg, sub)
		s.Sched = kind
		s.Launch(0, kernels.ByAbbr("DXT"), 1<<40, 0)
		s.Launch(0, kernels.ByAbbr("DXT"), 1<<40, 1)
		runSM(s, sub, 3000)
		if s.Stats().PerKernel[0].WarpInsts == 0 {
			t.Fatalf("%v scheduler made no progress", kind)
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if GTO.String() != "gto" || RR.String() != "rr" {
		t.Fatal("scheduler names wrong")
	}
}

func TestResidentCTAsPerKernel(t *testing.T) {
	s, _ := newSM(t)
	s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0)
	s.Launch(1, kernels.ByAbbr("DXT"), 2<<40, 0)
	s.Launch(1, kernels.ByAbbr("DXT"), 2<<40, 1)
	if s.ResidentCTAs(0) != 1 || s.ResidentCTAs(1) != 2 {
		t.Fatalf("resident = %d/%d, want 1/2", s.ResidentCTAs(0), s.ResidentCTAs(1))
	}
	if s.KernelUsed(1).Threads != 2*64 {
		t.Fatalf("kernel 1 threads = %d, want 128", s.KernelUsed(1).Threads)
	}
}

func TestMixedKernelsShareSM(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, 0)
	s.Launch(1, kernels.ByAbbr("BLK"), 2<<40, 0)
	runSM(s, sub, 10000)
	st := s.Stats()
	if st.PerKernel[0].WarpInsts == 0 || st.PerKernel[1].WarpInsts == 0 {
		t.Fatalf("co-resident kernels did not both progress: %d / %d",
			st.PerKernel[0].WarpInsts, st.PerKernel[1].WarpInsts)
	}
}

func TestExitWaitsForOutstandingLoads(t *testing.T) {
	// A kernel whose last body op is a global load: the warp must not
	// exit (and the CTA must not free) while the load is in flight.
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	spec := *kernels.ByAbbr("LBM")
	spec.Iterations = 1
	done := false
	s.OnCTAComplete = func(int, int, int) { done = true }
	s.Launch(0, &spec, 1<<40, 0)
	// Without memory replies the loads never return; the CTA must stay
	// resident no matter how long we run the SM alone.
	for now := int64(0); now < 5000; now++ {
		s.Cycle(now)
		// Deliberately do NOT tick the memory subsystem.
	}
	if done {
		t.Fatal("CTA completed with loads still in flight")
	}
	// Now service memory: the CTA completes.
	for now := int64(5000); now < 200000 && !done; now++ {
		s.Cycle(now)
		for _, r := range sub.Tick(now) {
			s.OnReply(r.LineAddr)
		}
	}
	if !done {
		t.Fatal("CTA never completed after memory was serviced")
	}
}

func TestUsedNeverExceedsLimits(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	for _, spec := range kernels.Suite() {
		for s.Launch(0, spec, 1<<40, 0) {
		}
	}
	u := s.Used()
	if u.Regs > cfg.SM.Registers || u.Shm > cfg.SM.SharedMemBytes ||
		u.Threads > cfg.SM.MaxThreads || u.CTAs > cfg.SM.MaxCTAs {
		t.Fatalf("over-allocated: %+v", u)
	}
}

// TestPerKernelStallConservation pins the attribution invariant: with two
// kernels sharing one SM, every stalled issue slot of each class is charged
// to exactly one kernel, so per-kernel counters sum to the SM-wide class.
func TestPerKernelStallConservation(t *testing.T) {
	cfg := config.Baseline()
	sub := mem.New(cfg)
	s := New(0, cfg, sub)
	q := Unlimited()
	q.CTAs = 2
	s.SetQuota(0, q)
	s.SetQuota(1, q)
	for n := 0; s.Launch(0, kernels.ByAbbr("IMG"), 1<<40, n); n++ {
	}
	for n := 0; s.Launch(1, kernels.ByAbbr("BLK"), 2<<40, n); n++ {
	}
	runSM(s, sub, 20000)

	st := s.Stats()
	var mem, raw, exec, ibuf uint64
	for _, ks := range st.PerKernel {
		mem += ks.StallMem
		raw += ks.StallRAW
		exec += ks.StallExec
		ibuf += ks.StallIBuf
	}
	if mem != st.StallMem || raw != st.StallRAW || exec != st.StallExec || ibuf != st.StallIBuf {
		t.Fatalf("per-kernel sums (%d/%d/%d/%d) != SM-wide (%d/%d/%d/%d)",
			mem, raw, exec, ibuf, st.StallMem, st.StallRAW, st.StallExec, st.StallIBuf)
	}
	if mem+raw+exec+ibuf == 0 {
		t.Fatal("co-run recorded no attributable stalls; test is vacuous")
	}
	if st.PerKernel[0].StallMem+st.PerKernel[0].StallRAW+st.PerKernel[0].StallExec+st.PerKernel[0].StallIBuf == 0 ||
		st.PerKernel[1].StallMem+st.PerKernel[1].StallRAW+st.PerKernel[1].StallExec+st.PerKernel[1].StallIBuf == 0 {
		t.Fatal("stalls attributed to only one of the two resident kernels")
	}
}
