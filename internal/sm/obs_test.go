package sm

import (
	"fmt"
	"testing"

	"warpedslicer/internal/obs"
)

// TestEmitKernelObsIncludesProgressCounters pins the obsregister fix: the
// per-kernel progress counters (warp/thread instructions, CTA launches and
// completions, loads issued) must appear on the observability surface
// alongside the stall classes, with per-kernel warp instructions summing
// to the SM-wide issued total.
func TestEmitKernelObsIncludesProgressCounters(t *testing.T) {
	var st Stats
	st.Issued = 12
	st.PerKernel[0] = KernelStats{WarpInsts: 7, ThreadInsts: 224, CTAsLaunched: 3, CTAsDone: 2, LoadsIssued: 5}
	st.PerKernel[1] = KernelStats{WarpInsts: 5, ThreadInsts: 160, CTAsLaunched: 1, CTAsDone: 1, LoadsIssued: 2}

	got := map[string]float64{}
	st.EmitKernelObs(func(name string, kind obs.Kind, v float64) {
		got[name] = v
	})

	want := map[string]float64{
		`ws_sm_kernel_warp_insts_total{kernel="0"}`:    7,
		`ws_sm_kernel_thread_insts_total{kernel="0"}`:  224,
		`ws_sm_kernel_ctas_launched_total{kernel="0"}`: 3,
		`ws_sm_kernel_ctas_done_total{kernel="0"}`:     2,
		`ws_sm_kernel_loads_issued_total{kernel="0"}`:  5,
		`ws_sm_kernel_warp_insts_total{kernel="1"}`:    5,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}

	var warpSum float64
	for k := 0; k < MaxKernels; k++ {
		warpSum += got[fmt.Sprintf(`ws_sm_kernel_warp_insts_total{kernel="%d"}`, k)]
	}
	if warpSum != float64(st.Issued) {
		t.Errorf("per-kernel warp insts sum = %v, want issued = %d", warpSum, st.Issued)
	}
}
