package sm

import (
	"warpedslicer/internal/assert"
	"warpedslicer/internal/cache"
	"warpedslicer/internal/isa"
	"warpedslicer/internal/memreq"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/warp"
)

// CycleClass deterministically classifies one SM-cycle for the
// fast-forward opportunity meter: what fraction of cycles could an
// event-driven engine skip because every pending wake-up time is already
// known? Classification is a pure function of simulator state (no wall
// clock), so the class counters are byte-identical at any -parallel
// setting and belong to the determinism contract.
type CycleClass uint8

const (
	// ClassIssuing: the SM issued at least one instruction.
	ClassIssuing CycleClass = iota
	// ClassStallKnown: no issue, but every pending event has a known
	// wake-up time — writeback-ring entries, fetch timers, and
	// outstanding loads whose replies are already scheduled in the reply
	// network with a stamped readyAt (the PR 5 span wake times). An
	// event-driven loop could jump this SM straight to the earliest one.
	ClassStallKnown
	// ClassStallUnknown: no issue and at least one wake-up time is not
	// yet known (LD/ST line queue still pumping, or a miss still
	// traversing L2/DRAM, whose completion cycle is not yet scheduled).
	ClassStallUnknown
	// ClassIdle: no resident CTAs.
	ClassIdle

	// NumClasses bounds the class enum.
	NumClasses
)

func (c CycleClass) String() string {
	switch c {
	case ClassIssuing:
		return "issuing"
	case ClassStallKnown:
		return "stall_known"
	case ClassStallUnknown:
		return "stall_unknown"
	case ClassIdle:
		return "idle"
	}
	return "unknown"
}

// Cycle advances the SM by one core-clock cycle and classifies it.
// CycleProfiled is the phase-timed twin; keep the two in lockstep.
func (s *SM) Cycle(now int64) CycleClass {
	s.stats.Cycles++
	s.stats.RegCycles += uint64(s.usedRegs)
	s.stats.ShmCycles += uint64(s.usedShm)

	s.drainWritebacks(now)
	s.pumpMemQueue(now)

	issued := false
	for sched := 0; sched < s.cfg.SM.Schedulers; sched++ {
		s.stats.Slots++
		if s.issueFrom(sched, now) {
			issued = true
		}
	}

	cl := s.classify(issued)
	if assert.Enabled {
		s.checkInvariants()
	}
	return cl
}

// CycleProfiled is Cycle with prof phase marks at the stage boundaries
// (execute = writeback drain, l1 = line-queue pump, issue = scheduler
// loop). gpu.Step calls it only on cycles the profiler elected, so the
// unprofiled hot path above stays unchanged. Keep in lockstep with Cycle.
func (s *SM) CycleProfiled(now int64, p *prof.Profiler) CycleClass {
	s.stats.Cycles++
	s.stats.RegCycles += uint64(s.usedRegs)
	s.stats.ShmCycles += uint64(s.usedShm)

	s.drainWritebacks(now)
	p.Mark(prof.Execute)
	s.pumpMemQueue(now)
	p.Mark(prof.L1)

	issued := false
	for sched := 0; sched < s.cfg.SM.Schedulers; sched++ {
		s.stats.Slots++
		if s.issueFrom(sched, now) {
			issued = true
		}
	}
	p.Mark(prof.Issue)

	cl := s.classify(issued)
	if assert.Enabled {
		s.checkInvariants()
	}
	return cl
}

// classify buckets the cycle that just executed into its CycleClass and
// bumps the matching counter. Stall disambiguation: a non-empty LD/ST
// queue has per-cycle side effects (L1 state, interconnect injection) and
// is never skippable; outstanding miss lines (s.waiters) are skippable
// only once each line's reply sits in the reply network with a stamped
// readyAt. Everything else pending — writeback ring, fetch delays, unit
// busy timers, barriers released by those — wakes at locally known times.
func (s *SM) classify(issued bool) CycleClass {
	var cl CycleClass
	switch {
	case issued:
		cl = ClassIssuing
	case s.usedCTAs == 0:
		cl = ClassIdle
	case len(s.memQ) > 0:
		cl = ClassStallUnknown
	case len(s.waiters) > 0 && s.sub.RepliesInFlight(s.ID) < len(s.waiters):
		cl = ClassStallUnknown
	default:
		cl = ClassStallKnown
	}
	switch cl {
	case ClassIssuing:
		s.stats.CycIssuing++
	case ClassStallKnown:
		s.stats.CycStallKnown++
	case ClassStallUnknown:
		s.stats.CycStallUnknown++
	default:
		s.stats.CycIdle++
	}
	return cl
}

// drainWritebacks applies all writebacks scheduled for `now`.
func (s *SM) drainWritebacks(now int64) {
	idx := now & s.ringMask
	evs := s.ring[idx]
	if len(evs) == 0 {
		return
	}
	s.ring[idx] = evs[:0]
	for _, ev := range evs {
		if ev.tracker != nil {
			ev.tracker.remaining--
			if ev.tracker.remaining == 0 {
				ev.tracker.w.Writeback(ev.tracker.reg, true)
			}
			continue
		}
		ev.w.Writeback(ev.reg, false)
	}
}

// schedule registers a writeback event `lat` cycles in the future.
func (s *SM) schedule(now, lat int64, ev wbEvent) {
	if lat < 1 {
		lat = 1
	}
	if lat > s.ringMask {
		lat = s.ringMask // ring capacity bounds latencies; clamp defensively
	}
	idx := (now + lat) & s.ringMask
	s.ring[idx] = append(s.ring[idx], ev)
}

// issueFrom lets scheduler `sched` issue at most one instruction,
// reporting whether it did.
func (s *SM) issueFrom(sched int, now int64) bool {
	candidates := s.candBuf[sched][:0]
	for _, r := range s.warps {
		if r.sched == sched {
			candidates = append(candidates, r)
		}
	}
	s.candBuf[sched] = candidates
	if len(candidates) == 0 {
		s.stats.StallIdle++
		return false
	}

	order := s.order(sched, candidates)

	// For each stall class remember whether it occurred and which kernel
	// slot the highest-priority blocked warp belonged to: the stalled
	// issue slot is charged to that kernel, so the per-kernel counters
	// sum exactly to the SM-wide class counters.
	sawMem, sawRAW, sawExec, sawIBuf := -1, -1, -1, -1
	for _, r := range order {
		in, blk := r.w.Peek(now, s.cfg.SM.FetchDelay)
		k := r.w.Kernel % MaxKernels
		switch blk {
		case warp.BlockDone, warp.BlockBarrier:
			continue
		case warp.BlockIBuffer:
			if sawIBuf < 0 {
				sawIBuf = k
			}
			continue
		case warp.BlockRAW:
			if sawRAW < 0 {
				sawRAW = k
			}
			continue
		case warp.BlockMemory:
			if sawMem < 0 {
				sawMem = k
			}
			continue
		}
		// Exits must wait for outstanding loads so the CTA's resources
		// are not freed under in-flight replies.
		if in.Kind == isa.EXIT && r.w.OutstandingLoads > 0 {
			if sawMem < 0 {
				sawMem = k
			}
			continue
		}
		if !s.unitFree(in, now) {
			if sawExec < 0 {
				sawExec = k
			}
			continue
		}
		s.issue(r, in, now)
		s.stats.Issued++
		return true
	}

	switch {
	case sawMem >= 0:
		s.stats.StallMem++
		s.stats.PerKernel[sawMem].StallMem++
	case sawRAW >= 0:
		s.stats.StallRAW++
		s.stats.PerKernel[sawRAW].StallRAW++
	case sawExec >= 0:
		s.stats.StallExec++
		s.stats.PerKernel[sawExec].StallExec++
	case sawIBuf >= 0:
		s.stats.StallIBuf++
		s.stats.PerKernel[sawIBuf].StallIBuf++
	default:
		s.stats.StallIdle++
	}
	return false
}

// order returns candidates in scheduling priority order.
func (s *SM) order(sched int, cands []*resident) []*resident {
	switch s.Sched {
	case RR:
		n := len(cands)
		start := s.rrNext[sched] % n
		s.rrNext[sched]++
		out := s.orderBuf[sched][:0]
		for i := 0; i < n; i++ {
			out = append(out, cands[(start+i)%n])
		}
		s.orderBuf[sched] = out
		return out
	default: // GTO: greedy on most-recently-issued, then oldest.
		var greedy *resident
		var last int64 = -1
		for _, r := range cands {
			if r.w.LastIssued > last {
				last, greedy = r.w.LastIssued, r
			}
		}
		out := s.orderBuf[sched][:0]
		if greedy != nil && last > 0 {
			out = append(out, greedy)
		}
		// Oldest-first by launch age (insertion order is already by age;
		// candidates preserve s.warps order which is launch order).
		for _, r := range cands {
			if r != greedy || last <= 0 {
				out = append(out, r)
			}
		}
		s.orderBuf[sched] = out
		return out
	}
}

// unitFree checks functional-unit availability for the instruction.
func (s *SM) unitFree(in isa.Instr, now int64) bool {
	switch in.Kind {
	case isa.ALU:
		for _, free := range s.aluFreeAt {
			if free <= now {
				return true
			}
		}
		return false
	case isa.SFU:
		return s.sfuFreeAt <= now
	case isa.LDG, isa.STG:
		lines := int(in.Lines)
		if lines == 0 {
			lines = 1
		}
		return s.ldstFreeAt <= now && len(s.memQ)+lines <= s.memQCap
	case isa.LDS:
		return s.ldstFreeAt <= now
	default: // BAR, EXIT consume only the issue slot
		return true
	}
}

// issue executes one instruction's issue-stage effects.
func (s *SM) issue(r *resident, in isa.Instr, now int64) {
	spec := r.w.Spec()
	k := r.w.Kernel % MaxKernels
	s.stats.PerKernel[k].WarpInsts++
	threads := r.threads
	if in.ActivePct > 0 && in.ActivePct < 100 {
		// SIMT divergence: only the active lanes do useful work.
		threads = threads * int(in.ActivePct) / 100
		if threads < 1 {
			threads = 1
		}
	}
	s.stats.PerKernel[k].ThreadInsts += uint64(threads)

	warpCycles := int64(s.cfg.SM.WarpSize / s.cfg.SM.SIMTWidth) // lanes per warp
	if warpCycles < 1 {
		warpCycles = 1
	}

	isLoad := in.Kind == isa.LDG
	r.w.Issue(now, in, isLoad, s.cfg.SM.FetchDelay, spec.ICacheMissPct)

	switch in.Kind {
	case isa.ALU:
		for i, free := range s.aluFreeAt {
			if free <= now {
				s.aluFreeAt[i] = now + warpCycles
				break
			}
		}
		s.stats.ALUBusy += uint64(warpCycles)
		s.schedule(now, int64(s.cfg.SM.ALULatency), wbEvent{w: r.w, reg: in.Dest})

	case isa.SFU:
		s.sfuFreeAt = now + int64(s.cfg.SM.SFUInitInterval)*warpCycles
		s.stats.SFUBusy += uint64(int64(s.cfg.SM.SFUInitInterval) * warpCycles)
		s.schedule(now, int64(s.cfg.SM.SFULatency), wbEvent{w: r.w, reg: in.Dest})

	case isa.LDS:
		// Lines carries the bank-conflict serialization factor for
		// shared-memory accesses.
		passes := int64(in.Lines)
		if passes < 1 {
			passes = 1
		}
		s.ldstFreeAt = now + warpCycles*passes
		s.stats.LDSTBusy += uint64(warpCycles * passes)
		s.schedule(now, int64(s.cfg.SM.LDSLatency)+(passes-1)*warpCycles, wbEvent{w: r.w, reg: in.Dest})

	case isa.LDG, isa.STG:
		lines := int(in.Lines)
		if lines == 0 {
			lines = 1
		}
		occ := warpCycles
		if int64(lines) > occ {
			occ = int64(lines)
		}
		s.ldstFreeAt = now + occ
		s.stats.LDSTBusy += uint64(occ)
		var tr *loadTracker
		if isLoad {
			tr = &loadTracker{w: r.w, reg: in.Dest, remaining: lines}
			s.stats.PerKernel[k].LoadsIssued++
		}
		lineBytes := uint64(s.cfg.L1.LineBytes)
		base := in.Addr &^ (lineBytes - 1)
		for i := 0; i < lines; i++ {
			s.memQ = append(s.memQ, lineOp{
				addr:    base + uint64(i)*lineBytes,
				kernel:  r.w.Kernel,
				write:   !isLoad,
				tracker: tr,
			})
		}

	case isa.BAR:
		s.arriveBarrier(r.ctaSlot)

	case isa.EXIT:
		s.retireWarp(r)
	}
}

// arriveBarrier counts a warp into its CTA barrier and releases the CTA
// when all live warps have arrived.
func (s *SM) arriveBarrier(slot int) {
	c := s.ctas[slot]
	c.atBarrier++
	if c.atBarrier < c.warpsLeft {
		return
	}
	c.atBarrier = 0
	for _, w := range c.warpRefs {
		w.ReleaseBarrier()
	}
}

// retireWarp finalizes an exited warp and frees the CTA when it was the
// last one.
func (s *SM) retireWarp(r *resident) {
	c := s.ctas[r.ctaSlot]
	c.warpsLeft--
	if c.warpsLeft == 0 {
		s.freeCTA(r.ctaSlot)
		return
	}
	// A barrier may now be satisfiable with fewer live warps.
	if c.atBarrier >= c.warpsLeft && c.atBarrier > 0 {
		c.atBarrier = 0
		for _, w := range c.warpRefs {
			w.ReleaseBarrier()
		}
	}
}

// pumpMemQueue services the head of the LD/ST line queue: one L1 access
// per cycle.
func (s *SM) pumpMemQueue(now int64) {
	if len(s.memQ) == 0 {
		return
	}
	op := s.memQ[0]
	la := s.l1.LineAddr(op.addr)

	if op.write {
		// Write-through no-allocate: account the L1 lookup and always
		// forward downstream.
		if !s.sub.Submit(memreq.Request{LineAddr: la, SM: s.ID, Kernel: op.kernel, Write: true, Issued: now}, now) {
			return // interconnect saturated; retry next cycle
		}
		s.l1.Access(op.addr, true)
		s.memQ = s.memQ[1:]
		return
	}

	// A genuine miss needs an interconnect slot; if none is available and
	// the access cannot hit or merge, stall before touching cache state.
	if !s.sub.CanAccept() && !s.l1.Probe(op.addr) && !s.l1.HasMSHR(op.addr) {
		return
	}

	switch s.l1.Access(op.addr, false) {
	case cache.Hit:
		s.schedule(now, int64(s.cfg.L1.HitLatency), wbEvent{tracker: op.tracker})
		s.memQ = s.memQ[1:]
	case cache.Miss:
		// The L1 miss (MSHR just allocated) is the span's root: sampling
		// is decided here, purely from (line, cycle, kernel) identity.
		s.sub.Submit(memreq.Request{
			LineAddr: la, SM: s.ID, Kernel: op.kernel, Issued: now,
			Span: s.sub.Spans.Begin(la, s.ID, op.kernel, now),
		}, now)
		s.waiters[la] = append(s.waiters[la], op.tracker)
		s.memQ = s.memQ[1:]
	case cache.MissMerged:
		s.waiters[la] = append(s.waiters[la], op.tracker)
		s.memQ = s.memQ[1:]
	case cache.ReservationFail:
		// MSHRs exhausted: structural stall, retry next cycle.
	}
}

// OnReply delivers a returning global-load line to the SM.
func (s *SM) OnReply(lineAddr uint64) {
	s.l1.Fill(lineAddr)
	trackers := s.waiters[lineAddr]
	delete(s.waiters, lineAddr)
	for _, tr := range trackers {
		if tr == nil {
			continue
		}
		tr.remaining--
		if tr.remaining == 0 {
			tr.w.Writeback(tr.reg, true)
		}
	}
}
