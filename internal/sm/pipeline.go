package sm

import (
	"warpedslicer/internal/assert"
	"warpedslicer/internal/cache"
	"warpedslicer/internal/isa"
	"warpedslicer/internal/memreq"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/warp"
)

// CycleClass deterministically classifies one SM-cycle for the
// fast-forward opportunity meter: what fraction of cycles could an
// event-driven engine skip because every pending wake-up time is already
// known? Classification is a pure function of simulator state (no wall
// clock), so the class counters are byte-identical at any -parallel
// setting and belong to the determinism contract.
type CycleClass uint8

const (
	// ClassIssuing: the SM issued at least one instruction.
	ClassIssuing CycleClass = iota
	// ClassStallKnown: no issue, but every pending event has a known
	// wake-up time — writeback-ring entries, fetch timers, and
	// outstanding loads whose replies are already scheduled in the reply
	// network with a stamped readyAt (the PR 5 span wake times). An
	// event-driven loop could jump this SM straight to the earliest one.
	ClassStallKnown
	// ClassStallUnknown: no issue and at least one wake-up time is not
	// yet known (LD/ST line queue still pumping, or a miss still
	// traversing L2/DRAM, whose completion cycle is not yet scheduled).
	ClassStallUnknown
	// ClassIdle: no resident CTAs.
	ClassIdle

	// NumClasses bounds the class enum.
	NumClasses
)

func (c CycleClass) String() string {
	switch c {
	case ClassIssuing:
		return "issuing"
	case ClassStallKnown:
		return "stall_known"
	case ClassStallUnknown:
		return "stall_unknown"
	case ClassIdle:
		return "idle"
	}
	return "unknown"
}

// Cycle advances the SM by one core-clock cycle and classifies it.
// CycleProfiled is the phase-timed twin; keep the two in lockstep.
func (s *SM) Cycle(now int64) CycleClass {
	s.stats.Cycles++
	s.stats.RegCycles += uint64(s.usedRegs)
	s.stats.ShmCycles += uint64(s.usedShm)

	s.drainWritebacks(now)
	s.pumpMemQueue(now)

	issued := false
	for sched := 0; sched < s.cfg.SM.Schedulers; sched++ {
		s.stats.Slots++
		if s.issueFrom(sched, now) {
			issued = true
		}
	}

	cl := s.classify(issued)
	if assert.Enabled {
		s.checkInvariants()
	}
	return cl
}

// CycleProfiled is Cycle with prof phase marks at the stage boundaries
// (execute = writeback drain, l1 = line-queue pump, issue = scheduler
// loop). gpu.Step calls it only on cycles the profiler elected, so the
// unprofiled hot path above stays unchanged. Keep in lockstep with Cycle.
func (s *SM) CycleProfiled(now int64, p *prof.Profiler) CycleClass {
	s.stats.Cycles++
	s.stats.RegCycles += uint64(s.usedRegs)
	s.stats.ShmCycles += uint64(s.usedShm)

	s.drainWritebacks(now)
	p.Mark(prof.Execute)
	s.pumpMemQueue(now)
	p.Mark(prof.L1)

	issued := false
	for sched := 0; sched < s.cfg.SM.Schedulers; sched++ {
		s.stats.Slots++
		if s.issueFrom(sched, now) {
			issued = true
		}
	}
	p.Mark(prof.Issue)

	cl := s.classify(issued)
	if assert.Enabled {
		s.checkInvariants()
	}
	return cl
}

// classify buckets the cycle that just executed into its CycleClass and
// bumps the matching counter. Stall disambiguation: a non-empty LD/ST
// queue has per-cycle side effects (L1 state, interconnect injection) and
// is never skippable; outstanding miss lines (s.waiters) are skippable
// only once each line's reply sits in the reply network with a stamped
// readyAt. Everything else pending — writeback ring, fetch delays, unit
// busy timers, barriers released by those — wakes at locally known times.
func (s *SM) classify(issued bool) CycleClass {
	var cl CycleClass
	switch {
	case issued:
		cl = ClassIssuing
	case s.usedCTAs == 0:
		cl = ClassIdle
	case s.memQLen > 0:
		cl = ClassStallUnknown
	case len(s.waiters) > 0 && s.sub.RepliesInFlight(s.ID) < len(s.waiters):
		cl = ClassStallUnknown
	default:
		cl = ClassStallKnown
	}
	switch cl {
	case ClassIssuing:
		s.stats.CycIssuing++
	case ClassStallKnown:
		s.stats.CycStallKnown++
	case ClassStallUnknown:
		s.stats.CycStallUnknown++
	default:
		s.stats.CycIdle++
	}
	return cl
}

// drainWritebacks applies all writebacks and scheduler wake-ups scheduled
// for `now`. Every warp whose state changes is marked stale so its
// scheduler re-classifies it before the next issue walk.
func (s *SM) drainWritebacks(now int64) {
	idx := now & s.ringMask
	evs := s.ring[idx]
	if len(evs) == 0 {
		return
	}
	// The backing array is reused (evs[:0]); entries are overwritten by
	// future appends at this index, so any resident refs it retains are
	// transient — unlike the freeCTA compaction tail, which must be nil'd
	// because it would otherwise live for the whole run.
	s.ring[idx] = evs[:0]
	for _, ev := range evs {
		switch {
		case ev.wake:
			s.markStale(ev.res)
		case ev.tracker != nil:
			ev.tracker.remaining--
			if ev.tracker.remaining == 0 {
				tr := ev.tracker
				tr.res.w.Writeback(tr.reg, true)
				s.markStale(tr.res)
			}
		default:
			ev.res.w.Writeback(ev.reg, false)
			s.markStale(ev.res)
		}
	}
}

// schedule registers a writeback event `lat` cycles in the future. New
// validates that every configured latency fits the ring, so an
// out-of-range lat here is a bug, not a config problem.
func (s *SM) schedule(now, lat int64, ev wbEvent) {
	if assert.Enabled && (lat < 1 || lat > s.ringMask) {
		assert.Failf("sm %d cycle %d: scheduled latency %d outside ring [1,%d]",
			s.ID, now, lat, s.ringMask)
	}
	if lat < 1 {
		lat = 1
	}
	idx := (now + lat) & s.ringMask
	s.ring[idx] = append(s.ring[idx], ev)
}

// refresh re-classifies every stale resident of q: one Peek per warp that
// actually changed state since the last walk, instead of one per resident
// warp per cycle. An i-buffer-blocked warp's unblock time is its fetch
// timer, which is known now — a wake event is scheduled for it so no
// further polling is needed.
//
//simlint:wakehook
func (s *SM) refresh(q *schedQ, now int64) {
	if len(q.staleQ) == 0 {
		return
	}
	fetchDelay := s.cfg.SM.FetchDelay
	for i, r := range q.staleQ {
		q.staleQ[i] = nil
		r.stale = false
		if r.gone {
			continue
		}
		wasReady := r.cls == warp.BlockNone
		in, cls := r.w.Peek(now, fetchDelay)
		r.in, r.cls = in, cls
		if isReady := cls == warp.BlockNone; isReady != wasReady {
			if isReady {
				q.ready++
			} else {
				q.ready--
			}
		}
		if cls == warp.BlockIBuffer {
			s.schedule(now, r.w.FetchReadyAt()-now, wbEvent{res: r, wake: true})
		}
	}
	q.staleQ = q.staleQ[:0]
}

// stallSaw records, per stall class, the kernel slot of the first
// (highest-priority) warp seen blocked for that class, or -1.
type stallSaw struct {
	mem, raw, exec, ibuf int
}

// issueFrom lets scheduler `sched` issue at most one instruction,
// reporting whether it did.
func (s *SM) issueFrom(sched int, now int64) bool {
	q := &s.scheds[sched]

	// Fast path: a fully-blocked GTO slot with no pending readiness
	// events replays its cached stall attribution. With ready == 0 the
	// walk below cannot issue, touches no per-cycle state (unitFree and
	// the exit-load check only run for ready warps), and its outcome
	// depends only on the cached classes and the static greedy-then-
	// oldest order — all unchanged since the attribution was cached.
	if s.Sched == GTO && q.attrValid && q.ready == 0 && len(q.staleQ) == 0 {
		s.stats.SchedFastSlots++
		s.chargeStall(q.attrCls, q.attrK)
		return false
	}

	s.refresh(q, now)

	if len(q.list) == 0 {
		s.stats.StallIdle++
		if s.Sched == GTO {
			q.attrValid, q.attrCls, q.attrK = true, stallIdleC, 0
		}
		return false
	}

	// Issue pass: find the first ready warp in scheduler priority order
	// that passes the live checks (exit-load drain, unit availability).
	// Blocked warps are skipped with a single class compare — stall
	// attribution only matters when nothing issues, and is computed by a
	// separate walk below so issuing slots never pay for it. Nothing the
	// pass observes mutates between candidates (an issue ends the slot,
	// and ends the walk: CTA retirement may compact q.list in place).
	greedy := q.greedy // snapshot: an issue reassigns q.greedy mid-slot
	issued := false
	rrStart := 0
	switch s.Sched {
	case RR:
		n := len(q.list)
		rrStart = q.rrNext % n
		q.rrNext++
		if q.ready > 0 {
			for i := 0; i < n; i++ {
				r := q.list[(rrStart+i)%n]
				if r.cls == warp.BlockNone && s.tryIssue(q, r, now) {
					issued = true
					break
				}
			}
		}
	default: // GTO: greedy on most-recently-issued, then oldest.
		if q.ready > 0 {
			if greedy != nil && greedy.cls == warp.BlockNone {
				issued = s.tryIssue(q, greedy, now)
			}
			if !issued {
				// Oldest-first by launch age (list preserves launch order).
				for _, r := range q.list {
					if r.cls != warp.BlockNone || r == greedy {
						continue
					}
					if s.tryIssue(q, r, now) {
						issued = true
						break
					}
				}
			}
		}
	}

	if issued {
		s.stats.Issued++
		return true
	}

	// Attribution pass (no-issue slot): first-seen blocked warp per stall
	// class, in the same priority order the issue pass used. Ready warps
	// reaching this pass are unissuable this slot (the issue pass proved
	// it, and nothing has changed since), so they attribute as exec or
	// exit-load-wait.
	saw := stallSaw{mem: -1, raw: -1, exec: -1, ibuf: -1}
	if s.Sched == RR {
		n := len(q.list)
		for i := 0; i < n; i++ {
			s.attribute(q.list[(rrStart+i)%n], now, &saw)
		}
	} else {
		if greedy != nil {
			s.attribute(greedy, now, &saw)
		}
		for _, r := range q.list {
			if r != greedy {
				s.attribute(r, now, &saw)
			}
		}
	}

	cls, k := stallIdleC, 0
	switch {
	case saw.mem >= 0:
		cls, k = stallMemC, saw.mem
	case saw.raw >= 0:
		cls, k = stallRAWC, saw.raw
	case saw.exec >= 0:
		cls, k = stallExecC, saw.exec
	case saw.ibuf >= 0:
		cls, k = stallIBufC, saw.ibuf
	}
	s.chargeStall(cls, k)
	if s.Sched == GTO && q.ready == 0 {
		q.attrValid, q.attrCls, q.attrK = true, cls, k
	}
	return false
}

// tryIssue attempts to issue a ready (cls == BlockNone) candidate,
// reporting whether it did.
func (s *SM) tryIssue(q *schedQ, r *resident, now int64) bool {
	in := r.in
	// Exits must wait for outstanding loads so the CTA's resources are
	// not freed under in-flight replies.
	if in.Kind == isa.EXIT && r.w.OutstandingLoads > 0 {
		return false
	}
	if !s.unitFree(in, now) {
		return false
	}
	s.issue(r, in, now)
	// The issuer now has the scheduler's maximum LastIssued, i.e. it is
	// the next greedy warp — unless the issue retired it (EXIT freeing
	// its CTA), in which case resyncSched already rescanned.
	if !r.gone {
		q.greedy = r
	}
	return true
}

// attribute records r's stall class into saw (first-seen per class).
func (s *SM) attribute(r *resident, now int64, saw *stallSaw) {
	k := r.w.Kernel % MaxKernels
	switch r.cls {
	case warp.BlockDone, warp.BlockBarrier:
	case warp.BlockIBuffer:
		if saw.ibuf < 0 {
			saw.ibuf = k
		}
	case warp.BlockRAW:
		if saw.raw < 0 {
			saw.raw = k
		}
	case warp.BlockMemory:
		if saw.mem < 0 {
			saw.mem = k
		}
	default: // ready, but proved unissuable by the issue pass
		if r.in.Kind == isa.EXIT && r.w.OutstandingLoads > 0 {
			if saw.mem < 0 {
				saw.mem = k
			}
		} else if saw.exec < 0 {
			saw.exec = k
		}
	}
}

// chargeStall accounts one stalled issue slot to its class and kernel.
func (s *SM) chargeStall(cls stallClass, k int) {
	switch cls {
	case stallMemC:
		s.stats.StallMem++
		s.stats.PerKernel[k].StallMem++
	case stallRAWC:
		s.stats.StallRAW++
		s.stats.PerKernel[k].StallRAW++
	case stallExecC:
		s.stats.StallExec++
		s.stats.PerKernel[k].StallExec++
	case stallIBufC:
		s.stats.StallIBuf++
		s.stats.PerKernel[k].StallIBuf++
	default:
		s.stats.StallIdle++
	}
}

// unitFree checks functional-unit availability for the instruction.
func (s *SM) unitFree(in isa.Instr, now int64) bool {
	switch in.Kind {
	case isa.ALU:
		for _, free := range s.aluFreeAt {
			if free <= now {
				return true
			}
		}
		return false
	case isa.SFU:
		return s.sfuFreeAt <= now
	case isa.LDG, isa.STG:
		lines := int(in.Lines)
		if lines == 0 {
			lines = 1
		}
		return s.ldstFreeAt <= now && s.memQLen+lines <= s.memQCap
	case isa.LDS:
		return s.ldstFreeAt <= now
	default: // BAR, EXIT consume only the issue slot
		return true
	}
}

// issue executes one instruction's issue-stage effects.
func (s *SM) issue(r *resident, in isa.Instr, now int64) {
	spec := r.w.Spec()
	k := r.w.Kernel % MaxKernels
	s.stats.PerKernel[k].WarpInsts++
	threads := r.threads
	if in.ActivePct > 0 && in.ActivePct < 100 {
		// SIMT divergence: only the active lanes do useful work.
		threads = threads * int(in.ActivePct) / 100
		if threads < 1 {
			threads = 1
		}
	}
	s.stats.PerKernel[k].ThreadInsts += uint64(threads)

	warpCycles := int64(s.cfg.SM.WarpSize / s.cfg.SM.SIMTWidth) // lanes per warp
	if warpCycles < 1 {
		warpCycles = 1
	}

	isLoad := in.Kind == isa.LDG
	r.w.Issue(now, in, isLoad, s.cfg.SM.FetchDelay, spec.ICacheMissPct)
	// Issue changed the warp's state (i-buffer consumed, scoreboard,
	// possibly Done/AtBarrier): re-classify before the next walk.
	s.markStale(r)

	switch in.Kind {
	case isa.ALU:
		for i, free := range s.aluFreeAt {
			if free <= now {
				s.aluFreeAt[i] = now + warpCycles
				break
			}
		}
		s.stats.ALUBusy += uint64(warpCycles)
		s.schedule(now, int64(s.cfg.SM.ALULatency), wbEvent{res: r, reg: in.Dest})

	case isa.SFU:
		s.sfuFreeAt = now + int64(s.cfg.SM.SFUInitInterval)*warpCycles
		s.stats.SFUBusy += uint64(int64(s.cfg.SM.SFUInitInterval) * warpCycles)
		s.schedule(now, int64(s.cfg.SM.SFULatency), wbEvent{res: r, reg: in.Dest})

	case isa.LDS:
		// Lines carries the bank-conflict serialization factor for
		// shared-memory accesses.
		passes := int64(in.Lines)
		if passes < 1 {
			passes = 1
		}
		s.ldstFreeAt = now + warpCycles*passes
		s.stats.LDSTBusy += uint64(warpCycles * passes)
		s.schedule(now, int64(s.cfg.SM.LDSLatency)+(passes-1)*warpCycles, wbEvent{res: r, reg: in.Dest})

	case isa.LDG, isa.STG:
		lines := int(in.Lines)
		if lines == 0 {
			lines = 1
		}
		occ := warpCycles
		if int64(lines) > occ {
			occ = int64(lines)
		}
		s.ldstFreeAt = now + occ
		s.stats.LDSTBusy += uint64(occ)
		var tr *loadTracker
		if isLoad {
			tr = &loadTracker{res: r, reg: in.Dest, remaining: lines}
			s.stats.PerKernel[k].LoadsIssued++
		}
		lineBytes := uint64(s.cfg.L1.LineBytes)
		base := in.Addr &^ (lineBytes - 1)
		for i := 0; i < lines; i++ {
			s.memQPush(lineOp{
				addr:    base + uint64(i)*lineBytes,
				kernel:  r.w.Kernel,
				write:   !isLoad,
				tracker: tr,
			})
		}

	case isa.BAR:
		s.arriveBarrier(r.ctaSlot)

	case isa.EXIT:
		s.retireWarp(r)
	}
}

// arriveBarrier counts a warp into its CTA barrier and releases the CTA
// when all live warps have arrived.
func (s *SM) arriveBarrier(slot int) {
	c := s.ctas[slot]
	c.atBarrier++
	if c.atBarrier < c.warpsLeft {
		return
	}
	c.atBarrier = 0
	s.releaseBarrier(c)
}

// releaseBarrier resumes every warp of c waiting at the barrier, marking
// each stale so its scheduler sees the transition.
func (s *SM) releaseBarrier(c *cta) {
	for _, r := range c.warpRefs {
		if r.w.State == warp.AtBarrier {
			r.w.ReleaseBarrier()
			s.markStale(r)
		}
	}
}

// retireWarp finalizes an exited warp and frees the CTA when it was the
// last one.
func (s *SM) retireWarp(r *resident) {
	c := s.ctas[r.ctaSlot]
	c.warpsLeft--
	if c.warpsLeft == 0 {
		s.freeCTA(r.ctaSlot)
		return
	}
	// A barrier may now be satisfiable with fewer live warps.
	if c.atBarrier >= c.warpsLeft && c.atBarrier > 0 {
		c.atBarrier = 0
		s.releaseBarrier(c)
	}
}

// memQPush appends one line transaction to the LD/ST ring. unitFree
// guarantees space before the issuing instruction enqueues.
func (s *SM) memQPush(op lineOp) {
	s.memQ[(s.memQHead+s.memQLen)&(s.memQCap-1)] = op
	s.memQLen++
}

// memQPop removes the head transaction, zeroing the slot so the ring does
// not retain tracker references after the op completes.
func (s *SM) memQPop() {
	s.memQ[s.memQHead] = lineOp{}
	s.memQHead = (s.memQHead + 1) & (s.memQCap - 1)
	s.memQLen--
}

// pumpMemQueue services the head of the LD/ST line queue: one L1 access
// per cycle.
func (s *SM) pumpMemQueue(now int64) {
	if s.memQLen == 0 {
		return
	}
	op := s.memQ[s.memQHead]
	la := s.l1.LineAddr(op.addr)

	if op.write {
		// Write-through no-allocate: account the L1 lookup and always
		// forward downstream.
		if !s.sub.Submit(memreq.Request{LineAddr: la, SM: s.ID, Kernel: op.kernel, Write: true, Issued: now}, now) {
			return // interconnect saturated; retry next cycle
		}
		s.l1.Access(op.addr, true)
		s.memQPop()
		return
	}

	// A genuine miss needs an interconnect slot; if none is available and
	// the access cannot hit or merge, stall before touching cache state.
	if !s.sub.CanAccept() && !s.l1.Probe(op.addr) && !s.l1.HasMSHR(op.addr) {
		return
	}

	switch s.l1.Access(op.addr, false) {
	case cache.Hit:
		s.schedule(now, int64(s.cfg.L1.HitLatency), wbEvent{tracker: op.tracker})
		s.memQPop()
	case cache.Miss:
		// The L1 miss (MSHR just allocated) is the span's root: sampling
		// is decided here, purely from (line, cycle, kernel) identity.
		s.sub.Submit(memreq.Request{
			LineAddr: la, SM: s.ID, Kernel: op.kernel, Issued: now,
			Span: s.sub.Spans.Begin(la, s.ID, op.kernel, now),
		}, now)
		s.waiters[la] = append(s.waiters[la], op.tracker)
		s.memQPop()
	case cache.MissMerged:
		s.waiters[la] = append(s.waiters[la], op.tracker)
		s.memQPop()
	case cache.ReservationFail:
		// MSHRs exhausted: structural stall, retry next cycle.
	}
}

// OnReply delivers a returning global-load line to the SM.
func (s *SM) OnReply(lineAddr uint64) {
	s.l1.Fill(lineAddr)
	trackers := s.waiters[lineAddr]
	delete(s.waiters, lineAddr)
	for _, tr := range trackers {
		if tr == nil {
			continue
		}
		tr.remaining--
		if tr.remaining == 0 {
			tr.res.w.Writeback(tr.reg, true)
			s.markStale(tr.res)
		}
	}
}
