package sm

import (
	"warpedslicer/internal/assert"
	"warpedslicer/internal/warp"
)

// checkInvariants verifies, at the end of every cycle, the conservation
// and bound invariants the SM maintains by construction. It runs only
// under the simassert build tag (the call in Cycle is gated on
// assert.Enabled); the default build compiles it out entirely.
func (s *SM) checkInvariants() {
	st := &s.stats

	// Issue-slot conservation: every scheduler slot of every cycle is
	// accounted to exactly one of issued or a stall class (PR 3's Figure 7
	// attribution depends on this partition being exact).
	stalls := st.StallMem + st.StallRAW + st.StallExec + st.StallIBuf + st.StallIdle
	if st.Slots != st.Issued+stalls {
		assert.Failf("sm %d cycle %d: issue-slot conservation broken: slots=%d issued=%d stalls=%d",
			s.ID, st.Cycles, st.Slots, st.Issued, stalls)
	}

	// Per-kernel stall attribution sums exactly to the SM-wide classes,
	// and per-kernel warp instructions sum to the issued total.
	var mem, raw, exec, ibuf, warpInsts uint64
	for k := 0; k < MaxKernels; k++ {
		ks := &st.PerKernel[k]
		mem += ks.StallMem
		raw += ks.StallRAW
		exec += ks.StallExec
		ibuf += ks.StallIBuf
		warpInsts += ks.WarpInsts
	}
	if mem != st.StallMem || raw != st.StallRAW || exec != st.StallExec || ibuf != st.StallIBuf {
		assert.Failf("sm %d cycle %d: per-kernel stall sums diverge from SM-wide classes: "+
			"mem %d/%d raw %d/%d exec %d/%d ibuf %d/%d",
			s.ID, st.Cycles, mem, st.StallMem, raw, st.StallRAW, exec, st.StallExec, ibuf, st.StallIBuf)
	}
	if warpInsts != st.Issued {
		assert.Failf("sm %d cycle %d: per-kernel warp insts %d != issued %d",
			s.ID, st.Cycles, warpInsts, st.Issued)
	}

	// Occupancy never exceeds the Table I limits Launch enforces.
	if s.usedRegs > s.cfg.SM.Registers || s.usedShm > s.cfg.SM.SharedMemBytes ||
		s.usedThreads > s.cfg.SM.MaxThreads || s.usedCTAs > s.cfg.SM.MaxCTAs {
		assert.Failf("sm %d cycle %d: occupancy exceeds Table I limits: regs %d/%d shm %d/%d threads %d/%d ctas %d/%d",
			s.ID, st.Cycles, s.usedRegs, s.cfg.SM.Registers, s.usedShm, s.cfg.SM.SharedMemBytes,
			s.usedThreads, s.cfg.SM.MaxThreads, s.usedCTAs, s.cfg.SM.MaxCTAs)
	}

	// Per-kernel resource accounting sums to the SM-wide pools.
	var used Quota
	for k := 0; k < MaxKernels; k++ {
		used.Regs += s.kUsed[k].Regs
		used.Shm += s.kUsed[k].Shm
		used.Threads += s.kUsed[k].Threads
		used.CTAs += s.kUsed[k].CTAs
	}
	if used.Regs != s.usedRegs || used.Shm != s.usedShm ||
		used.Threads != s.usedThreads || used.CTAs != s.usedCTAs {
		assert.Failf("sm %d cycle %d: per-kernel usage %+v diverges from SM pools {%d %d %d %d}",
			s.ID, st.Cycles, used, s.usedRegs, s.usedShm, s.usedThreads, s.usedCTAs)
	}

	// The LD/ST line ring respects its configured bound and cursor range.
	if s.memQLen < 0 || s.memQLen > s.memQCap {
		assert.Failf("sm %d cycle %d: memQ overflow: %d > %d", s.ID, st.Cycles, s.memQLen, s.memQCap)
	}
	if s.memQHead < 0 || s.memQHead >= s.memQCap {
		assert.Failf("sm %d cycle %d: memQ head %d outside ring of %d", s.ID, st.Cycles, s.memQHead, s.memQCap)
	}

	// Ready-set bookkeeping mirrors ground truth: the per-scheduler lists
	// partition s.warps, hold no dropped residents, and each scheduler's
	// ready count matches a recount of its cached classifications. The
	// greedy warp, when tracked, must still be resident in its list.
	total := 0
	for i := range s.scheds {
		q := &s.scheds[i]
		total += len(q.list)
		ready := 0
		greedyListed := q.greedy == nil
		for _, r := range q.list {
			if r.gone {
				assert.Failf("sm %d cycle %d: sched %d lists a dropped resident (kernel %d)",
					s.ID, st.Cycles, i, r.w.Kernel)
			}
			if r.sched != i {
				assert.Failf("sm %d cycle %d: sched %d lists a resident assigned to sched %d",
					s.ID, st.Cycles, i, r.sched)
			}
			if r.cls == warp.BlockNone {
				ready++
			}
			if r == q.greedy {
				greedyListed = true
			}
		}
		if ready != q.ready {
			assert.Failf("sm %d cycle %d: sched %d ready count %d != recount %d",
				s.ID, st.Cycles, i, q.ready, ready)
		}
		if !greedyListed {
			assert.Failf("sm %d cycle %d: sched %d greedy warp not in its list", s.ID, st.Cycles, i)
		}
	}
	if total != len(s.warps) {
		assert.Failf("sm %d cycle %d: scheduler lists hold %d residents, SM holds %d",
			s.ID, st.Cycles, total, len(s.warps))
	}

	// Cycle-class conservation: classify runs once per cycle and lands
	// every cycle in exactly one class, so the four classes sum to Cycles.
	// The fast-forward opportunity fractions in figengineprof divide by
	// this total and depend on the partition being exact.
	classes := st.CycIssuing + st.CycStallKnown + st.CycStallUnknown + st.CycIdle
	if classes != uint64(st.Cycles) {
		assert.Failf("sm %d cycle %d: cycle-class conservation broken: "+
			"issuing=%d known=%d unknown=%d idle=%d sum=%d",
			s.ID, st.Cycles, st.CycIssuing, st.CycStallKnown, st.CycStallUnknown, st.CycIdle, classes)
	}

	// Every outstanding-load line has exactly one L1 MSHR entry (allocated
	// on Miss, freed by the Fill in OnReply), so the waiters map and the
	// MSHR population track each other cycle by cycle. classify leans on
	// this: it treats len(waiters) as "distinct miss lines outstanding"
	// when deciding whether all wake-ups are known.
	if len(s.waiters) != s.l1.MSHRInUse() {
		assert.Failf("sm %d cycle %d: waiters %d != L1 MSHRs in use %d",
			s.ID, st.Cycles, len(s.waiters), s.l1.MSHRInUse())
	}
}
