package sm

import (
	"strconv"

	"warpedslicer/internal/obs"
)

// EmitObs publishes an SM counter set through an obs collector callback
// under the given labels. The GPU uses it both per SM ("sm","<i>") and for
// the device-wide aggregate (no labels).
func (st Stats) EmitObs(emit obs.Emit, kv ...string) {
	c := func(name string, v uint64) {
		emit(obs.Label(name, kv...), obs.Counter, float64(v))
	}
	c("ws_sm_slots_total", st.Slots)
	c("ws_sm_issued_total", st.Issued)
	c("ws_sm_stall_mem_total", st.StallMem)
	c("ws_sm_stall_raw_total", st.StallRAW)
	c("ws_sm_stall_exec_total", st.StallExec)
	c("ws_sm_stall_ibuf_total", st.StallIBuf)
	c("ws_sm_stall_idle_total", st.StallIdle)
	c("ws_sm_sched_fastpath_total", st.SchedFastSlots)
	c("ws_sm_cyc_issuing_total", st.CycIssuing)
	c("ws_sm_cyc_stall_known_total", st.CycStallKnown)
	c("ws_sm_cyc_stall_unknown_total", st.CycStallUnknown)
	c("ws_sm_cyc_idle_total", st.CycIdle)
	c("ws_sm_alu_busy_total", st.ALUBusy)
	c("ws_sm_sfu_busy_total", st.SFUBusy)
	c("ws_sm_ldst_busy_total", st.LDSTBusy)
	c("ws_sm_reg_cycles_total", st.RegCycles)
	c("ws_sm_shm_cycles_total", st.ShmCycles)
}

// EmitKernelObs publishes the per-kernel counters under the given labels
// plus a "kernel" label per slot: the stall-attribution classes (summing
// one class over all kernel slots reproduces the matching SM-wide
// ws_sm_stall_* counter) and the progress counters (instructions, CTA
// launches/completions, loads issued).
func (st Stats) EmitKernelObs(emit obs.Emit, kv ...string) {
	for k := 0; k < MaxKernels; k++ {
		lbl := make([]string, 0, len(kv)+2)
		lbl = append(lbl, kv...)
		lbl = append(lbl, "kernel", strconv.Itoa(k))
		ks := st.PerKernel[k]
		c := func(name string, v uint64) {
			emit(obs.Label(name, lbl...), obs.Counter, float64(v))
		}
		c("ws_sm_kernel_stall_mem_total", ks.StallMem)
		c("ws_sm_kernel_stall_raw_total", ks.StallRAW)
		c("ws_sm_kernel_stall_exec_total", ks.StallExec)
		c("ws_sm_kernel_stall_ibuf_total", ks.StallIBuf)
		c("ws_sm_kernel_warp_insts_total", ks.WarpInsts)
		c("ws_sm_kernel_thread_insts_total", ks.ThreadInsts)
		c("ws_sm_kernel_ctas_launched_total", ks.CTAsLaunched)
		c("ws_sm_kernel_ctas_done_total", ks.CTAsDone)
		c("ws_sm_kernel_loads_issued_total", ks.LoadsIssued)
	}
}

// Register wires this SM's live counters into the registry: the scheduler
// and stall counters, L1 activity, and per-kernel resident occupancy (the
// series that makes profiling layouts and repartitions visible live).
func (s *SM) Register(r *obs.Registry) {
	id := strconv.Itoa(s.ID)
	r.Collector(func(emit obs.Emit) {
		st := s.stats
		st.EmitObs(emit, "sm", id)
		st.EmitKernelObs(emit, "sm", id)
		s.l1.Stats.EmitObs(emit, "cache", "l1", "sm", id)
		for k := 0; k < MaxKernels; k++ {
			emit(obs.Label("ws_sm_ctas_resident", "sm", id, "kernel", strconv.Itoa(k)),
				obs.Gauge, float64(s.kUsed[k].CTAs))
		}
	})
}
