//go:build schedref

package sm

import (
	"warpedslicer/internal/assert"
	"warpedslicer/internal/isa"
	"warpedslicer/internal/warp"
)

// This file carries the pre-ready-set reference scheduler: the full
// per-cycle rescan the issue stage used before the event-driven rewrite
// (modulo the GTO cycle-0 fix, which is pinned in both paths). It exists
// only for the old-vs-new cross-check test, which drives two SMs in
// lockstep — one through Cycle, one through CycleRef — and requires their
// statistics to stay byte-identical. It compiles only under the schedref
// build tag so the reference path can never leak into a release binary.

// CycleRef is Cycle with the reference scheduler in place of the
// ready-set issue loop. Everything outside issueFrom is shared.
func (s *SM) CycleRef(now int64) CycleClass {
	s.stats.Cycles++
	s.stats.RegCycles += uint64(s.usedRegs)
	s.stats.ShmCycles += uint64(s.usedShm)

	s.drainWritebacks(now)
	s.pumpMemQueue(now)

	issued := false
	for sched := 0; sched < s.cfg.SM.Schedulers; sched++ {
		s.stats.Slots++
		if s.refIssueFrom(sched, now) {
			issued = true
		}
	}

	cl := s.classify(issued)
	if assert.Enabled {
		s.checkInvariants()
	}
	return cl
}

// refIssueFrom is the original issue loop: rebuild the scheduler's
// candidate list from s.warps, order it, and Peek every candidate live.
func (s *SM) refIssueFrom(sched int, now int64) bool {
	var candidates []*resident
	for _, r := range s.warps {
		if r.sched == sched {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		s.stats.StallIdle++
		return false
	}

	order := s.refOrder(sched, candidates)

	sawMem, sawRAW, sawExec, sawIBuf := -1, -1, -1, -1
	for _, r := range order {
		in, blk := r.w.Peek(now, s.cfg.SM.FetchDelay)
		k := r.w.Kernel % MaxKernels
		switch blk {
		case warp.BlockDone, warp.BlockBarrier:
			continue
		case warp.BlockIBuffer:
			if sawIBuf < 0 {
				sawIBuf = k
			}
			continue
		case warp.BlockRAW:
			if sawRAW < 0 {
				sawRAW = k
			}
			continue
		case warp.BlockMemory:
			if sawMem < 0 {
				sawMem = k
			}
			continue
		}
		if in.Kind == isa.EXIT && r.w.OutstandingLoads > 0 {
			if sawMem < 0 {
				sawMem = k
			}
			continue
		}
		if !s.unitFree(in, now) {
			if sawExec < 0 {
				sawExec = k
			}
			continue
		}
		s.issue(r, in, now)
		s.stats.Issued++
		return true
	}

	switch {
	case sawMem >= 0:
		s.chargeStall(stallMemC, sawMem)
	case sawRAW >= 0:
		s.chargeStall(stallRAWC, sawRAW)
	case sawExec >= 0:
		s.chargeStall(stallExecC, sawExec)
	case sawIBuf >= 0:
		s.chargeStall(stallIBufC, sawIBuf)
	default:
		s.chargeStall(stallIdleC, 0)
	}
	return false
}

// refOrder returns candidates in scheduling priority order. The RR cursor
// is the same per-scheduler counter the ready-set path uses, so either
// path sees identical rotations.
func (s *SM) refOrder(sched int, cands []*resident) []*resident {
	q := &s.scheds[sched]
	switch s.Sched {
	case RR:
		n := len(cands)
		start := q.rrNext % n
		q.rrNext++
		out := make([]*resident, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, cands[(start+i)%n])
		}
		return out
	default: // GTO: greedy on most-recently-issued, then oldest.
		var greedy *resident
		var last int64 = -1
		for _, r := range cands {
			if r.w.LastIssued > last {
				last, greedy = r.w.LastIssued, r
			}
		}
		out := make([]*resident, 0, len(cands)+1)
		if greedy != nil && last >= 0 {
			out = append(out, greedy)
		}
		for _, r := range cands {
			if r != greedy || last < 0 {
				out = append(out, r)
			}
		}
		return out
	}
}
