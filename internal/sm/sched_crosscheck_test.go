//go:build schedref

package sm

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/mem"
)

// The cross-check drives two SMs in lockstep over the same workload: one
// through the reference full-rescan scheduler (CycleRef), one through the
// ready-set scheduler (Cycle), each with its own memory subsystem. Every
// cycle the two SMs' canonical state digests must match — the digest walk
// covers residents, warp scoreboards, CTA slots, allocator, execution
// pipes, and statistics (internal/sm/digest.go), so it pins the two issue
// loops to identical decisions far more tightly than the old full-Stats
// comparison. On a mismatch the per-section digests localize which part
// of the SM diverged first. SchedFastSlots is excluded by the digest
// contract: it counts the ready-set path's cache hits, which the
// reference path by definition never takes.

type smPair struct {
	ref, rdy       *SM
	refSub, rdySub *mem.Subsystem
}

func newPair(cfg config.GPU, kind SchedulerKind) *smPair {
	refSub, rdySub := mem.New(cfg), mem.New(cfg)
	p := &smPair{
		ref: New(0, cfg, refSub), rdy: New(0, cfg, rdySub),
		refSub: refSub, rdySub: rdySub,
	}
	p.ref.Sched, p.rdy.Sched = kind, kind
	return p
}

func (p *smPair) launch(t *testing.T, kernel int, spec *kernels.Spec, base uint64, gridID int) bool {
	t.Helper()
	a := p.ref.Launch(kernel, spec, base, gridID)
	b := p.rdy.Launch(kernel, spec, base, gridID)
	if a != b {
		t.Fatalf("launch divergence for kernel %d grid %d: ref=%v ready-set=%v", kernel, gridID, a, b)
	}
	return a
}

// fill launches CTAs of spec until the SM refuses one, returning the next
// unused grid ID.
func (p *smPair) fill(t *testing.T, kernel int, spec *kernels.Spec, base uint64, from int) int {
	t.Helper()
	g := from
	for p.launch(t, kernel, spec, base, g) {
		g++
	}
	return g
}

func (p *smPair) run(t *testing.T, from, to int64) {
	t.Helper()
	for now := from; now < to; now++ {
		p.ref.CycleRef(now)
		p.rdy.Cycle(now)
		for _, r := range p.refSub.Tick(now) {
			p.ref.OnReply(r.LineAddr)
		}
		for _, r := range p.rdySub.Tick(now) {
			p.rdy.OnReply(r.LineAddr)
		}
		if digest.Of(p.ref) == digest.Of(p.rdy) {
			continue
		}
		// Localize the divergence: hash each canonical section separately
		// and name the first that differs.
		sr, sn := p.ref.DigestSections(), p.rdy.DigestSections()
		section := "(chain)"
		for i := range sr {
			if sr[i].Sum != sn[i].Sum {
				section = sr[i].Name
				break
			}
		}
		t.Fatalf("cycle %d: scheduler divergence in section %q\nref stats:       %+v\nready-set stats: %+v\nref state: %s\nrdy state: %s",
			now, section, p.ref.Stats(), p.rdy.Stats(), p.ref.DebugWarpStates(now), p.rdy.DebugWarpStates(now))
	}
}

// relaunch wires both SMs to replace completed CTAs of their kernel with
// the next grid ID, so the cross-check covers mid-run retirement,
// replacement launches, and the scheduler-assignment counter.
func (p *smPair) relaunch(t *testing.T, specs map[int]*kernels.Spec, base map[int]uint64, halted map[int]bool) {
	// Each SM gets its own grid counters so a divergence cannot mask
	// itself by sharing launch state.
	hook := func(s *SM) func(int, int, int) {
		next := map[int]int{}
		return func(_, kernel, gridID int) {
			if halted[kernel] {
				return
			}
			if next[kernel] <= gridID {
				next[kernel] = gridID + 1
			}
			g := next[kernel]
			next[kernel]++
			s.Launch(kernel, specs[kernel], base[kernel], g)
		}
	}
	p.ref.OnCTAComplete = hook(p.ref)
	p.rdy.OnCTAComplete = hook(p.rdy)
}

func TestCrossCheckGTOSingleKernel(t *testing.T) {
	cfg := config.Baseline()
	spec := kernels.ByAbbr("MM")
	p := newPair(cfg, GTO)
	p.relaunch(t, map[int]*kernels.Spec{0: spec}, map[int]uint64{0: 1 << 40}, map[int]bool{})
	g := p.fill(t, 0, spec, 1<<40, 0)
	_ = g
	p.run(t, 0, 12000)
}

func TestCrossCheckGTOCoRunWithHalt(t *testing.T) {
	cfg := config.Baseline()
	mm, hot := kernels.ByAbbr("MM"), kernels.ByAbbr("HOT")
	specs := map[int]*kernels.Spec{0: mm, 1: hot}
	base := map[int]uint64{0: 1 << 40, 1: 2 << 40}
	halted := map[int]bool{}
	p := newPair(cfg, GTO)
	p.relaunch(t, specs, base, halted)
	// Intra-SM slicing: bound each kernel so both stay resident.
	for _, s := range []*SM{p.ref, p.rdy} {
		q := Unlimited()
		q.CTAs = 3
		s.SetQuota(0, q)
		s.SetQuota(1, q)
	}
	g0 := p.fill(t, 0, mm, base[0], 0)
	g1 := p.fill(t, 1, hot, base[1], 0)
	p.run(t, 0, 3000)

	// Mid-run halt with loads in flight: the halted kernel's residents
	// drop out of the scheduler lists while its trackers keep draining.
	halted[0] = true
	p.ref.HaltKernel(0)
	p.rdy.HaltKernel(0)
	// Replacement CTAs after the halt exercise the monotonic assignment
	// counter on a shrunken warp set.
	g1 = p.fill(t, 1, hot, base[1], g1)
	_, _ = g0, g1
	p.run(t, 3000, 9000)
}

func TestCrossCheckRRCoRun(t *testing.T) {
	cfg := config.Baseline()
	hot, mvp := kernels.ByAbbr("HOT"), kernels.ByAbbr("MVP")
	specs := map[int]*kernels.Spec{0: hot, 1: mvp}
	base := map[int]uint64{0: 1 << 40, 1: 2 << 40}
	p := newPair(cfg, RR)
	p.relaunch(t, specs, base, map[int]bool{})
	for _, s := range []*SM{p.ref, p.rdy} {
		q := Unlimited()
		q.CTAs = 2
		s.SetQuota(0, q)
		s.SetQuota(1, q)
	}
	p.fill(t, 0, hot, base[0], 0)
	p.fill(t, 1, mvp, base[1], 0)
	p.run(t, 0, 8000)
}
