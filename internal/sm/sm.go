// Package sm models one streaming multiprocessor: dual warp schedulers
// (greedy-then-oldest or round-robin), ALU/SFU/LDST pipelines, a register
// scoreboard, CTA-granular resource allocation with optional per-kernel
// quotas (the mechanism all intra-SM slicing policies build on), an L1 data
// cache, and stall attribution in the classes of Figure 1 of the paper.
//
// The issue stage is event-driven: each scheduler keeps a ready-set over
// its resident warps (see DESIGN.md, "Ready-set issue scheduler") that is
// updated only where warp state actually changes — writeback drain, memory
// reply, barrier release, fetch-timer expiry, launch, and retire — instead
// of re-deriving every warp's readiness by a full rescan each cycle.
package sm

import (
	"fmt"

	"warpedslicer/internal/cache"
	"warpedslicer/internal/config"
	"warpedslicer/internal/isa"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/mem"
	"warpedslicer/internal/warp"
)

// MaxKernels mirrors mem.MaxKernels for per-kernel accounting.
const MaxKernels = mem.MaxKernels

// SchedulerKind selects the warp scheduling policy.
type SchedulerKind uint8

const (
	// GTO is greedy-then-oldest (the paper's default, "gto" in Table I).
	GTO SchedulerKind = iota
	// RR is loose round-robin.
	RR
)

func (k SchedulerKind) String() string {
	if k == GTO {
		return "gto"
	}
	return "rr"
}

// Quota is a per-kernel resource budget on one SM. A zero Quota means "no
// resources"; Unlimited() lifts all limits.
type Quota struct {
	Regs, Shm, Threads, CTAs int
}

// Unlimited returns a quota that never constrains.
func Unlimited() Quota {
	const big = 1 << 30
	return Quota{Regs: big, Shm: big, Threads: big, CTAs: big}
}

// cta tracks one resident thread block.
type cta struct {
	kernel  int
	gridID  int
	regs    int
	shm     int
	threads int

	//simlint:readiness
	warpsLeft int // warps not yet Done
	//simlint:readiness
	atBarrier int
	numWarps  int
	warpRefs  []*resident
	active    bool
}

// loadTracker aggregates the per-line completions of one load instruction.
type loadTracker struct {
	res       *resident
	reg       int8
	remaining int
}

// wbEvent is a scheduled writeback (direct), a load-line completion
// (tracker != nil), or a pure scheduler wake-up (wake: the resident's
// fetch timer expires this cycle and it must be re-classified).
type wbEvent struct {
	res     *resident
	reg     int8
	wake    bool
	tracker *loadTracker
}

// lineOp is one cache-line transaction queued at the LD/ST unit.
type lineOp struct {
	addr    uint64
	kernel  int
	write   bool
	tracker *loadTracker
}

// resident wraps a warp with SM bookkeeping. cls/in cache the warp's issue
// classification as of its last refresh: cls is what Peek last returned and
// in the instruction it wants (valid when cls == BlockNone). stale marks a
// pending re-classification (the resident sits in its scheduler's staleQ);
// gone marks a resident removed from the SM whose pointer may still be
// referenced by in-flight trackers or ring events.
type resident struct {
	w       *warp.Warp
	sched   int
	ctaSlot int
	threads int // active threads (last warp of a CTA may be partial)

	// The four fields below are the scheduler's cached view of the warp;
	// every write must be paired with a readiness update (markStale /
	// refresh / resyncSched), or the ready set diverges from a rescan.
	//simlint:readiness
	cls warp.Block
	//simlint:readiness
	in isa.Instr
	//simlint:readiness
	stale bool
	//simlint:readiness
	gone bool
}

// stallClass labels the outcome of one stalled issue slot (the Figure 1
// classes plus idle). It exists separately from warp.Block because the
// exec class (functional unit busy) has no warp-side counterpart.
type stallClass uint8

const (
	stallIdleC stallClass = iota
	stallMemC
	stallRAWC
	stallExecC
	stallIBufC
)

// schedQ is one warp scheduler's incrementally-maintained state.
//
// Invariants (checked under -tags simassert):
//   - list holds exactly the non-gone residents assigned to this
//     scheduler, in launch order (the GTO "oldest" order).
//   - ready == |{r ∈ list : r.cls == BlockNone}| — the count is over the
//     *cached* classification, which staleQ/refresh keep honest.
//   - greedy, when non-nil, is the list resident with the maximum
//     LastIssued ≥ 0 (unique per scheduler: one issue per slot per cycle).
type schedQ struct {
	list   []*resident
	staleQ []*resident
	greedy *resident
	rrNext int
	ready  int

	// attrValid caches the stall attribution of a fully-blocked GTO slot
	// (ready == 0): with no ready warp the walk outcome is a pure function
	// of the cached classes and the static greedy-then-oldest order, so it
	// is replayed until the next readiness event invalidates it.
	attrValid bool
	attrCls   stallClass
	attrK     int
}

// KernelStats accumulates per-kernel-slot activity on one SM.
type KernelStats struct {
	WarpInsts    uint64
	ThreadInsts  uint64
	CTAsDone     uint64
	CTAsLaunched uint64
	LoadsIssued  uint64
	// Per-kernel stall attribution: each SM-wide stalled slot is charged
	// to the kernel of the highest-priority warp blocked for the winning
	// class, so summing a class over kernel slots reproduces the SM-wide
	// counter exactly (the conservation invariant the tests pin). Idle
	// slots have no blocked warp and are deliberately unattributed.
	StallMem, StallRAW, StallExec, StallIBuf uint64
}

// Stats is the per-SM counter set.
type Stats struct {
	Cycles int64
	// Issue-slot accounting: one slot per scheduler per cycle.
	Slots  uint64
	Issued uint64
	// Stall attribution in scheduler-slots (Figure 1 / Figure 7c classes).
	StallMem, StallRAW, StallExec, StallIBuf, StallIdle uint64
	// SchedFastSlots counts issue slots resolved on the scheduler fast
	// path: a fully-blocked GTO slot whose stall attribution was replayed
	// from cache with no walk over the warp list. Pure event bookkeeping —
	// no wall clock — so it is deterministic and part of the obs surface
	// (ws_sm_sched_fastpath_total).
	SchedFastSlots uint64
	// Cycle classification for the fast-forward opportunity meter (ROADMAP
	// item 2a): every SM-cycle lands in exactly one class, so the four sum
	// to Cycles (pinned by checkInvariants and the experiments
	// conservation test). Pure cycle counts — no wall clock — so they are
	// part of the determinism contract, unlike the prof phase timers.
	CycIssuing, CycStallKnown, CycStallUnknown, CycIdle uint64
	// Functional-unit busy cycles (utilization numerators).
	ALUBusy, SFUBusy, LDSTBusy uint64
	// Storage usage integrals (cycle-weighted, for REG/SHM utilization).
	RegCycles, ShmCycles uint64

	PerKernel [MaxKernels]KernelStats
	L1        cache.Stats
}

// SM is one streaming multiprocessor.
type SM struct {
	ID  int        //simlint:nodigest -- identity: fixed at construction; the GPU digest walks SMs in ID order
	cfg config.GPU //simlint:nodigest -- config: fixed at construction, never mutates during a run

	Sched SchedulerKind

	l1  *cache.Cache
	sub *mem.Subsystem //simlint:nodigest -- owned elsewhere: digested as the GPU's icnt/l2/dram components

	warps []*resident
	ctas  []*cta

	// scheds holds one ready-set per warp scheduler; warpSeq assigns new
	// warps round-robin (monotonic, so mid-run CTA retirements cannot
	// skew the assignment parity the way a len(warps)-based rule does).
	scheds  []schedQ
	warpSeq int

	usedRegs, usedShm, usedThreads, usedCTAs int
	quotas                                   [MaxKernels]Quota
	kUsed                                    [MaxKernels]Quota // current usage per kernel
	hasQuota                                 bool

	// Allowed restricts which kernels may launch here (spatial
	// multitasking); nil means all.
	allowed map[int]bool

	aluFreeAt  []int64
	sfuFreeAt  int64
	ldstFreeAt int64

	// memQ is a fixed ring buffer of memQCap (power of two) line
	// transactions: memQHead indexes the oldest, memQLen counts occupancy.
	memQ     []lineOp
	memQCap  int
	memQHead int
	memQLen  int

	ring     [][]wbEvent
	ringMask int64 //simlint:nodigest -- config: derived from the fixed ringSize at construction

	waiters map[uint64][]*loadTracker

	launchStamp int64

	stats Stats

	// OnCTAComplete, if set, is invoked when a thread block finishes
	// (used by the GPU dispatcher to launch replacement CTAs).
	//simlint:nodigest -- control plumbing: dispatcher callback, not architectural state
	OnCTAComplete func(smID, kernel, gridID int)
}

// ringSize bounds how far ahead a writeback or wake-up may be scheduled.
// New rejects configurations whose worst-case latency does not fit, so
// schedule never has to clamp (a clamp would silently distort timing).
const ringSize = 512

// maxLDSPasses is the worst-case shared-memory serialization factor: the
// 32-bank model in internal/kernels caps BankConflicts at 32, so an LDS op
// occupies the unit for at most 32 warp passes.
const maxLDSPasses = 32

// New constructs an SM attached to the shared memory subsystem. It panics
// if cfg's pipeline latencies cannot fit in the writeback ring: the old
// behavior of clamping oversized latencies to the ring bound silently
// distorted timing, so oversized configurations are rejected up front.
func New(id int, cfg config.GPU, sub *mem.Subsystem) *SM {
	if err := validateLatencies(cfg); err != nil {
		panic(fmt.Sprintf("sm.New: %v", err))
	}
	s := &SM{
		ID:        id,
		cfg:       cfg,
		l1:        cache.New(cfg.L1.SizeBytes, cfg.L1.LineBytes, cfg.L1.Assoc, cfg.L1.MSHRs),
		sub:       sub,
		aluFreeAt: make([]int64, cfg.SM.ALUUnits),
		memQCap:   64,
		ring:      make([][]wbEvent, ringSize),
		ringMask:  ringSize - 1,
		waiters:   make(map[uint64][]*loadTracker),
		scheds:    make([]schedQ, cfg.SM.Schedulers),
		ctas:      make([]*cta, cfg.SM.MaxCTAs),
	}
	s.memQ = make([]lineOp, s.memQCap)
	for i := range s.quotas {
		s.quotas[i] = Unlimited()
	}
	return s
}

// validateLatencies checks that every latency the SM can ever pass to
// schedule() fits inside the writeback ring.
func validateLatencies(cfg config.GPU) error {
	warpCycles := cfg.SM.WarpSize / cfg.SM.SIMTWidth
	if warpCycles < 1 {
		warpCycles = 1
	}
	worst := []struct {
		name string
		lat  int
	}{
		{"SM.ALULatency", cfg.SM.ALULatency},
		{"SM.SFULatency", cfg.SM.SFULatency},
		{"SM.LDSLatency (with max bank serialization)",
			cfg.SM.LDSLatency + (maxLDSPasses-1)*warpCycles},
		{"SM.FetchDelay", cfg.SM.FetchDelay},
		{"L1.HitLatency", cfg.L1.HitLatency},
	}
	for _, w := range worst {
		if w.lat >= ringSize {
			return fmt.Errorf("config: %s = %d cycles does not fit the %d-cycle writeback ring",
				w.name, w.lat, ringSize)
		}
	}
	return nil
}

// SetQuota installs a per-kernel resource budget (intra-SM slicing).
func (s *SM) SetQuota(kernel int, q Quota) {
	s.quotas[kernel%MaxKernels] = q
	s.hasQuota = true
}

// ClearQuotas removes all per-kernel budgets.
func (s *SM) ClearQuotas() {
	for i := range s.quotas {
		s.quotas[i] = Unlimited()
	}
	s.hasQuota = false
}

// SetAllowed restricts launchable kernels (inter-SM slicing); pass nil to
// allow all.
func (s *SM) SetAllowed(kernels map[int]bool) { s.allowed = kernels }

// Allowed reports whether kernel k may launch CTAs on this SM.
func (s *SM) Allowed(k int) bool { return s.allowed == nil || s.allowed[k] }

// need returns the resource demand of one CTA of spec.
func need(spec *kernels.Spec) Quota {
	return Quota{
		Regs:    spec.RegsPerCTA(),
		Shm:     spec.SharedMemPerTA,
		Threads: spec.BlockDim,
		CTAs:    1,
	}
}

// CanLaunch reports whether one CTA of spec fits under both the global
// pools and the kernel's quota.
func (s *SM) CanLaunch(kernel int, spec *kernels.Spec) bool {
	if !s.Allowed(kernel) {
		return false
	}
	n := need(spec)
	if s.usedRegs+n.Regs > s.cfg.SM.Registers ||
		s.usedShm+n.Shm > s.cfg.SM.SharedMemBytes ||
		s.usedThreads+n.Threads > s.cfg.SM.MaxThreads ||
		s.usedCTAs+1 > s.cfg.SM.MaxCTAs {
		return false
	}
	q := s.quotas[kernel%MaxKernels]
	u := s.kUsed[kernel%MaxKernels]
	return u.Regs+n.Regs <= q.Regs &&
		u.Shm+n.Shm <= q.Shm &&
		u.Threads+n.Threads <= q.Threads &&
		u.CTAs+1 <= q.CTAs
}

// Launch places one CTA of spec on the SM. base is the kernel's global
// memory base; gridID the CTA index within the grid. It returns false if
// the CTA does not fit.
func (s *SM) Launch(kernel int, spec *kernels.Spec, base uint64, gridID int) bool {
	if !s.CanLaunch(kernel, spec) {
		return false
	}
	slot := -1
	for i, c := range s.ctas {
		if c == nil || !c.active {
			slot = i
			break
		}
	}
	if slot < 0 {
		return false
	}
	n := need(spec)
	s.usedRegs += n.Regs
	s.usedShm += n.Shm
	s.usedThreads += n.Threads
	s.usedCTAs++
	k := kernel % MaxKernels
	s.kUsed[k].Regs += n.Regs
	s.kUsed[k].Shm += n.Shm
	s.kUsed[k].Threads += n.Threads
	s.kUsed[k].CTAs++

	nw := spec.WarpsPerCTA(s.cfg.SM.WarpSize)
	c := &cta{
		kernel:    kernel,
		gridID:    gridID,
		regs:      n.Regs,
		shm:       n.Shm,
		threads:   n.Threads,
		warpsLeft: nw,
		numWarps:  nw,
		active:    true,
	}
	s.ctas[slot] = c

	remaining := spec.BlockDim
	for wi := 0; wi < nw; wi++ {
		s.launchStamp++
		w := warp.New(kernel, slot, s.launchStamp, kernels.NewStream(spec, base, gridID, wi))
		threads := s.cfg.SM.WarpSize
		if remaining < threads {
			threads = remaining
		}
		remaining -= threads
		r := &resident{
			w:       w,
			sched:   s.warpSeq % s.cfg.SM.Schedulers,
			ctaSlot: slot,
			threads: threads,
			// Not fetched yet: the first refresh will classify it. Seeding
			// a non-ready class keeps the schedQ ready count honest until
			// then.
			cls: warp.BlockIBuffer,
		}
		s.warpSeq++
		s.warps = append(s.warps, r)
		s.scheds[r.sched].list = append(s.scheds[r.sched].list, r)
		s.markStale(r)
		c.warpRefs = append(c.warpRefs, r)
	}
	s.stats.PerKernel[k].CTAsLaunched++
	return true
}

// markStale queues a resident for re-classification by its scheduler's
// next refresh. Every warp state transition must be followed by a
// markStale of the affected resident (the wake-up hook contract; see
// DESIGN.md) — missing one would freeze the warp's cached class.
//
//simlint:wakehook
func (s *SM) markStale(r *resident) {
	q := &s.scheds[r.sched]
	q.attrValid = false
	if r.stale || r.gone {
		return
	}
	r.stale = true
	q.staleQ = append(q.staleQ, r)
}

// dropResidents removes every resident for which drop returns true from
// both s.warps and the per-scheduler lists, marking them gone so in-flight
// trackers and ring events referencing them become no-ops. Tails of the
// compacted backing arrays are nil'd so removed warps are unreachable.
func (s *SM) dropResidents(drop func(*resident) bool) {
	removed := false
	kept := s.warps[:0]
	for _, r := range s.warps {
		if drop(r) {
			r.gone = true
			removed = true
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(s.warps); i++ {
		s.warps[i] = nil
	}
	s.warps = kept
	if !removed {
		return
	}
	for i := range s.scheds {
		s.resyncSched(&s.scheds[i])
	}
}

// resyncSched rebuilds one scheduler's ready-set bookkeeping after
// residents were dropped: compacts the list (preserving launch order),
// recounts ready warps from the cached classes (removal cannot change the
// class of a surviving warp), and rescans for the greedy warp in case the
// previous one was removed.
//
//simlint:wakehook
func (s *SM) resyncSched(q *schedQ) {
	kept := q.list[:0]
	ready := 0
	var greedy *resident
	var last int64 = -1
	for _, r := range q.list {
		if r.gone {
			continue
		}
		kept = append(kept, r)
		if r.cls == warp.BlockNone {
			ready++
		}
		if r.w.LastIssued >= 0 && r.w.LastIssued > last {
			last, greedy = r.w.LastIssued, r
		}
	}
	for i := len(kept); i < len(q.list); i++ {
		q.list[i] = nil
	}
	q.list = kept
	q.ready = ready
	q.greedy = greedy
	q.attrValid = false
}

// ResidentCTAs returns the number of active CTAs of kernel k.
func (s *SM) ResidentCTAs(k int) int { return s.kUsed[k%MaxKernels].CTAs }

// ResidentWarps returns the number of non-finished warps.
func (s *SM) ResidentWarps() int {
	n := 0
	for _, r := range s.warps {
		if !r.w.Finished() {
			n++
		}
	}
	return n
}

// Used returns the aggregate resource usage.
func (s *SM) Used() Quota {
	return Quota{Regs: s.usedRegs, Shm: s.usedShm, Threads: s.usedThreads, CTAs: s.usedCTAs}
}

// KernelUsed returns kernel k's resource usage on this SM.
func (s *SM) KernelUsed(k int) Quota { return s.kUsed[k%MaxKernels] }

// Idle reports whether the SM has no resident work.
func (s *SM) Idle() bool { return s.usedCTAs == 0 }

// Stats returns a snapshot of the SM counters (L1 stats included).
func (s *SM) Stats() Stats {
	st := s.stats
	st.L1 = s.l1.Stats
	return st
}

// HaltKernel force-releases every CTA of the kernel (run-to-target
// methodology: a finished kernel's resources return to the pool). In-flight
// memory replies to halted warps are dropped harmlessly.
func (s *SM) HaltKernel(kernel int) {
	for _, c := range s.ctas {
		if c == nil || !c.active || c.kernel != kernel {
			continue
		}
		c.active = false
		c.warpRefs = nil
		s.usedRegs -= c.regs
		s.usedShm -= c.shm
		s.usedThreads -= c.threads
		s.usedCTAs--
		k := c.kernel % MaxKernels
		s.kUsed[k].Regs -= c.regs
		s.kUsed[k].Shm -= c.shm
		s.kUsed[k].Threads -= c.threads
		s.kUsed[k].CTAs--
	}
	s.dropResidents(func(r *resident) bool { return r.w.Kernel == kernel })
}

// freeCTA releases slot's resources and removes its warps.
func (s *SM) freeCTA(slot int) {
	c := s.ctas[slot]
	if c == nil || !c.active {
		panic(fmt.Sprintf("sm%d: freeing inactive CTA slot %d", s.ID, slot))
	}
	c.active = false
	c.warpRefs = nil
	s.usedRegs -= c.regs
	s.usedShm -= c.shm
	s.usedThreads -= c.threads
	s.usedCTAs--
	k := c.kernel % MaxKernels
	s.kUsed[k].Regs -= c.regs
	s.kUsed[k].Shm -= c.shm
	s.kUsed[k].Threads -= c.threads
	s.kUsed[k].CTAs--
	s.stats.PerKernel[k].CTAsDone++

	s.dropResidents(func(r *resident) bool { return r.ctaSlot == slot && r.w.Finished() })

	if s.OnCTAComplete != nil {
		s.OnCTAComplete(s.ID, c.kernel, c.gridID)
	}
}

// L1MSHRInUse exposes the L1 MSHR occupancy (diagnostics).
func (s *SM) L1MSHRInUse() int { return s.l1.MSHRInUse() }

// MemQueueLen exposes the LD/ST line-queue depth (diagnostics).
func (s *SM) MemQueueLen() int { return s.memQLen }

// DebugWarpStates summarizes resident warps for diagnostics: counts by
// (state, outstanding-loads>0) plus CTA slot occupancy.
func (s *SM) DebugWarpStates(now int64) string {
	running, barrier, done, withLoads := 0, 0, 0, 0
	for _, r := range s.warps {
		switch {
		case r.w.Finished():
			done++
		case r.w.State == 1: // AtBarrier
			barrier++
		default:
			running++
		}
		if r.w.OutstandingLoads > 0 {
			withLoads++
		}
	}
	activeCTAs := 0
	for _, c := range s.ctas {
		if c != nil && c.active {
			activeCTAs++
		}
	}
	return fmt.Sprintf("warps=%d run=%d bar=%d done=%d loads=%d ctas=%d memQ=%d mshr=%d",
		len(s.warps), running, barrier, done, withLoads, activeCTAs, s.memQLen, s.l1.MSHRInUse())
}
