//go:build simassert

package span

import "testing"

// mustPanic runs fn and fails the test unless it panics with a simassert
// message.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected a simassert panic", what)
		}
	}()
	fn()
}

func TestStaleHandlePanics(t *testing.T) {
	c := NewCollector(1, 8, 120)
	h := c.Begin(0x80, 0, 0, 0)
	c.MarkL2(h, OutcomeL2Hit, 30, 8)
	if _, ok := c.Complete(h, 200); !ok {
		t.Fatal("complete failed")
	}
	mustPanic(t, "double complete", func() { c.Complete(h, 300) })
	mustPanic(t, "mark after complete", func() { c.MarkFill(h, 300) })
}

func TestPendingOutcomePanics(t *testing.T) {
	c := NewCollector(1, 8, 120)
	h := c.Begin(0x80, 0, 0, 0)
	// Completing a span the L2 never consumed is an accounting bug.
	mustPanic(t, "pending outcome", func() { c.Complete(h, 200) })
}

func TestNegativeStagePanics(t *testing.T) {
	c := NewCollector(1, 8, 120)
	h := c.Begin(0x80, 0, 0, 1000)
	c.MarkL2(h, OutcomeL2Hit, 1030, 1008)
	// Delivery before the reply could have traversed the interconnect
	// implies a negative reply_queue stage.
	mustPanic(t, "negative stage", func() { c.Complete(h, 1031) })
}
