// Package span is a deterministic, sampled, per-request tracer for the
// memory hierarchy: the GPU-simulator analogue of distributed request
// tracing in a serving stack. A sampled L1 miss carries a compact Handle
// on its memreq.Request; each component it passes through records a
// stage timestamp, and on reply delivery the Collector folds the
// completed span into per-kernel per-stage cycle totals.
//
// Sampling is decided at issue time by a pure hash of (line address,
// issue cycle, kernel slot) — no math/rand, no wall clock — so the same
// configuration samples the same requests on every run and the output is
// byte-identical under any `-parallel` setting.
//
// The stage set partitions the end-to-end latency exactly: for every
// completed span, the stage durations sum to Delivered-Issued (the same
// quantity the ws_l1_miss_roundtrip_cycles histogram observes). DRAM
// row-buffer outcome and memory-clock queue/service times are recorded
// as annotations outside the summable set, so the conservation property
// never depends on clock-domain conversion.
package span

import "warpedslicer/internal/assert"

// MaxKernels bounds the per-kernel accounting arrays. It mirrors
// mem.MaxKernels (span cannot import mem: mem imports span via memreq).
const MaxKernels = 8

// DefaultPeriod is the default sampling period: one of every
// DefaultPeriod L1 misses (in expectation) is traced. Chosen so the
// sampled-request bookkeeping stays far inside the repo's <2% passive
// observability budget (see bench_test.go).
const DefaultPeriod = 64

const (
	ringSlotBits = 10
	ringSlots    = 1 << ringSlotBits // concurrently open spans
	genMask      = 1<<(32-ringSlotBits) - 1
	recentCap    = 256 // completed spans kept for /spans and Chrome trace
)

// Stage enumerates the summable segments of a traced L1-miss round trip,
// in pipeline order. Every segment is measured in core-clock cycles.
type Stage uint8

const (
	// StageIcntReq is the request's interconnect traversal (fixed latency).
	StageIcntReq Stage = iota
	// StageL2Queue is the wait between finishing the interconnect and the
	// L2 bank consuming the request: flit backpressure, bank input queue,
	// and MSHR reservation stalls.
	StageL2Queue
	// StageDRAMBackpressure is time parked in the partition's retry slice
	// because the DRAM scheduling queue was full (L2 misses only).
	StageDRAMBackpressure
	// StageDRAM covers DRAM queue, row activate/precharge and data burst,
	// from enqueue to the fill arriving back at the L2 (core cycles).
	StageDRAM
	// StageMergeWait is a merged miss waiting on another request's fill.
	StageMergeWait
	// StageL2Service is the L2 access latency (fixed).
	StageL2Service
	// StageIcntReply is the reply's interconnect traversal (fixed latency).
	StageIcntReply
	// StageReplyQueue is flit backpressure in the reply network: wait
	// between the reply being ready and its delivery to the SM.
	StageReplyQueue

	NumStages
)

var stageNames = [NumStages]string{
	"icnt_req", "l2_queue", "dram_backpressure", "dram",
	"merge_wait", "l2_service", "icnt_reply", "reply_queue",
}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Outcome is the request's L2 lookup result.
type Outcome uint8

const (
	OutcomePending Outcome = iota // L2 not reached yet
	OutcomeL2Hit
	OutcomeL2Miss // MSHR allocated, went to DRAM
	OutcomeMerged // merged into another request's MSHR
)

func (o Outcome) String() string {
	switch o {
	case OutcomeL2Hit:
		return "l2_hit"
	case OutcomeL2Miss:
		return "l2_miss"
	case OutcomeMerged:
		return "merged"
	}
	return "pending"
}

// Handle identifies an open span. The zero Handle means "not sampled";
// every recording call is a no-op on it, so unsampled requests pay
// nothing past the issue-time hash. Internally it packs a ring-slot
// index plus a generation counter, so a stale handle (slot recycled)
// is detected instead of corrupting another request's span.
type Handle uint32

// Sampler decides, purely from request identity, whether to trace.
type Sampler struct {
	// Period is the expected number of requests per sample. 0 disables
	// sampling entirely; 1 samples everything.
	Period uint64
}

// mix is a splitmix64-style finalizer over the request identity. The
// multiplies decorrelate the structured inputs (line addresses share low
// zero bits, cycles are dense) before the avalanche.
func mix(line uint64, cycle int64, kernel int) uint64 {
	x := line*0x9e3779b97f4a7c15 + uint64(cycle)*0xbf58476d1ce4e5b9 + uint64(kernel)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sample reports whether the request identified by (line, cycle, kernel)
// is traced. It is a pure function: same inputs, same answer, every run.
func (s Sampler) Sample(line uint64, cycle int64, kernel int) bool {
	switch s.Period {
	case 0:
		return false
	case 1:
		return true
	}
	return mix(line, cycle, kernel)%s.Period == 0
}

// record is one open span slot.
type record struct {
	line    uint64
	seq     uint64
	issued  int64
	ready   int64 // interconnect traversal done
	l2At    int64 // L2 bank consumed the request
	enqAt   int64 // DRAM queue admission (misses)
	fillAt  int64 // DRAM data returned to the partition
	dramQW  int64 // annotation: DRAM queue wait, memory-clock cycles
	dramSvc int64 // annotation: DRAM issue-to-data, memory-clock cycles
	sm      int32
	kernel  int16
	outcome Outcome
	rowHit  int8 // -1 unknown, 0 row miss, 1 row hit
	open    bool
}

// Span is one completed request trace.
type Span struct {
	Seq       uint64
	Line      uint64
	SM        int
	Kernel    int
	Outcome   Outcome
	RowHit    int8 // -1 no DRAM access observed, 0 row miss, 1 row hit
	Issued    int64
	Delivered int64
	// Stages partitions Delivered-Issued exactly (core cycles).
	Stages [NumStages]int64
	// DRAMQueueWait / DRAMService are memory-clock annotations from the
	// channel scheduler (not part of the summable stage set).
	DRAMQueueWait, DRAMService int64
}

// EndToEnd is the span's total L1-miss round-trip latency in core cycles.
func (sp Span) EndToEnd() int64 { return sp.Delivered - sp.Issued }

// StageTotals aggregates completed spans of one kernel slot.
type StageTotals struct {
	// Stages accumulates per-stage cycles; EndToEnd their total.
	Stages   [NumStages]uint64
	EndToEnd uint64
	// Completed counts folded spans; the L2/row counters partition it.
	Completed uint64
	L2Hits    uint64
	L2Misses  uint64
	Merged    uint64
	RowHits   uint64
	RowMisses uint64
}

// Mean returns the mean cycles spent in stage s per completed span.
func (t StageTotals) Mean(s Stage) float64 {
	if t.Completed == 0 {
		return 0
	}
	return float64(t.Stages[s]) / float64(t.Completed)
}

// MeanEndToEnd returns the mean end-to-end latency per completed span.
func (t StageTotals) MeanEndToEnd() float64 {
	if t.Completed == 0 {
		return 0
	}
	return float64(t.EndToEnd) / float64(t.Completed)
}

// Totals is the collector's aggregate state.
type Totals struct {
	PerKernel [MaxKernels]StageTotals
	// Sampled counts spans opened; Dropped counts sampled requests the
	// full ring refused (explicitly dropped, never opened). For any
	// quiescent hierarchy Sampled == sum of Completed.
	Sampled, Dropped uint64
}

// Collector owns the open-span ring and the aggregates. It is not
// goroutine-safe: like the rest of the simulator it belongs to exactly
// one GPU instance, and the parallel experiment runner gives each run
// its own GPU.
type Collector struct {
	sampler   Sampler
	icntLat   int64
	l2Service int64

	slots [ringSlots]record
	gens  [ringSlots]uint32
	free  []int32
	open  int

	totals Totals

	recent     [recentCap]Span
	recentLen  int
	recentNext int
}

// NewCollector builds a collector. icntLatency and l2ServiceLatency are
// the configuration's fixed interconnect and L2 access latencies in core
// cycles (the two stage durations not derived from recorded marks).
func NewCollector(period uint64, icntLatency, l2ServiceLatency int64) *Collector {
	c := &Collector{
		sampler:   Sampler{Period: period},
		icntLat:   icntLatency,
		l2Service: l2ServiceLatency,
		free:      make([]int32, 0, ringSlots),
	}
	for i := ringSlots - 1; i >= 0; i-- {
		c.free = append(c.free, int32(i))
	}
	return c
}

// SetPeriod changes the sampling period (0 disables sampling).
func (c *Collector) SetPeriod(p uint64) { c.sampler.Period = p }

// Period returns the current sampling period.
func (c *Collector) Period() uint64 { return c.sampler.Period }

// Open returns the number of spans begun but not yet completed.
func (c *Collector) Open() int {
	if c == nil {
		return 0
	}
	return c.open
}

// Totals returns a copy of the aggregate state.
func (c *Collector) Totals() Totals {
	if c == nil {
		return Totals{}
	}
	return c.totals
}

// Begin opens a span for the request iff the sampler selects it. It
// returns the zero Handle for unsampled requests and when the open-span
// ring is full (the request is then counted as dropped and travels
// untraced).
func (c *Collector) Begin(line uint64, smID, kernel int, issued int64) Handle {
	if c == nil || !c.sampler.Sample(line, issued, kernel) {
		return 0
	}
	if len(c.free) == 0 {
		c.totals.Dropped++
		return 0
	}
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.totals.Sampled++
	c.open++
	c.slots[i] = record{
		line:   line,
		seq:    c.totals.Sampled,
		issued: issued,
		ready:  issued, l2At: issued, enqAt: issued, fillAt: issued,
		sm:     int32(smID),
		kernel: int16(kernel % MaxKernels),
		rowHit: -1,
		open:   true,
	}
	return Handle(c.gens[i]<<ringSlotBits|uint32(i)) + 1
}

// lookup resolves a handle to its open slot index, or -1. A stale or
// never-issued handle is an invariant violation under -tags simassert
// and silently ignored otherwise.
func (c *Collector) lookup(h Handle) int {
	if c == nil || h == 0 {
		return -1
	}
	v := uint32(h) - 1
	i := int(v & (ringSlots - 1))
	if c.gens[i] != v>>ringSlotBits || !c.slots[i].open {
		if assert.Enabled {
			assert.Failf("span: mark on stale or unopened handle %#x", uint32(h))
		}
		return -1
	}
	return i
}

// MarkL2 records the L2 bank consuming the request at core cycle now,
// with its lookup outcome; ready is when the request finished its
// interconnect traversal (the l2_queue stage spans ready..now).
func (c *Collector) MarkL2(h Handle, o Outcome, now, ready int64) {
	if i := c.lookup(h); i >= 0 {
		r := &c.slots[i]
		r.outcome = o
		r.ready = ready
		r.l2At = now
		// Until more precise marks land, downstream timestamps default to
		// the L2 access time so hit spans compute zero DRAM stages.
		r.enqAt, r.fillAt = now, now
	}
}

// MarkDRAMEnqueue records admission to the DRAM scheduling queue (core
// cycles); the gap since MarkL2 is the dram_backpressure stage.
func (c *Collector) MarkDRAMEnqueue(h Handle, now int64) {
	if i := c.lookup(h); i >= 0 {
		c.slots[i].enqAt = now
		c.slots[i].fillAt = now
	}
}

// MarkDRAMIssue annotates the span with the channel scheduler's view:
// row-buffer outcome, queue wait and issue-to-data service time, all in
// memory-clock cycles. Annotations do not enter the summable stage set.
func (c *Collector) MarkDRAMIssue(h Handle, rowHit bool, queueWait, service int64) {
	if i := c.lookup(h); i >= 0 {
		r := &c.slots[i]
		if rowHit {
			r.rowHit = 1
		} else {
			r.rowHit = 0
		}
		r.dramQW = queueWait
		r.dramSvc = service
	}
}

// MarkFill records the DRAM data arriving back at the partition (core
// cycles): the end of the dram stage for the leader, of merge_wait for
// merged misses.
func (c *Collector) MarkFill(h Handle, now int64) {
	if i := c.lookup(h); i >= 0 {
		c.slots[i].fillAt = now
	}
}

// Complete closes the span at reply delivery, folds it into the totals
// and the recent ring, and frees the slot. It reports whether the handle
// resolved to an open span.
func (c *Collector) Complete(h Handle, delivered int64) (Span, bool) {
	i := c.lookup(h)
	if i < 0 {
		return Span{}, false
	}
	r := &c.slots[i]

	sp := Span{
		Seq:           r.seq,
		Line:          r.line,
		SM:            int(r.sm),
		Kernel:        int(r.kernel),
		Outcome:       r.outcome,
		RowHit:        r.rowHit,
		Issued:        r.issued,
		Delivered:     delivered,
		DRAMQueueWait: r.dramQW,
		DRAMService:   r.dramSvc,
	}
	sp.Stages[StageIcntReq] = r.ready - r.issued
	sp.Stages[StageL2Queue] = r.l2At - r.ready
	tail := r.l2At
	switch r.outcome {
	case OutcomeL2Miss:
		sp.Stages[StageDRAMBackpressure] = r.enqAt - r.l2At
		sp.Stages[StageDRAM] = r.fillAt - r.enqAt
		tail = r.fillAt
	case OutcomeMerged:
		sp.Stages[StageMergeWait] = r.fillAt - r.l2At
		tail = r.fillAt
	case OutcomeL2Hit:
	default:
		if assert.Enabled {
			assert.Failf("span: completing span %d with pending L2 outcome", r.seq)
		}
	}
	sp.Stages[StageL2Service] = c.l2Service
	sp.Stages[StageIcntReply] = c.icntLat
	sp.Stages[StageReplyQueue] = delivered - (tail + c.l2Service + c.icntLat)

	if assert.Enabled {
		var sum int64
		for st, d := range sp.Stages {
			if d < 0 {
				assert.Failf("span: negative %s stage (%d cycles) in span %d", Stage(st), d, r.seq)
			}
			sum += d
		}
		if sum != sp.EndToEnd() {
			assert.Failf("span: stage sum %d != end-to-end %d in span %d", sum, sp.EndToEnd(), r.seq)
		}
	}

	k := int(r.kernel)
	t := &c.totals.PerKernel[k]
	for st, d := range sp.Stages {
		if d > 0 {
			t.Stages[st] += uint64(d)
		}
	}
	if e2e := sp.EndToEnd(); e2e > 0 {
		t.EndToEnd += uint64(e2e)
	}
	t.Completed++
	switch r.outcome {
	case OutcomeL2Hit:
		t.L2Hits++
	case OutcomeL2Miss:
		t.L2Misses++
	case OutcomeMerged:
		t.Merged++
	}
	switch r.rowHit {
	case 1:
		t.RowHits++
	case 0:
		t.RowMisses++
	}

	c.recent[c.recentNext] = sp
	c.recentNext = (c.recentNext + 1) % recentCap
	if c.recentLen < recentCap {
		c.recentLen++
	}

	r.open = false
	c.gens[i] = (c.gens[i] + 1) & genMask
	c.free = append(c.free, int32(i))
	c.open--
	return sp, true
}

// Recent visits the most recently completed spans, oldest first.
func (c *Collector) Recent(fn func(Span)) {
	if c == nil {
		return
	}
	start := c.recentNext - c.recentLen
	if start < 0 {
		start += recentCap
	}
	for n := 0; n < c.recentLen; n++ {
		fn(c.recent[(start+n)%recentCap])
	}
}
