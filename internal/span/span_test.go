package span

import (
	"encoding/json"
	"testing"

	"warpedslicer/internal/assert"
)

// drive runs one synthetic span through the mark sequence of outcome o
// and returns the completed span. Timestamps are chosen so every stage
// is distinct and nonzero where the outcome allows.
func drive(t *testing.T, c *Collector, o Outcome, line uint64, kernel int) Span {
	t.Helper()
	h := c.Begin(line, 2, kernel, 1000)
	if h == 0 {
		t.Fatalf("Begin refused a period-1 sample")
	}
	c.MarkL2(h, o, 1030, 1008) // icnt_req=8, l2_queue=22
	switch o {
	case OutcomeL2Miss:
		c.MarkDRAMEnqueue(h, 1037)       // dram_backpressure=7
		c.MarkDRAMIssue(h, true, 12, 40) // annotation only
		c.MarkFill(h, 1300)              // dram=263
	case OutcomeMerged:
		c.MarkFill(h, 1280) // merge_wait=250
	}
	var delivered int64
	switch o {
	case OutcomeL2Hit:
		delivered = 1030 + 120 + 8 + 3 // +reply_queue=3
	case OutcomeL2Miss:
		delivered = 1300 + 120 + 8 + 5
	case OutcomeMerged:
		delivered = 1280 + 120 + 8
	}
	sp, ok := c.Complete(h, delivered)
	if !ok {
		t.Fatalf("Complete lost the span")
	}
	return sp
}

func TestStageDecomposition(t *testing.T) {
	c := NewCollector(1, 8, 120)

	hit := drive(t, c, OutcomeL2Hit, 0x80, 0)
	if hit.Stages[StageIcntReq] != 8 || hit.Stages[StageL2Queue] != 22 ||
		hit.Stages[StageL2Service] != 120 || hit.Stages[StageIcntReply] != 8 ||
		hit.Stages[StageReplyQueue] != 3 {
		t.Errorf("hit stages wrong: %v", hit.Stages)
	}
	if hit.Stages[StageDRAM] != 0 || hit.Stages[StageMergeWait] != 0 {
		t.Errorf("hit span has DRAM stages: %v", hit.Stages)
	}

	miss := drive(t, c, OutcomeL2Miss, 0x100, 1)
	if miss.Stages[StageDRAMBackpressure] != 7 || miss.Stages[StageDRAM] != 263 {
		t.Errorf("miss DRAM stages wrong: %v", miss.Stages)
	}
	if miss.RowHit != 1 || miss.DRAMQueueWait != 12 || miss.DRAMService != 40 {
		t.Errorf("miss annotations wrong: %+v", miss)
	}

	merged := drive(t, c, OutcomeMerged, 0x180, 1)
	if merged.Stages[StageMergeWait] != 250 || merged.Stages[StageDRAM] != 0 {
		t.Errorf("merged stages wrong: %v", merged.Stages)
	}

	// Conservation: every span's stages sum exactly to its end-to-end.
	for _, sp := range []Span{hit, miss, merged} {
		var sum int64
		for _, d := range sp.Stages {
			if d < 0 {
				t.Errorf("negative stage in %v", sp.Stages)
			}
			sum += d
		}
		if sum != sp.EndToEnd() {
			t.Errorf("stage sum %d != end-to-end %d", sum, sp.EndToEnd())
		}
	}

	tot := c.Totals()
	if tot.Sampled != 3 || tot.Dropped != 0 {
		t.Fatalf("sampled=%d dropped=%d, want 3/0", tot.Sampled, tot.Dropped)
	}
	k1 := tot.PerKernel[1]
	if k1.Completed != 2 || k1.L2Misses != 1 || k1.Merged != 1 || k1.RowHits != 1 {
		t.Errorf("kernel 1 totals wrong: %+v", k1)
	}
	if tot.PerKernel[0].L2Hits != 1 {
		t.Errorf("kernel 0 totals wrong: %+v", tot.PerKernel[0])
	}
}

func TestSamplerDeterminism(t *testing.T) {
	s := Sampler{Period: 64}
	sampled := 0
	for i := 0; i < 1_000_000; i++ {
		line := uint64(i%4096) * 128
		if s.Sample(line, int64(i), i%3) {
			sampled++
		}
		if s.Sample(line, int64(i), i%3) != s.Sample(line, int64(i), i%3) {
			t.Fatal("sampler not a pure function")
		}
	}
	// The hash should land near 1/64 without pathological clustering.
	want := 1_000_000 / 64
	if sampled < want/2 || sampled > want*2 {
		t.Fatalf("sampled %d of 1M at period 64, want near %d", sampled, want)
	}

	if (Sampler{Period: 0}).Sample(0x80, 1, 0) {
		t.Error("period 0 must disable sampling")
	}
	if !(Sampler{Period: 1}).Sample(0x80, 1, 0) {
		t.Error("period 1 must sample everything")
	}
}

func TestRingOverflowDrops(t *testing.T) {
	c := NewCollector(1, 8, 120)
	handles := make([]Handle, 0, ringSlots)
	for i := 0; i < ringSlots; i++ {
		h := c.Begin(uint64(i)*128, 0, 0, int64(i))
		if h == 0 {
			t.Fatalf("ring refused span %d of %d", i, ringSlots)
		}
		handles = append(handles, h)
	}
	if h := c.Begin(1<<30, 0, 0, 9999); h != 0 {
		t.Fatal("full ring must refuse new spans")
	}
	tot := c.Totals()
	if tot.Dropped != 1 || tot.Sampled != ringSlots {
		t.Fatalf("sampled=%d dropped=%d, want %d/1", tot.Sampled, tot.Dropped, ringSlots)
	}
	if c.Open() != ringSlots {
		t.Fatalf("open=%d, want %d", c.Open(), ringSlots)
	}
	// Draining one slot makes room again, and the recycled slot's handle
	// differs from the stale one (generation bump).
	c.MarkL2(handles[0], OutcomeL2Hit, 10, 8)
	if _, ok := c.Complete(handles[0], 200); !ok {
		t.Fatal("complete failed")
	}
	h := c.Begin(1<<30, 0, 0, 9999)
	if h == 0 {
		t.Fatal("freed slot not reusable")
	}
	if h == handles[0] {
		t.Fatal("recycled slot must carry a new generation")
	}
	// The stale handle must not touch the new span. Under -tags simassert
	// this is a panic instead (covered by assert_test.go).
	if !assert.Enabled {
		if _, ok := c.Complete(handles[0], 300); ok {
			t.Fatal("stale handle resolved to a live span")
		}
	}
}

func TestRecentRingOrder(t *testing.T) {
	c := NewCollector(1, 8, 120)
	for i := 0; i < recentCap+10; i++ {
		h := c.Begin(uint64(i)*128, 0, 0, int64(i))
		c.MarkL2(h, OutcomeL2Hit, int64(i)+30, int64(i)+8)
		c.Complete(h, int64(i)+30+120+8)
	}
	var seqs []uint64
	c.Recent(func(sp Span) { seqs = append(seqs, sp.Seq) })
	if len(seqs) != recentCap {
		t.Fatalf("recent holds %d, want %d", len(seqs), recentCap)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("recent not oldest-first: %d after %d", seqs[i], seqs[i-1])
		}
	}
	if seqs[len(seqs)-1] != recentCap+10 {
		t.Fatalf("newest seq %d, want %d", seqs[len(seqs)-1], recentCap+10)
	}
}

func TestSummaryJSON(t *testing.T) {
	c := NewCollector(1, 8, 120)
	drive(t, c, OutcomeL2Miss, 0x240, 3)
	s := c.Summary()
	if s.Sampled != 1 || len(s.Kernels) != 1 || s.Kernels[0].Kernel != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if len(s.Recent) != 1 || s.Recent[0].Outcome != "l2_miss" || s.Recent[0].Line != "0x240" {
		t.Fatalf("recent wrong: %+v", s.Recent)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kernels[0].MeanEndToEnd != s.Kernels[0].MeanEndToEnd {
		t.Fatal("summary does not round-trip")
	}
}

func TestNilAndZeroHandleSafe(t *testing.T) {
	var c *Collector
	if c.Begin(0x80, 0, 0, 0) != 0 || c.Open() != 0 {
		t.Fatal("nil collector must be inert")
	}
	c.MarkL2(0, OutcomeL2Hit, 0, 0)
	c.Recent(func(Span) { t.Fatal("nil collector has no spans") })

	real := NewCollector(1, 8, 120)
	real.MarkL2(0, OutcomeL2Hit, 0, 0)
	real.MarkDRAMEnqueue(0, 0)
	real.MarkDRAMIssue(0, true, 0, 0)
	real.MarkFill(0, 0)
	if _, ok := real.Complete(0, 0); ok {
		t.Fatal("zero handle must not complete")
	}
	if real.Open() != 0 || real.Totals().Sampled != 0 {
		t.Fatal("zero-handle marks must not touch state")
	}
}
