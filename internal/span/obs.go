package span

import (
	"strconv"

	"warpedslicer/internal/obs"
)

// Register wires the collector's aggregates into the registry:
// sampling counters, and per-kernel per-stage cycle totals under
// ws_span_stage_cycles_total{kernel=...,stage=...} (the Prometheus view
// of the same decomposition figmemdecomp derives offline).
func (c *Collector) Register(r *obs.Registry) {
	r.Collector(c.emit)
}

func (c *Collector) emit(emit obs.Emit) {
	t := c.Totals()
	emit("ws_span_sampled_total", obs.Counter, float64(t.Sampled))
	emit("ws_span_dropped_total", obs.Counter, float64(t.Dropped))
	emit("ws_span_open", obs.Gauge, float64(c.Open()))
	for k := range t.PerKernel {
		kt := &t.PerKernel[k]
		if kt.Completed == 0 {
			continue
		}
		kl := strconv.Itoa(k)
		emit(obs.Label("ws_span_completed_total", "kernel", kl), obs.Counter, float64(kt.Completed))
		emit(obs.Label("ws_span_end_to_end_cycles_total", "kernel", kl), obs.Counter, float64(kt.EndToEnd))
		emit(obs.Label("ws_span_l2_hits_total", "kernel", kl), obs.Counter, float64(kt.L2Hits))
		emit(obs.Label("ws_span_l2_misses_total", "kernel", kl), obs.Counter, float64(kt.L2Misses))
		emit(obs.Label("ws_span_l2_merged_total", "kernel", kl), obs.Counter, float64(kt.Merged))
		emit(obs.Label("ws_span_dram_row_hits_total", "kernel", kl), obs.Counter, float64(kt.RowHits))
		emit(obs.Label("ws_span_dram_row_misses_total", "kernel", kl), obs.Counter, float64(kt.RowMisses))
		for st := Stage(0); st < NumStages; st++ {
			emit(obs.Label("ws_span_stage_cycles_total", "kernel", kl, "stage", st.String()),
				obs.Counter, float64(kt.Stages[st]))
		}
	}
}

// Summary is the JSON shape served on the live endpoint's /spans view.
type Summary struct {
	Period  uint64          `json:"period"`
	Open    int             `json:"open"`
	Sampled uint64          `json:"sampled"`
	Dropped uint64          `json:"dropped"`
	Kernels []KernelSummary `json:"kernels"`
	Recent  []SpanJSON      `json:"recent"`
}

// KernelSummary is one kernel slot's stage decomposition.
type KernelSummary struct {
	Kernel       int         `json:"kernel"`
	Completed    uint64      `json:"completed"`
	MeanEndToEnd float64     `json:"mean_end_to_end_cycles"`
	L2Hits       uint64      `json:"l2_hits"`
	L2Misses     uint64      `json:"l2_misses"`
	Merged       uint64      `json:"merged"`
	RowHits      uint64      `json:"dram_row_hits"`
	RowMisses    uint64      `json:"dram_row_misses"`
	Stages       []StageMean `json:"stages"`
}

// StageMean is one stage's share of a kernel's traced latency.
type StageMean struct {
	Stage      string  `json:"stage"`
	Cycles     uint64  `json:"cycles_total"`
	MeanCycles float64 `json:"mean_cycles"`
}

// SpanJSON is one completed span rendered for JSON consumers.
type SpanJSON struct {
	Seq       uint64      `json:"seq"`
	Line      string      `json:"line"`
	SM        int         `json:"sm"`
	Kernel    int         `json:"kernel"`
	Outcome   string      `json:"outcome"`
	RowHit    int8        `json:"dram_row_hit"`
	Issued    int64       `json:"issued"`
	Delivered int64       `json:"delivered"`
	EndToEnd  int64       `json:"end_to_end_cycles"`
	Stages    []StageJSON `json:"stages"`
}

// StageJSON is one nonzero stage of a rendered span.
type StageJSON struct {
	Stage  string `json:"stage"`
	Cycles int64  `json:"cycles"`
}

// Summary renders the collector state for the /spans endpoint. The
// result is self-contained (no live references), so the simulation loop
// can publish it to a Hub read by concurrent HTTP handlers.
func (c *Collector) Summary() Summary {
	t := c.Totals()
	s := Summary{
		Period:  c.Period(),
		Open:    c.Open(),
		Sampled: t.Sampled,
		Dropped: t.Dropped,
	}
	for k := range t.PerKernel {
		kt := &t.PerKernel[k]
		if kt.Completed == 0 {
			continue
		}
		ks := KernelSummary{
			Kernel:       k,
			Completed:    kt.Completed,
			MeanEndToEnd: kt.MeanEndToEnd(),
			L2Hits:       kt.L2Hits,
			L2Misses:     kt.L2Misses,
			Merged:       kt.Merged,
			RowHits:      kt.RowHits,
			RowMisses:    kt.RowMisses,
		}
		for st := Stage(0); st < NumStages; st++ {
			ks.Stages = append(ks.Stages, StageMean{
				Stage:      st.String(),
				Cycles:     kt.Stages[st],
				MeanCycles: kt.Mean(st),
			})
		}
		s.Kernels = append(s.Kernels, ks)
	}
	c.Recent(func(sp Span) {
		s.Recent = append(s.Recent, renderSpan(sp))
	})
	return s
}

func renderSpan(sp Span) SpanJSON {
	j := SpanJSON{
		Seq:       sp.Seq,
		Line:      "0x" + strconv.FormatUint(sp.Line, 16),
		SM:        sp.SM,
		Kernel:    sp.Kernel,
		Outcome:   sp.Outcome.String(),
		RowHit:    sp.RowHit,
		Issued:    sp.Issued,
		Delivered: sp.Delivered,
		EndToEnd:  sp.EndToEnd(),
	}
	for st := Stage(0); st < NumStages; st++ {
		if d := sp.Stages[st]; d != 0 {
			j.Stages = append(j.Stages, StageJSON{Stage: st.String(), Cycles: d})
		}
	}
	return j
}
