//go:build simassert

package mem

import "testing"

// TestDrainedPanicsOnLeakedSpan pins the span-conservation invariant: a
// span opened but never completed while the hierarchy reports drained is
// a lost handle, and must panic under -tags simassert.
func TestDrainedPanicsOnLeakedSpan(t *testing.T) {
	m := newSub()
	m.Spans.SetPeriod(1)
	if h := m.Spans.Begin(0x80, 0, 0, 0); h == 0 {
		t.Fatal("period-1 Begin refused a span")
	}
	// The span's request was never submitted, so the hierarchy is empty
	// while the span stays open: exactly the leak the invariant catches.
	defer func() {
		if recover() == nil {
			t.Fatal("Drained with an open span must panic under simassert")
		}
	}()
	m.Drained()
}

// TestDrainedCleanAfterFullRoundTrip is the positive control: when every
// traced request completes, Drained reports true without tripping the
// leak invariant.
func TestDrainedCleanAfterFullRoundTrip(t *testing.T) {
	m := newSub()
	m.Spans.SetPeriod(1)
	floodChannel0(t, m, 64, 4)
	for now := int64(500_000); now < 510_000 && !m.Drained(); now++ {
		m.Tick(now)
	}
	if !m.Drained() {
		t.Fatal("hierarchy failed to drain")
	}
	if m.Spans.Open() != 0 {
		t.Fatalf("%d spans open after drain", m.Spans.Open())
	}
}
