package mem

import (
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/memreq"
	"warpedslicer/internal/span"
)

func newSub() *Subsystem { return New(config.Baseline()) }

// drive ticks until n read replies arrive or limit cycles pass.
func drive(t *testing.T, m *Subsystem, n int, limit int64) []memreq.Request {
	t.Helper()
	var got []memreq.Request
	for now := int64(0); now < limit && len(got) < n; now++ {
		got = append(got, m.Tick(now)...)
	}
	if len(got) < n {
		t.Fatalf("only %d of %d replies in %d cycles", len(got), n, limit)
	}
	return got
}

func TestReadRoundTrip(t *testing.T) {
	m := newSub()
	req := memreq.Request{LineAddr: 0x1000, SM: 3, Kernel: 1}
	if !m.Submit(req, 0) {
		t.Fatal("submit failed on empty network")
	}
	replies := drive(t, m, 1, 5000)
	if replies[0].SM != 3 || replies[0].LineAddr != 0x1000 {
		t.Fatalf("reply = %+v, want SM 3 addr 0x1000", replies[0])
	}
}

func TestLatencyIsRealistic(t *testing.T) {
	m := newSub()
	m.Submit(memreq.Request{LineAddr: 0x80, SM: 0}, 0)
	var arrival int64 = -1
	for now := int64(0); now < 5000; now++ {
		if len(m.Tick(now)) > 0 {
			arrival = now
			break
		}
	}
	// Icnt (8) + L2 access + DRAM cold access + return icnt: should be
	// well over 100 core cycles and under 1000 for an uncontended miss.
	if arrival < 100 || arrival > 1000 {
		t.Fatalf("cold-miss round trip = %d cycles, want 100..1000", arrival)
	}
}

func TestL2HitFasterThanMiss(t *testing.T) {
	m := newSub()
	m.Submit(memreq.Request{LineAddr: 0x80, SM: 0}, 0)
	var first int64 = -1
	now := int64(0)
	for ; now < 5000; now++ {
		if len(m.Tick(now)) > 0 {
			first = now
			break
		}
	}
	// Second access to the same line: L2 hit.
	start := now + 1
	m.Submit(memreq.Request{LineAddr: 0x80, SM: 0}, start)
	var second int64 = -1
	for now = start; now < start+5000; now++ {
		if len(m.Tick(now)) > 0 {
			second = now - start
			break
		}
	}
	if second >= first {
		t.Fatalf("L2 hit latency %d not below cold miss %d", second, first)
	}
}

func TestWritesProduceNoReplies(t *testing.T) {
	m := newSub()
	m.Submit(memreq.Request{LineAddr: 0x100, SM: 0, Write: true}, 0)
	for now := int64(0); now < 3000; now++ {
		if len(m.Tick(now)) != 0 {
			t.Fatal("write generated a reply")
		}
	}
	if !m.Drained() {
		t.Fatal("write never drained")
	}
}

func TestMergedReadsBothReplied(t *testing.T) {
	m := newSub()
	m.Submit(memreq.Request{LineAddr: 0x2000, SM: 0}, 0)
	m.Submit(memreq.Request{LineAddr: 0x2000, SM: 5}, 0)
	replies := drive(t, m, 2, 5000)
	sms := map[int]bool{}
	for _, r := range replies {
		sms[r.SM] = true
	}
	if !sms[0] || !sms[5] {
		t.Fatalf("replies = %v, want both SM 0 and SM 5", sms)
	}
}

func TestBackpressure(t *testing.T) {
	m := newSub()
	n := 0
	for m.Submit(memreq.Request{LineAddr: uint64(n) * 128, SM: 0}, 0) {
		n++
		if n > 100000 {
			t.Fatal("network never filled")
		}
	}
	if m.CanAccept() {
		t.Fatal("CanAccept true after Submit refused")
	}
	// Draining restores acceptance.
	for now := int64(1); now < 10000 && !m.CanAccept(); now++ {
		m.Tick(now)
	}
	if !m.CanAccept() {
		t.Fatal("network never drained")
	}
}

func TestChannelInterleaving(t *testing.T) {
	m := newSub()
	// Lines land on channels round-robin by line index.
	for i := 0; i < 12; i++ {
		m.Submit(memreq.Request{LineAddr: uint64(i) * 128, SM: 0}, 0)
	}
	drive(t, m, 12, 10000)
	st := m.Stats()
	if st.L2.Loads != 12 {
		t.Fatalf("L2 loads = %d, want 12", st.L2.Loads)
	}
}

func TestPerKernelAccounting(t *testing.T) {
	m := newSub()
	m.Submit(memreq.Request{LineAddr: 0x100, SM: 0, Kernel: 0}, 0)
	m.Submit(memreq.Request{LineAddr: 0x10000, SM: 1, Kernel: 1}, 0)
	drive(t, m, 2, 5000)
	st := m.Stats()
	if st.L2MissPerKernel[0] != 1 || st.L2MissPerKernel[1] != 1 {
		t.Fatalf("per-kernel misses = %v", st.L2MissPerKernel[:2])
	}
	if st.DRAMServed[0] != 1 || st.DRAMServed[1] != 1 {
		t.Fatalf("per-kernel DRAM = %v", st.DRAMServed[:2])
	}
	if st.DRAMServedPerSM[0] != 1 || st.DRAMServedPerSM[1] != 1 {
		t.Fatalf("per-SM DRAM = %v", st.DRAMServedPerSM[:2])
	}
}

func TestBandwidthUtilBounded(t *testing.T) {
	m := newSub()
	addr := uint64(0)
	for now := int64(0); now < 20000; now++ {
		for m.CanAccept() {
			m.Submit(memreq.Request{LineAddr: addr, SM: 0}, now)
			addr += 128
		}
		m.Tick(now)
	}
	u := m.Stats().BandwidthUtil()
	if u <= 0.3 || u > 1.0 {
		t.Fatalf("saturated bandwidth util = %.2f, want (0.3, 1.0]", u)
	}
}

func TestDrainedInitially(t *testing.T) {
	if !newSub().Drained() {
		t.Fatal("fresh subsystem should be drained")
	}
}

// TestLatencyHistogramsPopulate drives reads through the full hierarchy and
// checks both subsystem histograms record them: every delivered reply is one
// L1-miss round-trip observation, and every consumed request one L2-queue
// wait observation.
func TestLatencyHistogramsPopulate(t *testing.T) {
	m := newSub()
	const n = 32
	for i := 0; i < n; i++ {
		if !m.Submit(memreq.Request{LineAddr: uint64(i) * 4096, SM: 0, Issued: 0}, 0) {
			t.Fatalf("submit %d failed", i)
		}
	}
	drive(t, m, n, 50000)

	if got := m.l1RT.Count(); got != n {
		t.Errorf("l1 round-trip observations = %d, want %d", got, n)
	}
	// Round trips must at least cover two icnt traversals plus the L2 hit
	// latency (all requests here miss L2 and visit DRAM, so strictly more).
	cfg := config.Baseline()
	floor := uint64(2*cfg.Icnt.LatencyCycles + cfg.L2.HitLatency)
	if mean := float64(m.l1RT.Sum()) / float64(m.l1RT.Count()); mean <= float64(floor) {
		t.Errorf("mean round trip %.1f not above floor %d", mean, floor)
	}
	if m.l2Wait.Count() == 0 {
		t.Error("l2 queue-wait histogram empty")
	}
}

// floodChannel0 submits `total` distinct-line reads that all map to
// channel 0, up to `perCycle` per core cycle, ticking until every reply
// returns. The single-channel concentration overruns the 32-deep FR-FCFS
// queue, forcing the retry (DRAM backpressure) path.
func floodChannel0(t *testing.T, m *Subsystem, total, perCycle int) {
	t.Helper()
	cfg := config.Baseline()
	stride := uint64(cfg.L2.LineBytes * cfg.Memory.Channels)
	next, replies := 0, 0
	for now := int64(0); now < 500_000 && replies < total; now++ {
		for k := 0; k < perCycle && next < total && m.CanAccept(); k++ {
			line := uint64(next) * stride
			m.Submit(memreq.Request{
				LineAddr: line, SM: 0, Kernel: 0, Issued: now,
				Span: m.Spans.Begin(line, 0, 0, now),
			}, now)
			next++
		}
		replies += len(m.Tick(now))
	}
	if replies < total {
		t.Fatalf("only %d of %d replies", replies, total)
	}
}

// TestDRAMBackpressureWaitObserved pins the retry-park accounting: cycles
// a request spends in a partition's retry slice (L2 miss blocked on a
// full DRAM queue) were invisible to l2Wait; they must now land in the
// ws_dram_backpressure_wait_cycles histogram and, for traced requests,
// in the dram_backpressure span stage.
func TestDRAMBackpressureWaitObserved(t *testing.T) {
	m := newSub()
	m.Spans.SetPeriod(1)
	floodChannel0(t, m, 160, 8)

	if m.retryWait.Count() == 0 {
		t.Fatal("DRAM queue never backpressured: retry-wait histogram empty " +
			"(is the flood not overrunning QueueDepth?)")
	}
	if m.retryWait.Sum() == 0 {
		t.Error("retry-wait histogram counted parks but accumulated zero cycles")
	}
	tot := m.Spans.Totals()
	if tot.PerKernel[0].Stages[span.StageDRAMBackpressure] == 0 {
		t.Error("spans attribute no dram_backpressure time despite retry parks")
	}
}

// TestSpanStageSumEqualsEndToEnd drives a mixed hit/miss/merge workload
// at period-1 sampling and checks, for every completed span, that the
// stage durations sum exactly to the Issued->reply end-to-end latency.
func TestSpanStageSumEqualsEndToEnd(t *testing.T) {
	m := newSub()
	m.Spans.SetPeriod(1)
	const total = 320
	next, replies := 0, 0
	now := int64(0)
	for ; now < 500_000 && replies < total; now++ {
		for k := 0; k < 4 && next < total && m.CanAccept(); k++ {
			// 100 distinct lines, revisited: first touch misses, close
			// revisits merge into the in-flight MSHR, later ones hit L2.
			line := uint64(next%100) * 128
			m.Submit(memreq.Request{
				LineAddr: line, SM: 0, Kernel: next % 2, Issued: now,
				Span: m.Spans.Begin(line, 0, next%2, now),
			}, now)
			next++
		}
		replies += len(m.Tick(now))
	}
	if replies < total {
		t.Fatalf("only %d of %d replies", replies, total)
	}
	for ; now < 510_000 && !m.Drained(); now++ {
		m.Tick(now)
	}
	if !m.Drained() {
		t.Fatal("hierarchy failed to drain")
	}

	checked := 0
	m.Spans.Recent(func(sp span.Span) {
		checked++
		var sum int64
		for st, d := range sp.Stages {
			if d < 0 {
				t.Fatalf("span %d: negative %s stage (%d)", sp.Seq, span.Stage(st), d)
			}
			sum += d
		}
		if sum != sp.EndToEnd() {
			t.Fatalf("span %d: stage sum %d != end-to-end %d (outcome %s)",
				sp.Seq, sum, sp.EndToEnd(), sp.Outcome)
		}
	})
	if checked == 0 {
		t.Fatal("no completed spans to check")
	}

	tot := m.Spans.Totals()
	var completed uint64
	for k := range tot.PerKernel {
		kt := tot.PerKernel[k]
		completed += kt.Completed
		if kt.L2Hits+kt.L2Misses+kt.Merged != kt.Completed {
			t.Errorf("kernel %d: outcomes %d+%d+%d don't partition %d spans",
				k, kt.L2Hits, kt.L2Misses, kt.Merged, kt.Completed)
		}
	}
	if tot.Sampled != total || completed != total || tot.Dropped != 0 {
		t.Fatalf("sampled=%d completed=%d dropped=%d, want %d/%d/0",
			tot.Sampled, completed, tot.Dropped, total, total)
	}
	k0 := tot.PerKernel[0]
	if k0.L2Misses == 0 || k0.L2Hits+k0.Merged == 0 {
		t.Errorf("workload did not exercise both miss and hit/merge paths: %+v", k0)
	}
	// The traced end-to-end totals are a sample of exactly what l1RT saw.
	if m.l1RT.Count() != total {
		t.Errorf("l1RT observed %d round trips, want %d", m.l1RT.Count(), total)
	}
}
