package mem

import (
	"slices"

	"warpedslicer/internal/digest"
)

// The memory hierarchy digests as three components matching its pipeline
// stages — interconnect, L2 banks, DRAM channels — so the divergence
// bisector can localize a mismatch below the SMs without a custom walk.
// Histograms and the span collector are observability and excluded
// everywhere; see DESIGN.md "The canonical-state traversal contract".

// DigestIcnt hashes the interconnect: both network queues, the per-SM
// reply ledger, and the core→memory clock-domain accumulator.
func (m *Subsystem) DigestIcnt(h *digest.Hasher) {
	digestTimed(h, m.reqNet)
	digestTimed(h, m.replyNet)
	h.Int(len(m.replyPending))
	for _, v := range m.replyPending {
		h.I64(v)
	}
	h.F64(m.memAccum)
	h.I64(m.memNow)
}

// DigestL2 hashes every partition's L2 bank plus the queues feeding it:
// the input queue, the retry queue parked on DRAM backpressure, and the
// per-line waiter lists in sorted line order.
func (m *Subsystem) DigestL2(h *digest.Hasher) {
	h.Int(len(m.parts))
	for _, p := range m.parts {
		p.l2.DigestInto(h)
		digestTimed(h, p.input)
		digestTimed(h, p.retry)
		keys := make([]uint64, 0, len(p.waiters))
		for la := range p.waiters {
			keys = append(keys, la)
		}
		slices.Sort(keys)
		h.Int(len(keys))
		for _, la := range keys {
			h.U64(la)
			ws := p.waiters[la]
			h.Int(len(ws))
			for _, w := range ws {
				w.DigestInto(h)
			}
		}
	}
}

// DigestDRAM hashes every partition's DRAM channel and the per-kernel /
// per-SM service counters.
func (m *Subsystem) DigestDRAM(h *digest.Hasher) {
	h.Int(len(m.parts))
	for _, p := range m.parts {
		p.dram.DigestInto(h)
	}
	for k := 0; k < MaxKernels; k++ {
		h.U64(m.perKServed[k])
		h.U64(m.perKL2Miss[k])
		h.U64(m.perKL2Acc[k])
	}
	h.Int(len(m.perSMServed))
	for _, v := range m.perSMServed {
		h.U64(v)
	}
}

// DigestInto hashes the whole subsystem (the three section digests in
// pipeline order).
func (m *Subsystem) DigestInto(h *digest.Hasher) {
	m.DigestIcnt(h)
	m.DigestL2(h)
	m.DigestDRAM(h)
}

func digestTimed(h *digest.Hasher, ts []timed) {
	h.Int(len(ts))
	for i := range ts {
		ts[i].req.DigestInto(h)
		h.I64(ts[i].readyAt)
	}
}
