// Package mem wires the GPU memory hierarchy below the SMs: a
// bandwidth-limited interconnect, one L2 bank per memory channel, and one
// GDDR5 FR-FCFS DRAM controller per channel (Table I: 6 MCs, 128KB L2 per
// channel). The L2 banks and DRAM run in the memory clock domain; the
// package converts from the core clock using the configured clock ratio.
package mem

import (
	"warpedslicer/internal/assert"
	"warpedslicer/internal/cache"
	"warpedslicer/internal/config"
	"warpedslicer/internal/dram"
	"warpedslicer/internal/memreq"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/span"
)

// MaxKernels bounds the number of concurrently resident kernels the
// per-kernel accounting arrays support.
const MaxKernels = 8

type timed struct {
	req     memreq.Request
	readyAt int64
}

// partition is one memory channel: L2 bank + DRAM controller.
type partition struct {
	l2      *cache.Cache
	dram    *dram.Channel
	input   []timed                     // requests that traversed the icnt
	waiters map[uint64][]memreq.Request // line -> reads waiting for DRAM
	// retry holds requests blocked on a full DRAM queue; readyAt is the
	// core cycle they were parked (source of the backpressure histogram).
	retry []timed
}

// Stats aggregates memory-system activity.
type Stats struct {
	// L2 aggregates all banks' cache stats.
	L2 cache.Stats
	// DRAMServed counts DRAM transactions per kernel slot.
	DRAMServed [MaxKernels]uint64
	// DRAMServedPerSM counts DRAM transactions per originating SM.
	DRAMServedPerSM []uint64
	// L2MissPerKernel counts L2 load misses per kernel slot (MPKI input).
	L2MissPerKernel [MaxKernels]uint64
	// L2AccessPerKernel counts L2 load accesses per kernel slot.
	L2AccessPerKernel [MaxKernels]uint64
	// BusBusy / Ticks aggregate DRAM data-bus utilization.
	BusBusy, MemTicks uint64
}

// BandwidthUtil returns aggregate DRAM bus utilization in [0,1].
func (s Stats) BandwidthUtil() float64 {
	if s.MemTicks == 0 {
		return 0
	}
	return float64(s.BusBusy) / float64(s.MemTicks)
}

// Subsystem is the complete below-SM memory system.
type Subsystem struct {
	cfg config.GPU //simlint:nodigest -- config: fixed at construction, never mutates during a run

	reqNet   []timed
	reqCap   int //simlint:nodigest -- config: queue capacity derived from cfg at construction
	replyNet []timed

	// replyPending counts, per SM, read replies sitting in the reply
	// network with a stamped readyAt. The SM cycle classifier compares it
	// against its outstanding-load lines: when every missing line already
	// has a scheduled reply, the SM's wake-up time is known and the stall
	// is fast-forward skippable (ROADMAP item 2a).
	replyPending []int64

	parts []*partition

	memAccum float64
	memNow   int64

	// perSMServed mirrors Stats.DRAMServedPerSM for live sampling.
	perSMServed []uint64
	perKServed  [MaxKernels]uint64
	perKL2Miss  [MaxKernels]uint64
	perKL2Acc   [MaxKernels]uint64

	// l1RT is the L1-miss round-trip latency histogram in core cycles:
	// from the SM submitting the miss to the reply leaving the reply
	// network (the quantity every partitioning decision trades against).
	//simlint:nodigest -- observability: exported histogram, never read by the model
	l1RT obs.Hist
	// l2Wait is the L2-bank input-queue wait in core cycles: time between
	// a request finishing its interconnect traversal and the bank
	// consuming it.
	//simlint:nodigest -- observability: exported histogram, never read by the model
	l2Wait obs.Hist
	// retryWait is the time requests spend parked in a partition's retry
	// slice because the DRAM scheduling queue was full, in core cycles.
	// Invisible to l2Wait (the bank already consumed the request), it is
	// the queue-side signature of DRAM backpressure.
	//simlint:nodigest -- observability: exported histogram, never read by the model
	retryWait obs.Hist

	// Spans traces a deterministic sample of L1-miss round trips through
	// every stage of the hierarchy (see package span).
	//simlint:nodigest -- observability: span-trace hook, never read by the model
	Spans *span.Collector
}

// New builds the memory subsystem for the given configuration.
func New(cfg config.GPU) *Subsystem {
	m := &Subsystem{
		cfg:          cfg,
		reqCap:       cfg.Icnt.FlitsPerCycle * 16,
		perSMServed:  make([]uint64, cfg.NumSMs),
		replyPending: make([]int64, cfg.NumSMs),
		Spans: span.NewCollector(span.DefaultPeriod,
			int64(cfg.Icnt.LatencyCycles), int64(cfg.L2.HitLatency)),
	}
	for i := 0; i < cfg.Memory.Channels; i++ {
		m.parts = append(m.parts, &partition{
			l2: cache.New(cfg.L2.SizeBytes, cfg.L2.LineBytes, cfg.L2.Assoc, cfg.L2.MSHRs),
			dram: dram.NewChannel(dram.Config{
				Banks:       cfg.Memory.BanksPerChannel,
				RowBytes:    2048,
				TCL:         cfg.Memory.TCL,
				TRP:         cfg.Memory.TRP,
				TRCD:        cfg.Memory.TRCD,
				TRRD:        cfg.Memory.TRRD,
				BurstCycles: cfg.Memory.BurstCycles,
				QueueDepth:  cfg.Memory.QueueDepth,
			}),
			waiters: make(map[uint64][]memreq.Request),
		})
	}
	for _, p := range m.parts {
		p.dram.Spans = m.Spans
	}
	return m
}

// channelOf maps a line address to its memory partition.
func (m *Subsystem) channelOf(lineAddr uint64) int {
	return int((lineAddr / uint64(m.cfg.L2.LineBytes)) % uint64(len(m.parts)))
}

// CanAccept reports whether the interconnect can take another request this
// cycle.
func (m *Subsystem) CanAccept() bool { return len(m.reqNet) < m.reqCap }

// Submit injects a request into the interconnect. It returns false when the
// network is saturated (the SM must stall and retry).
func (m *Subsystem) Submit(req memreq.Request, now int64) bool {
	if len(m.reqNet) >= m.reqCap {
		return false
	}
	m.reqNet = append(m.reqNet, timed{req: req, readyAt: now + int64(m.cfg.Icnt.LatencyCycles)})
	if assert.Enabled && len(m.reqNet) > m.reqCap {
		assert.Failf("mem: request-network overflow after submit: %d > %d", len(m.reqNet), m.reqCap)
	}
	return true
}

// Tick advances the subsystem one core cycle and returns the read replies
// (requests whose data is now available at their SM). TickProfiled is the
// phase-timed twin; keep the two in lockstep.
func (m *Subsystem) Tick(now int64) []memreq.Request {
	// 1. Drain the request network into partitions, respecting the flit
	// budget and arrival latency.
	m.drainReqNet(now)

	// 2. Advance the memory clock domain: L2 banks and DRAM. The pump
	// order within a partition is load-bearing: retry drain must precede
	// the L2 access (a parked request re-enters DRAM before the bank
	// consumes new work), and DRAM completions come last so a fill never
	// races the access that missed on it this same memory cycle.
	m.memAccum += m.cfg.MemClockRatio()
	for m.memAccum >= 1 {
		m.memAccum--
		m.memNow++
		for _, p := range m.parts {
			m.pumpRetry(p, now)
			m.pumpL2(p, now)
			m.pumpDRAM(p, now)
		}
	}

	// 3. Deliver replies that finished their return traversal.
	return m.deliverReplies(now)
}

// TickProfiled is Tick with prof phase marks at the stage boundaries:
// network drains and reply delivery charge to icnt, the bank access to
// l2, and retry drain + FR-FCFS completions to dram. gpu.Step calls it
// only on profiler-elected cycles, so the unprofiled hot path in Tick
// stays unchanged. Keep in lockstep with Tick.
func (m *Subsystem) TickProfiled(now int64, pr *prof.Profiler) []memreq.Request {
	m.drainReqNet(now)
	pr.Mark(prof.Icnt)

	m.memAccum += m.cfg.MemClockRatio()
	for m.memAccum >= 1 {
		m.memAccum--
		m.memNow++
		for _, p := range m.parts {
			m.pumpRetry(p, now)
			pr.Mark(prof.DRAM)
			m.pumpL2(p, now)
			pr.Mark(prof.L2)
			m.pumpDRAM(p, now)
			pr.Mark(prof.DRAM)
		}
	}

	replies := m.deliverReplies(now)
	pr.Mark(prof.Icnt)
	return replies
}

// drainReqNet moves arrived requests from the interconnect into their
// partition's input queue, respecting the per-cycle flit budget.
func (m *Subsystem) drainReqNet(now int64) {
	budget := m.cfg.Icnt.FlitsPerCycle
	var keep []timed
	for i, t := range m.reqNet {
		if budget == 0 || t.readyAt > now {
			keep = append(keep, m.reqNet[i:]...)
			break
		}
		p := m.parts[m.channelOf(t.req.LineAddr)]
		p.input = append(p.input, t)
		budget--
	}
	m.reqNet = keep
}

// deliverReplies returns the read replies whose return traversal finished,
// respecting the per-cycle flit budget.
func (m *Subsystem) deliverReplies(now int64) []memreq.Request {
	var replies []memreq.Request
	budget := m.cfg.Icnt.FlitsPerCycle
	var keepR []timed
	for i, t := range m.replyNet {
		if budget == 0 || t.readyAt > now {
			keepR = append(keepR, m.replyNet[i:]...)
			break
		}
		replies = append(replies, t.req)
		if t.req.SM >= 0 && t.req.SM < len(m.replyPending) {
			m.replyPending[t.req.SM]--
		}
		m.l1RT.Observe(now - t.req.Issued)
		m.Spans.Complete(t.req.Span, now)
		budget--
	}
	m.replyNet = keepR
	return replies
}

// pumpRetry re-enqueues requests previously blocked on a full DRAM queue,
// observing how long the backpressure parked them.
func (m *Subsystem) pumpRetry(p *partition, coreNow int64) {
	for len(p.retry) > 0 && !p.dram.Full() {
		t := p.retry[0]
		p.dram.Enqueue(t.req, m.memNow)
		m.retryWait.Observe(coreNow - t.readyAt)
		m.Spans.MarkDRAMEnqueue(t.req.Span, coreNow)
		p.retry = p.retry[1:]
	}
}

// pumpL2 performs one L2 bank access per memory cycle.
func (m *Subsystem) pumpL2(p *partition, coreNow int64) {
	if len(p.input) > 0 {
		t := p.input[0]
		req := t.req
		res := p.l2.Access(req.LineAddr, req.Write)
		consumed := true
		switch {
		case req.Write:
			// Write-through: always forward to DRAM.
			if p.dram.Full() {
				p.retry = append(p.retry, timed{req: req, readyAt: coreNow})
			} else {
				p.dram.Enqueue(req, m.memNow)
			}
		case res == cache.Hit:
			m.Spans.MarkL2(req.Span, span.OutcomeL2Hit, coreNow, t.readyAt)
			m.scheduleReply(req, coreNow, int64(m.cfg.L2.HitLatency))
		case res == cache.Miss:
			m.perKL2Miss[req.Kernel%MaxKernels]++
			m.Spans.MarkL2(req.Span, span.OutcomeL2Miss, coreNow, t.readyAt)
			p.waiters[req.LineAddr] = append(p.waiters[req.LineAddr], req)
			if p.dram.Full() {
				p.retry = append(p.retry, timed{req: req, readyAt: coreNow})
			} else {
				p.dram.Enqueue(req, m.memNow)
				m.Spans.MarkDRAMEnqueue(req.Span, coreNow)
			}
		case res == cache.MissMerged:
			m.perKL2Miss[req.Kernel%MaxKernels]++
			m.Spans.MarkL2(req.Span, span.OutcomeMerged, coreNow, t.readyAt)
			p.waiters[req.LineAddr] = append(p.waiters[req.LineAddr], req)
		case res == cache.ReservationFail:
			consumed = false // structural stall: retry next cycle
		default:
			if assert.Enabled {
				assert.Failf("mem: unhandled L2 access result %v", res)
			}
		}
		if consumed {
			if !req.Write {
				m.perKL2Acc[req.Kernel%MaxKernels]++
			}
			m.l2Wait.Observe(coreNow - t.readyAt)
			p.input = p.input[1:]
		}
	}
}

// pumpDRAM collects DRAM completions: fill L2 and wake waiting reads.
func (m *Subsystem) pumpDRAM(p *partition, coreNow int64) {
	for _, done := range p.dram.Tick(m.memNow) {
		m.perKServed[done.Kernel%MaxKernels]++
		if done.SM >= 0 && done.SM < len(m.perSMServed) {
			m.perSMServed[done.SM]++
		}
		if done.Write {
			continue
		}
		p.l2.Fill(done.LineAddr)
		for _, w := range p.waiters[done.LineAddr] {
			m.Spans.MarkFill(w.Span, coreNow)
			m.scheduleReply(w, coreNow, int64(m.cfg.L2.HitLatency))
		}
		delete(p.waiters, done.LineAddr)
	}
}

func (m *Subsystem) scheduleReply(req memreq.Request, coreNow, extra int64) {
	m.replyNet = append(m.replyNet, timed{
		req:     req,
		readyAt: coreNow + extra + int64(m.cfg.Icnt.LatencyCycles),
	})
	// Only reads are ever scheduled (writes complete silently), and each
	// outstanding L1 miss line yields exactly one reply, so replyPending
	// counts the SM's miss lines with a known wake-up time.
	if req.SM >= 0 && req.SM < len(m.replyPending) {
		m.replyPending[req.SM]++
	}
}

// RepliesInFlight returns the number of read replies scheduled for the
// given SM that have not yet been delivered. Each has a stamped readyAt,
// so the SM's classifier treats them as known wake-ups.
func (m *Subsystem) RepliesInFlight(sm int) int {
	if sm < 0 || sm >= len(m.replyPending) {
		return 0
	}
	return int(m.replyPending[sm])
}

// OnlyRepliesInFlight reports whether every request still inside the
// hierarchy is a scheduled reply: the request network is empty and every
// partition has drained its input, retry and waiter state with no DRAM
// transaction pending. At that point the whole memory system's future is
// a set of stamped readyAt deliveries — combined with all-SMs-skippable
// it makes the device cycle fast-forwardable.
func (m *Subsystem) OnlyRepliesInFlight() bool {
	if len(m.reqNet) > 0 {
		return false
	}
	for _, p := range m.parts {
		if len(p.input) > 0 || len(p.retry) > 0 || len(p.waiters) > 0 || p.dram.Pending() > 0 {
			return false
		}
	}
	return true
}

// Stats returns a snapshot of accumulated statistics.
func (m *Subsystem) Stats() Stats {
	var s Stats
	for _, p := range m.parts {
		cs := p.l2.Stats
		s.L2.Loads += cs.Loads
		s.L2.LoadHits += cs.LoadHits
		s.L2.LoadMiss += cs.LoadMiss
		s.L2.Stores += cs.Stores
		s.L2.Fills += cs.Fills
		s.L2.Merged += cs.Merged
		s.L2.ResFails += cs.ResFails
		s.L2.Evictions += cs.Evictions
		s.BusBusy += p.dram.Stats.BusBusy
		s.MemTicks += p.dram.Stats.Ticks
	}
	// MemTicks is summed across channels, so BusBusy/MemTicks is the
	// aggregate utilization of all data buses.
	s.DRAMServed = m.perKServed
	s.L2MissPerKernel = m.perKL2Miss
	s.L2AccessPerKernel = m.perKL2Acc
	s.DRAMServedPerSM = append([]uint64(nil), m.perSMServed...)
	return s
}

// PerSMServed returns a copy of the per-SM DRAM transaction counters
// (used by the profiling controller to window bandwidth samples).
func (m *Subsystem) PerSMServed() []uint64 {
	return append([]uint64(nil), m.perSMServed...)
}

// Drained reports whether no request remains anywhere in the hierarchy.
func (m *Subsystem) Drained() bool {
	if len(m.reqNet) > 0 || len(m.replyNet) > 0 {
		return false
	}
	for _, p := range m.parts {
		if len(p.input) > 0 || len(p.retry) > 0 || len(p.waiters) > 0 || !p.dram.Drained() {
			return false
		}
	}
	// Span conservation: with nothing in flight anywhere, every opened
	// span must have completed (the ring never drops an open span, only
	// refuses new ones). An open span here means a handle was lost.
	if assert.Enabled && m.Spans.Open() != 0 {
		assert.Failf("mem: hierarchy drained with %d span(s) still open", m.Spans.Open())
	}
	return true
}
