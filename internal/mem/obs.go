package mem

import (
	"strconv"

	"warpedslicer/internal/obs"
)

// Register wires the memory subsystem into the registry: aggregate DRAM
// bus counters (the windowed-bandwidth source: delta(bus_busy)/delta
// (ticks) is per-window utilization), per-kernel DRAM/L2 counters, the
// aggregate L2, and per-channel detail via each bank's own Register.
func (m *Subsystem) Register(r *obs.Registry) {
	for i, p := range m.parts {
		ch := strconv.Itoa(i)
		p.l2.Register(r, "cache", "l2", "chan", ch)
		p.dram.Register(r, "chan", ch)
	}
	r.Histogram("ws_l1_miss_roundtrip_cycles", &m.l1RT)
	r.Histogram("ws_l2_queue_wait_cycles", &m.l2Wait)
	r.Histogram("ws_dram_backpressure_wait_cycles", &m.retryWait)
	m.Spans.Register(r)
	r.Collector(func(emit obs.Emit) {
		st := m.Stats()
		var pending int64
		for _, n := range m.replyPending {
			pending += n
		}
		emit("ws_mem_replies_in_flight", obs.Gauge, float64(pending))
		emit("ws_dram_bus_busy_total", obs.Counter, float64(st.BusBusy))
		emit("ws_dram_ticks_total", obs.Counter, float64(st.MemTicks))
		// Aggregate the per-channel service-time histograms into two
		// label-free device-wide series (the per-channel detail stays
		// available under ws_dram_service_cycles{chan=...,row=...}).
		var hit, miss obs.Hist
		for _, p := range m.parts {
			hit.Merge(&p.dram.RowHitService)
			miss.Merge(&p.dram.RowMissService)
		}
		hit.Emit(emit, "ws_dram_row_hit_service_cycles")
		miss.Emit(emit, "ws_dram_row_miss_service_cycles")
		st.L2.EmitObs(emit, "cache", "l2")
		for k := 0; k < MaxKernels; k++ {
			kl := strconv.Itoa(k)
			emit(obs.Label("ws_dram_served_total", "kernel", kl), obs.Counter, float64(st.DRAMServed[k]))
			emit(obs.Label("ws_l2_load_misses_total", "kernel", kl), obs.Counter, float64(st.L2MissPerKernel[k]))
			emit(obs.Label("ws_l2_loads_total", "kernel", kl), obs.Counter, float64(st.L2AccessPerKernel[k]))
		}
	})
}
