package mem

import (
	"strconv"

	"warpedslicer/internal/obs"
)

// Register wires the memory subsystem into the registry: aggregate DRAM
// bus counters (the windowed-bandwidth source: delta(bus_busy)/delta
// (ticks) is per-window utilization), per-kernel DRAM/L2 counters, the
// aggregate L2, and per-channel detail via each bank's own Register.
func (m *Subsystem) Register(r *obs.Registry) {
	for i, p := range m.parts {
		ch := strconv.Itoa(i)
		p.l2.Register(r, "cache", "l2", "chan", ch)
		p.dram.Register(r, "chan", ch)
	}
	r.Collector(func(emit obs.Emit) {
		st := m.Stats()
		emit("ws_dram_bus_busy_total", obs.Counter, float64(st.BusBusy))
		emit("ws_dram_ticks_total", obs.Counter, float64(st.MemTicks))
		st.L2.EmitObs(emit, "cache", "l2")
		for k := 0; k < MaxKernels; k++ {
			kl := strconv.Itoa(k)
			emit(obs.Label("ws_dram_served_total", "kernel", kl), obs.Counter, float64(st.DRAMServed[k]))
			emit(obs.Label("ws_l2_load_misses_total", "kernel", kl), obs.Counter, float64(st.L2MissPerKernel[k]))
			emit(obs.Label("ws_l2_loads_total", "kernel", kl), obs.Counter, float64(st.L2AccessPerKernel[k]))
		}
	})
}
