package kernels

import (
	"warpedslicer/internal/isa"
	"warpedslicer/internal/rng"
)

// LineBytes is the memory transaction granularity used for address
// generation (matches the L1/L2 line size in the baseline configuration).
const LineBytes = 128

// Stream generates the deterministic instruction stream of one warp. The
// stream is a pure function of (spec, base address, CTA id, warp id), so
// re-running a warp always produces the identical sequence.
type Stream struct {
	spec *Spec
	// base is the kernel's global-memory base address (assigned at launch
	// so concurrent kernels occupy disjoint address ranges).
	base uint64
	cta  int
	warp int

	pc       int
	iter     int
	prevDest int8
	done     bool
	seq      uint64 // monotone op counter, drives hashing
	r        rng.Stream

	// pending holds the second SIMT pass of a divergent op: the paths
	// serialize, so one template op can emit two instructions.
	pending    isa.Instr
	hasPending bool
}

// NewStream returns the instruction stream for warp `warp` of CTA `cta`.
func NewStream(spec *Spec, base uint64, cta, warp int) *Stream {
	return &Stream{
		spec: spec,
		base: base,
		cta:  cta,
		warp: warp,
		r:    rng.NewStream(rng.Mix3(base, uint64(cta), uint64(warp))),
	}
}

// Done reports whether the warp has exited.
func (st *Stream) Done() bool { return st.done }

// Spec returns the kernel spec the stream executes.
func (st *Stream) Spec() *Spec { return st.spec }

// Next returns the next instruction. After the final loop iteration it
// returns a single EXIT and the stream becomes Done.
func (st *Stream) Next() isa.Instr {
	if st.hasPending {
		st.hasPending = false
		return st.pending
	}
	if st.done {
		return isa.Instr{Kind: isa.EXIT}
	}
	if st.iter >= st.spec.Iterations {
		st.done = true
		return isa.Instr{Kind: isa.EXIT}
	}
	op := st.spec.Body[st.pc]
	in := st.materialize(op)
	if op.DivergePct > 0 && op.DivergePct < 100 {
		// Serialize the two divergent paths: this pass executes the
		// taken lanes, the buffered pass the remainder (reconvergence
		// at the next op).
		in.ActivePct = op.DivergePct
		st.pending = in
		st.pending.ActivePct = 100 - op.DivergePct
		st.hasPending = true
	}

	st.pc++
	if st.pc == len(st.spec.Body) {
		st.pc = 0
		st.iter++
	}
	st.seq++
	return in
}

// materialize turns an Op template into a concrete instruction.
func (st *Stream) materialize(op Op) isa.Instr {
	in := isa.Instr{Kind: op.Kind, Dest: isa.NoReg, Src: [2]int8{isa.NoReg, isa.NoReg}}
	switch op.Kind {
	case isa.BAR, isa.EXIT:
		return in
	}

	nregs := st.spec.RegsPerThread
	if nregs > 120 {
		nregs = 120 // register ids must fit int8
	}
	dest := int8(2 + int(st.seq)%(max(nregs-2, 1)))
	if op.Kind == isa.STG {
		// Stores produce no register result; they read the value being
		// written (and stay ordered behind its producer via the RAW
		// check) without ever locking a scoreboard entry.
		if op.DependsPrev && st.prevDest >= 0 {
			in.Src[0] = st.prevDest
		} else {
			in.Src[0] = int8((int(dest) + 7) % max(nregs, 1))
		}
	} else {
		in.Dest = dest
		if op.DependsPrev && st.prevDest >= 0 {
			in.Src[0] = st.prevDest
		} else {
			in.Src[0] = int8((int(dest) + 7) % max(nregs, 1))
		}
		st.prevDest = dest
	}

	if op.Kind.IsGlobal() {
		in.Addr = st.address(op)
		in.Lines = op.Lines
		if in.Lines == 0 {
			in.Lines = 1
		}
	}
	if op.Kind == isa.LDS {
		// For shared-memory ops, Lines carries the bank-conflict
		// serialization factor.
		in.Lines = op.BankConflicts
		if in.Lines == 0 {
			in.Lines = 1
		}
	}
	return in
}

// address generates the byte address of a global access per the op pattern.
func (st *Stream) address(op Op) uint64 {
	s := st.spec
	switch op.Pattern {
	case PatStream:
		// Unique, coalesced lines: every warp walks its own arithmetic
		// sequence through the kernel footprint.
		gwarp := uint64(st.cta)*uint64(s.WarpsPerCTA(32)) + uint64(st.warp)
		idx := gwarp*uint64(s.Iterations)*uint64(len(s.Body)) + st.seq
		return st.base + (idx*LineBytes)%max64(s.FootprintBytes, LineBytes)
	case PatTiled:
		// Small per-CTA tile: hot in L1 after warm-up.
		tile := max64(s.TileBytes, LineBytes)
		off := rng.Mix3(uint64(st.cta), st.seq%16, uint64(st.pc)) % tile
		return st.base + uint64(st.cta)*tile + off&^(LineBytes-1)
	case PatReuse:
		// Per-CTA working set comparable to L1: hit rate collapses as
		// co-resident CTAs multiply. Region bases are staggered by a few
		// extra lines so distinct CTAs do not collide set-aligned.
		ws := max64(s.ReuseBytes, LineBytes)
		stride := ws + 3*LineBytes
		off := st.r.Next() % ws
		return st.base + uint64(st.cta%1024)*stride + off&^(LineBytes-1)
	case PatScatter:
		// Poorly coalesced, wide-footprint accesses.
		fp := max64(s.FootprintBytes, LineBytes)
		return st.base + (st.r.Next()%fp)&^(LineBytes-1)
	default:
		return st.base
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
