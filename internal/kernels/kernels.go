// Package kernels defines the synthetic GPU kernels used to reproduce the
// Warped-Slicer evaluation.
//
// The paper runs ten CUDA benchmarks (CUDA SDK, Rodinia, Parboil, ISPASS)
// through GPGPU-Sim. Those binaries cannot be executed here, so each
// benchmark is replaced by a synthetic kernel whose static resources
// (registers/thread, shared memory/CTA, block and grid dimensions) and
// dynamic behaviour (ALU/SFU/LDST instruction mix, memory access pattern,
// L2 MPKI class, i-cache pressure) are parameterized to match Table II and
// the occupancy-scaling categories of Figure 3a. See DESIGN.md §1 for the
// substitution rationale.
package kernels

import (
	"fmt"

	"warpedslicer/internal/isa"
)

// Class is the paper's benchmark classification (Table II, "Type").
type Class uint8

const (
	// Compute marks low-MPKI, pipeline-bound kernels.
	Compute Class = iota
	// Memory marks bandwidth-bound kernels (L2 MPKI >= 30).
	Memory
	// CacheSensitive marks kernels whose performance peaks below maximum
	// occupancy because additional CTAs thrash the L1 ("Cache" type).
	CacheSensitive
)

func (c Class) String() string {
	switch c {
	case Compute:
		return "Compute"
	case Memory:
		return "Memory"
	case CacheSensitive:
		return "Cache"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Pattern selects how a memory op generates addresses.
type Pattern uint8

const (
	// PatNone is for non-memory ops.
	PatNone Pattern = iota
	// PatStream generates unique, fully coalesced lines (always-miss
	// streaming; high L2 MPKI).
	PatStream
	// PatTiled reuses a small per-CTA tile that fits comfortably in L1
	// (near-zero MPKI after warm-up).
	PatTiled
	// PatReuse reuses a per-CTA working set comparable to the L1 size,
	// so hit rate collapses as co-resident CTAs grow (cache-sensitive).
	PatReuse
	// PatScatter generates poorly coalesced accesses over a large
	// footprint (irregular kernels: BFS, KNN).
	PatScatter
)

// Op is one instruction template in a kernel's loop body.
type Op struct {
	Kind isa.Kind
	// DependsPrev chains this op's source to the previous op's
	// destination, creating a RAW hazard.
	DependsPrev bool
	// Pattern and Lines configure memory ops (ignored otherwise).
	Pattern Pattern
	Lines   uint8
	// DivergePct marks a branch-divergent op: DivergePct percent of the
	// warp's threads take one path and the rest the other, so the op is
	// serialized into two SIMT passes (GPGPU-Sim-style post-dominator
	// reconvergence at the next op). 0 disables divergence.
	DivergePct uint8
	// BankConflicts serializes a shared-memory (LDS) op over this many
	// bank passes (1 or 0 = conflict-free; 32 = fully serialized).
	BankConflicts uint8
}

// Spec statically describes a kernel.
type Spec struct {
	Name string
	// Abbr is the paper's abbreviation (Table II).
	Abbr string

	GridDim  int // CTAs in the grid
	BlockDim int // threads per CTA

	RegsPerThread  int
	SharedMemPerTA int // shared-memory bytes per CTA

	// Body is the per-warp loop body; Iterations is how many times each
	// warp executes it before exiting.
	Body       []Op
	Iterations int

	// TileBytes is the per-CTA footprint for PatTiled ops.
	TileBytes uint64
	// ReuseBytes is the per-CTA working set for PatReuse ops.
	ReuseBytes uint64
	// FootprintBytes bounds PatStream/PatScatter address generation.
	FootprintBytes uint64

	// ICacheMissPct is the percentage of instruction fetches that pay the
	// configured fetch delay (models kernels with large code footprints,
	// e.g. DXT's i-buffer-empty stalls in Figure 1).
	ICacheMissPct int

	Class Class
}

// WarpsPerCTA returns the number of warps per CTA for the given warp size,
// rounding up for partial warps (e.g. LBM's 120-thread blocks).
func (s *Spec) WarpsPerCTA(warpSize int) int {
	return (s.BlockDim + warpSize - 1) / warpSize
}

// RegsPerCTA returns the register-file footprint of one CTA.
func (s *Spec) RegsPerCTA() int { return s.RegsPerThread * s.BlockDim }

// Validate reports an error if the spec is not executable.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "" || s.Abbr == "":
		return fmt.Errorf("kernels: spec missing name")
	case s.GridDim <= 0 || s.BlockDim <= 0:
		return fmt.Errorf("kernels: %s: grid/block dims must be positive", s.Abbr)
	case s.RegsPerThread <= 0:
		return fmt.Errorf("kernels: %s: RegsPerThread must be positive", s.Abbr)
	case s.SharedMemPerTA < 0:
		return fmt.Errorf("kernels: %s: negative shared memory", s.Abbr)
	case len(s.Body) == 0:
		return fmt.Errorf("kernels: %s: empty body", s.Abbr)
	case s.Iterations <= 0:
		return fmt.Errorf("kernels: %s: Iterations must be positive", s.Abbr)
	}
	for i, op := range s.Body {
		if op.Kind.IsGlobal() && op.Pattern == PatNone {
			return fmt.Errorf("kernels: %s: body[%d] global access without pattern", s.Abbr, i)
		}
		if op.Kind == isa.EXIT {
			return fmt.Errorf("kernels: %s: body[%d] explicit EXIT not allowed", s.Abbr, i)
		}
		if op.DivergePct >= 100 {
			return fmt.Errorf("kernels: %s: body[%d] DivergePct %d out of range [0,100)", s.Abbr, i, op.DivergePct)
		}
		if op.DivergePct > 0 && (op.Kind == isa.BAR || op.Kind == isa.EXIT) {
			return fmt.Errorf("kernels: %s: body[%d] barriers cannot diverge", s.Abbr, i)
		}
		if op.BankConflicts > 32 {
			return fmt.Errorf("kernels: %s: body[%d] BankConflicts %d exceeds 32 banks", s.Abbr, i, op.BankConflicts)
		}
		if op.BankConflicts > 1 && op.Kind != isa.LDS {
			return fmt.Errorf("kernels: %s: body[%d] bank conflicts only apply to LDS", s.Abbr, i)
		}
	}
	return nil
}

// MaxCTAs returns the occupancy limit of this kernel on an empty SM with
// the given resource pools (the paper's "maximum allowed CTAs").
func (s *Spec) MaxCTAs(regs, shmBytes, threads, ctaSlots int) int {
	limit := ctaSlots
	if byRegs := regs / max(s.RegsPerCTA(), 1); byRegs < limit {
		limit = byRegs
	}
	if s.SharedMemPerTA > 0 {
		if byShm := shmBytes / s.SharedMemPerTA; byShm < limit {
			limit = byShm
		}
	}
	if byThr := threads / max(s.BlockDim, 1); byThr < limit {
		limit = byThr
	}
	if limit < 0 {
		return 0
	}
	return limit
}

// MixCounts returns the number of ALU, SFU and LD/ST ops per body iteration.
func (s *Spec) MixCounts() (alu, sfu, mem int) {
	for _, op := range s.Body {
		switch {
		case op.Kind == isa.ALU:
			alu++
		case op.Kind == isa.SFU:
			sfu++
		case op.Kind.IsMemory():
			mem++
		}
	}
	return
}
