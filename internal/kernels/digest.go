package kernels

import "warpedslicer/internal/digest"

// DigestLogical hashes the stream's logical position: its identity (which
// kernel, address base, CTA and warp coordinates) plus how many
// instructions it has emitted. The generator's internal cursors — pc,
// iter, prevDest, done, the RNG, the pending divergent-pair buffer — are
// pure functions of identity + emit count, so hashing them would make the
// digest sensitive to prefetch timing: the ready-set issue path
// materializes a warp's next instruction into its i-buffer on cycles the
// reference rescan never examines that warp, advancing every cursor one
// step early with zero architectural effect. The warp digest passes
// prefetched=1 while an emitted instruction sits unissued in the
// i-buffer, backing the count down to the issue boundary both scheduler
// paths agree on. The Spec is static workload configuration, not mutable
// state; its abbreviation is hashed as an identity so two streams over
// different kernels never compare equal.
func (st *Stream) DigestLogical(h *digest.Hasher, prefetched int) {
	h.Str(st.spec.Abbr)
	h.U64(st.base)
	h.Int(st.cta)
	h.Int(st.warp)
	h.U64(st.seq - uint64(prefetched))
}
