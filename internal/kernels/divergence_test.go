package kernels

import (
	"testing"

	"warpedslicer/internal/isa"
)

func TestDivergentOpEmitsTwoPasses(t *testing.T) {
	spec := &Spec{
		Name: "div", Abbr: "DIV",
		GridDim: 1, BlockDim: 32, RegsPerThread: 8,
		Body: []Op{
			{Kind: isa.ALU},
			{Kind: isa.ALU, DivergePct: 25},
		},
		Iterations: 2,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	st := NewStream(spec, 1<<40, 0, 0)

	// Iteration: uniform ALU, then the divergent op twice (25% + 75%).
	for iter := 0; iter < 2; iter++ {
		in := st.Next()
		if in.ActivePct != 0 {
			t.Fatalf("uniform op has ActivePct %d", in.ActivePct)
		}
		a := st.Next()
		b := st.Next()
		if a.ActivePct != 25 || b.ActivePct != 75 {
			t.Fatalf("divergent passes = %d/%d, want 25/75", a.ActivePct, b.ActivePct)
		}
		if a.Kind != isa.ALU || b.Kind != isa.ALU {
			t.Fatal("divergent passes changed kind")
		}
		if a.Dest != b.Dest {
			t.Fatal("divergent passes must share the template operands")
		}
	}
	if in := st.Next(); in.Kind != isa.EXIT {
		t.Fatalf("expected EXIT, got %v", in.Kind)
	}
}

func TestDivergenceLengthensStream(t *testing.T) {
	plain := BreadthFirstSearch()
	div := DivergentBFS()
	count := func(s *Spec) int {
		st := NewStream(s, 1<<40, 0, 0)
		n := 0
		for !st.Done() {
			st.Next()
			n++
		}
		return n
	}
	np, nd := count(plain), count(div)
	if nd <= np {
		t.Fatalf("divergent stream (%d) not longer than plain (%d)", nd, np)
	}
	// Each divergent op adds exactly one extra pass per iteration.
	divOps := 0
	for _, op := range div.Body {
		if op.DivergePct > 0 {
			divOps++
		}
	}
	if want := np + divOps*plain.Iterations; nd != want {
		t.Fatalf("divergent stream length %d, want %d", nd, want)
	}
}

func TestDivergenceValidation(t *testing.T) {
	s := BreadthFirstSearch()
	s.Body[0].DivergePct = 100
	if err := s.Validate(); err == nil {
		t.Fatal("DivergePct=100 accepted")
	}
	s = BreadthFirstSearch()
	s.Body = append(s.Body, Op{Kind: isa.BAR, DivergePct: 10})
	if err := s.Validate(); err == nil {
		t.Fatal("divergent barrier accepted")
	}
}

func TestActiveFraction(t *testing.T) {
	if f := (isa.Instr{ActivePct: 0}).ActiveFraction(); f != 1 {
		t.Fatalf("full warp fraction = %v", f)
	}
	if f := (isa.Instr{ActivePct: 25}).ActiveFraction(); f != 0.25 {
		t.Fatalf("quarter warp fraction = %v", f)
	}
}

func TestDivergentStreamStillDeterministic(t *testing.T) {
	a := NewStream(DivergentBFS(), 1<<40, 2, 1)
	b := NewStream(DivergentBFS(), 1<<40, 2, 1)
	for i := 0; i < 400; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergent streams diverged at %d", i)
		}
	}
}

func TestBankConflictValidation(t *testing.T) {
	s := DXTCompression()
	s.Body[0].BankConflicts = 33
	if err := s.Validate(); err == nil {
		t.Fatal("33-way bank conflict accepted")
	}
	s = DXTCompression()
	s.Body[1].BankConflicts = 4 // body[1] is ALU
	if err := s.Validate(); err == nil {
		t.Fatal("bank conflicts on non-LDS op accepted")
	}
	s = DXTCompression()
	s.Body[0].BankConflicts = 8 // body[0] is LDS
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBankConflictCarriedOnInstr(t *testing.T) {
	s := DXTCompression()
	s.Body[0].BankConflicts = 8
	st := NewStream(s, 1<<40, 0, 0)
	in := st.Next() // body[0] is LDS
	if in.Kind != isa.LDS || in.Lines != 8 {
		t.Fatalf("LDS instr = %v lines=%d, want LDS with 8 passes", in.Kind, in.Lines)
	}
}
