package kernels

import "warpedslicer/internal/isa"

// The benchmark suite reproduces the ten applications of Table II. Static
// resources (block dim, registers/thread, shared mem/CTA) are chosen so the
// per-SM CTA limit and utilization match the paper's baseline SM (32768
// registers, 1536 threads, 48KB shared memory, 8 CTA slots):
//
//	BLK 4 CTAs (register-limited)   BFS 3 (thread-limited)
//	DXT 8 (slot-limited)            HOT 6 (thread-limited)
//	IMG 8 (slot-limited)            KNN 6 (thread-limited)
//	LBM 5 (register-limited)        MM  5 (register-limited)
//	MVP 8 (thread-limited)          NN  4 (register-limited)
//
// Dynamic behaviour (instruction mix, access patterns, iteration counts)
// targets each benchmark's Table II utilization profile and Figure 3a
// occupancy-scaling category.

func alu(dep bool) Op { return Op{Kind: isa.ALU, DependsPrev: dep} }
func sfu(dep bool) Op { return Op{Kind: isa.SFU, DependsPrev: dep} }
func lds(dep bool) Op { return Op{Kind: isa.LDS, DependsPrev: dep} }
func bar() Op         { return Op{Kind: isa.BAR} }

func ldg(p Pattern, lines uint8, dep bool) Op {
	return Op{Kind: isa.LDG, Pattern: p, Lines: lines, DependsPrev: dep}
}
func stg(p Pattern, lines uint8) Op {
	return Op{Kind: isa.STG, Pattern: p, Lines: lines, DependsPrev: true}
}

// Blackscholes: memory type, SFU-heavy option pricing over streamed data.
func Blackscholes() *Spec {
	return &Spec{
		Name: "Blackscholes", Abbr: "BLK",
		GridDim: 480, BlockDim: 128,
		RegsPerThread: 62, SharedMemPerTA: 0,
		Body: []Op{
			ldg(PatStream, 1, false),
			alu(true), sfu(true), sfu(true), alu(true), sfu(true),
			stg(PatStream, 1),
		},
		Iterations:     320,
		FootprintBytes: 256 << 20,
		ICacheMissPct:  1,
		Class:          Memory,
	}
}

// BreadthFirstSearch: memory type, irregular scattered accesses.
func BreadthFirstSearch() *Spec {
	return &Spec{
		Name: "Breadth First Search", Abbr: "BFS",
		GridDim: 1954, BlockDim: 512,
		RegsPerThread: 15, SharedMemPerTA: 0,
		Body: []Op{
			ldg(PatScatter, 4, false),
			alu(true),
			ldg(PatScatter, 4, false),
			alu(true),
			stg(PatScatter, 2),
		},
		Iterations:     150,
		FootprintBytes: 128 << 20,
		ICacheMissPct:  3,
		Class:          Memory,
	}
}

// DXTCompression: compute type, shared-memory heavy, i-fetch bound.
func DXTCompression() *Spec {
	return &Spec{
		Name: "DXT Compression", Abbr: "DXT",
		GridDim: 10752, BlockDim: 64,
		RegsPerThread: 36, SharedMemPerTA: 2048,
		Body: []Op{
			lds(false), alu(true), alu(true), alu(false),
			lds(true), alu(true), sfu(false), alu(true),
			ldg(PatTiled, 1, false),
		},
		Iterations:    420,
		TileBytes:     1024,
		ICacheMissPct: 30,
		Class:         Compute,
	}
}

// Hotspot: compute non-saturating stencil with barriers.
func Hotspot() *Spec {
	return &Spec{
		Name: "Hotspot", Abbr: "HOT",
		GridDim: 7396, BlockDim: 256,
		RegsPerThread: 18, SharedMemPerTA: 1536,
		Body: []Op{
			ldg(PatTiled, 1, false),
			alu(true),
			ldg(PatTiled, 1, false),
			alu(true), sfu(true),
			stg(PatTiled, 1),
			alu(false),
			bar(),
		},
		Iterations:    260,
		TileBytes:     20 * 1024, // slightly beyond the L1 share: ~5 MPKI
		ICacheMissPct: 2,
		Class:         Compute,
	}
}

// ImageDenoising: compute saturating, long ALU dependency chains.
func ImageDenoising() *Spec {
	return &Spec{
		Name: "Image Denoising", Abbr: "IMG",
		GridDim: 2040, BlockDim: 64,
		RegsPerThread: 28, SharedMemPerTA: 0,
		Body: []Op{
			alu(true), alu(true), alu(true), alu(true), alu(true), alu(true),
			sfu(true),
			alu(true), alu(true), alu(true),
			sfu(false),
			ldg(PatTiled, 1, false),
		},
		Iterations:    520,
		TileBytes:     1024,
		ICacheMissPct: 1,
		Class:         Compute,
	}
}

// KNearestNeighbor: memory type, scattered distance computations.
func KNearestNeighbor() *Spec {
	return &Spec{
		Name: "K-Nearest Neighbor", Abbr: "KNN",
		GridDim: 2673, BlockDim: 256,
		RegsPerThread: 8, SharedMemPerTA: 0,
		Body: []Op{
			ldg(PatScatter, 4, false),
			sfu(true),
			ldg(PatScatter, 4, false),
			alu(true), sfu(false),
		},
		Iterations:     130,
		FootprintBytes: 192 << 20,
		ICacheMissPct:  2,
		Class:          Memory,
	}
}

// LatticeBoltzmann: memory type, pure streaming loads/stores.
func LatticeBoltzmann() *Spec {
	return &Spec{
		Name: "Lattice-Boltzmann", Abbr: "LBM",
		GridDim: 18000, BlockDim: 120,
		RegsPerThread: 53, SharedMemPerTA: 0,
		Body: []Op{
			ldg(PatStream, 1, false),
			ldg(PatStream, 1, false),
			ldg(PatStream, 1, false),
			alu(true),
			stg(PatStream, 1),
			stg(PatStream, 1),
		},
		Iterations:     110,
		FootprintBytes: 512 << 20,
		ICacheMissPct:  1,
		Class:          Memory,
	}
}

// MatrixMultiply: compute type, tiled with shared memory and barriers.
func MatrixMultiply() *Spec {
	return &Spec{
		Name: "Matrix Multiply", Abbr: "MM",
		GridDim: 528, BlockDim: 128,
		RegsPerThread: 44, SharedMemPerTA: 512,
		Body: []Op{
			ldg(PatTiled, 1, false),
			lds(false),
			alu(true), alu(true), alu(true), alu(true),
			lds(false),
			alu(true), alu(true), alu(true),
			bar(),
			stg(PatTiled, 1),
		},
		Iterations:    300,
		TileBytes:     4096,
		ICacheMissPct: 1,
		Class:         Compute,
	}
}

// MatrixVectorProduct: L1-cache-sensitive; streams the matrix, reuses the
// vector.
func MatrixVectorProduct() *Spec {
	return &Spec{
		Name: "Matrix Vector Product", Abbr: "MVP",
		GridDim: 765, BlockDim: 192,
		RegsPerThread: 16, SharedMemPerTA: 0,
		Body: []Op{
			ldg(PatReuse, 1, false),
			alu(true),
			ldg(PatReuse, 1, false),
			alu(true),
			ldg(PatReuse, 1, false),
			stg(PatTiled, 1),
		},
		Iterations:    400,
		ReuseBytes:    4 * 1024, // ~4 CTAs fit the 16KB L1; more thrash it
		TileBytes:     1024,
		ICacheMissPct: 1,
		Class:         CacheSensitive,
	}
}

// NeuralNetwork: L1-cache-sensitive weight reuse.
func NeuralNetwork() *Spec {
	return &Spec{
		Name: "Neural Network", Abbr: "NN",
		GridDim: 54000, BlockDim: 169,
		RegsPerThread: 45, SharedMemPerTA: 0,
		Body: []Op{
			ldg(PatReuse, 1, false),
			alu(true),
			ldg(PatReuse, 1, false),
			alu(true), sfu(true),
			ldg(PatReuse, 1, false),
			alu(false),
			stg(PatTiled, 1),
		},
		Iterations:    260,
		ReuseBytes:    7 * 1024, // ~2 CTAs fit the 16KB L1; 4 thrash it
		TileBytes:     1024,
		ICacheMissPct: 1,
		Class:         CacheSensitive,
	}
}

// DivergentBFS is a BFS variant whose neighbour expansion diverges: 30% of
// each warp's threads take the frontier-update path while the rest idle,
// serializing two SIMT passes per divergent op. It is not part of the
// Table II suite (the paper's BFS behaviour is captured by scatter traffic
// alone) but exercises the simulator's divergence model.
func DivergentBFS() *Spec {
	s := BreadthFirstSearch()
	s.Name = "Breadth First Search (divergent)"
	s.Abbr = "BFSd"
	for i := range s.Body {
		if s.Body[i].Kind == isa.STG || s.Body[i].Kind == isa.ALU {
			s.Body[i].DivergePct = 30
		}
	}
	return s
}

// Suite returns the full ten-benchmark suite in Table II order.
func Suite() []*Spec {
	return []*Spec{
		Blackscholes(),
		BreadthFirstSearch(),
		DXTCompression(),
		Hotspot(),
		ImageDenoising(),
		KNearestNeighbor(),
		LatticeBoltzmann(),
		MatrixMultiply(),
		MatrixVectorProduct(),
		NeuralNetwork(),
	}
}

// ByAbbr returns the suite kernel with the given abbreviation, or nil.
func ByAbbr(abbr string) *Spec {
	for _, s := range Suite() {
		if s.Abbr == abbr {
			return s
		}
	}
	return nil
}

// ComputeSuite returns the compute-class kernels (DXT, HOT, IMG, MM).
func ComputeSuite() []*Spec { return byClass(Compute) }

// MemorySuite returns the memory-class kernels (BLK, BFS, KNN, LBM).
func MemorySuite() []*Spec { return byClass(Memory) }

// CacheSuite returns the L1-cache-sensitive kernels (MVP, NN).
func CacheSuite() []*Spec { return byClass(CacheSensitive) }

func byClass(c Class) []*Spec {
	var out []*Spec
	for _, s := range Suite() {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}
