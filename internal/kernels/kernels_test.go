package kernels

import (
	"testing"
	"testing/quick"

	"warpedslicer/internal/isa"
)

func TestSuiteHasTenValidatedKernels(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d kernels, want 10", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Abbr, err)
		}
		if seen[s.Abbr] {
			t.Errorf("duplicate abbreviation %s", s.Abbr)
		}
		seen[s.Abbr] = true
	}
}

func TestByAbbr(t *testing.T) {
	if ByAbbr("LBM") == nil || ByAbbr("LBM").Name != "Lattice-Boltzmann" {
		t.Fatal("ByAbbr(LBM) wrong")
	}
	if ByAbbr("nope") != nil {
		t.Fatal("ByAbbr of unknown should be nil")
	}
}

func TestClassPartitions(t *testing.T) {
	c, m, cs := ComputeSuite(), MemorySuite(), CacheSuite()
	if len(c) != 4 || len(m) != 4 || len(cs) != 2 {
		t.Fatalf("class sizes = %d/%d/%d, want 4/4/2", len(c), len(m), len(cs))
	}
	if len(c)+len(m)+len(cs) != len(Suite()) {
		t.Fatal("classes do not partition the suite")
	}
}

func TestTableIIResourceMatch(t *testing.T) {
	// Register and shared-memory demand must track Table II's utilization
	// at each kernel's occupancy limit (baseline SM: 32768 regs, 48KB shm).
	type exp struct {
		maxCTAs    int
		regUtilMin float64
		regUtilMax float64
	}
	want := map[string]exp{
		"BLK": {4, 0.90, 1.00},
		"BFS": {3, 0.65, 0.75},
		"DXT": {8, 0.50, 0.60},
		"HOT": {6, 0.80, 0.90},
		"IMG": {8, 0.40, 0.48},
		"KNN": {6, 0.33, 0.42},
		"LBM": {5, 0.93, 1.00},
		"MM":  {5, 0.82, 0.90},
		"MVP": {8, 0.70, 0.80},
		"NN":  {4, 0.88, 0.97},
	}
	for _, s := range Suite() {
		w := want[s.Abbr]
		got := s.MaxCTAs(32768, 48*1024, 1536, 8)
		if got != w.maxCTAs {
			t.Errorf("%s: max CTAs = %d, want %d", s.Abbr, got, w.maxCTAs)
		}
		util := float64(s.RegsPerCTA()*got) / 32768
		if util < w.regUtilMin || util > w.regUtilMax {
			t.Errorf("%s: register util %.2f outside [%.2f,%.2f]", s.Abbr, util, w.regUtilMin, w.regUtilMax)
		}
	}
}

func TestDXTSharedMemoryThird(t *testing.T) {
	// Table II: DXT uses 33% of shared memory at 8 CTAs.
	dxt := ByAbbr("DXT")
	util := float64(dxt.SharedMemPerTA*8) / (48 * 1024)
	if util < 0.30 || util > 0.37 {
		t.Fatalf("DXT shm util %.2f, want ~1/3", util)
	}
}

func TestWarpsPerCTAPartialWarp(t *testing.T) {
	lbm := ByAbbr("LBM") // 120 threads
	if got := lbm.WarpsPerCTA(32); got != 4 {
		t.Fatalf("LBM warps = %d, want 4 (partial last warp)", got)
	}
	nn := ByAbbr("NN") // 169 threads
	if got := nn.WarpsPerCTA(32); got != 6 {
		t.Fatalf("NN warps = %d, want 6", got)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := *Blackscholes()
	cases := map[string]func(*Spec){
		"no name":    func(s *Spec) { s.Name = "" },
		"zero grid":  func(s *Spec) { s.GridDim = 0 },
		"zero block": func(s *Spec) { s.BlockDim = 0 },
		"zero regs":  func(s *Spec) { s.RegsPerThread = 0 },
		"neg shm":    func(s *Spec) { s.SharedMemPerTA = -1 },
		"empty body": func(s *Spec) { s.Body = nil },
		"zero iters": func(s *Spec) { s.Iterations = 0 },
		"global wout pattern": func(s *Spec) {
			s.Body = []Op{{Kind: isa.LDG}}
		},
		"explicit exit": func(s *Spec) {
			s.Body = []Op{{Kind: isa.EXIT}}
		},
	}
	for name, mutate := range cases {
		s := base
		s.Body = append([]Op(nil), base.Body...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestMixCounts(t *testing.T) {
	img := ByAbbr("IMG")
	alu, sfu, mem := img.MixCounts()
	if alu != 9 || sfu != 2 || mem != 1 {
		t.Fatalf("IMG mix = %d/%d/%d, want 9/2/1", alu, sfu, mem)
	}
}

func TestMaxCTAsZeroResources(t *testing.T) {
	blk := Blackscholes()
	if got := blk.MaxCTAs(0, 0, 0, 8); got != 0 {
		t.Fatalf("MaxCTAs with no resources = %d, want 0", got)
	}
}

func TestStreamDeterministic(t *testing.T) {
	spec := Blackscholes()
	a := NewStream(spec, 1<<40, 3, 1)
	b := NewStream(spec, 1<<40, 3, 1)
	for i := 0; i < 500; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("streams diverged at %d: %v vs %v", i, ia, ib)
		}
	}
}

func TestStreamTerminates(t *testing.T) {
	spec := ByAbbr("DXT")
	st := NewStream(spec, 1<<40, 0, 0)
	n := 0
	for !st.Done() {
		in := st.Next()
		n++
		if n > spec.Iterations*len(spec.Body)+2 {
			t.Fatalf("stream did not terminate after %d instructions", n)
		}
		if st.Done() && in.Kind != isa.EXIT {
			t.Fatalf("final instruction = %v, want EXIT", in.Kind)
		}
	}
	want := spec.Iterations*len(spec.Body) + 1 // body + EXIT
	if n != want {
		t.Fatalf("stream length %d, want %d", n, want)
	}
}

func TestStreamAfterDoneKeepsReturningExit(t *testing.T) {
	spec := ByAbbr("IMG")
	st := NewStream(spec, 1, 0, 0)
	for !st.Done() {
		st.Next()
	}
	if in := st.Next(); in.Kind != isa.EXIT {
		t.Fatalf("post-done Next = %v, want EXIT", in.Kind)
	}
}

func TestStoresHaveNoDest(t *testing.T) {
	for _, spec := range Suite() {
		st := NewStream(spec, 1<<40, 0, 0)
		for i := 0; i < spec.Iterations*len(spec.Body); i++ {
			in := st.Next()
			if in.Kind == isa.STG && in.Dest != isa.NoReg {
				t.Fatalf("%s: store with destination register %d", spec.Abbr, in.Dest)
			}
			if in.Kind == isa.ALU && in.Dest == isa.NoReg {
				t.Fatalf("%s: ALU without destination", spec.Abbr)
			}
		}
	}
}

func TestGlobalAccessesAreLineAligned(t *testing.T) {
	for _, spec := range Suite() {
		st := NewStream(spec, 1<<40, 5, 2)
		for i := 0; i < 2*len(spec.Body); i++ {
			in := st.Next()
			if in.Kind.IsGlobal() && in.Addr%LineBytes != 0 {
				t.Fatalf("%s: unaligned address %#x", spec.Abbr, in.Addr)
			}
			if in.Kind.IsGlobal() && in.Lines == 0 {
				t.Fatalf("%s: global access with 0 lines", spec.Abbr)
			}
		}
	}
}

func TestRegisterIDsWithinSpec(t *testing.T) {
	f := func(cta, warp uint16) bool {
		spec := ByAbbr("MM")
		st := NewStream(spec, 1<<40, int(cta), int(warp)%8)
		bound := int8(spec.RegsPerThread)
		for i := 0; i < 3*len(spec.Body); i++ {
			in := st.Next()
			if in.Dest != isa.NoReg && in.Dest >= bound {
				return false
			}
			for _, s := range in.Src {
				if s != isa.NoReg && s >= bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamPatternFootprints(t *testing.T) {
	// PatReuse addresses stay within a bounded region per CTA.
	spec := ByAbbr("NN")
	st := NewStream(spec, 1<<40, 7, 0)
	stride := spec.ReuseBytes + 3*LineBytes
	regionBase := uint64(1<<40) + 7*stride
	for i := 0; i < 200; i++ {
		in := st.Next()
		if in.Kind == isa.LDG {
			if in.Addr < regionBase || in.Addr >= regionBase+spec.ReuseBytes {
				t.Fatalf("reuse address %#x outside region [%#x,%#x)", in.Addr, regionBase, regionBase+spec.ReuseBytes)
			}
		}
	}
}

func TestDistinctWarpsDistinctStreamAddresses(t *testing.T) {
	spec := ByAbbr("LBM")
	a := NewStream(spec, 1<<40, 0, 0)
	b := NewStream(spec, 1<<40, 0, 1)
	var aAddr, bAddr []uint64
	for i := 0; i < len(spec.Body); i++ {
		ia, ib := a.Next(), b.Next()
		if ia.Kind == isa.LDG {
			aAddr = append(aAddr, ia.Addr)
		}
		if ib.Kind == isa.LDG {
			bAddr = append(bAddr, ib.Addr)
		}
	}
	for _, x := range aAddr {
		for _, y := range bAddr {
			if x == y {
				t.Fatalf("warps 0 and 1 share streaming address %#x", x)
			}
		}
	}
}
