// Package prof is the engine's self-profiler: it answers "where inside
// the cycle loop does wall-clock time go" without perturbing the
// simulation it measures.
//
// The profiler is strictly one-directional. It reads the wall clock and
// accumulates per-phase nanoseconds, but nothing it produces ever feeds
// back into simulator state — runs with and without a profiler attached
// are byte-identical in every counter, CSV and golden output. That is the
// wall-clock half of the two-sided design (the deterministic half, cycle
// classification for fast-forward metering, lives in internal/sm and
// internal/gpu and is part of the determinism contract; see DESIGN.md).
//
// To stay inside the observability overhead budget (BENCH_obs.json,
// 2%), the profiler samples: StartCycle elects one cycle in Period, and
// only elected cycles pay the phase-boundary clock reads. gpu.Step keeps
// a dual path — the unelected path runs the exact pre-profiler hot loop,
// so non-sampled cycles cost nothing beyond the election counter.
//
// This package is the only simulator package allowed to read the wall
// clock; each read site carries a simlint waiver. Phase timers anywhere
// else must route through a *Profiler (the determinism analyzer will
// flag them otherwise — see internal/lint/testdata/determ_timer).
package prof

import "time"

// Phase names one segment of the engine's cycle loop. The segments
// partition a profiled cycle exactly: every nanosecond between StartCycle
// and the cycle's last Mark is charged to exactly one phase, so phase
// shares sum to 100% of measured loop time by construction.
type Phase uint8

const (
	// Issue is warp scheduling and instruction issue (sm.issueFrom).
	Issue Phase = iota
	// Execute is writeback-ring drain and scoreboard release.
	Execute
	// L1 covers the LD/ST line-queue pump, L1 lookups and reply fills.
	L1
	// Icnt is request/reply network drain in the core clock domain.
	Icnt
	// L2 is the per-partition L2 bank access in the memory clock domain.
	L2
	// DRAM is FR-FCFS scheduling, retry drain and completion handling.
	DRAM
	// Controller is dispatcher work: arrivals, Setup/Fill/Tick, target
	// checks.
	Controller
	// ObsDrain is observability publication (registry snapshot + hub). It
	// is a rare phase: the monitor fires on its own cadence (default
	// 1-in-2048, deliberately coprime to the sampling period), so it is
	// timed on every occurrence via RareStart/RareEnd rather than on
	// sampled cycles — the old sampled Mark essentially never coincided
	// with a monitor cycle and reported a constant 0.
	ObsDrain
	// Digest is whole-GPU state-digest recording (internal/digest). Also
	// a rare phase: records land every DigestEvery cycles (default
	// 1-in-1024), off the sampled path.
	Digest

	// NumPhases bounds the phase enum.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"issue", "execute", "l1", "icnt", "l2", "dram", "controller", "obs_drain", "digest",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// DefaultPeriod is the default sampling period in cycles: at ~90 phase
// marks per profiled device cycle (~40ns each on a vDSO clock_gettime),
// sampling ~1-in-37 keeps the added cost around 2% of a ~5µs cycle.
//
// The period is deliberately coprime to the engine's power-of-two
// housekeeping cadences (checkTargets every 64 cycles, Monitor every 2048
// by default): a power-of-two period would alias with them — e.g. at 32,
// half the sampled cycles would include the 1-in-64 target check — and
// systematically inflate the controller/obs phases.
const DefaultPeriod = 37

// Profiler accumulates per-phase wall-clock costs over sampled cycles.
// All methods are nil-safe: a nil *Profiler is "profiling off" and every
// call is a no-op, so call sites need no guards.
type Profiler struct {
	period int64
	base   time.Time

	cycles  int64 // cycles seen by StartCycle
	sampled int64 // cycles elected for phase timing
	active  bool  // current cycle is elected
	last    int64 // ns stamp of the previous phase boundary

	phaseNs [NumPhases]int64

	// rareNs accumulates phases timed on every occurrence rather than on
	// sampled cycles (RareStart/RareEnd): work on its own long cadence —
	// monitor drains, digest records — that a 1-in-period sample would
	// essentially never observe. Folded into Summary as ns-per-total-cycle
	// instead of ns-per-sampled-cycle.
	rareNs [NumPhases]int64
}

// New returns a profiler sampling one cycle in period (<= 0 selects
// DefaultPeriod).
func New(period int64) *Profiler {
	if period <= 0 {
		period = DefaultPeriod
	}
	//simlint:allow determinism -- profiler epoch: wall-clock reads are confined to this package and never feed simulator state
	return &Profiler{period: period, base: time.Now()}
}

// now returns nanoseconds since the profiler's epoch.
func (p *Profiler) now() int64 {
	//simlint:allow determinism -- phase timer read: measurement only, no simulator state depends on it
	return int64(time.Since(p.base))
}

// StartCycle elects whether the coming cycle is profiled and, when it is,
// stamps the cycle's first phase boundary. The caller takes the profiled
// path only on true; on false (including a nil receiver) all Marks until
// the next StartCycle are no-ops.
func (p *Profiler) StartCycle() bool {
	if p == nil {
		return false
	}
	elect := p.cycles%p.period == 0
	p.cycles++
	p.active = elect
	if elect {
		p.sampled++
		//simlint:allow determtaint -- sampled-cycle boundary stamp: feeds phaseNs metering only, never simulator state
		p.last = p.now()
	}
	return elect
}

// Mark closes one phase segment: all wall time since the previous
// boundary (StartCycle or the previous Mark) is charged to ph. Multiple
// Marks against the same phase within a cycle accumulate, so interleaved
// loops (L2/DRAM per partition per memory tick) attribute correctly.
func (p *Profiler) Mark(ph Phase) {
	if p == nil || !p.active {
		return
	}
	//simlint:allow determtaint -- phase boundary stamp: feeds phaseNs metering only, never simulator state
	now := p.now()
	p.phaseNs[ph] += now - p.last
	p.last = now
}

// RareStart opens a rare-phase interval: work that happens every N
// cycles for large N (monitor drains, digest records) and would be
// missed by cycle sampling. It returns the start stamp for RareEnd; a
// nil receiver returns 0 and reads no clock.
func (p *Profiler) RareStart() int64 {
	if p == nil {
		return 0
	}
	//simlint:allow determtaint -- rare-phase start stamp: returned only to RareEnd for host-cost metering
	return p.now()
}

// RareEnd closes a rare-phase interval opened by RareStart, charging the
// elapsed time to ph on every occurrence. When the enclosing cycle is
// also a sampled one, the boundary stamp advances so the rare interval
// is never double-charged into the next sampled phase segment.
func (p *Profiler) RareEnd(ph Phase, start int64) {
	if p == nil {
		return
	}
	//simlint:allow determtaint -- rare-phase end stamp: feeds rareNs metering only, never simulator state
	end := p.now()
	p.rareNs[ph] += end - start
	if p.active {
		p.last = end
	}
}

// Period returns the sampling period in cycles.
func (p *Profiler) Period() int64 {
	if p == nil {
		return 0
	}
	return p.period
}

// PhaseCost is one phase's cost in a Summary.
type PhaseCost struct {
	Phase string `json:"phase"`
	// Ns is the accumulated wall time: over sampled cycles for sampled
	// phases, over every occurrence for rare phases.
	Ns int64 `json:"ns"`
	// NsPerCycle is the phase's estimated cost per simulated cycle:
	// sampled ns / sampled cycles, plus rare ns / total cycles (rare
	// phases are timed on every occurrence, so their amortization
	// denominator is all cycles).
	NsPerCycle float64 `json:"ns_per_cycle"`
	// Share is this phase's fraction of the total estimated per-cycle
	// loop cost.
	Share float64 `json:"share"`
}

// Summary is the exported profile view (/profile JSON, figengineprof
// rows, BENCH_obs.json phase entries).
type Summary struct {
	Period  int64 `json:"period"`
	Cycles  int64 `json:"cycles"`
	Sampled int64 `json:"sampled_cycles"`
	// TotalNs sums all phases (sampled and rare accumulators both);
	// NsPerCycle is the estimated full-loop cost per cycle: sampled ns /
	// Sampled plus rare ns / Cycles. With no rare time it reduces exactly
	// to TotalNs / Sampled.
	TotalNs    int64       `json:"total_ns"`
	NsPerCycle float64     `json:"ns_per_cycle"`
	Phases     []PhaseCost `json:"phases"`
}

// Summary renders the profiler's current accumulators. Nil receivers
// return a zero Summary.
func (p *Profiler) Summary() Summary {
	if p == nil {
		return Summary{}
	}
	s := Summary{Period: p.period, Cycles: p.cycles, Sampled: p.sampled}
	var sampledNs, rareNs int64
	for ph := Phase(0); ph < NumPhases; ph++ {
		sampledNs += p.phaseNs[ph]
		rareNs += p.rareNs[ph]
	}
	s.TotalNs = sampledNs + rareNs
	if p.sampled > 0 {
		s.NsPerCycle = float64(sampledNs) / float64(p.sampled)
	}
	if rareNs > 0 && p.cycles > 0 {
		s.NsPerCycle += float64(rareNs) / float64(p.cycles)
	}
	s.Phases = make([]PhaseCost, 0, NumPhases)
	for ph := Phase(0); ph < NumPhases; ph++ {
		pc := PhaseCost{Phase: ph.String(), Ns: p.phaseNs[ph] + p.rareNs[ph]}
		if p.sampled > 0 {
			pc.NsPerCycle = float64(p.phaseNs[ph]) / float64(p.sampled)
		}
		if p.rareNs[ph] > 0 && p.cycles > 0 {
			pc.NsPerCycle += float64(p.rareNs[ph]) / float64(p.cycles)
		}
		if s.NsPerCycle > 0 {
			pc.Share = pc.NsPerCycle / s.NsPerCycle
		}
		s.Phases = append(s.Phases, pc)
	}
	return s
}
