// Package prof is the engine's self-profiler: it answers "where inside
// the cycle loop does wall-clock time go" without perturbing the
// simulation it measures.
//
// The profiler is strictly one-directional. It reads the wall clock and
// accumulates per-phase nanoseconds, but nothing it produces ever feeds
// back into simulator state — runs with and without a profiler attached
// are byte-identical in every counter, CSV and golden output. That is the
// wall-clock half of the two-sided design (the deterministic half, cycle
// classification for fast-forward metering, lives in internal/sm and
// internal/gpu and is part of the determinism contract; see DESIGN.md).
//
// To stay inside the observability overhead budget (BENCH_obs.json,
// 2%), the profiler samples: StartCycle elects one cycle in Period, and
// only elected cycles pay the phase-boundary clock reads. gpu.Step keeps
// a dual path — the unelected path runs the exact pre-profiler hot loop,
// so non-sampled cycles cost nothing beyond the election counter.
//
// This package is the only simulator package allowed to read the wall
// clock; each read site carries a simlint waiver. Phase timers anywhere
// else must route through a *Profiler (the determinism analyzer will
// flag them otherwise — see internal/lint/testdata/determ_timer).
package prof

import "time"

// Phase names one segment of the engine's cycle loop. The segments
// partition a profiled cycle exactly: every nanosecond between StartCycle
// and the cycle's last Mark is charged to exactly one phase, so phase
// shares sum to 100% of measured loop time by construction.
type Phase uint8

const (
	// Issue is warp scheduling and instruction issue (sm.issueFrom).
	Issue Phase = iota
	// Execute is writeback-ring drain and scoreboard release.
	Execute
	// L1 covers the LD/ST line-queue pump, L1 lookups and reply fills.
	L1
	// Icnt is request/reply network drain in the core clock domain.
	Icnt
	// L2 is the per-partition L2 bank access in the memory clock domain.
	L2
	// DRAM is FR-FCFS scheduling, retry drain and completion handling.
	DRAM
	// Controller is dispatcher work: arrivals, Setup/Fill/Tick, target
	// checks.
	Controller
	// ObsDrain is observability publication (registry snapshot + hub).
	ObsDrain

	// NumPhases bounds the phase enum.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"issue", "execute", "l1", "icnt", "l2", "dram", "controller", "obs_drain",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// DefaultPeriod is the default sampling period in cycles: at ~90 phase
// marks per profiled device cycle (~40ns each on a vDSO clock_gettime),
// sampling ~1-in-37 keeps the added cost around 2% of a ~5µs cycle.
//
// The period is deliberately coprime to the engine's power-of-two
// housekeeping cadences (checkTargets every 64 cycles, Monitor every 2048
// by default): a power-of-two period would alias with them — e.g. at 32,
// half the sampled cycles would include the 1-in-64 target check — and
// systematically inflate the controller/obs phases.
const DefaultPeriod = 37

// Profiler accumulates per-phase wall-clock costs over sampled cycles.
// All methods are nil-safe: a nil *Profiler is "profiling off" and every
// call is a no-op, so call sites need no guards.
type Profiler struct {
	period int64
	base   time.Time

	cycles  int64 // cycles seen by StartCycle
	sampled int64 // cycles elected for phase timing
	active  bool  // current cycle is elected
	last    int64 // ns stamp of the previous phase boundary

	phaseNs [NumPhases]int64
}

// New returns a profiler sampling one cycle in period (<= 0 selects
// DefaultPeriod).
func New(period int64) *Profiler {
	if period <= 0 {
		period = DefaultPeriod
	}
	//simlint:allow determinism -- profiler epoch: wall-clock reads are confined to this package and never feed simulator state
	return &Profiler{period: period, base: time.Now()}
}

// now returns nanoseconds since the profiler's epoch.
func (p *Profiler) now() int64 {
	//simlint:allow determinism -- phase timer read: measurement only, no simulator state depends on it
	return int64(time.Since(p.base))
}

// StartCycle elects whether the coming cycle is profiled and, when it is,
// stamps the cycle's first phase boundary. The caller takes the profiled
// path only on true; on false (including a nil receiver) all Marks until
// the next StartCycle are no-ops.
func (p *Profiler) StartCycle() bool {
	if p == nil {
		return false
	}
	elect := p.cycles%p.period == 0
	p.cycles++
	p.active = elect
	if elect {
		p.sampled++
		p.last = p.now()
	}
	return elect
}

// Mark closes one phase segment: all wall time since the previous
// boundary (StartCycle or the previous Mark) is charged to ph. Multiple
// Marks against the same phase within a cycle accumulate, so interleaved
// loops (L2/DRAM per partition per memory tick) attribute correctly.
func (p *Profiler) Mark(ph Phase) {
	if p == nil || !p.active {
		return
	}
	now := p.now()
	p.phaseNs[ph] += now - p.last
	p.last = now
}

// Period returns the sampling period in cycles.
func (p *Profiler) Period() int64 {
	if p == nil {
		return 0
	}
	return p.period
}

// PhaseCost is one phase's cost in a Summary.
type PhaseCost struct {
	Phase string `json:"phase"`
	// Ns is the accumulated wall time over all sampled cycles.
	Ns int64 `json:"ns"`
	// NsPerCycle is Ns / sampled cycles (the phase's estimated cost per
	// simulated cycle).
	NsPerCycle float64 `json:"ns_per_cycle"`
	// Share is this phase's fraction of the total measured loop time.
	Share float64 `json:"share"`
}

// Summary is the exported profile view (/profile JSON, figengineprof
// rows, BENCH_obs.json phase entries).
type Summary struct {
	Period  int64 `json:"period"`
	Cycles  int64 `json:"cycles"`
	Sampled int64 `json:"sampled_cycles"`
	// TotalNs sums all phases over the sampled cycles; NsPerCycle is
	// TotalNs / Sampled, the estimated full-loop cost per cycle.
	TotalNs    int64       `json:"total_ns"`
	NsPerCycle float64     `json:"ns_per_cycle"`
	Phases     []PhaseCost `json:"phases"`
}

// Summary renders the profiler's current accumulators. Nil receivers
// return a zero Summary.
func (p *Profiler) Summary() Summary {
	if p == nil {
		return Summary{}
	}
	s := Summary{Period: p.period, Cycles: p.cycles, Sampled: p.sampled}
	for _, ns := range p.phaseNs {
		s.TotalNs += ns
	}
	if p.sampled > 0 {
		s.NsPerCycle = float64(s.TotalNs) / float64(p.sampled)
	}
	s.Phases = make([]PhaseCost, 0, NumPhases)
	for ph := Phase(0); ph < NumPhases; ph++ {
		pc := PhaseCost{Phase: ph.String(), Ns: p.phaseNs[ph]}
		if p.sampled > 0 {
			pc.NsPerCycle = float64(pc.Ns) / float64(p.sampled)
		}
		if s.TotalNs > 0 {
			pc.Share = float64(pc.Ns) / float64(s.TotalNs)
		}
		s.Phases = append(s.Phases, pc)
	}
	return s
}
