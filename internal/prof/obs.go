package prof

import "warpedslicer/internal/obs"

// Register wires the profiler into the registry: monotonic per-phase
// nanosecond counters (ws_prof_phase_ns{phase=...}) plus the election
// counters that turn them into per-cycle costs. Like every registry
// source this is pull-based; the series exist only on runs that attach a
// profiler, so golden outputs of unprofiled runs are untouched.
func (p *Profiler) Register(r *obs.Registry) {
	if p == nil {
		return
	}
	r.Collector(func(emit obs.Emit) {
		emit("ws_prof_cycles_total", obs.Counter, float64(p.cycles))
		emit("ws_prof_sampled_cycles_total", obs.Counter, float64(p.sampled))
		emit("ws_prof_period", obs.Gauge, float64(p.period))
		for ph := Phase(0); ph < NumPhases; ph++ {
			emit(obs.Label("ws_prof_phase_ns", "phase", ph.String()),
				obs.Counter, float64(p.phaseNs[ph]+p.rareNs[ph]))
		}
	})
}
