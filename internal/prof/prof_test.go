package prof

import (
	"testing"

	"warpedslicer/internal/obs"
)

// TestNilProfilerIsOff pins the nil-safety contract every call site
// relies on: a nil *Profiler elects nothing, marks nothing, and renders
// a zero summary, so the hot loop needs no guards.
func TestNilProfilerIsOff(t *testing.T) {
	var p *Profiler
	if p.StartCycle() {
		t.Error("nil profiler elected a cycle")
	}
	p.Mark(Issue) // must not panic
	if p.Period() != 0 {
		t.Errorf("nil Period = %d, want 0", p.Period())
	}
	if s := p.Summary(); s.Cycles != 0 || s.TotalNs != 0 || s.Phases != nil {
		t.Errorf("nil Summary = %+v, want zero", s)
	}
	p.Register(nil) // must not panic
}

// TestElectionCadence pins the 1-in-period sampling: exactly
// ceil(cycles/period) elections, starting with the first cycle.
func TestElectionCadence(t *testing.T) {
	p := New(5)
	elected := 0
	for c := 0; c < 23; c++ {
		on := p.StartCycle()
		if on {
			elected++
			p.Mark(Issue)
		}
		if want := c%5 == 0; on != want {
			t.Errorf("cycle %d: elected = %v, want %v", c, on, want)
		}
	}
	if elected != 5 {
		t.Errorf("elected %d of 23 cycles at period 5, want 5", elected)
	}
	s := p.Summary()
	if s.Cycles != 23 || s.Sampled != 5 {
		t.Errorf("summary cycles/sampled = %d/%d, want 23/5", s.Cycles, s.Sampled)
	}
}

// TestDefaultPeriodCoprime guards the anti-aliasing property the default
// period exists for: it must not share a factor with the engine's
// power-of-two housekeeping cadences, or sampled cycles would include
// the 1-in-64 controller work at a systematically wrong rate.
func TestDefaultPeriodCoprime(t *testing.T) {
	if DefaultPeriod%2 == 0 {
		t.Fatalf("DefaultPeriod = %d is even: it aliases with the %%64 and %%2048 engine cadences", DefaultPeriod)
	}
}

// TestSharesTelescope pins the partition property: marks telescope from
// the StartCycle stamp, so phase shares sum to exactly 1 and TotalNs
// never double-counts an interval, even when one phase is marked twice
// in a cycle (the per-partition L2/DRAM loop does this).
func TestSharesTelescope(t *testing.T) {
	p := New(1)
	for c := 0; c < 100; c++ {
		if !p.StartCycle() {
			t.Fatal("period-1 profiler skipped a cycle")
		}
		p.Mark(Issue)
		p.Mark(L2)
		p.Mark(DRAM)
		p.Mark(L2) // second visit accumulates, not overwrites
		p.Mark(Controller)
	}
	s := p.Summary()
	if s.TotalNs <= 0 {
		t.Fatal("no time accumulated over 100 profiled cycles")
	}
	var shares float64
	var ns int64
	for _, pc := range s.Phases {
		shares += pc.Share
		ns += pc.Ns
	}
	if shares < 0.999999 || shares > 1.000001 {
		t.Errorf("phase shares sum to %v, want 1", shares)
	}
	if ns != s.TotalNs {
		t.Errorf("phase ns sum %d != TotalNs %d", ns, s.TotalNs)
	}
	if s.NsPerCycle != float64(s.TotalNs)/float64(s.Sampled) {
		t.Errorf("NsPerCycle = %v, want TotalNs/Sampled = %v",
			s.NsPerCycle, float64(s.TotalNs)/float64(s.Sampled))
	}
}

// TestRarePhaseAccounting pins the rare-phase path (obs_drain, digest):
// intervals timed via RareStart/RareEnd accumulate on every occurrence —
// even on cycles the sampler did not elect — and fold into the summary
// amortized over ALL cycles, with shares still summing to 1 alongside
// the sampled phases.
func TestRarePhaseAccounting(t *testing.T) {
	p := New(7)
	var sink uint64
	for c := 0; c < 70; c++ {
		on := p.StartCycle()
		if on {
			p.Mark(Issue)
		}
		// Rare work every 10 cycles, mostly on non-elected cycles (7 and
		// 10 are coprime, like the real monitor/profiler cadences).
		if c%10 == 0 {
			t0 := p.RareStart()
			for i := uint64(0); i < 20000; i++ {
				sink += i * i
			}
			p.RareEnd(ObsDrain, t0)
		}
	}
	if sink == 0 {
		t.Fatal("busywork optimized away")
	}
	s := p.Summary()
	var obsDrain, issue PhaseCost
	for _, pc := range s.Phases {
		switch pc.Phase {
		case "obs_drain":
			obsDrain = pc
		case "issue":
			issue = pc
		}
	}
	if obsDrain.Ns <= 0 {
		t.Fatal("rare phase accumulated no time despite 7 occurrences")
	}
	if issue.Ns <= 0 {
		t.Fatal("sampled phase accumulated no time")
	}
	// Rare phases amortize over all cycles, not sampled ones.
	if want := float64(obsDrain.Ns) / float64(s.Cycles); obsDrain.NsPerCycle != want {
		t.Errorf("rare NsPerCycle = %v, want Ns/Cycles = %v", obsDrain.NsPerCycle, want)
	}
	var shares, nspc float64
	var ns int64
	for _, pc := range s.Phases {
		shares += pc.Share
		nspc += pc.NsPerCycle
		ns += pc.Ns
	}
	if ns != s.TotalNs {
		t.Errorf("phase ns sum %d != TotalNs %d", ns, s.TotalNs)
	}
	if shares < 0.999999 || shares > 1.000001 {
		t.Errorf("phase shares sum to %v, want 1", shares)
	}
	if diff := nspc - s.NsPerCycle; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("per-phase NsPerCycle sum %v != summary NsPerCycle %v", nspc, s.NsPerCycle)
	}
}

// TestRareEndNilSafe pins nil-safety for the rare-phase API.
func TestRareEndNilSafe(t *testing.T) {
	var p *Profiler
	if got := p.RareStart(); got != 0 {
		t.Errorf("nil RareStart = %d, want 0", got)
	}
	p.RareEnd(ObsDrain, 0) // must not panic
}

// TestRegisterSeries pins the metric surface: cycle/sampled counters, the
// period gauge, and one ws_prof_phase_ns series per phase.
func TestRegisterSeries(t *testing.T) {
	p := New(3)
	for c := 0; c < 9; c++ {
		if p.StartCycle() {
			p.Mark(Issue)
		}
	}
	r := obs.NewRegistry()
	p.Register(r)
	snap := r.Snapshot()
	if got := snap.Get("ws_prof_cycles_total"); got != 9 {
		t.Errorf("ws_prof_cycles_total = %v, want 9", got)
	}
	if got := snap.Get("ws_prof_sampled_cycles_total"); got != 3 {
		t.Errorf("ws_prof_sampled_cycles_total = %v, want 3", got)
	}
	if got := snap.Get("ws_prof_period"); got != 3 {
		t.Errorf("ws_prof_period = %v, want 3", got)
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		key := obs.Label("ws_prof_phase_ns", "phase", ph.String())
		if !snap.Has(key) {
			t.Errorf("missing series ws_prof_phase_ns{phase=%q}", ph)
		}
	}
}
