package experiments

import (
	"fmt"
	"strings"
)

// PaperClaim is one quantitative claim from the paper's evaluation.
type PaperClaim struct {
	ID    string // table/figure reference
	Claim string // what the paper reports
	// Paper is the paper's headline number (ratio/percentage as a ratio).
	Paper float64
	// Measured is this reproduction's number.
	Measured float64
	// Holds records whether the qualitative direction survives (who wins,
	// roughly by how much) — the reproduction target for a simulator
	// substitution.
	Holds bool
	Note  string
}

// Report aggregates the claim comparison.
type Report struct {
	Claims []PaperClaim
}

// BuildReport derives the paper-vs-measured comparison from completed
// experiment results. Only the rows whose inputs are supplied are emitted.
func BuildReport(pairRows, tripleRows []Figure6Row, fair []Figure9Row, energy []EnergyRow) Report {
	var r Report
	add := func(c PaperClaim) { r.Claims = append(r.Claims, c) }

	if len(pairRows) > 0 {
		g := SummarizeFigure6(pairRows)
		add(PaperClaim{
			ID:       "Fig.6 Dynamic",
			Claim:    "Warped-Slicer beats Left-Over by ~23% (gmean, 30 pairs)",
			Paper:    1.23,
			Measured: g.Dynamic,
			Holds:    g.Dynamic > 1.05,
		})
		add(PaperClaim{
			ID:       "Fig.6 vs Even",
			Claim:    "Warped-Slicer beats Even partitioning (~14%)",
			Paper:    1.14,
			Measured: safeDiv(g.Dynamic, g.Even),
			Holds:    g.Dynamic > g.Even,
		})
		add(PaperClaim{
			ID:       "Fig.6 vs Spatial",
			Claim:    "Warped-Slicer beats Spatial multitasking (~17%)",
			Paper:    1.17,
			Measured: safeDiv(g.Dynamic, g.Spatial),
			Holds:    g.Dynamic > g.Spatial,
		})
		if g.Oracle > 0 {
			add(PaperClaim{
				ID:       "Fig.6 Oracle",
				Claim:    "Dynamic is close to the oracle (1.23 vs 1.27)",
				Paper:    1.27,
				Measured: g.Oracle,
				Holds:    g.Oracle >= g.Dynamic && g.Dynamic/g.Oracle > 0.8,
			})
		}
		var loMem, dynMem float64
		for _, c := range Figure7cFrom(pairRows) {
			switch c.Policy {
			case "leftover":
				loMem = c.Mem
			case "dynamic":
				dynMem = c.Mem
			}
		}
		if loMem > 0 {
			add(PaperClaim{
				ID:       "Fig.7c mem stalls",
				Claim:    "Memory stalls dominate sharing and shrink under Warped-Slicer vs Left-Over",
				Paper:    0.90,
				Measured: dynMem,
				Holds:    dynMem <= loMem,
				Note:     fmt.Sprintf("leftover=%.2f dynamic=%.2f", loMem, dynMem),
			})
		}
	}
	if len(tripleRows) > 0 {
		g := SummarizeFigure6(tripleRows)
		add(PaperClaim{
			ID:       "Fig.8 3-kernel",
			Claim:    "With 3 kernels, Dynamic beats Even by ~21%",
			Paper:    1.21,
			Measured: safeDiv(g.Dynamic, g.Even),
			Holds:    g.Dynamic > g.Even,
		})
	}
	for _, f := range fair {
		if f.Policy != "dynamic" {
			continue
		}
		add(PaperClaim{
			ID:       "Fig.9a fairness",
			Claim:    "Minimum speedup improves vs Left-Over (~26%)",
			Paper:    1.26,
			Measured: f.MinSpeedup2,
			Holds:    f.MinSpeedup2 > 1,
		})
	}
	for _, e := range energy {
		if e.Policy != "dynamic" {
			continue
		}
		add(PaperClaim{
			ID:       "§V-G energy",
			Claim:    "Total energy drops ~16% vs Left-Over",
			Paper:    0.84,
			Measured: e.EnergyNorm,
			Holds:    e.EnergyNorm < 1,
		})
		add(PaperClaim{
			ID:       "§V-G dyn power",
			Claim:    "Dynamic power rises slightly (+3.1%)",
			Paper:    1.031,
			Measured: e.DynPowerNorm,
			Holds:    e.DynPowerNorm > 0.95,
		})
	}
	return r
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Format renders the report as a markdown-ish table.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %9s %-6s %s\n", "Experiment", "Paper", "Measured", "Holds", "Claim")
	for _, c := range r.Claims {
		holds := "yes"
		if !c.Holds {
			holds = "NO"
		}
		fmt.Fprintf(&b, "%-18s %8.3f %9.3f %-6s %s\n", c.ID, c.Paper, c.Measured, holds, c.Claim)
	}
	return b.String()
}
