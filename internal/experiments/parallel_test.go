package experiments

import (
	"bytes"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"warpedslicer/internal/digest"
	"warpedslicer/internal/isa"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
)

func TestParallelForCoversEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 100} {
		const n = 61
		counts := make([]atomic.Int64, n)
		parallelFor(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times", workers, i, got)
			}
		}
	}
	parallelFor(4, 0, func(int) { t.Fatal("fn must not run for n=0") })
}

func TestParallelForSerialOrder(t *testing.T) {
	// workers <= 1 must degenerate to a plain loop in index order, so a
	// serial session is exactly the pre-parallelism harness.
	var order []int
	parallelFor(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestParallelForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	parallelFor(4, 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
	t.Fatal("parallelFor returned instead of panicking")
}

func TestOptionsValidate(t *testing.T) {
	if err := Quick().Validate(); err != nil {
		t.Fatalf("Quick options invalid: %v", err)
	}
	break1 := func(mut func(*Options)) Options {
		o := Quick()
		mut(&o)
		return o
	}
	bad := map[string]Options{
		"IsolationCycles=0":  break1(func(o *Options) { o.IsolationCycles = 0 }),
		"MaxCoRunCycles=-1":  break1(func(o *Options) { o.MaxCoRunCycles = -1 }),
		"Sample=0":           break1(func(o *Options) { o.Sample = 0 }),
		"Warmup=-1":          break1(func(o *Options) { o.Warmup = -1 }),
		"AlgDelay=-1":        break1(func(o *Options) { o.AlgDelay = -1 }),
		"OracleTargetFrac=0": break1(func(o *Options) { o.OracleTargetFrac = 0 }),
		"OracleTargetFrac>1": break1(func(o *Options) { o.OracleTargetFrac = 1.5 }),
		"PublishEvery=-1":    break1(func(o *Options) { o.PublishEvery = -1 }),
		"Parallelism=-2":     break1(func(o *Options) { o.Parallelism = -2 }),
		"ProfPeriod=-1":      break1(func(o *Options) { o.ProfPeriod = -1 }),
		"DigestEvery=-1":     break1(func(o *Options) { o.DigestEvery = -1 }),
	}
	for name, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted degenerate options", name)
		}
	}
}

func TestNewSessionPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSession accepted IsolationCycles=0")
		}
	}()
	o := Quick()
	o.IsolationCycles = 0
	NewSession(o)
}

// TestRunFixedCyclesNonPositiveWindow is the regression test for the NaN
// CSV rows: a zero-cycle window used to divide instruction counts by zero.
func TestRunFixedCyclesNonPositiveWindow(t *testing.T) {
	s := NewSession(Quick())
	specs := []*kernels.Spec{kernels.ByAbbr("IMG")}
	for _, cycles := range []int64{0, -5} {
		r := s.RunFixedCycles(specs, "even", nil, cycles)
		if math.IsNaN(r.IPC) || r.IPC != 0 {
			t.Fatalf("cycles=%d: IPC = %v, want 0", cycles, r.IPC)
		}
		for i, ipc := range r.PerKernelIPC {
			if math.IsNaN(ipc) || ipc != 0 {
				t.Fatalf("cycles=%d: PerKernelIPC[%d] = %v, want 0", cycles, i, ipc)
			}
		}
	}
}

// TestOracleReportsSpatialChoice is the regression test for the oracle's
// ChoseSpatial flag: with no feasible intra-SM combination the search must
// pick spatial multitasking and say so (Partition nil is no longer the only
// signal, since "no oracle run" also leaves it nil).
func TestOracleReportsSpatialChoice(t *testing.T) {
	// Two kernels that each fit an SM alone but never together: one CTA
	// claims 48*512 = 24576 of the 32768 registers.
	mk := func(name, abbr string) *kernels.Spec {
		sp := &kernels.Spec{
			Name: name, Abbr: abbr,
			GridDim: 256, BlockDim: 512,
			RegsPerThread: 48,
			Body: []kernels.Op{
				{Kind: isa.ALU},
				{Kind: isa.ALU, DependsPrev: true},
			},
			Iterations: 1 << 20,
			Class:      kernels.Compute,
		}
		if err := sp.Validate(); err != nil {
			t.Fatal(err)
		}
		return sp
	}
	o := Quick()
	o.Events = obs.NewEventLog()
	s := NewSession(o)
	specs := []*kernels.Spec{mk("Fat A", "FTA"), mk("Fat B", "FTB")}
	if combos := s.feasibleCombos(specs); len(combos) != 0 {
		t.Fatalf("feasibleCombos = %v, want none", combos)
	}

	or := s.Oracle(specs)
	if !or.ChoseSpatial {
		t.Fatal("oracle picked spatial multitasking but ChoseSpatial is false")
	}
	if or.Partition != nil {
		t.Fatalf("spatial oracle winner has Partition %v", or.Partition)
	}
	if or.Policy != "oracle" {
		t.Fatalf("oracle result policy = %q", or.Policy)
	}

	// The CSV layer must render the choice, not an empty cell.
	rows := []Figure6Row{
		{Workload: "FTA_FTB", Category: "synthetic", OracleChoseSpatial: or.ChoseSpatial, OraclePartition: or.Partition},
		{Workload: "NO_ORACLE", Category: "synthetic"},
	}
	var buf bytes.Buffer
	if err := WriteFigure6CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !bytes.HasSuffix(lines[1], []byte(",spatial")) {
		t.Fatalf("oracle-spatial row = %s, want trailing ,spatial", lines[1])
	}
	if !bytes.HasSuffix(lines[2], []byte(",")) || bytes.HasSuffix(lines[2], []byte(",spatial")) {
		t.Fatalf("no-oracle row = %s, want empty oracle_partition", lines[2])
	}
}

// TestIsolationSingleflight proves the cache collapses concurrent requests
// for one kernel into a single run: N goroutines racing on a cold cache
// must produce exactly one isolation_done event and identical results.
func TestIsolationSingleflight(t *testing.T) {
	o := Quick()
	o.Events = obs.NewEventLog()
	o.Parallelism = 8
	s := NewSession(o)
	spec := kernels.ByAbbr("IMG")

	const callers = 8
	results := make([]Isolation, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Isolation(spec)
		}(i)
	}
	wg.Wait()

	if got := len(o.Events.Filter(obs.EvIsolationDone)); got != 1 {
		t.Fatalf("isolation ran %d times under concurrent callers, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i].Insts != results[0].Insts {
			t.Fatalf("caller %d saw %d insts, caller 0 saw %d", i, results[i].Insts, results[0].Insts)
		}
	}
}

// TestParallelMatchesSerial is the tentpole's determinism guarantee: a
// parallel session's Figure 6 CSV and per-run event trails are identical to
// a serial session's — only the interleaving across runs may differ.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full two-pair policy sweep twice")
	}
	run := func(workers int) ([]byte, *obs.EventLog) {
		o := Quick()
		o.Parallelism = workers
		o.Events = obs.NewEventLog()
		s := NewSession(o)
		rows := Figure6From(s, Pairs()[:2], true)
		var buf bytes.Buffer
		if err := WriteFigure6CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), o.Events
	}
	serialCSV, serialLog := run(1)
	parallelCSV, parallelLog := run(4)

	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Fatalf("parallel CSV differs from serial:\nserial:\n%s\nparallel:\n%s", serialCSV, parallelCSV)
	}

	sRuns, pRuns := serialLog.Runs(), parallelLog.Runs()
	if len(sRuns) == 0 {
		t.Fatal("serial session emitted no run-scoped events")
	}
	if !equalStrings(sRuns, pRuns) {
		t.Fatalf("run-scope sets differ:\nserial:   %v\nparallel: %v", sRuns, pRuns)
	}

	// Sharper than the old per-run event-trail walk: record the same
	// dynamic-policy co-run's chained state-digest trail through a serial
	// and a parallel session and bisect. Any nondeterminism names its
	// first cycle and component instead of surfacing as mismatched
	// end-of-run counters.
	trail := func(workers int) *digest.Trail {
		o := Quick()
		o.Parallelism = workers
		return NewSession(o).DigestTrail(Pairs()[0].Specs, "dynamic", nil, 256)
	}
	serialTrail, parallelTrail := trail(1), trail(4)
	if len(serialTrail.Records) == 0 {
		t.Fatal("serial digest trail is empty")
	}
	if d, ok := digest.Compare(serialTrail.Records, parallelTrail.Records); ok {
		t.Fatalf("parallel session diverges from serial: %s", d)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
