package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/metrics"
)

// Figure8 runs the 15 three-kernel workloads under Spatial, Even and
// Dynamic, normalized to Left-Over (oracle search over 3-kernel spaces is
// optional; the paper's Figure 8 omits it too).
func Figure8(s *Session) []Figure6Row {
	return runWorkloads(s, Triples(), false)
}

// FormatFigure8 renders the three-kernel results.
func FormatFigure8(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %8s %8s %8s  %s\n",
		"Workload", "LO(IPC)", "Spatial", "Even", "Dynamic", "Dyn partition")
	for _, r := range rows {
		part := "spatial"
		if !r.ChoseSpatial && r.Partition != nil {
			part = fmt.Sprint(r.Partition)
		}
		fmt.Fprintf(&b, "%-16s %9.1f %8.2f %8.2f %8.2f  %s\n",
			r.Workload, r.LeftOverIPC, r.Spatial, r.Even, r.Dynamic, part)
	}
	g := SummarizeFigure6(rows)
	fmt.Fprintf(&b, "%-16s %9s %8.2f %8.2f %8.2f\n", "GMEAN", "", g.Spatial, g.Even, g.Dynamic)
	return b.String()
}

// Figure9Row reports the fairness metrics for one policy (Figure 9):
// minimum speedup (normalized to Left-Over's) and average normalized
// turnaround time.
type Figure9Row struct {
	Policy string
	// MinSpeedup2/3: fairness for 2- and 3-kernel workloads, normalized
	// to the Left-Over policy's fairness.
	MinSpeedup2, MinSpeedup3 float64
	// ANTT2/3: absolute average normalized turnaround times.
	ANTT2, ANTT3 float64
}

// fairness computes per-run speedups vs isolation.
func (s *Session) fairness(r CoRun) []float64 {
	sp := make([]float64, len(r.Specs))
	for i, spec := range r.Specs {
		iso := s.Isolation(spec)
		if iso.IPC > 0 {
			sp[i] = r.PerKernelIPC[i] / iso.IPC
		}
	}
	return sp
}

// Figure9 computes fairness metrics from prior pair and triple runs.
func Figure9(s *Session, pairRows, tripleRows []Figure6Row) []Figure9Row {
	policies := []string{"leftover", "spatial", "even", "dynamic"}

	metric := func(rows []Figure6Row, p string) (minSp, antt float64) {
		var ms, at []float64
		for _, row := range rows {
			r, ok := row.Runs[p]
			if !ok {
				continue
			}
			sp := s.fairness(r)
			ms = append(ms, metrics.MinSpeedup(sp))
			at = append(at, metrics.ANTT(sp))
		}
		return metrics.Mean(ms), metrics.Mean(at)
	}

	base2, _ := metric(pairRows, "leftover")
	base3, _ := metric(tripleRows, "leftover")

	var out []Figure9Row
	for _, p := range policies {
		m2, a2 := metric(pairRows, p)
		m3, a3 := metric(tripleRows, p)
		row := Figure9Row{Policy: p, ANTT2: a2, ANTT3: a3}
		if base2 > 0 {
			row.MinSpeedup2 = m2 / base2
		}
		if base3 > 0 {
			row.MinSpeedup3 = m3 / base3
		}
		out = append(out, row)
	}
	return out
}

// FormatFigure9 renders the fairness table.
func FormatFigure9(rows []Figure9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %8s %8s\n", "Policy", "Fair(2K)", "Fair(3K)", "ANTT2", "ANTT3")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.2f %12.2f %8.2f %8.2f\n",
			r.Policy, r.MinSpeedup2, r.MinSpeedup3, r.ANTT2, r.ANTT3)
	}
	return b.String()
}
