package experiments

import (
	"bytes"
	"math"
	"testing"

	"warpedslicer/internal/span"
)

// decompWorkloads is the subset the decomposition tests run: the first
// Compute+Memory pair (interference must show there) plus the first pair
// overall, deduplicated.
func decompWorkloads(t *testing.T) []Workload {
	t.Helper()
	ws := []Workload{Pairs()[0]}
	for _, w := range Pairs() {
		if w.Category == "Compute+Memory" {
			if w.Name() != ws[0].Name() {
				ws = append(ws, w)
			}
			break
		}
	}
	if len(ws) < 2 {
		t.Fatal("no Compute+Memory pair in Pairs()")
	}
	return ws
}

// TestMemDecompConservation pins the CSV-facing face of the span
// conservation invariant: in every alone and shared row, the stage
// columns partition end_to_end; delta rows difference the two exactly.
func TestMemDecompConservation(t *testing.T) {
	s := quickSession(t)
	ws := decompWorkloads(t)
	rows := FigMemDecomp(s, ws)
	// Per workload: 2 kernels x {alone, shared, delta}.
	if want := len(ws) * 2 * 3; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	byMode := map[string][]MemDecompRow{}
	for _, r := range rows {
		byMode[r.Mode] = append(byMode[r.Mode], r)
		if r.Mode == "delta" {
			continue
		}
		if r.Spans == 0 {
			t.Errorf("%s/%s/%s traced no spans; sampling period too sparse for the suite windows",
				r.Workload, r.Kernel, r.Mode)
			continue
		}
		var sum float64
		for st := span.Stage(0); st < span.NumStages; st++ {
			if r.Stage[st] < 0 {
				t.Errorf("%s/%s/%s: stage %s mean %v negative", r.Workload, r.Kernel, r.Mode, st, r.Stage[st])
			}
			sum += r.Stage[st]
		}
		// Both sides are integer totals over the same count, so they agree
		// to float summation error, not model error.
		if diff := math.Abs(sum - r.EndToEnd); diff > 1e-6*r.EndToEnd {
			t.Errorf("%s/%s/%s: stage sum %v != end_to_end %v", r.Workload, r.Kernel, r.Mode, sum, r.EndToEnd)
		}
	}
	for _, mode := range []string{"alone", "shared", "delta"} {
		if len(byMode[mode]) != len(ws)*2 {
			t.Fatalf("mode %s has %d rows, want %d", mode, len(byMode[mode]), len(ws)*2)
		}
	}
	// Delta rows are exactly shared minus alone, column-wise.
	for i := 0; i+2 < len(rows); i += 3 {
		alone, shared, delta := rows[i], rows[i+1], rows[i+2]
		if alone.Mode != "alone" || shared.Mode != "shared" || delta.Mode != "delta" {
			t.Fatalf("row triplet at %d has modes %s/%s/%s", i, alone.Mode, shared.Mode, delta.Mode)
		}
		if d := delta.EndToEnd - (shared.EndToEnd - alone.EndToEnd); math.Abs(d) > 1e-9 {
			t.Errorf("%s/%s delta end_to_end off by %v", delta.Workload, delta.Kernel, d)
		}
		for st := span.Stage(0); st < span.NumStages; st++ {
			if d := delta.Stage[st] - (shared.Stage[st] - alone.Stage[st]); math.Abs(d) > 1e-9 {
				t.Errorf("%s/%s delta %s off by %v", delta.Workload, delta.Kernel, st, d)
			}
		}
	}
}

// TestMemDecompInterferenceVisible checks the experiment's raison d'être:
// sharing the GPU with a co-runner adds traced latency somewhere in the
// hierarchy for the memory-intensive pairing — the delta rows localize
// interference the end-to-end histograms can only total.
func TestMemDecompInterferenceVisible(t *testing.T) {
	s := quickSession(t)
	ws := decompWorkloads(t)
	rows := FigMemDecomp(s, ws)
	var found bool
	for _, r := range rows {
		if r.Mode == "delta" && r.EndToEnd > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no delta row shows added shared-mode latency across %d workloads:\n%s",
			len(ws), FormatMemDecomp(rows))
	}
}

// TestMemDecompCSVDeterministic is the span-pipeline determinism
// contract end to end: a serial session and a maximally parallel session
// must render byte-identical CSV, sampled spans included.
func TestMemDecompCSVDeterministic(t *testing.T) {
	ws := decompWorkloads(t)
	render := func(parallelism int) []byte {
		o := Quick()
		o.Parallelism = parallelism
		var buf bytes.Buffer
		if err := WriteMemDecompCSV(&buf, FigMemDecomp(NewSession(o), ws)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("CSV differs between -parallel 1 and -parallel 4.\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("empty CSV")
	}
}

// TestMemDecompCSVShape sanity-checks the header and one data row.
func TestMemDecompCSVShape(t *testing.T) {
	s := quickSession(t)
	rows := FigMemDecomp(s, decompWorkloads(t)[:1])
	var buf bytes.Buffer
	if err := WriteMemDecompCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 1+len(rows) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(rows))
	}
	wantCols := 8 + int(span.NumStages) + 3
	for i, ln := range lines {
		if got := bytes.Count(ln, []byte(",")) + 1; got != wantCols {
			t.Fatalf("line %d has %d columns, want %d: %s", i, got, wantCols, ln)
		}
	}
	if !bytes.HasPrefix(lines[0], []byte("workload,category,kernel,slot,mode,policy,spans,end_to_end,icnt_req")) {
		t.Fatalf("unexpected header: %s", lines[0])
	}
	if FormatMemDecomp(rows) == "" {
		t.Fatal("empty format")
	}
}
