package experiments

import (
	"testing"

	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
)

// TestSessionEmitsRunEvents checks the structured run log replaces the old
// printf progress plumbing: every isolation and co-run lands a summary
// event, and the dynamic policy's decision trail is threaded through.
func TestSessionEmitsRunEvents(t *testing.T) {
	o := Quick()
	o.Events = obs.NewEventLog()
	s := NewSession(o)
	specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}

	r := s.CoRun(specs, "dynamic")

	iso := o.Events.Filter(obs.EvIsolationDone)
	if len(iso) != 2 {
		t.Fatalf("isolation_done events = %d, want 2", len(iso))
	}
	names := map[any]bool{iso[0].Data["kernel"]: true, iso[1].Data["kernel"]: true}
	if !names["IMG"] || !names["BLK"] {
		t.Fatalf("isolation_done kernels = %v", names)
	}
	// Cached isolations must not re-emit.
	s.Isolation(specs[0])
	if got := len(o.Events.Filter(obs.EvIsolationDone)); got != 2 {
		t.Fatalf("cached isolation re-emitted: %d events", got)
	}

	done, ok := o.Events.First(obs.EvCoRunDone)
	if !ok {
		t.Fatal("no corun_done event")
	}
	if done.Data["policy"] != "dynamic" || done.Data["workload"] != "IMG_BLK" {
		t.Fatalf("corun_done data = %v", done.Data)
	}
	if c, _ := done.Data["cycles"].(int64); c != r.Cycles {
		t.Fatalf("corun_done cycles = %v, want %d", done.Data["cycles"], r.Cycles)
	}

	// The dynamic controller's decision trail rides the same log.
	if _, ok := o.Events.First(obs.EvDecision); !ok {
		t.Fatal("dynamic co-run logged no controller decision")
	}
	if _, ok := o.Events.First(obs.EvKernelDone); !ok {
		t.Fatal("no kernel_done lifecycle events from the instrumented GPU")
	}
}

// TestSessionEventsRunScoped checks that every event a session emits into
// the shared log carries its run's scope tag, so concurrent runs' trails
// stay attributable.
func TestSessionEventsRunScoped(t *testing.T) {
	o := Quick()
	o.Events = obs.NewEventLog()
	s := NewSession(o)
	specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}

	s.CoRun(specs, "dynamic")

	for _, ev := range o.Events.Filter(obs.EvIsolationDone) {
		want := "iso/" + ev.Data["kernel"].(string)
		if ev.Run != want {
			t.Fatalf("isolation_done run = %q, want %q", ev.Run, want)
		}
	}
	done, _ := o.Events.First(obs.EvCoRunDone)
	if done.Run != "corun/dynamic/IMG_BLK" {
		t.Fatalf("corun_done run = %q", done.Run)
	}
	// The controller's decision trail and the GPU's lifecycle events ride
	// the same scope as the co-run that produced them.
	for _, kind := range []string{obs.EvDecision, obs.EvKernelDone} {
		ev, ok := o.Events.First(kind)
		if !ok {
			t.Fatalf("no %s event", kind)
		}
		if ev.Run != "corun/dynamic/IMG_BLK" {
			t.Fatalf("%s run = %q, want corun/dynamic/IMG_BLK", kind, ev.Run)
		}
	}
	// No event may escape unscoped: every simulation runs under WithRun.
	for _, ev := range o.Events.Events() {
		if ev.Run == "" {
			t.Fatalf("unscoped event: %+v", ev)
		}
	}
}

// TestSessionHubPublishesSnapshots checks the Hub wiring: a session with a
// hub publishes registry snapshots while runs execute.
func TestSessionHubPublishesSnapshots(t *testing.T) {
	o := Quick()
	o.Hub = obs.NewHub(nil)
	o.PublishEvery = 1024
	s := NewSession(o)

	s.Isolation(kernels.ByAbbr("IMG"))

	snap := o.Hub.Snapshot()
	if snap == nil {
		t.Fatal("hub never received a snapshot")
	}
	if snap.Get("ws_gpu_cycle") <= 0 {
		t.Fatal("published snapshot has no cycle counter")
	}
	if snap.Get(obs.Label("ws_kernel_thread_insts_total", "kernel", "0")) <= 0 {
		t.Fatal("published snapshot has no kernel instruction counter")
	}
}
