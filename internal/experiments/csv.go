package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteTable2CSV exports Table II rows.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "insts", "reg_pct", "shm_pct", "alu_pct", "sfu_pct", "ls_pct",
		"griddim", "blkdim", "l2_mpki", "type", "profile_pct",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Abbr, fmt.Sprint(r.Insts),
			f2(r.RegPct), f2(r.ShmPct), f2(r.ALUPct), f2(r.SFUPct), f2(r.LSPct),
			fmt.Sprint(r.GridDim), fmt.Sprint(r.BlockDim),
			f2(r.L2MPKI), r.Type, f2(r.ProfilePct),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure6CSV exports the policy comparison rows.
func WriteFigure6CSV(w io.Writer, rows []Figure6Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "category", "leftover_ipc", "spatial", "even", "dynamic", "oracle", "partition", "oracle_partition",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		part := "spatial"
		if !r.ChoseSpatial && r.Partition != nil {
			part = fmt.Sprint(r.Partition)
		}
		// "spatial" when the oracle search picked spatial multitasking,
		// the winning CTA combination otherwise; empty when no oracle ran.
		opart := ""
		switch {
		case r.OracleChoseSpatial:
			opart = "spatial"
		case r.OraclePartition != nil:
			opart = fmt.Sprint(r.OraclePartition)
		}
		rec := []string{
			r.Workload, r.Category, f2(r.LeftOverIPC),
			f3(r.Spatial), f3(r.Even), f3(r.Dynamic), f3(r.Oracle), part, opart,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCurvesCSV exports occupancy curves, one row per (kernel, CTA count).
func WriteCurvesCSV(w io.Writer, curves []Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "category", "ctas", "ipc", "norm"}); err != nil {
		return err
	}
	for _, c := range curves {
		for j := 1; j <= c.MaxCTAs; j++ {
			rec := []string{c.Abbr, string(c.Category), fmt.Sprint(j), f2(c.IPC[j]), f3(c.Norm[j])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
