// Package experiments regenerates every table and figure of the paper's
// evaluation (§II methodology, §V results). Each experiment is a function
// on a Session, which caches isolation runs so the paper's run-to-target
// methodology (record each kernel's instruction count alone, then co-run
// until all targets are met) is applied consistently.
//
// Absolute cycle counts are scaled down from the paper's 2M-cycle windows
// (see DESIGN.md); every window is configurable through Options and the
// Figure 10 sensitivity experiment sweeps them.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/mem"
	"warpedslicer/internal/metrics"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/policy"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/runlog"
	"warpedslicer/internal/sm"
	"warpedslicer/internal/span"
)

// Options parameterizes a Session.
type Options struct {
	Cfg   config.GPU
	Sched sm.SchedulerKind
	// IsolationCycles is the window used to record each kernel's
	// instruction target (the paper used 2M cycles).
	IsolationCycles int64
	// MaxCoRunCycles bounds any multiprogrammed run.
	MaxCoRunCycles int64
	// OracleTargetFrac scales down the instruction targets used during the
	// oracle's exhaustive CTA-combination search (the winner is re-run at
	// full targets).
	OracleTargetFrac float64
	// Controller windows (paper: 20K warm-up, 5K sample, no delay).
	Warmup, Sample, AlgDelay int64
	UseScaledIPC             bool
	// SymmetricScaling selects the literal (two-sided) Eq. 4 correction;
	// see core.Controller.SymmetricScaling.
	SymmetricScaling bool
	// Events, when non-nil, receives the session's structured run log:
	// one isolation_done / corun_done summary per completed run, plus the
	// dynamic controller's full decision trail (profiling phases, scaled-IPC
	// curves, water-filling partitions) and kernel lifecycle events.
	Events *obs.EventLog
	// Hub, when non-nil, receives live registry snapshots every
	// PublishEvery cycles from each running simulation, for serving over
	// obs.StartServer.
	Hub *obs.Hub
	// Ledger, when non-nil, receives one content-addressed RunRecord per
	// completed run (isolation references, co-runs, fixed windows, digest
	// and engine-profile runs): headline metrics plus a windowed counter
	// series recorded on the Monitor cadence. Identical inputs dedupe to
	// one entry; records are byte-identical at any Parallelism. When
	// DigestEvery is also set, each run's digest trail is stored next to
	// its record for `wslicer runs diff` bisection.
	Ledger *runlog.Ledger
	// PublishEvery is the snapshot publication period in cycles when Hub
	// is set (default 2048).
	PublishEvery int64
	// Parallelism sizes the worker pool that fans independent simulations
	// (isolation references, the oracle search, the figure sweeps) across
	// cores. 0 means GOMAXPROCS; 1 forces serial execution. Results are
	// collected by index, so any setting produces byte-identical CSVs,
	// figures and golden files.
	Parallelism int
	// ProfPeriod, when positive, attaches an engine self-profiler to every
	// GPU the session builds, sampling one cycle in ProfPeriod for
	// wall-clock phase accounting (see internal/prof). Zero disables
	// profiling; the deterministic opportunity counters are collected
	// either way.
	ProfPeriod int64
	// DigestEvery, when positive, arms the state-digest audit trail on
	// every GPU the session builds: a chained whole-device digest is
	// recorded into a flight-recorder ring every DigestEvery cycles (see
	// internal/digest). Zero leaves digesting off the hot path entirely.
	DigestEvery int64
	// BlackBoxPath, when set (and DigestEvery is positive), is where a
	// panicking simulation — including simassert violations — dumps its
	// flight-recorder black box.
	BlackBoxPath string
}

// Validate rejects option values that would produce degenerate runs:
// non-positive windows yield zero-cycle simulations whose IPC divisions
// emit NaN rows into CSV output. NewSession panics on invalid options;
// the CLI validates its flags up front for a readable error.
func (o Options) Validate() error {
	switch {
	case o.IsolationCycles <= 0:
		return fmt.Errorf("experiments: IsolationCycles = %d, must be positive", o.IsolationCycles)
	case o.MaxCoRunCycles <= 0:
		return fmt.Errorf("experiments: MaxCoRunCycles = %d, must be positive", o.MaxCoRunCycles)
	case o.Sample <= 0:
		return fmt.Errorf("experiments: Sample = %d, must be positive", o.Sample)
	case o.Warmup < 0:
		return fmt.Errorf("experiments: Warmup = %d, must be non-negative", o.Warmup)
	case o.AlgDelay < 0:
		return fmt.Errorf("experiments: AlgDelay = %d, must be non-negative", o.AlgDelay)
	case o.OracleTargetFrac <= 0 || o.OracleTargetFrac > 1:
		return fmt.Errorf("experiments: OracleTargetFrac = %g, must be in (0, 1]", o.OracleTargetFrac)
	case o.PublishEvery < 0:
		return fmt.Errorf("experiments: PublishEvery = %d, must be non-negative", o.PublishEvery)
	case o.Parallelism < 0:
		return fmt.Errorf("experiments: Parallelism = %d, must be non-negative", o.Parallelism)
	case o.ProfPeriod < 0:
		return fmt.Errorf("experiments: ProfPeriod = %d, must be non-negative", o.ProfPeriod)
	case o.DigestEvery < 0:
		return fmt.Errorf("experiments: DigestEvery = %d, must be non-negative", o.DigestEvery)
	}
	return nil
}

// Defaults returns the standard evaluation options (scaled-down windows).
func Defaults() Options {
	return Options{
		Cfg:              config.Baseline(),
		Sched:            sm.GTO,
		IsolationCycles:  60_000,
		MaxCoRunCycles:   3_000_000,
		OracleTargetFrac: 0.25,
		// The paper's profiling windows: 20K cycles of warm-up, 5K of
		// sampling. At our scaled-down run lengths the one-time profiling
		// phase is proportionally larger than in the paper (a conservative
		// penalty against Warped-Slicer), but curve quality needs the
		// warm-up: cache-sensitive kernels misclassify with less.
		Warmup:       20_000,
		Sample:       5_000,
		UseScaledIPC: true,
	}
}

// Quick returns options small enough for unit tests and benchmarks.
func Quick() Options {
	o := Defaults()
	o.IsolationCycles = 12_000
	o.MaxCoRunCycles = 800_000
	o.Warmup = 1_000
	o.Sample = 2_000
	o.OracleTargetFrac = 0.3
	return o
}

// Instrument attaches the session's observability sinks to a freshly built
// GPU: the event log for kernel lifecycle events, and — when a Hub or
// Ledger is set — a registry sampled on a fixed cycle period. With none
// configured this is a no-op and the simulation runs with zero monitoring
// cost.
func (o Options) Instrument(g *gpu.GPU) { o.instrument(g, o.Events) }

// instrument is Instrument with an explicit (typically run-scoped) event
// log, so concurrent simulations sharing one session log stay
// attributable. When a Ledger is configured it returns the run's series
// recorder (nil otherwise), which the run-completion path folds into the
// RunRecord.
func (o Options) instrument(g *gpu.GPU, log *obs.EventLog) *runlog.Recorder {
	g.Log = log
	if o.ProfPeriod > 0 {
		//simlint:allow determtaint -- profiler construction: the epoch stamp inside is metering state, not simulator state
		g.Prof = prof.New(o.ProfPeriod)
	}
	if o.DigestEvery > 0 {
		g.ArmFlightRecorder(digest.DefaultFlightDepth, o.DigestEvery, o.BlackBoxPath)
		if o.Ledger != nil && g.Digests == nil {
			// Ledger runs keep the full trail (not just the flight ring)
			// so `runs diff` can hand divergent records to the bisector.
			g.Digests = &digest.Trail{}
		}
	}
	if o.Hub == nil && o.Ledger == nil {
		return nil
	}
	reg := obs.NewRegistry()
	g.Register(reg)
	g.ObsSnapshot = func() any { return reg.Snapshot() }
	g.MonitorEvery = o.PublishEvery
	if g.MonitorEvery <= 0 {
		g.MonitorEvery = 2048
	}
	var rec *runlog.Recorder
	if o.Ledger != nil {
		rec = runlog.NewRecorder(runlog.DefaultSeries(), runlog.DefaultMaxPoints)
		rec.Register(reg)
		o.Ledger.Register(reg)
	}
	g.Monitor = func(gg *gpu.GPU) {
		snap := reg.Snapshot()
		rec.Observe(gg.Now(), snap)
		if o.Hub != nil {
			o.Hub.Publish(snap)
			o.Hub.PublishSpans(gg.Mem.Spans.Summary())
			o.Hub.PublishProfile(gg.Profile())
		}
	}
	return rec
}

// Isolation is a cached single-kernel run.
type Isolation struct {
	Spec   *kernels.Spec
	Cycles int64
	// Insts is the thread-instruction count after Cycles (the kernel's
	// co-run target).
	Insts uint64
	IPC   float64
	SM    sm.Stats
	Mem   mem.Stats
	// Spans holds the run's sampled memory-request decomposition (the
	// kernel occupies slot 0, so Spans.PerKernel[0] is its breakdown).
	Spans span.Totals
}

// Session caches isolation runs and occupancy curves for one Options value.
// Both caches are singleflight: under the parallel runner, concurrent
// requests for the same kernel block on the one in-flight run instead of
// duplicating it (the check-then-run gap of a plain map would re-run the
// most expensive simulations).
type Session struct {
	O      Options
	mu     sync.Mutex
	iso    map[string]*isoEntry
	curves map[string]*curveEntry
}

// isoEntry is one singleflight isolation-cache slot.
type isoEntry struct {
	once sync.Once
	res  Isolation
}

// curveEntry is one singleflight occupancy-curve slot.
type curveEntry struct {
	once sync.Once
	res  Curve
}

// NewSession creates a session. It panics on invalid Options (see
// Options.Validate), mirroring gpu.New's handling of invalid configs.
func NewSession(o Options) *Session {
	if err := o.Validate(); err != nil {
		panic(err)
	}
	return &Session{O: o, iso: make(map[string]*isoEntry), curves: make(map[string]*curveEntry)}
}

// greedyFill is the isolation dispatcher (single kernel, fill everything).
type greedyFill struct{}

func (greedyFill) Setup(*gpu.GPU)  {}
func (greedyFill) Fill(g *gpu.GPU) { policy.FillInterleaved(g) }
func (greedyFill) Tick(*gpu.GPU)   {}

// Isolation runs (or returns the cached) single-kernel reference run.
// Concurrent callers for the same kernel share one run (singleflight):
// the first runs, the rest block until its result lands.
func (s *Session) Isolation(spec *kernels.Spec) Isolation {
	s.mu.Lock()
	e, ok := s.iso[spec.Abbr]
	if !ok {
		e = &isoEntry{}
		s.iso[spec.Abbr] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.res = s.runIsolation(spec) })
	return e.res
}

// runIsolation executes the single-kernel reference simulation.
func (s *Session) runIsolation(spec *kernels.Spec) Isolation {
	log := s.O.Events.WithRun("iso/" + spec.Abbr)
	wall0, cpu0 := s.O.ledgerStart()
	g := gpu.New(s.O.Cfg, greedyFill{})
	g.SetSchedulers(s.O.Sched)
	rec := s.O.instrument(g, log)
	g.AddKernel(spec, 0)
	g.RunCycles(s.O.IsolationCycles)
	r := Isolation{
		Spec:   spec,
		Cycles: s.O.IsolationCycles,
		Insts:  g.KernelInsts(0),
		SM:     g.AggregateSM(),
		Mem:    g.Mem.Stats(),
		Spans:  g.Mem.Spans.Totals(),
	}
	r.IPC = metrics.IPC(r.Insts, r.Cycles)
	log.Emit(g.Now(), obs.EvIsolationDone, map[string]any{
		"kernel": spec.Abbr, "insts": r.Insts, "ipc": r.IPC,
	})
	s.recordRun(runMeta{
		kind: "iso", policy: "greedy", specs: []*kernels.Spec{spec},
		cycles: r.Cycles, ipc: r.IPC, perKernelIPC: []float64{r.IPC},
	}, g, rec, wall0, cpu0)
	return r
}

// CoRun is the result of one multiprogrammed run.
type CoRun struct {
	Specs  []*kernels.Spec
	Policy string
	// Cycles until every kernel reached its target (== MaxCoRunCycles on
	// timeout).
	Cycles  int64
	Timeout bool
	// Targets and Insts per kernel; FinishCycles when each halted.
	Targets      []uint64
	Insts        []uint64
	FinishCycles []int64
	// IPC is the paper's combined metric: total instructions over total
	// cycles. PerKernelIPC[i] = Insts[i] / FinishCycles[i].
	IPC          float64
	PerKernelIPC []float64
	SM           sm.Stats
	Mem          mem.Stats
	// Spans holds the run's sampled memory-request decomposition, indexed
	// by kernel slot (the figmemdecomp interference attribution source).
	Spans span.Totals
	// Partition/ChoseSpatial are filled for the dynamic policy.
	Partition    []int
	ChoseSpatial bool
}

// dispatcher builds the policy by name. "fixed" requires ctas; log is the
// run-scoped event log a dynamic controller writes its decision trail to.
func (s *Session) dispatcher(name string, ctas []int, log *obs.EventLog) gpu.Dispatcher {
	switch name {
	case "leftover":
		return policy.LeftOver{}
	case "fcfs":
		return policy.FCFS{}
	case "even":
		return policy.Even{}
	case "spatial":
		return policy.Spatial{}
	case "fixed":
		return policy.Fixed{CTAs: ctas}
	case "dynamic":
		c := core.NewController()
		c.WarmupCycles = s.O.Warmup
		c.SampleCycles = s.O.Sample
		c.AlgorithmDelay = s.O.AlgDelay
		c.UseScaledIPC = s.O.UseScaledIPC
		c.SymmetricScaling = s.O.SymmetricScaling
		c.Log = log
		return c
	default:
		panic(fmt.Sprintf("experiments: unknown policy %q", name))
	}
}

// runScope builds the deterministic run identity stamped on every event a
// simulation emits: kind ("corun", "oracle", "window"), policy — with the
// explicit CTA partition when one is fixed — and workload. Being a pure
// function of those identifiers, serial and parallel sessions tag their
// event trails identically.
func runScope(kind, policy string, ctas []int, specs []*kernels.Spec) string {
	var b strings.Builder
	b.WriteString(kind)
	b.WriteByte('/')
	b.WriteString(policy)
	if len(ctas) > 0 {
		b.WriteByte('(')
		for i, n := range ctas {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", n)
		}
		b.WriteByte(')')
	}
	b.WriteByte('/')
	b.WriteString(WorkloadName(specs))
	return b.String()
}

// CoRunTargets runs specs under the named policy with explicit instruction
// targets.
func (s *Session) CoRunTargets(specs []*kernels.Spec, name string, ctas []int, targets []uint64) CoRun {
	return s.coRunTargets("corun", specs, name, ctas, targets)
}

func (s *Session) coRunTargets(kind string, specs []*kernels.Spec, name string, ctas []int, targets []uint64) CoRun {
	log := s.O.Events.WithRun(runScope(kind, name, ctas, specs))
	wall0, cpu0 := s.O.ledgerStart()
	d := s.dispatcher(name, ctas, log)
	g := gpu.New(s.O.Cfg, d)
	g.SetSchedulers(s.O.Sched)
	rec := s.O.instrument(g, log)
	for i, spec := range specs {
		g.AddKernel(spec, targets[i])
	}
	cycles := g.Run(s.O.MaxCoRunCycles)

	r := CoRun{
		Specs:   specs,
		Policy:  name,
		Cycles:  cycles,
		Timeout: !g.AllDone(),
		Targets: targets,
		SM:      g.AggregateSM(),
		Mem:     g.Mem.Stats(),
		Spans:   g.Mem.Spans.Totals(),
	}
	var totalInsts uint64
	for _, k := range g.Kernels {
		insts := g.KernelInsts(k.Slot)
		fin := k.FinishCycle
		if !k.Done {
			fin = cycles
		}
		r.Insts = append(r.Insts, insts)
		r.FinishCycles = append(r.FinishCycles, fin)
		ipc := 0.0
		if fin > 0 {
			ipc = float64(insts) / float64(fin)
		}
		r.PerKernelIPC = append(r.PerKernelIPC, ipc)
		totalInsts += insts
	}
	if cycles > 0 {
		r.IPC = float64(totalInsts) / float64(cycles)
	}
	if c, ok := d.(*core.Controller); ok {
		r.Partition = c.Partition
		r.ChoseSpatial = c.ChoseSpatial
	}
	log.Emit(cycles, obs.EvCoRunDone, map[string]any{
		"policy": name, "workload": WorkloadName(specs),
		"ipc": r.IPC, "cycles": cycles, "timeout": r.Timeout,
	})
	s.recordRun(runMeta{
		kind: kind, policy: name, ctas: ctas, specs: specs, targets: targets,
		cycles: cycles, timeout: r.Timeout, ipc: r.IPC, perKernelIPC: r.PerKernelIPC,
	}, g, rec, wall0, cpu0)
	return r
}

// RunFixedCycles runs specs under the named policy for exactly `cycles`
// cycles (no instruction targets) and reports the combined IPC. Used for
// occupancy-curve measurement. Non-positive windows report zero IPC
// rather than dividing by the cycle count.
func (s *Session) RunFixedCycles(specs []*kernels.Spec, name string, ctas []int, cycles int64) CoRun {
	log := s.O.Events.WithRun(runScope("window", name, ctas, specs))
	wall0, cpu0 := s.O.ledgerStart()
	d := s.dispatcher(name, ctas, log)
	g := gpu.New(s.O.Cfg, d)
	g.SetSchedulers(s.O.Sched)
	rec := s.O.instrument(g, log)
	for _, spec := range specs {
		g.AddKernel(spec, 0)
	}
	if cycles > 0 {
		g.RunCycles(cycles)
	}
	r := CoRun{
		Specs:  specs,
		Policy: name,
		Cycles: cycles,
		SM:     g.AggregateSM(),
		Mem:    g.Mem.Stats(),
		Spans:  g.Mem.Spans.Totals(),
	}
	var total uint64
	for _, k := range g.Kernels {
		insts := g.KernelInsts(k.Slot)
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(insts) / float64(cycles)
		}
		r.Insts = append(r.Insts, insts)
		r.FinishCycles = append(r.FinishCycles, cycles)
		r.PerKernelIPC = append(r.PerKernelIPC, ipc)
		total += insts
	}
	if cycles > 0 {
		r.IPC = float64(total) / float64(cycles)
	}
	s.recordRun(runMeta{
		kind: "window", policy: name, ctas: ctas, specs: specs,
		cycles: cycles, ipc: r.IPC, perKernelIPC: r.PerKernelIPC,
	}, g, rec, wall0, cpu0)
	return r
}

// DigestTrail runs specs under the named policy with isolation-derived
// instruction targets, recording a chained whole-GPU digest record every
// `every` cycles (zero selects the default period), and returns the full
// audit trail. The targets route through the session's isolation cache and
// worker pool, so a serial session and a parallel session over equal
// Options must produce byte-identical trails — the invariant the
// first-divergence bisector (internal/divergence) checks.
func (s *Session) DigestTrail(specs []*kernels.Spec, name string, ctas []int, every int64) *digest.Trail {
	targets := make([]uint64, len(specs))
	s.parallelFor(len(specs), func(i int) {
		targets[i] = s.Isolation(specs[i]).Insts
	})
	log := s.O.Events.WithRun(runScope("digest", name, ctas, specs))
	wall0, cpu0 := s.O.ledgerStart()
	d := s.dispatcher(name, ctas, log)
	g := gpu.New(s.O.Cfg, d)
	g.SetSchedulers(s.O.Sched)
	rec := s.O.instrument(g, log)
	for i, spec := range specs {
		g.AddKernel(spec, targets[i])
	}
	if every <= 0 {
		every = gpu.DefaultDigestEvery
	}
	g.DigestEvery = every
	g.Digests = &digest.Trail{}
	g.Run(s.O.MaxCoRunCycles)
	cycles := g.Now()
	var total uint64
	var perIPC []float64
	for _, k := range g.Kernels {
		insts := g.KernelInsts(k.Slot)
		total += insts
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(insts) / float64(cycles)
		}
		perIPC = append(perIPC, ipc)
	}
	ipc := 0.0
	if cycles > 0 {
		ipc = float64(total) / float64(cycles)
	}
	s.recordRun(runMeta{
		kind: "digest", policy: name, ctas: ctas, specs: specs, targets: targets,
		cycles: cycles, ipc: ipc, perKernelIPC: perIPC,
	}, g, rec, wall0, cpu0)
	return g.Digests
}

// CoRun runs specs under the named policy using isolation-derived targets
// (the paper's methodology).
func (s *Session) CoRun(specs []*kernels.Spec, name string) CoRun {
	targets := make([]uint64, len(specs))
	s.parallelFor(len(specs), func(i int) {
		targets[i] = s.Isolation(specs[i]).Insts
	})
	return s.CoRunTargets(specs, name, nil, targets)
}

// Oracle exhaustively searches intra-SM CTA partitions (plus spatial
// multitasking) for the best combined IPC, exactly as the paper's oracle.
// The search runs at OracleTargetFrac-scaled targets; the winner is re-run
// at full targets. Candidates are independent simulations, so the search
// fans across the session's worker pool; results are collected by index
// and scanned in enumeration order, preserving the serial tie-breaking
// exactly. ChoseSpatial reports a spatial-multitasking winner, so
// downstream consumers can tell "oracle chose spatial" from "partition
// missing".
func (s *Session) Oracle(specs []*kernels.Spec) CoRun {
	targets := make([]uint64, len(specs))
	scaled := make([]uint64, len(specs))
	s.parallelFor(len(specs), func(i int) {
		iso := s.Isolation(specs[i])
		targets[i] = iso.Insts
		scaled[i] = uint64(float64(iso.Insts) * s.O.OracleTargetFrac)
		if scaled[i] == 0 {
			scaled[i] = 1
		}
	})

	// Spatial is part of the oracle's search space: it rides the pool as
	// the entry after the last CTA combination.
	combos := s.feasibleCombos(specs)
	results := make([]CoRun, len(combos)+1)
	s.parallelFor(len(results), func(i int) {
		if i < len(combos) {
			results[i] = s.coRunTargets("oracle", specs, "fixed", combos[i], scaled)
		} else {
			results[i] = s.coRunTargets("oracle", specs, "spatial", nil, scaled)
		}
	})

	best := CoRun{}
	bestCombo := []int(nil)
	for i, combo := range combos {
		if bestCombo == nil || results[i].IPC > best.IPC {
			best, bestCombo = results[i], combo
		}
	}
	sp := results[len(combos)]
	if bestCombo == nil || sp.IPC > best.IPC {
		final := s.coRunTargets("oracle-final", specs, "spatial", nil, targets)
		final.Policy = "oracle"
		final.ChoseSpatial = true
		return final
	}
	final := s.coRunTargets("oracle-final", specs, "fixed", bestCombo, targets)
	final.Policy = "oracle"
	final.Partition = bestCombo
	return final
}

// feasibleCombos enumerates CTA assignments (>= 1 each) that fit the SM.
func (s *Session) feasibleCombos(specs []*kernels.Spec) [][]int {
	cfg := s.O.Cfg.SM
	total := sm.Quota{Regs: cfg.Registers, Shm: cfg.SharedMemBytes, Threads: cfg.MaxThreads, CTAs: cfg.MaxCTAs}
	var out [][]int
	cur := make([]int, len(specs))
	var rec func(i int, used sm.Quota)
	rec = func(i int, used sm.Quota) {
		if i == len(specs) {
			out = append(out, append([]int(nil), cur...))
			return
		}
		spec := specs[i]
		for n := 1; ; n++ {
			nu := sm.Quota{
				Regs:    used.Regs + spec.RegsPerCTA()*n,
				Shm:     used.Shm + spec.SharedMemPerTA*n,
				Threads: used.Threads + spec.BlockDim*n,
				CTAs:    used.CTAs + n,
			}
			if nu.Regs > total.Regs || nu.Shm > total.Shm || nu.Threads > total.Threads || nu.CTAs > total.CTAs {
				break
			}
			cur[i] = n
			rec(i+1, nu)
		}
	}
	rec(0, sm.Quota{})
	return out
}

// WorkloadName joins kernel abbreviations ("HOT_DXT").
func WorkloadName(specs []*kernels.Spec) string {
	name := ""
	for i, s := range specs {
		if i > 0 {
			name += "_"
		}
		name += s.Abbr
	}
	return name
}
