package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/metrics"
	"warpedslicer/internal/sm"
)

// Figure10aRow reports sensitivity of the dynamic policy to one profiling
// parameter setting, as mean IPC normalized to the reference setting
// (5K-cycle sampling, no algorithm delay).
type Figure10aRow struct {
	Label string
	Norm  float64
}

// Figure10a sweeps the sampling-window length and the partitioning-
// algorithm delay over the given workloads (paper: all 30 pairs; IPC
// varies by at most ~2%).
func Figure10a(o Options, ws []Workload) []Figure10aRow {
	type setting struct {
		label     string
		sample    int64
		delay     int64
		scaleOff  bool
		symmetric bool
	}
	settings := []setting{
		{label: "sample=5k", sample: 5000},
		{label: "sample=10k", sample: 10000},
		{label: "sample=CTA", sample: 50000},
		{label: "delay=1k", sample: 5000, delay: 1000},
		{label: "delay=5k", sample: 5000, delay: 5000},
		{label: "delay=10k", sample: 5000, delay: 10000},
		// Ablations of the Eq. 3-4 correction (DESIGN.md §5).
		{label: "scale=off", sample: 5000, scaleOff: true},
		{label: "scale=sym", sample: 5000, symmetric: true},
	}
	ref := make([]float64, len(ws))
	{
		oo := o
		oo.Sample, oo.AlgDelay = 5000, 0
		s := NewSession(oo)
		s.parallelFor(len(ws), func(i int) {
			ref[i] = s.CoRun(ws[i].Specs, "dynamic").IPC
		})
	}
	// Each setting owns a session (its windows change the simulations), so
	// the whole settings sweep fans across the pool; rows land by index.
	out := make([]Figure10aRow, len(settings))
	parallelFor(o.parallelism(), len(settings), func(si int) {
		st := settings[si]
		oo := o
		oo.Sample, oo.AlgDelay = st.sample, st.delay
		if st.scaleOff {
			oo.UseScaledIPC = false
		}
		oo.SymmetricScaling = st.symmetric
		s := NewSession(oo)
		ipcs := make([]float64, len(ws))
		s.parallelFor(len(ws), func(i int) {
			ipcs[i] = s.CoRun(ws[i].Specs, "dynamic").IPC
		})
		var norms []float64
		for i := range ws {
			if ref[i] > 0 {
				norms = append(norms, ipcs[i]/ref[i])
			}
		}
		out[si] = Figure10aRow{Label: st.label, Norm: metrics.Gmean(norms)}
	})
	return out
}

// Figure10bRow reports policy gains under one warp scheduler.
type Figure10bRow struct {
	Scheduler string
	Gmeans    Gmeans
}

// Figure10b evaluates the policies under GTO and round-robin scheduling.
// Each scheduler's sweep is already parallel (runWorkloads); the two
// sessions run in sequence so nested fan-out stays bounded.
func Figure10b(o Options, ws []Workload) []Figure10bRow {
	var out []Figure10bRow
	for _, sched := range []sm.SchedulerKind{sm.GTO, sm.RR} {
		oo := o
		oo.Sched = sched
		s := NewSession(oo)
		rows := runWorkloads(s, ws, false)
		out = append(out, Figure10bRow{Scheduler: sched.String(), Gmeans: SummarizeFigure6(rows)})
	}
	return out
}

// FormatFigure10 renders both sensitivity panels.
func FormatFigure10(a []Figure10aRow, b []Figure10bRow) string {
	var sb strings.Builder
	sb.WriteString("(a) Profiling-parameter sensitivity (dynamic IPC vs 5k/no-delay):\n")
	for _, r := range a {
		fmt.Fprintf(&sb, "  %-12s %.3f\n", r.Label, r.Norm)
	}
	sb.WriteString("(b) Warp-scheduler sensitivity (normalized IPC gmeans):\n")
	for _, r := range b {
		fmt.Fprintf(&sb, "  %-4s spatial=%.2f even=%.2f dynamic=%.2f\n",
			r.Scheduler, r.Gmeans.Spatial, r.Gmeans.Even, r.Gmeans.Dynamic)
	}
	return sb.String()
}

// BigSMResult is the §V-H large-SM sensitivity study.
type BigSMResult struct {
	// PerfNorm is Warped-Slicer's gmean IPC normalized to Left-Over.
	PerfNorm float64
	// FairnessNorm is the mean minimum-speedup ratio vs Left-Over.
	FairnessNorm float64
}

// BigSM evaluates Warped-Slicer on the 256KB-RF / 96KB-shm / 32-CTA /
// 64-warp configuration of §V-H.
func BigSM(o Options, ws []Workload) BigSMResult {
	s := NewSession(o)
	los := make([]CoRun, len(ws))
	dys := make([]CoRun, len(ws))
	s.parallelFor(len(ws), func(i int) {
		los[i] = s.CoRun(ws[i].Specs, "leftover")
		dys[i] = s.CoRun(ws[i].Specs, "dynamic")
	})
	var perf, fair []float64
	for i := range ws {
		lo, dy := los[i], dys[i]
		if lo.IPC > 0 {
			perf = append(perf, dy.IPC/lo.IPC)
		}
		fl := metrics.MinSpeedup(s.fairness(lo))
		fd := metrics.MinSpeedup(s.fairness(dy))
		if fl > 0 {
			fair = append(fair, fd/fl)
		}
	}
	return BigSMResult{PerfNorm: metrics.Gmean(perf), FairnessNorm: metrics.Mean(fair)}
}

// FormatBigSM renders the §V-H result.
func FormatBigSM(r BigSMResult) string {
	return fmt.Sprintf("Large SM (256KB RF, 96KB shm, 32 CTAs, 64 warps): Dynamic vs Left-Over: perf %.2fx, fairness %.2fx\n",
		r.PerfNorm, r.FairnessNorm)
}
