package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"warpedslicer/internal/kernels"
)

// The parallel experiment engine. Every table and figure of the paper's
// evaluation decomposes into independent gpu.New+run invocations (the
// simulator's synthetic randomness is a pure function of stable
// identifiers — see internal/rng), so the harness fans them across a
// worker pool sized by Options.Parallelism and collects results by index.
// Outputs are byte-identical to a serial run: only wall-clock order (and
// therefore the interleaving of run-scoped events in a shared log)
// differs.

// parallelism resolves the worker-pool size: Parallelism when positive,
// otherwise GOMAXPROCS. A value of 1 forces strictly serial execution.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(0) .. fn(n-1) on up to `workers` goroutines and
// returns once all calls complete. Iterations are handed out by an atomic
// counter, so callers must make fn(i) independent of every fn(j) and
// write results only to index i. With workers <= 1 the loop degenerates
// to a plain serial for, making serial-vs-parallel comparisons exact. A
// panic in any iteration is re-raised in the caller.
func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// parallelFor runs fn over [0, n) on the session's worker pool.
func (s *Session) parallelFor(n int, fn func(i int)) {
	parallelFor(s.O.parallelism(), n, fn)
}

// PrewarmIsolations records every spec's isolation reference through the
// worker pool. Experiments that consume many cached isolations (Table II,
// Figure 1, the co-run target derivations) call it so the expensive
// single-kernel runs overlap; the singleflight cache guarantees each
// kernel still runs exactly once.
func (s *Session) PrewarmIsolations(specs []*kernels.Spec) {
	s.parallelFor(len(specs), func(i int) { s.Isolation(specs[i]) })
}
