package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/metrics"
)

// Figure7a is the resource-utilization comparison: Warped-Slicer (dynamic)
// divided by Even partitioning, per resource, averaged over all pairs.
type Figure7a struct {
	ALU, SFU, LDST, REG, SHM float64
}

// utilization extracts the five Figure 7a utilizations from a run.
func utilization(s *Session, r CoRun) [5]float64 {
	cfg := s.O.Cfg
	cyc := uint64(r.Cycles) * uint64(cfg.NumSMs)
	if cyc == 0 {
		return [5]float64{}
	}
	return [5]float64{
		metrics.Frac(r.SM.ALUBusy, cyc*uint64(cfg.SM.ALUUnits)),
		metrics.Frac(r.SM.SFUBusy, cyc),
		metrics.Frac(r.SM.LDSTBusy, cyc),
		metrics.Frac(r.SM.RegCycles, cyc*uint64(cfg.SM.Registers)),
		metrics.Frac(r.SM.ShmCycles, cyc*uint64(cfg.SM.SharedMemBytes)),
	}
}

// Figure7aFrom computes the utilization ratios from Figure 6 runs.
func Figure7aFrom(s *Session, rows []Figure6Row) Figure7a {
	var dyn, even [5]float64
	n := 0
	for _, row := range rows {
		d, okD := row.Runs["dynamic"]
		e, okE := row.Runs["even"]
		if !okD || !okE {
			continue
		}
		du, eu := utilization(s, d), utilization(s, e)
		for i := range dyn {
			dyn[i] += du[i]
			even[i] += eu[i]
		}
		n++
	}
	ratio := func(i int) float64 {
		if even[i] == 0 {
			return 0
		}
		return dyn[i] / even[i]
	}
	return Figure7a{ALU: ratio(0), SFU: ratio(1), LDST: ratio(2), REG: ratio(3), SHM: ratio(4)}
}

// Figure7b is the cache miss-rate comparison by policy and pair category.
type Figure7b struct {
	// [policy][0]=L1 miss rate, [policy][1]=L2 miss rate; categories:
	// Compute+Cache vs Compute+Non-Cache (the paper's split).
	Cache    map[string][2]float64
	NonCache map[string][2]float64
}

// Figure7bFrom aggregates cache miss rates from Figure 6 runs.
func Figure7bFrom(rows []Figure6Row) Figure7b {
	policies := []string{"leftover", "spatial", "even", "dynamic"}
	agg := func(cat func(string) bool) map[string][2]float64 {
		out := map[string][2]float64{}
		for _, p := range policies {
			var l1m, l1a, l2m, l2a uint64
			for _, row := range rows {
				if !cat(row.Category) {
					continue
				}
				r, ok := row.Runs[p]
				if !ok {
					continue
				}
				l1m += r.SM.L1.LoadMiss
				l1a += r.SM.L1.Loads
				l2m += r.Mem.L2.LoadMiss
				l2a += r.Mem.L2.Loads
			}
			out[p] = [2]float64{metrics.Frac(l1m, l1a), metrics.Frac(l2m, l2a)}
		}
		return out
	}
	return Figure7b{
		Cache:    agg(func(c string) bool { return c == "Compute+Cache" }),
		NonCache: agg(func(c string) bool { return c != "Compute+Cache" }),
	}
}

// Figure7c is the stall-cycle breakdown by policy, aggregated over pairs.
type Figure7cRow struct {
	Policy                         string
	Mem, RAW, Exec, IBuffer, Total float64
}

// Figure7cFrom aggregates stall fractions from Figure 6 runs.
func Figure7cFrom(rows []Figure6Row) []Figure7cRow {
	var out []Figure7cRow
	for _, p := range []string{"leftover", "spatial", "even", "dynamic"} {
		var mem, raw, exec, ibuf, slots uint64
		for _, row := range rows {
			r, ok := row.Runs[p]
			if !ok {
				continue
			}
			mem += r.SM.StallMem
			raw += r.SM.StallRAW
			exec += r.SM.StallExec
			ibuf += r.SM.StallIBuf
			slots += r.SM.Slots
		}
		row := Figure7cRow{
			Policy:  p,
			Mem:     metrics.Frac(mem, slots),
			RAW:     metrics.Frac(raw, slots),
			Exec:    metrics.Frac(exec, slots),
			IBuffer: metrics.Frac(ibuf, slots),
		}
		row.Total = row.Mem + row.RAW + row.Exec + row.IBuffer
		out = append(out, row)
	}
	return out
}

// FormatFigure7 renders all three panels.
func FormatFigure7(a Figure7a, b Figure7b, c []Figure7cRow) string {
	var sb strings.Builder
	sb.WriteString("(a) Utilization, Dynamic / Even:\n")
	fmt.Fprintf(&sb, "  ALU=%.2f SFU=%.2f LDST=%.2f REG=%.2f SHM=%.2f\n",
		a.ALU, a.SFU, a.LDST, a.REG, a.SHM)

	sb.WriteString("(b) Cache miss rates (L1 / L2):\n")
	for _, p := range []string{"leftover", "spatial", "even", "dynamic"} {
		cc := b.Cache[p]
		nc := b.NonCache[p]
		fmt.Fprintf(&sb, "  %-8s Compute+Cache %5.1f%% / %5.1f%%   Compute+NonCache %5.1f%% / %5.1f%%\n",
			p, cc[0]*100, cc[1]*100, nc[0]*100, nc[1]*100)
	}

	sb.WriteString("(c) Stall breakdown (fraction of issue slots):\n")
	for _, r := range c {
		fmt.Fprintf(&sb, "  %-8s MEM=%5.1f%% RAW=%5.1f%% EXE=%5.1f%% IBUF=%5.1f%% Total=%5.1f%%\n",
			r.Policy, r.Mem*100, r.RAW*100, r.Exec*100, r.IBuffer*100, r.Total*100)
	}
	return sb.String()
}
