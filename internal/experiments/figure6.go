package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/metrics"
)

// Figure6Row is one workload's normalized performance under each
// multiprogramming policy (Figure 6; baseline = Left-Over).
type Figure6Row struct {
	Workload string
	Category string
	// Absolute combined IPCs.
	LeftOverIPC float64
	// Normalized to Left-Over.
	Spatial, Even, Dynamic, Oracle float64
	// Partition chosen by the dynamic policy (nil = spatial fallback);
	// OraclePartition is the exhaustive-search winner, and
	// OracleChoseSpatial distinguishes "the oracle chose spatial
	// multitasking" (no partition by construction) from "no oracle run".
	Partition          []int
	ChoseSpatial       bool
	OraclePartition    []int
	OracleChoseSpatial bool
	// Raw runs for downstream experiments (Figure 7/9, energy).
	Runs map[string]CoRun
}

// Figure6 runs every pair under Left-Over, Spatial, Even, Dynamic and the
// Oracle, reporting IPC normalized to Left-Over.
func Figure6(s *Session, withOracle bool) []Figure6Row {
	return runWorkloads(s, Pairs(), withOracle)
}

// Figure6From evaluates the policy set on a caller-chosen workload subset.
func Figure6From(s *Session, ws []Workload, withOracle bool) []Figure6Row {
	return runWorkloads(s, ws, withOracle)
}

// runWorkloads evaluates the policy set on arbitrary workloads. Workloads
// are independent simulations, so the sweep fans across the session's
// worker pool; rows are collected by index, keeping the output identical
// to a serial sweep.
func runWorkloads(s *Session, ws []Workload, withOracle bool) []Figure6Row {
	if len(ws) == 0 {
		return nil
	}
	rows := make([]Figure6Row, len(ws))
	s.parallelFor(len(ws), func(i int) {
		rows[i] = runWorkload(s, ws[i], withOracle)
	})
	return rows
}

// runWorkload evaluates one workload under every policy.
func runWorkload(s *Session, w Workload, withOracle bool) Figure6Row {
	row := Figure6Row{Workload: w.Name(), Category: w.Category, Runs: map[string]CoRun{}}

	lo := s.CoRun(w.Specs, "leftover")
	row.LeftOverIPC = lo.IPC
	row.Runs["leftover"] = lo

	for _, p := range []string{"spatial", "even", "dynamic"} {
		r := s.CoRun(w.Specs, p)
		row.Runs[p] = r
		norm := 0.0
		if lo.IPC > 0 {
			norm = r.IPC / lo.IPC
		}
		switch p {
		case "spatial":
			row.Spatial = norm
		case "even":
			row.Even = norm
		case "dynamic":
			row.Dynamic = norm
			row.Partition = r.Partition
			row.ChoseSpatial = r.ChoseSpatial
		}
	}
	if withOracle {
		or := s.Oracle(w.Specs)
		row.Runs["oracle"] = or
		if lo.IPC > 0 {
			row.Oracle = or.IPC / lo.IPC
		}
		row.OraclePartition = or.Partition
		row.OracleChoseSpatial = or.ChoseSpatial
		// The oracle is by construction at least as good as every
		// policy it subsumes.
		for _, v := range []float64{row.Spatial, row.Even, row.Dynamic} {
			if v > row.Oracle {
				row.Oracle = v
			}
		}
	}
	return row
}

// Gmeans summarizes normalized IPC per policy over rows.
type Gmeans struct {
	Spatial, Even, Dynamic, Oracle float64
}

// SummarizeFigure6 computes the geometric means of Figure 6.
func SummarizeFigure6(rows []Figure6Row) Gmeans {
	var sp, ev, dy, or []float64
	for _, r := range rows {
		sp = append(sp, r.Spatial)
		ev = append(ev, r.Even)
		dy = append(dy, r.Dynamic)
		if r.Oracle > 0 {
			or = append(or, r.Oracle)
		}
	}
	return Gmeans{
		Spatial: metrics.Gmean(sp),
		Even:    metrics.Gmean(ev),
		Dynamic: metrics.Gmean(dy),
		Oracle:  metrics.Gmean(or),
	}
}

// FormatFigure6 renders the normalized-IPC table with per-category and
// overall geometric means.
func FormatFigure6(rows []Figure6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-16s %9s %8s %8s %8s %8s\n",
		"Workload", "Category", "LO(IPC)", "Spatial", "Even", "Dynamic", "Oracle")
	byCat := map[string][]Figure6Row{}
	var order []string
	for _, r := range rows {
		if _, ok := byCat[r.Category]; !ok {
			order = append(order, r.Category)
		}
		byCat[r.Category] = append(byCat[r.Category], r)
	}
	for _, cat := range order {
		for _, r := range byCat[cat] {
			fmt.Fprintf(&b, "%-18s %-16s %9.1f %8.2f %8.2f %8.2f %8.2f\n",
				r.Workload, r.Category, r.LeftOverIPC, r.Spatial, r.Even, r.Dynamic, r.Oracle)
		}
		g := SummarizeFigure6(byCat[cat])
		fmt.Fprintf(&b, "%-18s %-16s %9s %8.2f %8.2f %8.2f %8.2f\n",
			"GMEAN("+cat+")", "", "", g.Spatial, g.Even, g.Dynamic, g.Oracle)
	}
	g := SummarizeFigure6(rows)
	fmt.Fprintf(&b, "%-18s %-16s %9s %8.2f %8.2f %8.2f %8.2f\n",
		"GMEAN(ALL)", "", "", g.Spatial, g.Even, g.Dynamic, g.Oracle)
	return b.String()
}

// Table3Row shows the CTA partition chosen by Warped-Slicer vs Even.
type Table3Row struct {
	Workload string
	Category string
	// Dyn is the water-filling partition ("spatial" when the controller
	// fell back); Even is the even-split occupancy.
	Dyn  string
	Even string
}

// Table3 derives the partition table from Figure 6's dynamic runs.
func Table3(s *Session, rows []Figure6Row) []Table3Row {
	cfg := s.O.Cfg.SM
	var out []Table3Row
	pairs := Pairs()
	for i, r := range rows {
		if i >= len(pairs) {
			break
		}
		w := pairs[i]
		t := Table3Row{Workload: r.Workload, Category: r.Category}
		if r.ChoseSpatial || r.Partition == nil {
			t.Dyn = "spatial"
		} else {
			t.Dyn = fmt.Sprintf("(%d,%d)", r.Partition[0], r.Partition[1])
		}
		n := len(w.Specs)
		ev := make([]int, n)
		for j, spec := range w.Specs {
			ev[j] = spec.MaxCTAs(cfg.Registers/n, cfg.SharedMemBytes/n, cfg.MaxThreads/n, cfg.MaxCTAs/n)
		}
		t.Even = fmt.Sprintf("(%d,%d)", ev[0], ev[1])
		out = append(out, t)
	}
	return out
}

// FormatTable3 renders the partition comparison.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-16s %-10s %-10s\n", "Workload", "Category", "Dyn", "Even")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-16s %-10s %-10s\n", r.Workload, r.Category, r.Dyn, r.Even)
	}
	return b.String()
}
