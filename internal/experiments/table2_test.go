package experiments

import (
	"math"
	"testing"
)

// TestProfilePct pins the cycleguard fix in the Table II Profile% column:
// every branch must stay finite, including the degenerate zero-cycle and
// zero-CTA cases.
func TestProfilePct(t *testing.T) {
	cases := []struct {
		name     string
		sample   int64
		isoCyc   int64
		gridDim  int
		ctasDone uint64
		want     float64
	}{
		{"extrapolated", 5000, 40_000, 64, 16, 5000 / (64 * 40_000.0 / 16) * 100},
		{"no ctas falls back to window share", 5000, 40_000, 64, 0, 5000 / 40_000.0 * 100},
		{"zero isolation window", 5000, 0, 64, 0, 0},
		{"zero window with ctas", 5000, 0, 64, 3, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := profilePct(c.sample, c.isoCyc, c.gridDim, c.ctasDone)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("profilePct = %v, must be finite", got)
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Errorf("profilePct = %v, want %v", got, c.want)
			}
		})
	}
}
