package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"warpedslicer/internal/metrics"
	"warpedslicer/internal/sm"
)

// Figure7cDetailRow is one bar of the paper's Figure 7c: one benchmark's
// issue-slot stall mix under one configuration — running alone, or sharing
// the GPU with its co-runner under a multiprogramming policy. Fractions are
// of all issue slots in the run, from the per-kernel attribution counters,
// so a benchmark's shared-mode bars and its co-runner's sum to the SM-wide
// stall classes (the conservation invariant).
type Figure7cDetailRow struct {
	Workload string // co-run name, e.g. "IMG+BLK"
	Kernel   string // benchmark abbreviation
	Slot     int    // kernel slot within the co-run (0 when alone)
	Config   string // "alone", "leftover", "spatial", "even", "dynamic"

	Mem, RAW, Exec, IBuf, Total float64
}

// stallFractions converts one kernel slot's attribution counters into
// fractions of the run's issue slots.
func stallFractions(st sm.Stats, slot int) (mem, raw, exec, ibuf float64) {
	ks := st.PerKernel[slot]
	return metrics.Frac(ks.StallMem, st.Slots),
		metrics.Frac(ks.StallRAW, st.Slots),
		metrics.Frac(ks.StallExec, st.Slots),
		metrics.Frac(ks.StallIBuf, st.Slots)
}

func detailRow(workload, kernel, config string, slot int, st sm.Stats) Figure7cDetailRow {
	r := Figure7cDetailRow{Workload: workload, Kernel: kernel, Slot: slot, Config: config}
	r.Mem, r.RAW, r.Exec, r.IBuf = stallFractions(st, slot)
	r.Total = r.Mem + r.RAW + r.Exec + r.IBuf
	return r
}

// Figure7cDetail reproduces the paper's per-benchmark stall breakdown from
// completed Figure 6 runs: for every workload, each benchmark's stall mix
// alone (its cached isolation run) and under each sharing policy. Rows are
// ordered workload-major, then config (alone first), then slot.
func Figure7cDetail(s *Session, rows []Figure6Row) []Figure7cDetailRow {
	var out []Figure7cDetailRow
	for _, row := range rows {
		lo, ok := row.Runs["leftover"]
		if !ok || len(lo.Specs) == 0 {
			continue
		}
		for _, spec := range lo.Specs {
			iso := s.Isolation(spec)
			// An isolation run hosts its kernel in slot 0 regardless of
			// where it sits in the co-run.
			out = append(out, detailRow(row.Workload, spec.Abbr, "alone", 0, iso.SM))
		}
		for _, p := range []string{"leftover", "spatial", "even", "dynamic"} {
			r, ok := row.Runs[p]
			if !ok {
				continue
			}
			for i, spec := range r.Specs {
				out = append(out, detailRow(row.Workload, spec.Abbr, p, i, r.SM))
			}
		}
	}
	return out
}

// WriteFigure7cCSV exports the per-benchmark stall breakdown.
func WriteFigure7cCSV(w io.Writer, rows []Figure7cDetailRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "kernel", "slot", "config", "mem", "raw", "exec", "ibuf", "total",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Workload, r.Kernel, fmt.Sprint(r.Slot), r.Config,
			f4(r.Mem), f4(r.RAW), f4(r.Exec), f4(r.IBuf), f4(r.Total),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatFigure7cDetail renders the breakdown grouped by workload. The alone
// row uses the benchmark's isolation run; shared rows show how the policy
// redistributes (and inflates) each class.
func FormatFigure7cDetail(rows []Figure7cDetailRow) string {
	var b strings.Builder
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			if last != "" {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s\n", r.Workload)
			last = r.Workload
		}
		fmt.Fprintf(&b, "  %-4s %-8s MEM=%5.1f%% RAW=%5.1f%% EXE=%5.1f%% IBUF=%5.1f%% Total=%5.1f%%\n",
			r.Kernel, r.Config, r.Mem*100, r.RAW*100, r.Exec*100, r.IBuf*100, r.Total*100)
	}
	return b.String()
}

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
