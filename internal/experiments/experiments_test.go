package experiments

import (
	"strings"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/kernels"
)

func quickSession(t *testing.T) *Session {
	t.Helper()
	return NewSession(Quick())
}

func TestPairsMatchPaperCounts(t *testing.T) {
	pairs := Pairs()
	if len(pairs) != 30 {
		t.Fatalf("pairs = %d, want 30", len(pairs))
	}
	counts := map[string]int{}
	for _, p := range pairs {
		counts[p.Category]++
		if len(p.Specs) != 2 {
			t.Fatalf("%s has %d kernels", p.Name(), len(p.Specs))
		}
	}
	if counts["Compute+Cache"] != 8 || counts["Compute+Memory"] != 16 || counts["Compute+Compute"] != 6 {
		t.Fatalf("category counts = %v, want 8/16/6", counts)
	}
}

func TestTriplesMatchPaper(t *testing.T) {
	triples := Triples()
	if len(triples) != 15 {
		t.Fatalf("triples = %d, want 15", len(triples))
	}
	for _, w := range triples {
		if len(w.Specs) != 3 {
			t.Fatalf("%s has %d kernels", w.Name(), len(w.Specs))
		}
		for _, spec := range w.Specs {
			if spec == nil {
				t.Fatalf("%s has nil spec", w.Name())
			}
			if spec.Abbr == "BFS" || spec.Abbr == "HOT" {
				t.Fatalf("%s contains excluded kernel %s", w.Name(), spec.Abbr)
			}
		}
	}
}

func TestIsolationCached(t *testing.T) {
	s := quickSession(t)
	a := s.Isolation(kernels.ByAbbr("IMG"))
	b := s.Isolation(kernels.ByAbbr("IMG"))
	if a.Insts != b.Insts {
		t.Fatal("isolation cache returned different results")
	}
	if a.Insts == 0 || a.IPC <= 0 {
		t.Fatal("isolation run produced nothing")
	}
}

func TestCoRunCompletesAndNormalizes(t *testing.T) {
	s := quickSession(t)
	specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}
	lo := s.CoRun(specs, "leftover")
	if lo.Timeout {
		t.Fatal("left-over co-run timed out")
	}
	if lo.IPC <= 0 || len(lo.PerKernelIPC) != 2 {
		t.Fatalf("bad co-run result: %+v", lo)
	}
	for i, fin := range lo.FinishCycles {
		if fin <= 0 || fin > lo.Cycles {
			t.Fatalf("kernel %d finish cycle %d out of range", i, fin)
		}
	}
	dy := s.CoRun(specs, "dynamic")
	if dy.Timeout {
		t.Fatal("dynamic co-run timed out")
	}
}

func TestOracleAtLeastAsGoodAsFixedSample(t *testing.T) {
	s := quickSession(t)
	specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}
	or := s.Oracle(specs)
	if or.Policy != "oracle" {
		t.Fatalf("policy = %s", or.Policy)
	}
	if or.IPC <= 0 {
		t.Fatal("oracle IPC not positive")
	}
}

func TestFeasibleCombosRespectLimits(t *testing.T) {
	s := quickSession(t)
	specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}
	combos := s.feasibleCombos(specs)
	if len(combos) == 0 {
		t.Fatal("no feasible combos")
	}
	cfg := s.O.Cfg.SM
	for _, c := range combos {
		regs := c[0]*specs[0].RegsPerCTA() + c[1]*specs[1].RegsPerCTA()
		if regs > cfg.Registers {
			t.Fatalf("combo %v exceeds registers", c)
		}
		if c[0] < 1 || c[1] < 1 {
			t.Fatalf("combo %v starves a kernel", c)
		}
		if c[0]+c[1] > cfg.MaxCTAs {
			t.Fatalf("combo %v exceeds CTA slots", c)
		}
	}
}

func TestTable2RunsAndFormats(t *testing.T) {
	s := quickSession(t)
	rows := Table2(s)
	if len(rows) != 10 {
		t.Fatalf("table2 rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Insts == 0 {
			t.Errorf("%s executed nothing", r.Abbr)
		}
		if r.RegPct <= 0 || r.RegPct > 100 {
			t.Errorf("%s reg%% = %.1f out of range", r.Abbr, r.RegPct)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "BLK") || !strings.Contains(out, "L2MPKI") {
		t.Fatal("table format incomplete")
	}
}

func TestMemoryKernelsHaveHighMPKI(t *testing.T) {
	s := quickSession(t)
	rows := Table2(s)
	for _, r := range rows {
		isMem := r.Type == "Memory"
		if isMem && r.L2MPKI < 30 {
			t.Errorf("%s typed Memory but MPKI %.1f < 30", r.Abbr, r.L2MPKI)
		}
		if r.Type == "Compute" && r.L2MPKI >= 30 {
			t.Errorf("%s typed Compute but MPKI %.1f >= 30", r.Abbr, r.L2MPKI)
		}
	}
}

func TestFigure1Fractions(t *testing.T) {
	s := quickSession(t)
	rows := Figure1(s)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.Memory + r.RAW + r.Exec + r.IBuffer + r.Idle + r.Issued
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s stall fractions sum to %.3f, want 1", r.Abbr, sum)
		}
	}
	if FormatFigure1(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestRunWorkloadsSubset(t *testing.T) {
	s := quickSession(t)
	ws := Pairs()[:2]
	rows := runWorkloads(s, ws, false)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Dynamic <= 0 || r.Even <= 0 || r.Spatial <= 0 {
			t.Fatalf("%s has non-positive normalized IPC: %+v", r.Workload, r)
		}
	}
	g := SummarizeFigure6(rows)
	if g.Dynamic <= 0 {
		t.Fatal("gmean not computed")
	}
	if FormatFigure6(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestSweetSpotIMGNN(t *testing.T) {
	s := quickSession(t)
	ss, err := s.Figure3b(kernels.ByAbbr("IMG"), kernels.ByAbbr("NN"))
	if err != nil {
		t.Fatal(err)
	}
	if ss.BestA < 1 || ss.BestB < 1 {
		t.Fatalf("sweet spot starves a kernel: %+v", ss)
	}
	if FormatSweetSpot(ss) == "" {
		t.Fatal("empty format")
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := quickSession(t)
	s.dispatcher("bogus", nil, nil)
}

func TestWorkloadName(t *testing.T) {
	w := Workload{Specs: []*kernels.Spec{kernels.ByAbbr("HOT"), kernels.ByAbbr("DXT")}}
	if w.Name() != "HOT_DXT" {
		t.Fatalf("name = %s", w.Name())
	}
}

func TestDefaultsValidate(t *testing.T) {
	if err := Defaults().Cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Quick().Cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	lg := Defaults()
	lg.Cfg = config.LargeSM()
	if err := lg.Cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5WindowsStable(t *testing.T) {
	o := Quick()
	s := NewSession(o)
	rows := Figure5(s, 4)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if len(r.WindowIPC) != 4 || len(r.WindowPhiMem) != 4 {
			t.Fatalf("%s: window counts wrong", r.Abbr)
		}
		for i, v := range r.WindowIPC {
			if v < 0 {
				t.Fatalf("%s window %d negative IPC", r.Abbr, i)
			}
		}
		for i, v := range r.WindowPhiMem {
			if v < 0 || v > 1 {
				t.Fatalf("%s window %d phiMem %.2f out of [0,1]", r.Abbr, i, v)
			}
		}
	}
	if FormatFigure5(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestFigure7Aggregates(t *testing.T) {
	s := quickSession(t)
	rows := runWorkloads(s, Pairs()[:2], false)
	a := Figure7aFrom(s, rows)
	if a.ALU <= 0 || a.REG <= 0 {
		t.Fatalf("utilization ratios not positive: %+v", a)
	}
	b := Figure7bFrom(rows)
	for _, p := range []string{"leftover", "spatial", "even", "dynamic"} {
		cc, ok := b.Cache[p]
		if !ok {
			t.Fatalf("missing policy %s in cache category", p)
		}
		for _, v := range cc {
			if v < 0 || v > 1 {
				t.Fatalf("%s cache miss rate %v out of range", p, v)
			}
		}
	}
	c := Figure7cFrom(rows)
	if len(c) != 4 {
		t.Fatalf("figure7c rows = %d", len(c))
	}
	for _, r := range c {
		if r.Total < 0 || r.Total > 1 {
			t.Fatalf("%s total stall %v out of range", r.Policy, r.Total)
		}
	}
	if FormatFigure7(a, b, c) == "" {
		t.Fatal("empty format")
	}
}

func TestFigure9Fairness(t *testing.T) {
	s := quickSession(t)
	pairRows := runWorkloads(s, Pairs()[:1], false)
	tripleRows := runWorkloads(s, Triples()[:1], false)
	rows := Figure9(s, pairRows, tripleRows)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Policy == "leftover" {
			// Normalized to itself.
			if r.MinSpeedup2 < 0.99 || r.MinSpeedup2 > 1.01 {
				t.Fatalf("left-over fairness not 1.0: %v", r.MinSpeedup2)
			}
		}
		if r.ANTT2 <= 0 || r.ANTT3 <= 0 {
			t.Fatalf("%s ANTT not positive", r.Policy)
		}
	}
	if FormatFigure9(rows) == "" {
		t.Fatal("empty format")
	}
}

func TestEnergyNormalization(t *testing.T) {
	s := quickSession(t)
	rows := runWorkloads(s, Pairs()[:1], false)
	er := Energy(s, rows)
	if len(er) != 4 {
		t.Fatalf("rows = %d", len(er))
	}
	for _, r := range er {
		if r.Policy == "leftover" && (r.EnergyNorm < 0.999 || r.EnergyNorm > 1.001) {
			t.Fatalf("left-over energy not normalized to 1: %v", r.EnergyNorm)
		}
		if r.EnergyNorm <= 0 || r.DynPowerNorm <= 0 {
			t.Fatalf("%s non-positive energy metrics", r.Policy)
		}
	}
	if FormatEnergy(er) == "" {
		t.Fatal("empty format")
	}
}

func TestFigure10Sensitivity(t *testing.T) {
	o := Quick()
	ws := Pairs()[:1]
	a := Figure10a(o, ws)
	if len(a) != 8 {
		t.Fatalf("figure10a rows = %d", len(a))
	}
	for _, r := range a {
		if r.Norm <= 0 {
			t.Fatalf("%s non-positive", r.Label)
		}
	}
	b := Figure10b(o, ws)
	if len(b) != 2 || b[0].Scheduler != "gto" || b[1].Scheduler != "rr" {
		t.Fatalf("figure10b rows wrong: %+v", b)
	}
	if FormatFigure10(a, b) == "" {
		t.Fatal("empty format")
	}
}

func TestBigSMRuns(t *testing.T) {
	o := Quick()
	o.Cfg = config.LargeSM()
	r := BigSM(o, Pairs()[:1])
	if r.PerfNorm <= 0 || r.FairnessNorm <= 0 {
		t.Fatalf("bigsm result not positive: %+v", r)
	}
	if FormatBigSM(r) == "" {
		t.Fatal("empty format")
	}
}

func TestOracleRecordsPartition(t *testing.T) {
	s := quickSession(t)
	rows := runWorkloads(s, Pairs()[:1], true)
	r := rows[0]
	if r.Oracle <= 0 {
		t.Fatal("oracle missing")
	}
	// The oracle is defined as the max over the search space, so it can
	// never be reported below any individual policy.
	for _, v := range []float64{r.Spatial, r.Even, r.Dynamic} {
		if r.Oracle < v-1e-9 {
			t.Fatalf("oracle %.3f below policy %.3f", r.Oracle, v)
		}
	}
}

func TestBuildReport(t *testing.T) {
	s := quickSession(t)
	pairRows := runWorkloads(s, Pairs()[:1], false)
	tripleRows := runWorkloads(s, Triples()[:1], false)
	fair := Figure9(s, pairRows, tripleRows)
	en := Energy(s, pairRows)
	rep := BuildReport(pairRows, tripleRows, fair, en)
	if len(rep.Claims) < 6 {
		t.Fatalf("claims = %d, want >= 6", len(rep.Claims))
	}
	ids := map[string]bool{}
	for _, c := range rep.Claims {
		if c.ID == "" || c.Claim == "" {
			t.Fatalf("incomplete claim %+v", c)
		}
		ids[c.ID] = true
	}
	for _, want := range []string{"Fig.6 Dynamic", "Fig.8 3-kernel", "§V-G energy"} {
		if !ids[want] {
			t.Fatalf("missing claim %s", want)
		}
	}
	if rep.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestBuildReportEmptyInputs(t *testing.T) {
	rep := BuildReport(nil, nil, nil, nil)
	if len(rep.Claims) != 0 {
		t.Fatalf("claims from empty inputs: %d", len(rep.Claims))
	}
}

func TestOccupancyCurveCached(t *testing.T) {
	s := quickSession(t)
	a := s.OccupancyCurve(kernels.ByAbbr("BLK"))
	b := s.OccupancyCurve(kernels.ByAbbr("BLK"))
	if a.MaxCTAs != b.MaxCTAs || a.PeakCTAs != b.PeakCTAs {
		t.Fatal("cached curve differs")
	}
	for j := 1; j <= a.MaxCTAs; j++ {
		if a.IPC[j] != b.IPC[j] {
			t.Fatal("cached curve IPC differs")
		}
	}
}

func TestClassifySyntheticCurves(t *testing.T) {
	mk := func(norm []float64) Curve {
		c := Curve{MaxCTAs: len(norm) - 1, Norm: norm, IPC: norm}
		best := 0.0
		for j := 1; j < len(norm); j++ {
			if norm[j] > best {
				best, c.PeakCTAs = norm[j], j
			}
		}
		return c
	}
	cases := []struct {
		name string
		c    Curve
		mpki float64
		want Category
	}{
		{"rising", mk([]float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}), 1, ComputeNonSaturating},
		{"saturating", mk([]float64{0, 0.5, 0.92, 0.98, 1.0}), 1, ComputeSaturating},
		{"memory", mk([]float64{0, 0.95, 0.99, 1.0}), 90, MemoryIntensive},
		{"cache", mk([]float64{0, 0.5, 1.0, 0.6, 0.3}), 5, L1CacheSensitive},
		{"empty", Curve{}, 0, ComputeNonSaturating},
	}
	for _, tc := range cases {
		tc.c.L2MPKI = tc.mpki
		if got := classify(tc.c); got != tc.want {
			t.Errorf("%s: classified %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestNormAtUsesEnvelope(t *testing.T) {
	c := Curve{MaxCTAs: 4, Norm: []float64{0, 0.5, 1.0, 0.6, 0.3}}
	// With up to 3 CTAs allowed, the runtime would launch only 2 (the
	// peak); the achievable performance is the envelope value.
	if got := normAt(c, 3); got != 1.0 {
		t.Fatalf("normAt(3) = %v, want envelope 1.0", got)
	}
	if got := normAt(c, 1); got != 0.5 {
		t.Fatalf("normAt(1) = %v, want 0.5", got)
	}
	if got := normAt(c, 0); got != 0 {
		t.Fatalf("normAt(0) = %v, want 0", got)
	}
	if got := normAt(c, 99); got != 1.0 {
		t.Fatalf("normAt beyond max = %v, want clamp", got)
	}
}

func TestFormatHelpersNonEmpty(t *testing.T) {
	rows := []Figure6Row{{
		Workload: "A_B", Category: "Compute+Cache",
		LeftOverIPC: 100, Spatial: 1.1, Even: 1.2, Dynamic: 1.3, Oracle: 1.4,
		Partition: []int{3, 2},
	}}
	if out := FormatFigure8(rows); !strings.Contains(out, "A_B") {
		t.Fatalf("figure8 format missing workload: %q", out)
	}
	t3 := []Table3Row{{Workload: "A_B", Category: "c", Dyn: "(3,2)", Even: "(2,2)"}}
	if out := FormatTable3(t3); !strings.Contains(out, "(3,2)") {
		t.Fatal("table3 format missing partition")
	}
	f9 := []Figure9Row{{Policy: "dynamic", MinSpeedup2: 1.2, MinSpeedup3: 1.3, ANTT2: 1.5, ANTT3: 1.7}}
	if out := FormatFigure9(f9); !strings.Contains(out, "dynamic") {
		t.Fatal("figure9 format missing policy")
	}
	er := []EnergyRow{{Policy: "dynamic", EnergyNorm: 0.85, DynPowerNorm: 1.03}}
	if out := FormatEnergy(er); !strings.Contains(out, "0.850") {
		t.Fatal("energy format missing value")
	}
	a := []Figure10aRow{{Label: "sample=5k", Norm: 1.0}}
	b := []Figure10bRow{{Scheduler: "gto"}}
	if out := FormatFigure10(a, b); !strings.Contains(out, "sample=5k") {
		t.Fatal("figure10 format missing label")
	}
	if out := FormatBigSM(BigSMResult{PerfNorm: 1.26, FairnessNorm: 1.26}); !strings.Contains(out, "1.26") {
		t.Fatal("bigsm format missing value")
	}
}

func TestFormatFigure8SpatialFallbackLabel(t *testing.T) {
	rows := []Figure6Row{{Workload: "X_Y_Z", ChoseSpatial: true, Spatial: 1, Even: 1, Dynamic: 1}}
	if out := FormatFigure8(rows); !strings.Contains(out, "spatial") {
		t.Fatal("fallback not labeled")
	}
}

func TestSummarizeFigure6SkipsMissingOracle(t *testing.T) {
	rows := []Figure6Row{
		{Spatial: 1, Even: 1, Dynamic: 1, Oracle: 0},
		{Spatial: 2, Even: 2, Dynamic: 2, Oracle: 2},
	}
	g := SummarizeFigure6(rows)
	if g.Oracle != 2 {
		t.Fatalf("oracle gmean = %v, want 2 (zero entries skipped)", g.Oracle)
	}
}

func TestCSVExports(t *testing.T) {
	var sb strings.Builder
	rows := []Table2Row{{Abbr: "BLK", Insts: 100, RegPct: 95, Type: "Memory", GridDim: 480, BlockDim: 128}}
	if err := WriteTable2CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "BLK") || !strings.Contains(sb.String(), "app,insts") {
		t.Fatalf("table2 csv incomplete: %q", sb.String())
	}

	sb.Reset()
	f6 := []Figure6Row{{Workload: "A_B", Category: "c", Spatial: 1, Even: 1.1, Dynamic: 1.2, Partition: []int{4, 3}}}
	if err := WriteFigure6CSV(&sb, f6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A_B") || !strings.Contains(sb.String(), "[4 3]") {
		t.Fatalf("figure6 csv incomplete: %q", sb.String())
	}

	sb.Reset()
	curves := []Curve{{Abbr: "NN", Category: L1CacheSensitive, MaxCTAs: 2,
		IPC: []float64{0, 100, 200}, Norm: []float64{0, 0.5, 1}}}
	if err := WriteCurvesCSV(&sb, curves); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("curves csv lines = %d, want 3", len(lines))
	}
}
