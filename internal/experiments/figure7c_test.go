package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"warpedslicer/internal/sm"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// suiteRows runs the same co-run subset the rest of the suite exercises,
// shared across the tests in this file via the session's caches.
func suiteRows(t *testing.T, s *Session) []Figure6Row {
	t.Helper()
	return runWorkloads(s, Pairs()[:2], false)
}

// TestStallConservationOnSuiteCoRuns pins the attribution invariant on
// every co-run (and isolation run) the suite executes: per-kernel stall
// counters sum exactly to the SM-wide classes.
func TestStallConservationOnSuiteCoRuns(t *testing.T) {
	s := quickSession(t)
	rows := suiteRows(t, s)
	checkConservation := func(name string, st sm.Stats) {
		t.Helper()
		var mem, raw, exec, ibuf uint64
		for _, ks := range st.PerKernel {
			mem += ks.StallMem
			raw += ks.StallRAW
			exec += ks.StallExec
			ibuf += ks.StallIBuf
		}
		if mem != st.StallMem || raw != st.StallRAW || exec != st.StallExec || ibuf != st.StallIBuf {
			t.Errorf("%s: per-kernel sums (%d/%d/%d/%d) != SM-wide (%d/%d/%d/%d)",
				name, mem, raw, exec, ibuf, st.StallMem, st.StallRAW, st.StallExec, st.StallIBuf)
		}
	}
	checked := 0
	for _, row := range rows {
		for policy, r := range row.Runs {
			checkConservation(row.Workload+"/"+policy, r.SM)
			checked++
		}
		for _, spec := range row.Runs["leftover"].Specs {
			checkConservation("iso/"+spec.Abbr, s.Isolation(spec).SM)
			checked++
		}
	}
	if checked < 8 {
		t.Fatalf("only %d runs checked; suite subset shrank", checked)
	}
}

func TestFigure7cDetailRows(t *testing.T) {
	s := quickSession(t)
	rows := suiteRows(t, s)
	det := Figure7cDetail(s, rows)
	if len(det) == 0 {
		t.Fatal("no detail rows")
	}
	// Per workload: 2 alone rows + 2 rows per policy (4 policies).
	if want := len(rows) * (2 + 2*4); len(det) != want {
		t.Fatalf("detail rows = %d, want %d", len(det), want)
	}
	perConfig := map[string]int{}
	for _, r := range det {
		perConfig[r.Config]++
		if r.Total < 0 || r.Total > 1 {
			t.Fatalf("%s/%s/%s total %v out of range", r.Workload, r.Kernel, r.Config, r.Total)
		}
		if got := r.Mem + r.RAW + r.Exec + r.IBuf; got != r.Total {
			t.Fatalf("%s/%s/%s total %v != component sum %v", r.Workload, r.Kernel, r.Config, r.Total, got)
		}
	}
	for _, cfg := range []string{"alone", "leftover", "spatial", "even", "dynamic"} {
		if perConfig[cfg] != 2*len(rows) {
			t.Fatalf("config %s has %d rows, want %d (%v)", cfg, perConfig[cfg], 2*len(rows), perConfig)
		}
	}
	// Shared-mode rows of one workload+config sum to the run's SM-wide
	// fractions: the CSV-facing face of the conservation invariant.
	for _, row := range rows {
		for policy, run := range row.Runs {
			var mem float64
			for _, r := range det {
				if r.Workload == row.Workload && r.Config == policy {
					mem += r.Mem
				}
			}
			want := float64(run.SM.StallMem) / float64(run.SM.Slots)
			if diff := mem - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%s/%s: summed mem fraction %v != SM-wide %v", row.Workload, policy, mem, want)
			}
		}
	}
	if FormatFigure7cDetail(det) == "" {
		t.Fatal("empty format")
	}
}

// TestFigure7cGoldenCSV pins the CSV byte-for-byte: the simulator is
// deterministic, so any drift is a real behavior change. Refresh with
// `go test ./internal/experiments -run Figure7cGolden -update`.
func TestFigure7cGoldenCSV(t *testing.T) {
	s := quickSession(t)
	det := Figure7cDetail(s, runWorkloads(s, Pairs()[:1], false))
	var buf bytes.Buffer
	if err := WriteFigure7cCSV(&buf, det); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "figure7c.golden.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("figure7c.golden.csv drifted.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestUtilizationDenominators hand-computes Figure 7a's denominators so a
// config change (unit counts, register file, shared memory) cannot silently
// skew the ratios. The baseline models 16 SMs with 2 ALU pipes, one SFU
// and one LD/ST pipe, 32768 registers and 48KB shared memory per SM.
func TestUtilizationDenominators(t *testing.T) {
	s := quickSession(t)
	cfg := s.O.Cfg
	if cfg.NumSMs != 16 || cfg.SM.ALUUnits != 2 || cfg.SM.Registers != 32768 || cfg.SM.SharedMemBytes != 49152 {
		t.Fatalf("baseline config changed (NumSMs=%d ALUUnits=%d Registers=%d SharedMemBytes=%d); re-derive this test",
			cfg.NumSMs, cfg.SM.ALUUnits, cfg.SM.Registers, cfg.SM.SharedMemBytes)
	}
	var r CoRun
	r.Cycles = 1000
	// cyc = 1000 cycles * 16 SMs = 16000 SM-cycles.
	r.SM.ALUBusy = 8000   // of 16000*2 ALU-unit-cycles -> 0.25
	r.SM.SFUBusy = 4000   // of 16000 SFU-cycles        -> 0.25
	r.SM.LDSTBusy = 12000 // of 16000 LDST-cycles       -> 0.75
	r.SM.RegCycles = 16000 * 16384
	r.SM.ShmCycles = 16000 * 12288
	u := utilization(s, r)
	want := [5]float64{
		0.25,              // ALU: 8000 / (16000 * 2 units)
		0.25,              // SFU: 4000 / 16000 (one unit per SM)
		0.75,              // LDST: 12000 / 16000 (one unit per SM)
		16384.0 / 32768.0, // REG: half the register file, cycle-averaged
		12288.0 / 49152.0, // SHM: a quarter of shared memory
	}
	if u != want {
		t.Fatalf("utilization = %v, want %v", u, want)
	}
	// Zero-cycle runs must not divide by zero.
	if z := utilization(s, CoRun{}); z != ([5]float64{}) {
		t.Fatalf("zero-cycle utilization = %v, want zeros", z)
	}
}
