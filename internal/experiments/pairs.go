package experiments

import "warpedslicer/internal/kernels"

// Workload is one multiprogrammed benchmark combination.
type Workload struct {
	Specs    []*kernels.Spec
	Category string
}

// Name returns the joined abbreviation ("HOT_DXT").
func (w Workload) Name() string { return WorkloadName(w.Specs) }

// Pairs returns the 30 two-kernel workloads of Figure 6 / Table III: every
// Compute+Cache, Compute+Memory, and Compute+Compute combination.
func Pairs() []Workload {
	computes := kernels.ComputeSuite() // DXT, HOT, IMG, MM
	memories := kernels.MemorySuite()  // BLK, BFS, KNN, LBM
	caches := kernels.CacheSuite()     // MVP, NN

	var out []Workload
	for _, c := range computes {
		for _, q := range caches {
			out = append(out, Workload{Specs: []*kernels.Spec{c, q}, Category: "Compute+Cache"})
		}
	}
	for _, c := range computes {
		for _, m := range memories {
			out = append(out, Workload{Specs: []*kernels.Spec{c, m}, Category: "Compute+Memory"})
		}
	}
	for i, a := range computes {
		for _, b := range computes[i+1:] {
			out = append(out, Workload{Specs: []*kernels.Spec{a, b}, Category: "Compute+Compute"})
		}
	}
	return out
}

// Triples returns the 15 three-kernel workloads of Figure 8: one
// memory/cache kernel plus two compute kernels. BFS and HOT are excluded
// (their CTAs are too large for three kernels to co-reside, per the paper).
func Triples() []Workload {
	first := []*kernels.Spec{
		kernels.ByAbbr("BLK"),
		kernels.ByAbbr("KNN"),
		kernels.ByAbbr("LBM"),
		kernels.ByAbbr("NN"),
		kernels.ByAbbr("MVP"),
	}
	computePairs := [][2]string{{"IMG", "DXT"}, {"MM", "DXT"}, {"MM", "IMG"}}

	var out []Workload
	for _, f := range first {
		for _, cp := range computePairs {
			out = append(out, Workload{
				Specs: []*kernels.Spec{
					f, kernels.ByAbbr(cp[0]), kernels.ByAbbr(cp[1]),
				},
				Category: "3-Kernel",
			})
		}
	}
	return out
}
