package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/policy"
	"warpedslicer/internal/prof"
)

// EngineProfRow is one line of the engine self-profile sweep: one
// workload's deterministic cycle classification (the fast-forward
// opportunity meter) plus, when the session attaches a profiler
// (Options.ProfPeriod > 0), the sampled wall-clock phase costs of the
// cycle loop under that kernel mix. The two halves answer different
// questions — "how many cycles could an event-driven engine skip for
// this mix" and "which loop phase should a speed PR attack first" — and
// only the first is part of the determinism contract.
type EngineProfRow struct {
	Workload string // e.g. "HOT" or "HOT_BLK"
	Category string // "single" or the Table II pairing category
	Kernels  int
	Cycles   int64

	// SM-cycle class fractions (of SMs × Cycles); they sum to 1.
	IssuingFrac, StallKnownFrac, StallUnknownFrac, IdleFrac float64

	// FFSkippableFrac is the fraction of whole-device cycles where every
	// SM had a known wake-up and the memory system held only stamped
	// replies — the upper bound on ROADMAP item 2a's payoff.
	FFSkippableFrac float64

	// SchedFastFrac is the fraction of issue slots the ready-set
	// scheduler resolved from its cached attribution without walking the
	// warp list — the realized, deterministic half of that opportunity.
	SchedFastFrac float64

	// NsPerCycle is the measured full-loop wall cost per cycle over the
	// profiler's sampled cycles (0 when profiling is off).
	NsPerCycle float64
	// PhaseNsPerCycle / PhaseShare split NsPerCycle by phase; the shares
	// sum to 1 (100% of measured loop time) by the prof package's
	// telescoping-mark construction.
	PhaseNsPerCycle [prof.NumPhases]float64
	PhaseShare      [prof.NumPhases]float64
}

// EngineProfWorkloads is the sweep's kernel-mix axis: every distinct
// kernel alone (phase costs of a homogeneous mix), then the given
// co-run workloads (how sharing shifts them).
func EngineProfWorkloads(ws []Workload) []Workload {
	var out []Workload
	seen := map[string]bool{}
	for _, w := range ws {
		for _, spec := range w.Specs {
			if !seen[spec.Abbr] {
				seen[spec.Abbr] = true
				out = append(out, Workload{Specs: []*kernels.Spec{spec}, Category: "single"})
			}
		}
	}
	return append(out, ws...)
}

// FigEngineProf profiles the engine under each workload: a fixed-length
// run under the even intra-SM partition, long enough for the phase mix to
// stabilize (the session's IsolationCycles window). Workloads fan across
// the worker pool; rows are collected by index, so the deterministic
// columns are byte-identical for any Parallelism.
func FigEngineProf(s *Session, ws []Workload) []EngineProfRow {
	rows := make([]EngineProfRow, len(ws))
	s.parallelFor(len(ws), func(i int) {
		rows[i] = s.engineProfWorkload(ws[i])
	})
	return rows
}

func (s *Session) engineProfWorkload(w Workload) EngineProfRow {
	name := w.Name()
	log := s.O.Events.WithRun("engineprof/" + name)
	wall0, cpu0 := s.O.ledgerStart()
	g := gpu.New(s.O.Cfg, policy.Even{})
	g.SetSchedulers(s.O.Sched)
	rec := s.O.instrument(g, log)
	for _, spec := range w.Specs {
		g.AddKernel(spec, 0)
	}
	g.RunCycles(s.O.IsolationCycles)

	p := g.Profile()
	r := EngineProfRow{
		Workload: name,
		Category: w.Category,
		Kernels:  len(w.Specs),
		Cycles:   p.Cycles,
	}
	if smCycles := float64(p.SMs) * float64(p.Cycles); smCycles > 0 {
		r.IssuingFrac = float64(p.CycIssuing) / smCycles
		r.StallKnownFrac = float64(p.CycStallKnown) / smCycles
		r.StallUnknownFrac = float64(p.CycStallUnknown) / smCycles
		r.IdleFrac = float64(p.CycIdle) / smCycles
	}
	r.FFSkippableFrac = p.FFSkippableFrac
	r.SchedFastFrac = p.SchedFastFrac
	if p.Phases != nil {
		r.NsPerCycle = p.Phases.NsPerCycle
		for i, pc := range p.Phases.Phases {
			r.PhaseNsPerCycle[i] = pc.NsPerCycle
			r.PhaseShare[i] = pc.Share
		}
	}

	cycles := p.Cycles
	var total uint64
	var perIPC []float64
	for _, k := range g.Kernels {
		insts := g.KernelInsts(k.Slot)
		total += insts
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(insts) / float64(cycles)
		}
		perIPC = append(perIPC, ipc)
	}
	ipc := 0.0
	if cycles > 0 {
		ipc = float64(total) / float64(cycles)
	}
	s.recordRun(runMeta{
		kind: "engineprof", policy: "even", specs: w.Specs,
		cycles: cycles, ipc: ipc, perKernelIPC: perIPC,
	}, g, rec, wall0, cpu0)
	return r
}

// WriteEngineProfCSV exports the sweep. The four class-fraction columns
// of any row sum to 1, the phase_share_* columns sum to 1 whenever
// profiling was on (all-zero otherwise), and only the phase/ns columns
// carry wall-clock noise — everything else is deterministic.
func WriteEngineProfCSV(w io.Writer, rows []EngineProfRow) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "category", "kernels", "cycles",
		"issuing_frac", "stall_known_frac", "stall_unknown_frac", "idle_frac",
		"fast_forward_skippable_frac", "sched_fastpath_frac", "ns_per_cycle"}
	for ph := prof.Phase(0); ph < prof.NumPhases; ph++ {
		header = append(header, "phase_ns_"+ph.String())
	}
	for ph := prof.Phase(0); ph < prof.NumPhases; ph++ {
		header = append(header, "phase_share_"+ph.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Workload, r.Category, fmt.Sprint(r.Kernels), fmt.Sprint(r.Cycles),
			f4(r.IssuingFrac), f4(r.StallKnownFrac), f4(r.StallUnknownFrac), f4(r.IdleFrac),
			f4(r.FFSkippableFrac), f4(r.SchedFastFrac), f4(r.NsPerCycle),
		}
		for ph := prof.Phase(0); ph < prof.NumPhases; ph++ {
			rec = append(rec, f4(r.PhaseNsPerCycle[ph]))
		}
		for ph := prof.Phase(0); ph < prof.NumPhases; ph++ {
			rec = append(rec, f4(r.PhaseShare[ph]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatEngineProf renders the sweep as a compact table: the opportunity
// meter always, the phase split only when profiling was on.
func FormatEngineProf(rows []EngineProfRow) string {
	var b strings.Builder
	b.WriteString("workload        issuing known unknown idle   ff-skip sched-fast  ns/cyc  top phases\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %6.1f%% %4.1f%% %5.1f%% %5.1f%% %6.2f%% %9.1f%%",
			r.Workload, 100*r.IssuingFrac, 100*r.StallKnownFrac,
			100*r.StallUnknownFrac, 100*r.IdleFrac, 100*r.FFSkippableFrac,
			100*r.SchedFastFrac)
		if r.NsPerCycle > 0 {
			fmt.Fprintf(&b, " %7.0f ", r.NsPerCycle)
			for ph := prof.Phase(0); ph < prof.NumPhases; ph++ {
				if r.PhaseShare[ph] >= 0.10 {
					fmt.Fprintf(&b, " %s=%.0f%%", ph, 100*r.PhaseShare[ph])
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
