package experiments

import (
	"fmt"

	"warpedslicer/internal/digest"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/runlog"
)

// runMeta is the identity and outcome a completed run hands to the
// ledger path. Everything in it is deterministic.
type runMeta struct {
	kind    string
	policy  string
	ctas    []int
	specs   []*kernels.Spec
	targets []uint64
	cycles  int64
	timeout bool
	ipc     float64
	// perKernelIPC is indexed by kernel slot (nil for runs that report
	// only the combined IPC).
	perKernelIPC []float64
}

// ledgerStart samples the ledger's injected clocks before a run (zeros
// when no ledger or no clocks are wired), so the journal can report the
// run's wall/CPU cost without the sim side touching a clock.
func (o Options) ledgerStart() (wallNs, cpuNs int64) {
	return o.Ledger.Now()
}

// recordRun folds one completed simulation into the session's ledger —
// content-addressed inputs, headline metrics (combined and per-kernel
// IPC, stall composition, scheduler fast-path and fast-forward meters),
// the windowed counter series, and the digest-trail summary — then
// refreshes the Hub's /runs view. No-op without a ledger. Errors are
// reported on the event log rather than failing the run: provenance is
// a sink, not a dependency.
func (s *Session) recordRun(m runMeta, g *gpu.GPU, rec *runlog.Recorder, wall0, cpu0 int64) {
	led := s.O.Ledger
	if led == nil {
		return
	}
	in := runlog.Inputs{
		Schema:        runlog.SchemaVersion,
		DigestVersion: digest.Version,
		Kind:          m.kind,
		Workload:      WorkloadName(m.specs),
		Policy:        m.policy,
		CTAs:          m.ctas,
		Targets:       m.targets,
		Sched:         s.O.Sched.String(),
		Windows: runlog.Windows{
			Isolation:        s.O.IsolationCycles,
			MaxCoRun:         s.O.MaxCoRunCycles,
			Warmup:           s.O.Warmup,
			Sample:           s.O.Sample,
			AlgDelay:         s.O.AlgDelay,
			OracleTargetFrac: s.O.OracleTargetFrac,
			UseScaledIPC:     s.O.UseScaledIPC,
			SymmetricScaling: s.O.SymmetricScaling,
		},
		Config: s.O.Cfg,
	}
	for _, spec := range m.specs {
		in.Kernels = append(in.Kernels, spec.Abbr)
	}

	rr := &runlog.RunRecord{
		Inputs:        in,
		Cycles:        m.cycles,
		Timeout:       m.timeout,
		DigestChain:   g.DigestChain(),
		DigestRecords: g.DigestRecords(),
		Metrics:       runMetrics(m, g),
		Series:        rec.Series(),
	}

	wall1, cpu1 := led.Now()
	added, err := led.Append(rr, wall1-wall0, cpu1-cpu0)
	if err != nil {
		s.O.Events.Emit(m.cycles, "runlog_error", map[string]any{"error": err.Error()})
		return
	}
	if added && g.Digests != nil {
		if err := led.PutTrail(rr.Key, g.Digests); err != nil {
			s.O.Events.Emit(m.cycles, "runlog_error", map[string]any{"error": err.Error()})
		}
	}
	if s.O.Hub != nil {
		s.O.Hub.PublishRuns(led.View())
	}
}

// runMetrics assembles the headline metric list in a fixed order:
// combined IPC, per-kernel IPC, the stall composition as fractions of
// issue slots, and the engine opportunity meters.
func runMetrics(m runMeta, g *gpu.GPU) []runlog.Metric {
	out := []runlog.Metric{{Name: "ipc", Value: m.ipc}}
	for i, v := range m.perKernelIPC {
		abbr := ""
		if i < len(m.specs) {
			abbr = m.specs[i].Abbr
		}
		out = append(out, runlog.Metric{Name: fmt.Sprintf("ipc[%d:%s]", i, abbr), Value: v})
	}
	agg := g.AggregateSM()
	if slots := float64(agg.Slots); slots > 0 {
		out = append(out,
			runlog.Metric{Name: "issued_frac", Value: float64(agg.Issued) / slots},
			runlog.Metric{Name: "stall_mem_frac", Value: float64(agg.StallMem) / slots},
			runlog.Metric{Name: "stall_raw_frac", Value: float64(agg.StallRAW) / slots},
			runlog.Metric{Name: "stall_exec_frac", Value: float64(agg.StallExec) / slots},
			runlog.Metric{Name: "stall_ibuf_frac", Value: float64(agg.StallIBuf) / slots},
			runlog.Metric{Name: "stall_idle_frac", Value: float64(agg.StallIdle) / slots},
		)
	}
	p := g.Profile()
	out = append(out,
		runlog.Metric{Name: "sched_fastpath_frac", Value: p.SchedFastFrac},
		runlog.Metric{Name: "fast_forward_skippable_frac", Value: p.FFSkippableFrac},
	)
	return out
}
