package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/metrics"
	"warpedslicer/internal/power"
)

// EnergyRow compares energy and dynamic power per policy (§V-G).
type EnergyRow struct {
	Policy string
	// EnergyNorm is total energy normalized to Left-Over (lower is
	// better; the paper reports 0.84 for Warped-Slicer).
	EnergyNorm float64
	// DynPowerNorm is average dynamic power normalized to Left-Over (the
	// paper reports +3.1% for Warped-Slicer).
	DynPowerNorm float64
}

// Energy evaluates the §V-G comparison over the Figure 6 pair runs.
func Energy(s *Session, rows []Figure6Row) []EnergyRow {
	model := power.Default()
	model.CoreClockMHz = s.O.Cfg.CoreClockMHz

	policies := []string{"leftover", "spatial", "even", "dynamic"}
	total := map[string]float64{}
	dynP := map[string][]float64{}
	for _, p := range policies {
		for _, row := range rows {
			r, ok := row.Runs[p]
			if !ok {
				continue
			}
			b := model.Energy(r.SM, r.Mem, r.Cycles)
			total[p] += b.TotalJ
			dynP[p] = append(dynP[p], b.AvgDynPowerW)
		}
	}
	base := total["leftover"]
	baseP := metrics.Mean(dynP["leftover"])
	var out []EnergyRow
	for _, p := range policies {
		row := EnergyRow{Policy: p}
		if base > 0 {
			row.EnergyNorm = total[p] / base
		}
		if baseP > 0 {
			row.DynPowerNorm = metrics.Mean(dynP[p]) / baseP
		}
		out = append(out, row)
	}
	return out
}

// FormatEnergy renders the energy table.
func FormatEnergy(rows []EnergyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %14s\n", "Policy", "Energy(norm)", "DynPower(norm)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.3f %14.3f\n", r.Policy, r.EnergyNorm, r.DynPowerNorm)
	}
	return b.String()
}

// FormatOverhead renders the §V-I hardware-overhead report.
func FormatOverhead(r power.OverheadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Profiling counters: %.0f um^2 per SM; global logic %.2f mm^2\n",
		r.PerSMCounterUM2, r.GlobalLogicMM2)
	fmt.Fprintf(&b, "Total overhead: %.2f mm^2 of %.0f mm^2 GPU = %.2f%% area\n",
		r.TotalMM2, r.GPUAreaMM2, r.AreaPct)
	fmt.Fprintf(&b, "Power overhead: %.1f mW dynamic (%.3f%%), %.2f mW leakage (%.4f%%)\n",
		r.DynPowerMW, r.DynPct, r.LeakPowerMW, r.LeakPct)
	return b.String()
}
