package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/metrics"
	"warpedslicer/internal/sm"
)

// Figure5Row characterizes one benchmark's stability over time: per-window
// IPC and memory-stall fraction (φmem), compared with the first sampling
// window (Figure 5 argues a 5K-cycle sample represents the long run).
type Figure5Row struct {
	Abbr string
	// WindowIPC[i] and WindowPhiMem[i] are measured over consecutive
	// windows of WindowCycles.
	WindowCycles int64
	WindowIPC    []float64
	WindowPhiMem []float64
	// FirstWindowErr is |IPC(window 0) - IPC(rest)| / IPC(rest): how well
	// the profiling window predicts steady state.
	FirstWindowErr float64
}

// Figure5 samples each benchmark's IPC and φmem over consecutive 5K-cycle
// windows spanning a 10x longer run (the paper compared 5K vs 50K).
func Figure5(s *Session, windows int) []Figure5Row {
	if windows <= 1 {
		windows = 10
	}
	win := s.O.Sample
	if win <= 0 {
		win = 5000
	}
	suite := kernels.Suite()
	rows := make([]Figure5Row, len(suite))
	// Each benchmark's windowed trace is an independent simulation; fan
	// them across the worker pool and collect rows by index.
	s.parallelFor(len(suite), func(idx int) {
		spec := suite[idx]
		g := gpu.New(s.O.Cfg, greedyFill{})
		g.SetSchedulers(s.O.Sched)
		g.AddKernel(spec, 0)

		row := Figure5Row{Abbr: spec.Abbr, WindowCycles: win}
		var prevInsts, prevMem, prevSlots uint64
		// Discard the cold-start window so the comparison mirrors the
		// controller (which warms up before sampling).
		g.RunCycles(s.O.Warmup)
		a := g.AggregateSM()
		prevInsts, prevMem, prevSlots = totalThreadInsts(a), a.StallMem, a.Slots

		for w := 0; w < windows; w++ {
			g.RunCycles(win)
			a = g.AggregateSM()
			insts, mem, slots := totalThreadInsts(a), a.StallMem, a.Slots
			row.WindowIPC = append(row.WindowIPC, float64(insts-prevInsts)/float64(win))
			row.WindowPhiMem = append(row.WindowPhiMem, metrics.Frac(mem-prevMem, slots-prevSlots))
			prevInsts, prevMem, prevSlots = insts, mem, slots
		}

		rest := metrics.Mean(row.WindowIPC[1:])
		if rest > 0 {
			err := row.WindowIPC[0]/rest - 1
			if err < 0 {
				err = -err
			}
			row.FirstWindowErr = err
		}
		rows[idx] = row
	})
	return rows
}

func totalThreadInsts(a sm.Stats) uint64 {
	var t uint64
	for _, k := range a.PerKernel {
		t += k.ThreadInsts
	}
	return t
}

// FormatFigure5 renders per-window IPC and φmem plus the first-window
// prediction error.
func FormatFigure5(rows []Figure5Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s IPC/%dk:", r.Abbr, r.WindowCycles/1000)
		for _, v := range r.WindowIPC {
			fmt.Fprintf(&b, " %6.1f", v)
		}
		fmt.Fprintf(&b, "  (first-window err %.1f%%)\n", r.FirstWindowErr*100)
		fmt.Fprintf(&b, "     phiMem: ")
		for _, v := range r.WindowPhiMem {
			fmt.Fprintf(&b, " %6.2f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
