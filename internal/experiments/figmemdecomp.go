package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"warpedslicer/internal/span"
)

// MemDecompRow is one line of the memory-interference decomposition: one
// benchmark's sampled L1-miss latency split across the hierarchy stages,
// in one mode — running alone (its isolation run), sharing the GPU with
// its co-runner under the even intra-SM partition, or the per-stage
// delta between the two. The delta rows are the experiment's point: they
// attribute the added shared-mode latency to specific stages (L2 bank
// queueing, DRAM backpressure, DRAM service, ...) — the mechanism behind
// the paper's Figure 7 memory-stall growth, which endpoint histograms
// cannot localize.
type MemDecompRow struct {
	Workload string // co-run name, e.g. "IMG_BLK"
	Category string // Table II pairing category
	Kernel   string // benchmark abbreviation
	Slot     int    // kernel slot within the co-run (0 when alone)
	Mode     string // "alone", "shared", "delta"
	Policy   string // sharing policy of the shared run

	// Spans counts completed traced requests behind the means.
	Spans uint64
	// EndToEnd is the mean traced L1-miss round trip in core cycles; the
	// Stage columns partition it exactly (conservation).
	EndToEnd float64
	Stage    [span.NumStages]float64

	// Mix fractions over completed spans (hit/merged of all spans, row
	// hits of DRAM-visiting spans).
	L2HitFrac, MergedFrac, RowHitFrac float64
}

func memDecompRow(workload, category, kernel, mode, policy string, slot int, t span.StageTotals) MemDecompRow {
	r := MemDecompRow{
		Workload: workload, Category: category, Kernel: kernel,
		Slot: slot, Mode: mode, Policy: policy,
		Spans:    t.Completed,
		EndToEnd: t.MeanEndToEnd(),
	}
	for st := span.Stage(0); st < span.NumStages; st++ {
		r.Stage[st] = t.Mean(st)
	}
	if t.Completed > 0 {
		r.L2HitFrac = float64(t.L2Hits) / float64(t.Completed)
		r.MergedFrac = float64(t.Merged) / float64(t.Completed)
	}
	if dram := t.RowHits + t.RowMisses; dram > 0 {
		r.RowHitFrac = float64(t.RowHits) / float64(dram)
	}
	return r
}

// delta computes shared minus alone, column by column. Counts keep the
// shared run's values (they size the shared-mode sample).
func (r MemDecompRow) delta(alone MemDecompRow) MemDecompRow {
	d := r
	d.Mode = "delta"
	d.EndToEnd -= alone.EndToEnd
	for st := range d.Stage {
		d.Stage[st] -= alone.Stage[st]
	}
	d.L2HitFrac -= alone.L2HitFrac
	d.MergedFrac -= alone.MergedFrac
	d.RowHitFrac -= alone.RowHitFrac
	return d
}

// MemDecompPolicy is the sharing policy the decomposition co-runs under:
// the even intra-SM partition, which always shares every SM (the dynamic
// controller may choose spatial multitasking, which would leave nothing
// to decompose for cleanly-separable pairs).
const MemDecompPolicy = "even"

// FigMemDecomp runs each workload's kernels alone and shared under the
// even partition, and decomposes the traced L1-miss latency per stage
// per kernel in each mode. Workloads fan across the session's worker
// pool; rows are collected by index, so output is byte-identical for any
// Parallelism. Row order: workload-major, then kernel slot, each as
// alone/shared/delta.
func FigMemDecomp(s *Session, ws []Workload) []MemDecompRow {
	perWS := make([][]MemDecompRow, len(ws))
	s.parallelFor(len(ws), func(i int) {
		perWS[i] = s.memDecompWorkload(ws[i])
	})
	var out []MemDecompRow
	for _, rows := range perWS {
		out = append(out, rows...)
	}
	return out
}

func (s *Session) memDecompWorkload(w Workload) []MemDecompRow {
	co := s.CoRun(w.Specs, MemDecompPolicy)
	name := w.Name()
	var out []MemDecompRow
	for slot, spec := range w.Specs {
		iso := s.Isolation(spec) // cached: CoRun already ran it for targets
		alone := memDecompRow(name, w.Category, spec.Abbr, "alone", MemDecompPolicy,
			0, iso.Spans.PerKernel[0])
		shared := memDecompRow(name, w.Category, spec.Abbr, "shared", MemDecompPolicy,
			slot, co.Spans.PerKernel[slot])
		out = append(out, alone, shared, shared.delta(alone))
	}
	return out
}

// WriteMemDecompCSV exports the decomposition. The stage columns of any
// alone/shared row sum to end_to_end (up to float rendering); delta rows
// difference the two modes column-wise.
func WriteMemDecompCSV(w io.Writer, rows []MemDecompRow) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "category", "kernel", "slot", "mode", "policy", "spans", "end_to_end"}
	for st := span.Stage(0); st < span.NumStages; st++ {
		header = append(header, st.String())
	}
	header = append(header, "l2_hit_frac", "merged_frac", "dram_row_hit_frac")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Workload, r.Category, r.Kernel, fmt.Sprint(r.Slot), r.Mode, r.Policy,
			fmt.Sprint(r.Spans), f4(r.EndToEnd),
		}
		for st := span.Stage(0); st < span.NumStages; st++ {
			rec = append(rec, f4(r.Stage[st]))
		}
		rec = append(rec, f4(r.L2HitFrac), f4(r.MergedFrac), f4(r.RowHitFrac))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatMemDecomp renders the decomposition grouped by workload, one
// compact line per (kernel, mode), stages in pipeline order.
func FormatMemDecomp(rows []MemDecompRow) string {
	var b strings.Builder
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			if last != "" {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s (%s)\n", r.Workload, r.Category)
			last = r.Workload
		}
		fmt.Fprintf(&b, "  %-4s %-6s n=%-5d e2e=%8.1f", r.Kernel, r.Mode, r.Spans, r.EndToEnd)
		for st := span.Stage(0); st < span.NumStages; st++ {
			if v := r.Stage[st]; v != 0 {
				fmt.Fprintf(&b, " %s=%.1f", st, v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
