package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/runlog"
)

func ledgerSession(t *testing.T, parallelism int) (*Session, *runlog.Ledger) {
	t.Helper()
	led, err := runlog.Open(filepath.Join(t.TempDir(), "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	o := Quick()
	o.Events = obs.NewEventLog()
	o.Ledger = led
	o.Parallelism = parallelism
	return NewSession(o), led
}

// readRecords loads every canonical record file keyed by name.
func readRecords(t *testing.T, led *runlog.Ledger) map[string][]byte {
	t.Helper()
	dir := filepath.Join(led.Dir(), "records")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(ents))
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestLedgerRecordsRuns checks the session-to-ledger wiring end to end: a
// co-run session lands one record per completed simulation (two isolation
// references plus the co-run), with the headline metrics the ISSUE calls
// out persisted, and identical inputs deduping on a re-run.
func TestLedgerRecordsRuns(t *testing.T) {
	s, led := ledgerSession(t, 1)
	specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}
	s.CoRun(specs, "even")

	runs := led.List()
	if len(runs) != 3 {
		t.Fatalf("ledger has %d runs, want 2 isolations + 1 co-run: %+v", len(runs), runs)
	}
	kinds := map[string]int{}
	for _, e := range runs {
		kinds[e.Kind]++
	}
	if kinds["iso"] != 2 || kinds["corun"] != 1 {
		t.Fatalf("run kinds = %v", kinds)
	}

	for _, e := range runs {
		rec, err := led.Get(e.Key)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"ipc", "sched_fastpath_frac", "fast_forward_skippable_frac"} {
			if _, ok := rec.Metric(name); !ok {
				t.Errorf("run %s (%s) missing metric %q", e.Key, e.Kind, name)
			}
		}
		if rec.Series == nil || len(rec.Series.Points) == 0 {
			t.Errorf("run %s (%s) recorded no counter series", e.Key, e.Kind)
		}
	}

	// Re-running the same workload hits only the ledger's dedupe path (the
	// isolation cache already absorbs the references).
	s2 := NewSession(s.O)
	s2.CoRun(specs, "even")
	v := led.View()
	if v.Appends != 3 || len(v.Runs) != 3 {
		t.Fatalf("after re-run: appends %d runs %d, want 3 and 3", v.Appends, len(v.Runs))
	}
	if v.DedupHits == 0 {
		t.Fatal("re-run produced no dedupe hits")
	}
}

// TestLedgerByteIdenticalAcrossParallelism is the tentpole determinism
// gate: serial and 4-way sessions over equal options must produce
// byte-identical record files (the journal differs only in timing and
// append order, which List sorts away).
func TestLedgerByteIdenticalAcrossParallelism(t *testing.T) {
	specs := []*kernels.Spec{kernels.ByAbbr("IMG"), kernels.ByAbbr("BLK")}

	s1, led1 := ledgerSession(t, 1)
	s1.CoRun(specs, "even")
	s4, led4 := ledgerSession(t, 4)
	s4.CoRun(specs, "even")

	r1, r4 := readRecords(t, led1), readRecords(t, led4)
	if len(r1) == 0 || len(r1) != len(r4) {
		t.Fatalf("record counts differ: %d vs %d", len(r1), len(r4))
	}
	for name, data := range r1 {
		other, ok := r4[name]
		if !ok {
			t.Fatalf("parallel ledger missing record %s", name)
		}
		if !bytes.Equal(data, other) {
			t.Fatalf("record %s differs between parallelism 1 and 4:\n%s\nvs\n%s", name, data, other)
		}
	}

	l1, l4 := led1.List(), led4.List()
	for i := range l1 {
		if l1[i].Key != l4[i].Key {
			t.Fatalf("listing order differs at %d: %s vs %s", i, l1[i].Key, l4[i].Key)
		}
	}
}

// TestLedgerStoresTrailForDigestRuns checks the bisector hand-off: with
// digesting armed, a recorded run's trail lands under trails/<key>.jsonl
// and round-trips with its chain intact.
func TestLedgerStoresTrailForDigestRuns(t *testing.T) {
	s, led := ledgerSession(t, 1)
	s.O.DigestEvery = 1024
	specs := []*kernels.Spec{kernels.ByAbbr("IMG")}
	tr := s.DigestTrail(specs, "even", nil, 1024)
	if len(tr.Records) == 0 {
		t.Fatal("digest run recorded no trail")
	}

	var key string
	for _, e := range led.List() {
		if e.Kind == "digest" {
			key = e.Key
		}
	}
	if key == "" {
		t.Fatalf("no digest-kind run in ledger: %+v", led.List())
	}
	if !led.HasTrail(key) {
		t.Fatal("digest run has no stored trail")
	}
	got, err := led.Trail(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Chain() != tr.Chain() {
		t.Fatalf("stored trail chain %s, run chain %s", got.Chain(), tr.Chain())
	}
	rec, err := led.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DigestChain != tr.Chain() || rec.DigestRecords == 0 {
		t.Fatalf("record digest summary: chain %s records %d", rec.DigestChain, rec.DigestRecords)
	}
}

// TestLedgerPublishesRunsView checks the Hub side: each recorded run
// refreshes the /runs view with the current ledger listing.
func TestLedgerPublishesRunsView(t *testing.T) {
	s, _ := ledgerSession(t, 1)
	s.O.Hub = obs.NewHub(s.O.Events)
	s.Isolation(kernels.ByAbbr("IMG"))
	v, ok := s.O.Hub.Runs().(runlog.View)
	if !ok {
		t.Fatalf("published runs view is %T", s.O.Hub.Runs())
	}
	if len(v.Runs) != 1 || v.Runs[0].Kind != "iso" {
		t.Fatalf("published view: %+v", v)
	}
}
