package experiments

import (
	"bytes"
	"math"
	"testing"

	"warpedslicer/internal/gpu"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/policy"
	"warpedslicer/internal/prof"
)

// TestEngineProfConservation pins the opportunity meter's accounting:
// every SM-cycle of a run lands in exactly one class, so the four class
// counters sum to SMs × cycles (the simassert build checks the same
// per-SM each cycle; this pins the aggregate on the default build), and
// the CSV-facing fractions sum to 1.
func TestEngineProfConservation(t *testing.T) {
	o := Quick()
	g := gpu.New(o.Cfg, policy.Even{})
	g.SetSchedulers(o.Sched)
	w := Pairs()[0]
	for _, spec := range w.Specs {
		g.AddKernel(spec, 0)
	}
	g.RunCycles(o.IsolationCycles)

	p := g.Profile()
	sum := p.CycIssuing + p.CycStallKnown + p.CycStallUnknown + p.CycIdle
	want := uint64(p.SMs) * uint64(p.Cycles)
	if sum != want {
		t.Fatalf("class sum = %d (issuing %d known %d unknown %d idle %d), want SMs×cycles = %d",
			sum, p.CycIssuing, p.CycStallKnown, p.CycStallUnknown, p.CycIdle, want)
	}
	if p.CycIssuing == 0 {
		t.Error("no issuing cycles in a co-run; classifier is mislabeling")
	}
	if uint64(p.FFSkippableCycles) > uint64(p.Cycles) {
		t.Errorf("ff_skippable = %d exceeds cycles %d", p.FFSkippableCycles, p.Cycles)
	}

	rows := FigEngineProf(NewSession(o), []Workload{w})
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	fracs := r.IssuingFrac + r.StallKnownFrac + r.StallUnknownFrac + r.IdleFrac
	if math.Abs(fracs-1) > 1e-9 {
		t.Errorf("class fractions sum to %v, want 1", fracs)
	}
	if r.NsPerCycle != 0 {
		t.Errorf("ns_per_cycle = %v with profiling off, want 0", r.NsPerCycle)
	}
}

// TestEngineProfDeterminism pins the determinism contract on the
// experiment's output: with profiling off every CSV column is a pure
// cycle count or a fraction of one, so serial and parallel sessions must
// produce byte-identical files.
func TestEngineProfDeterminism(t *testing.T) {
	ws := EngineProfWorkloads([]Workload{Pairs()[0]})
	csvAt := func(parallelism int) []byte {
		o := Quick()
		o.Parallelism = parallelism
		var buf bytes.Buffer
		if err := WriteEngineProfCSV(&buf, FigEngineProf(NewSession(o), ws)); err != nil {
			t.Fatalf("write csv: %v", err)
		}
		return buf.Bytes()
	}
	serial, parallel := csvAt(1), csvAt(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("engineprof CSV differs between -parallel 1 and 4:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
}

// TestEngineProfPhases pins the wall-clock half: with a profiler
// attached, phase shares sum to ~100% of measured loop time and the
// deterministic columns match a profiler-free run exactly (the profiler
// must never feed back into simulation state).
func TestEngineProfPhases(t *testing.T) {
	ws := []Workload{Pairs()[0]}

	off := Quick()
	bare := FigEngineProf(NewSession(off), ws)

	on := Quick()
	on.ProfPeriod = 7 // dense (and 64-coprime) so the quick window lands marks
	rows := FigEngineProf(NewSession(on), ws)

	r := rows[0]
	if r.NsPerCycle <= 0 {
		t.Fatal("profiler attached but measured 0 ns/cycle")
	}
	var shares float64
	for _, s := range r.PhaseShare {
		shares += s
	}
	if math.Abs(shares-1) > 1e-9 {
		t.Errorf("phase shares sum to %v, want 1", shares)
	}

	b := bare[0]
	if r.IssuingFrac != b.IssuingFrac || r.StallKnownFrac != b.StallKnownFrac ||
		r.StallUnknownFrac != b.StallUnknownFrac || r.IdleFrac != b.IdleFrac ||
		r.FFSkippableFrac != b.FFSkippableFrac || r.Cycles != b.Cycles {
		t.Errorf("deterministic columns changed when profiling was enabled:\nwith: %+v\nwithout: %+v", r, b)
	}
}

// TestEngineProfAllPhasesExercised pins that every phase the profiler
// reports is actually measured by some code path: a run with monitoring
// and state digests armed must land nonzero nanoseconds in all of them.
// This is the regression test for the dead obs_drain phase, which sat at
// a constant 0 because it was only marked when a sampled cycle (period
// 37) coincided with a monitor cycle (period 2048) — deliberately
// coprime, so never. Rare phases (obs_drain, digest) are now timed on
// every occurrence instead of sampled (prof.RareStart/RareEnd).
func TestEngineProfAllPhasesExercised(t *testing.T) {
	o := Quick()
	o.ProfPeriod = 7
	o.DigestEvery = 512
	o.Hub = obs.NewHub(nil)
	o.PublishEvery = 512

	g := gpu.New(o.Cfg, policy.Even{})
	g.SetSchedulers(o.Sched)
	o.Instrument(g)
	for _, spec := range Pairs()[0].Specs {
		g.AddKernel(spec, 0)
	}
	g.RunCycles(o.IsolationCycles)

	sum := g.Prof.Summary()
	if len(sum.Phases) != int(prof.NumPhases) {
		t.Fatalf("summary reports %d phases, want %d", len(sum.Phases), prof.NumPhases)
	}
	for _, pc := range sum.Phases {
		if pc.Ns <= 0 {
			t.Errorf("phase %q reported %d ns — dead phase: no code path ever times it", pc.Phase, pc.Ns)
		}
	}
	if g.DigestRecords() == 0 {
		t.Error("digests armed but no records taken")
	}
}
