package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/kernels"
	"warpedslicer/internal/metrics"
)

// Table2Row is one benchmark's measured utilization (Table II).
type Table2Row struct {
	Abbr       string
	Name       string
	Insts      uint64 // thread instructions in the isolation window
	RegPct     float64
	ShmPct     float64
	ALUPct     float64
	SFUPct     float64
	LSPct      float64
	GridDim    int
	BlockDim   int
	L2MPKI     float64 // misses per kilo warp instructions
	Type       string
	ProfilePct float64 // profiling window / estimated kernel runtime
}

// Table2 reproduces Table II by running every benchmark in isolation.
func Table2(s *Session) []Table2Row {
	cfg := s.O.Cfg
	s.PrewarmIsolations(kernels.Suite())
	var rows []Table2Row
	for _, spec := range kernels.Suite() {
		iso := s.Isolation(spec)
		agg := iso.SM
		cyc := uint64(iso.Cycles) * uint64(cfg.NumSMs)
		warpInsts := agg.PerKernel[0].WarpInsts

		row := Table2Row{
			Abbr:     spec.Abbr,
			Name:     spec.Name,
			Insts:    iso.Insts,
			RegPct:   metrics.Frac(agg.RegCycles, cyc*uint64(cfg.SM.Registers)) * 100,
			ShmPct:   metrics.Frac(agg.ShmCycles, cyc*uint64(cfg.SM.SharedMemBytes)) * 100,
			ALUPct:   metrics.Frac(agg.ALUBusy, cyc*uint64(cfg.SM.ALUUnits)) * 100,
			SFUPct:   metrics.Frac(agg.SFUBusy, cyc) * 100,
			LSPct:    metrics.Frac(agg.LDSTBusy, cyc) * 100,
			GridDim:  spec.GridDim,
			BlockDim: spec.BlockDim,
			L2MPKI:   metrics.MPKI(iso.Mem.L2MissPerKernel[0], warpInsts),
			Type:     spec.Class.String(),
		}
		row.ProfilePct = profilePct(s.O.Sample, iso.Cycles, spec.GridDim,
			agg.PerKernel[0].CTAsDone)
		rows = append(rows, row)
	}
	return rows
}

// profilePct estimates the one-time sampling cost against the kernel's
// full-grid runtime, extrapolated from the isolation window's CTA
// completion rate. With no completed CTAs (or a degenerate zero-cycle
// window) it falls back to the sampling window's share of the isolation
// window itself.
func profilePct(sample, isoCycles int64, gridDim int, ctasDone uint64) float64 {
	if isoCycles <= 0 {
		return 0
	}
	if ctasDone > 0 {
		fullRuntime := float64(gridDim) * float64(isoCycles) / float64(ctasDone)
		return float64(sample) / fullRuntime * 100
	}
	return float64(sample) / float64(isoCycles) * 100
}

// FormatTable2 renders the rows as an aligned text table.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %10s %5s %5s %5s %5s %5s %8s %7s %8s %-7s %8s\n",
		"App", "Inst", "Reg%", "Shm%", "ALU%", "SFU%", "LS%", "Griddim", "Blkdim", "L2MPKI", "Type", "Profile%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %10d %4.0f%% %4.0f%% %4.0f%% %4.0f%% %4.0f%% %8d %7d %8.1f %-7s %7.2f%%\n",
			r.Abbr, r.Insts, r.RegPct, r.ShmPct, r.ALUPct, r.SFUPct, r.LSPct,
			r.GridDim, r.BlockDim, r.L2MPKI, r.Type, r.ProfilePct)
	}
	return b.String()
}

// Figure1Row is one benchmark's stall breakdown (Figure 1).
type Figure1Row struct {
	Abbr string
	// Fractions of scheduler issue slots, in [0,1].
	Memory, RAW, Exec, IBuffer, Idle, Issued float64
}

// Figure1 reproduces the stall-cycle breakdown of Figure 1.
func Figure1(s *Session) []Figure1Row {
	s.PrewarmIsolations(kernels.Suite())
	var rows []Figure1Row
	for _, spec := range kernels.Suite() {
		iso := s.Isolation(spec)
		a := iso.SM
		n := a.Slots
		rows = append(rows, Figure1Row{
			Abbr:    spec.Abbr,
			Memory:  metrics.Frac(a.StallMem, n),
			RAW:     metrics.Frac(a.StallRAW, n),
			Exec:    metrics.Frac(a.StallExec, n),
			IBuffer: metrics.Frac(a.StallIBuf, n),
			Idle:    metrics.Frac(a.StallIdle, n),
			Issued:  metrics.Frac(a.Issued, n),
		})
	}
	return rows
}

// FormatFigure1 renders the stall breakdown.
func FormatFigure1(rows []Figure1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %7s %7s %7s %8s %6s %7s\n",
		"App", "Memory", "RAW", "Exec", "IBuffer", "Idle", "Issued")
	var avg Figure1Row
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s %6.1f%% %6.1f%% %6.1f%% %7.1f%% %5.1f%% %6.1f%%\n",
			r.Abbr, r.Memory*100, r.RAW*100, r.Exec*100, r.IBuffer*100, r.Idle*100, r.Issued*100)
		avg.Memory += r.Memory
		avg.RAW += r.RAW
		avg.Exec += r.Exec
		avg.IBuffer += r.IBuffer
		avg.Idle += r.Idle
		avg.Issued += r.Issued
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-4s %6.1f%% %6.1f%% %6.1f%% %7.1f%% %5.1f%% %6.1f%%\n",
			"AVG", avg.Memory/n*100, avg.RAW/n*100, avg.Exec/n*100, avg.IBuffer/n*100, avg.Idle/n*100, avg.Issued/n*100)
	}
	return b.String()
}
