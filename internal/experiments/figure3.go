package experiments

import (
	"fmt"
	"strings"

	"warpedslicer/internal/core"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/metrics"
	"warpedslicer/internal/sm"
)

// Category is the Figure 3a occupancy-scaling classification.
type Category string

// The paper's four empirical categories.
const (
	ComputeNonSaturating Category = "Compute Non-Saturating"
	ComputeSaturating    Category = "Compute Saturating"
	MemoryIntensive      Category = "Memory Intensive"
	L1CacheSensitive     Category = "L1 Cache Sensitive"
)

// Curve is one kernel's performance-vs-occupancy measurement.
type Curve struct {
	Abbr    string
	MaxCTAs int
	// IPC[j] is the measured IPC with exactly j CTAs per SM (index 0
	// unused); Norm[j] is IPC[j] / peak.
	IPC  []float64
	Norm []float64
	// PeakCTAs is the occupancy with the best IPC.
	PeakCTAs int
	Category Category
	L2MPKI   float64
}

// OccupancyCurve measures one kernel's IPC while capping per-SM CTAs at
// 1..max (the oracle input of §IV and the X-axis of Figure 3a).
// Concurrent callers for the same kernel share one measurement
// (singleflight), and the per-CTA-count runs — each an independent
// simulation — fan across the session's worker pool.
func (s *Session) OccupancyCurve(spec *kernels.Spec) Curve {
	s.mu.Lock()
	e, ok := s.curves[spec.Abbr]
	if !ok {
		e = &curveEntry{}
		s.curves[spec.Abbr] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.res = s.measureCurve(spec) })
	return e.res
}

// measureCurve runs the per-occupancy sweep behind OccupancyCurve.
func (s *Session) measureCurve(spec *kernels.Spec) Curve {
	cfg := s.O.Cfg
	maxC := spec.MaxCTAs(cfg.SM.Registers, cfg.SM.SharedMemBytes, cfg.SM.MaxThreads, cfg.SM.MaxCTAs)
	c := Curve{Abbr: spec.Abbr, MaxCTAs: maxC, IPC: make([]float64, maxC+1), Norm: make([]float64, maxC+1)}

	s.parallelFor(maxC, func(i int) {
		j := i + 1
		r := s.RunFixedCycles([]*kernels.Spec{spec}, "fixed", []int{j}, s.O.IsolationCycles)
		c.IPC[j] = r.IPC
	})
	peak := 0.0
	for j := 1; j <= maxC; j++ {
		if c.IPC[j] > peak {
			peak, c.PeakCTAs = c.IPC[j], j
		}
	}
	for j := 1; j <= maxC; j++ {
		if peak > 0 {
			c.Norm[j] = c.IPC[j] / peak
		}
	}
	iso := s.Isolation(spec)
	c.L2MPKI = metrics.MPKI(iso.Mem.L2MissPerKernel[0], iso.SM.PerKernel[0].WarpInsts)
	c.Category = classify(c)
	return c
}

// classify applies the paper's empirical categories to a measured curve.
func classify(c Curve) Category {
	n := c.MaxCTAs
	if n == 0 {
		return ComputeNonSaturating
	}
	// Performance degrades past an interior peak: cache-sensitive.
	if c.PeakCTAs < n && c.Norm[n] < 0.9 {
		return L1CacheSensitive
	}
	// Saturates by half occupancy.
	half := (n + 1) / 2
	if c.Norm[half] >= 0.9 {
		if c.L2MPKI >= 30 {
			return MemoryIntensive
		}
		return ComputeSaturating
	}
	return ComputeNonSaturating
}

// Figure3 measures every kernel's occupancy curve, fanning the kernels
// across the session's worker pool.
func Figure3(s *Session) []Curve {
	suite := kernels.Suite()
	out := make([]Curve, len(suite))
	s.parallelFor(len(suite), func(i int) {
		out[i] = s.OccupancyCurve(suite[i])
	})
	return out
}

// FormatFigure3 renders the curves and categories.
func FormatFigure3(curves []Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-24s peak@ ", "App", "Category")
	for j := 1; j <= 8; j++ {
		fmt.Fprintf(&b, "%6d", j)
	}
	b.WriteString("   (normalized IPC per CTA count)\n")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-4s %-24s %4d  ", c.Abbr, c.Category, c.PeakCTAs)
		for j := 1; j <= c.MaxCTAs; j++ {
			fmt.Fprintf(&b, "%6.2f", c.Norm[j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SweetSpot reproduces Figure 3b: it mirrors two kernels' occupancy curves
// against each other and finds the partition minimizing the larger
// performance loss, contrasted with even partitioning.
type SweetSpot struct {
	A, B string
	// CTAs chosen for A and B by the water-filling sweet-spot search.
	BestA, BestB int
	// LossA/LossB: 1 - normalized performance at the sweet spot.
	LossA, LossB float64
	// EvenA/EvenB and the corresponding losses under even partitioning.
	EvenA, EvenB         int
	EvenLossA, EvenLossB float64
}

// Figure3b computes the IMG+NN sweet-spot illustration.
func (s *Session) Figure3b(a, b *kernels.Spec) (SweetSpot, error) {
	ca := s.OccupancyCurve(a)
	cb := s.OccupancyCurve(b)
	cfg := s.O.Cfg.SM
	total := sm.Quota{Regs: cfg.Registers, Shm: cfg.SharedMemBytes, Threads: cfg.MaxThreads, CTAs: cfg.MaxCTAs}

	demands := []core.Demand{
		{Perf: ca.IPC, Need: sm.Quota{Regs: a.RegsPerCTA(), Shm: a.SharedMemPerTA, Threads: a.BlockDim, CTAs: 1}},
		{Perf: cb.IPC, Need: sm.Quota{Regs: b.RegsPerCTA(), Shm: b.SharedMemPerTA, Threads: b.BlockDim, CTAs: 1}},
	}
	alloc, err := core.WaterFill(demands, total)
	if err != nil {
		return SweetSpot{}, err
	}

	ss := SweetSpot{
		A: a.Abbr, B: b.Abbr,
		BestA: alloc.CTAs[0], BestB: alloc.CTAs[1],
		LossA: 1 - alloc.NormPerf[0], LossB: 1 - alloc.NormPerf[1],
	}
	// Even partitioning: each kernel limited to half of every resource.
	ss.EvenA = a.MaxCTAs(cfg.Registers/2, cfg.SharedMemBytes/2, cfg.MaxThreads/2, cfg.MaxCTAs/2)
	ss.EvenB = b.MaxCTAs(cfg.Registers/2, cfg.SharedMemBytes/2, cfg.MaxThreads/2, cfg.MaxCTAs/2)
	ss.EvenLossA = 1 - normAt(ca, ss.EvenA)
	ss.EvenLossB = 1 - normAt(cb, ss.EvenB)
	return ss, nil
}

func normAt(c Curve, j int) float64 {
	if j < 1 {
		return 0
	}
	if j > c.MaxCTAs {
		j = c.MaxCTAs
	}
	best := 0.0
	for i := 1; i <= j; i++ {
		if c.Norm[i] > best {
			best = c.Norm[i]
		}
	}
	return best
}

// FormatSweetSpot renders the Figure 3b comparison.
func FormatSweetSpot(ss SweetSpot) string {
	return fmt.Sprintf(
		"Sweet spot %s+%s: (%d,%d) CTAs -> losses %.0f%%/%.0f%%; even split (%d,%d) -> losses %.0f%%/%.0f%%\n",
		ss.A, ss.B, ss.BestA, ss.BestB, ss.LossA*100, ss.LossB*100,
		ss.EvenA, ss.EvenB, ss.EvenLossA*100, ss.EvenLossB*100)
}
