package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Hub decouples the single-threaded simulation loop from concurrent HTTP
// readers: the loop publishes immutable snapshots, readers only ever see
// the last published one. The event log is thread-safe on its own.
type Hub struct {
	mu      sync.RWMutex
	snap    *Snapshot
	spans   any
	profile any
	runs    any
	log     *EventLog
}

// NewHub wraps the given event log (nil allocates a fresh one).
func NewHub(log *EventLog) *Hub {
	if log == nil {
		log = NewEventLog()
	}
	return &Hub{log: log}
}

// Publish installs a new current snapshot. Nil hubs ignore the call.
func (h *Hub) Publish(s *Snapshot) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.snap = s
	h.mu.Unlock()
}

// Snapshot returns the last published snapshot (nil before the first
// Publish).
func (h *Hub) Snapshot() *Snapshot {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.snap
}

// PublishSpans installs the current span-tracing view (any JSON-
// marshalable value; producers pass a span.Summary). Like Publish, the
// value must be self-contained: readers serve it concurrently with the
// simulation loop. Nil hubs ignore the call.
func (h *Hub) PublishSpans(v any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.spans = v
	h.mu.Unlock()
}

// Spans returns the last published span view (nil before the first
// PublishSpans).
func (h *Hub) Spans() any {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.spans
}

// PublishProfile installs the current engine self-profile view (any
// JSON-marshalable value; producers pass a gpu.Profile). Same contract as
// PublishSpans: the value must be self-contained. Nil hubs ignore the
// call.
func (h *Hub) PublishProfile(v any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.profile = v
	h.mu.Unlock()
}

// Profile returns the last published engine profile (nil before the
// first PublishProfile).
func (h *Hub) Profile() any {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.profile
}

// PublishRuns installs the current run-ledger view (any JSON-marshalable
// value; producers pass a runlog.View). Same contract as PublishSpans:
// the value must be self-contained. Nil hubs ignore the call.
func (h *Hub) PublishRuns(v any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.runs = v
	h.mu.Unlock()
}

// Runs returns the last published run-ledger view (nil before the first
// PublishRuns).
func (h *Hub) Runs() any {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.runs
}

// Log returns the hub's event log.
func (h *Hub) Log() *EventLog {
	if h == nil {
		return nil
	}
	return h.log
}

// Server is the live metrics endpoint: registry snapshots as Prometheus
// text (/metrics) and JSON (/snapshot), the event log as JSON (/events)
// and JSONL (/events.jsonl).
type Server struct {
	hub  *Hub
	addr net.Addr
	srv  *http.Server
}

// ServerOption customizes StartServer.
type ServerOption func(*serverConfig)

type serverConfig struct {
	pprof bool
}

// WithPprof mounts net/http/pprof's handlers under /debug/pprof/ on the
// metrics mux. Off by default: the pprof endpoints expose goroutine
// stacks and allow CPU sampling, so they are opt-in (the -pprof flag on
// cmd/wslicer).
func WithPprof() ServerOption {
	return func(c *serverConfig) { c.pprof = true }
}

// StartServer listens on addr and serves the hub in a background
// goroutine. It returns once the listener is bound, so callers fail fast
// on a bad address.
func StartServer(addr string, hub *Hub, opts ...ServerOption) (*Server, error) {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{hub: hub, addr: ln.Addr()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/events.jsonl", s.handleEventsJSONL)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/runs", s.handleRuns)
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr.String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "wslicer observability\n\n"+
		"/metrics        Prometheus text exposition\n"+
		"/snapshot       registry snapshot as JSON\n"+
		"/events         event log as JSON (?kind=... / ?run=... to filter)\n"+
		"/events.jsonl   event log as JSON lines\n"+
		"/spans          sampled memory-request span decomposition as JSON\n"+
		"/profile        engine self-profile (phase costs + fast-forward meter) as JSON\n"+
		"/runs           content-addressed run ledger view as JSON\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.hub.Snapshot()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	snap.WritePrometheus(w)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap := s.hub.Snapshot()
	if snap == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	evs := s.hub.Log().Events()
	if kind := r.URL.Query().Get("kind"); kind != "" {
		kept := evs[:0]
		for _, ev := range evs {
			if ev.Kind == kind {
				kept = append(kept, ev)
			}
		}
		evs = kept
	}
	if run := r.URL.Query().Get("run"); run != "" {
		kept := evs[:0]
		for _, ev := range evs {
			if ev.Run == run {
				kept = append(kept, ev)
			}
		}
		evs = kept
	}
	if evs == nil {
		evs = []Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(evs)
}

func (s *Server) handleEventsJSONL(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.hub.Log().WriteJSONL(w)
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	v := s.hub.Spans()
	if v == nil {
		http.Error(w, "no span view published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request) {
	v := s.hub.Profile()
	if v == nil {
		http.Error(w, "no profile published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	v := s.hub.Runs()
	if v == nil {
		http.Error(w, "no run ledger view published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
