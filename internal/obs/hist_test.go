package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	cases := []struct {
		v    int64
		want int // bucket index: smallest i with v <= 1<<i
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {1024, 10}, {1025, 11}, {1 << 19, HistBuckets - 1},
		{1<<19 + 1, HistBuckets}, {math.MaxInt64, HistBuckets},
	}
	for _, c := range cases {
		var h Hist
		h.Observe(c.v)
		if h.counts[c.want] != 1 {
			t.Errorf("Observe(%d): bucket %d not incremented (counts=%v)", c.v, c.want, h.counts)
		}
	}
}

func TestHistCountSumMerge(t *testing.T) {
	var a, b Hist
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
	}
	b.Observe(7)
	b.Observe(1 << 30) // overflow bucket
	a.Merge(&b)
	if got := a.Count(); got != 102 {
		t.Errorf("Count = %d, want 102", got)
	}
	if got := a.Sum(); got != 5050+7+1<<30 {
		t.Errorf("Sum = %d, want %d", got, 5050+7+1<<30)
	}
}

// TestHistRegistryRoundTrip registers a histogram, snapshots it, and checks
// the Prometheus exposition: one `# TYPE <base> histogram` line, cumulative
// buckets ending at +Inf, and _sum/_count series.
func TestHistRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	var h Hist
	r.Histogram("ws_test_latency_cycles", &h)
	for _, v := range []int64{1, 3, 3, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()

	if got := snap.Get(`ws_test_latency_cycles_bucket{le="1"}`); got != 1 {
		t.Errorf(`bucket le=1 = %g, want 1`, got)
	}
	if got := snap.Get(`ws_test_latency_cycles_bucket{le="4"}`); got != 3 {
		t.Errorf(`bucket le=4 = %g, want 3 (cumulative)`, got)
	}
	if got := snap.Get(`ws_test_latency_cycles_bucket{le="+Inf"}`); got != 4 {
		t.Errorf(`bucket le=+Inf = %g, want 4`, got)
	}
	if got := snap.Get("ws_test_latency_cycles_count"); got != 4 {
		t.Errorf("count = %g, want 4", got)
	}
	if got := snap.Get("ws_test_latency_cycles_sum"); got != 107 {
		t.Errorf("sum = %g, want 107", got)
	}

	var sb strings.Builder
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "# TYPE ws_test_latency_cycles histogram") {
		t.Errorf("missing histogram TYPE line:\n%s", text)
	}
	if strings.Contains(text, "# TYPE ws_test_latency_cycles_bucket") {
		t.Errorf("bucket series must not declare its own TYPE:\n%s", text)
	}
}

func TestHistDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	var h Hist
	r.Histogram("dup", &h)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Histogram registration did not panic")
		}
	}()
	r.Histogram("dup", &h)
}

// TestHistWindowQuantiles verifies the snapshot-diff machinery: only the
// observations between two snapshots contribute, and quantiles interpolate
// within their bucket.
func TestHistWindowQuantiles(t *testing.T) {
	r := NewRegistry()
	var h Hist
	r.Histogram("lat", &h)

	h.Observe(1000) // before the window: must not appear in the diff
	prev := r.Snapshot()

	// 100 observations uniformly placed in bucket (8, 16].
	for i := 0; i < 100; i++ {
		h.Observe(12)
	}
	snap := r.Snapshot()

	hw := snap.HistWindow(prev, "lat")
	if got := hw.Count(); got != 100 {
		t.Fatalf("window count = %g, want 100", got)
	}
	if got := hw.Mean(); got != 12 {
		t.Errorf("window mean = %g, want 12", got)
	}
	// All mass in one bucket: quantiles interpolate linearly over (8, 16].
	if got := hw.Quantile(0.5); got != 12 {
		t.Errorf("p50 = %g, want 12", got)
	}
	if got := hw.Quantile(1); got != 16 {
		t.Errorf("p100 = %g, want 16", got)
	}

	// Empty window.
	empty := snap.HistWindow(snap, "lat")
	if empty.Count() != 0 || empty.Quantile(0.99) != 0 {
		t.Errorf("empty window: count=%g q99=%g, want 0/0", empty.Count(), empty.Quantile(0.99))
	}
}

// TestHistWindowOverflow pins the overflow-bucket convention: quantiles in
// +Inf report the largest finite bound.
func TestHistWindowOverflow(t *testing.T) {
	r := NewRegistry()
	var h Hist
	r.Histogram("lat", &h)
	h.Observe(1 << 40)
	hw := r.Snapshot().HistWindow(nil, "lat")
	if got, want := hw.Quantile(0.5), float64(HistBound(HistBuckets-1)); got != want {
		t.Errorf("overflow quantile = %g, want %g", got, want)
	}
}
