package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func startTestServer(t *testing.T) (*Server, *Hub) {
	t.Helper()
	hub := NewHub(nil)
	srv, err := StartServer("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, hub
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerServesSnapshots(t *testing.T) {
	srv, hub := startTestServer(t)
	base := "http://" + srv.Addr()

	// Before the first publish, metrics endpoints report unavailable.
	if code, _ := get(t, base+"/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish /metrics code = %d", code)
	}

	r := NewRegistry()
	var insts uint64 = 1234
	r.Counter("ws_kernel_thread_insts_total", func() uint64 { return insts })
	hub.Publish(r.Snapshot())

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "ws_kernel_thread_insts_total 1234") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(body, "# TYPE ws_kernel_thread_insts_total counter") {
		t.Fatalf("/metrics missing TYPE line: %q", body)
	}

	code, body = get(t, base+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot code = %d", code)
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m["ws_kernel_thread_insts_total"] != 1234 {
		t.Fatalf("/snapshot = %v", m)
	}

	// A later publish replaces the snapshot.
	insts = 5678
	hub.Publish(r.Snapshot())
	if _, body = get(t, base+"/metrics"); !strings.Contains(body, "5678") {
		t.Fatalf("stale snapshot served: %q", body)
	}
}

func TestServerServesEvents(t *testing.T) {
	srv, hub := startTestServer(t)
	base := "http://" + srv.Addr()

	hub.Log().Emit(100, EvProfileStart, map[string]any{"kernels": []int{0, 1}})
	hub.Log().Emit(250, EvRepartition, map[string]any{"partition": []int{5, 3}})

	code, body := get(t, base+"/events")
	if code != http.StatusOK {
		t.Fatalf("/events code = %d", code)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Kind != EvRepartition {
		t.Fatalf("/events = %+v", evs)
	}

	_, body = get(t, base+"/events?kind="+EvRepartition)
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Cycle != 250 {
		t.Fatalf("filtered /events = %+v", evs)
	}

	_, body = get(t, base+"/events.jsonl")
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("/events.jsonl lines = %d", len(lines))
	}

	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path code = %d", code)
	}
}

func TestServerServesSpans(t *testing.T) {
	srv, hub := startTestServer(t)
	base := "http://" + srv.Addr()

	if code, _ := get(t, base+"/spans"); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish /spans code = %d", code)
	}

	// The hub is type-agnostic: any JSON-marshalable span view works
	// (producers publish span.Summary; obs must not import span).
	hub.PublishSpans(map[string]any{
		"period":  64,
		"sampled": 17,
		"kernels": []map[string]any{{"kernel": 0, "completed": 17}},
	})

	code, body := get(t, base+"/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans code = %d", code)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/spans is not JSON: %v\n%s", err, body)
	}
	if got["sampled"] != float64(17) {
		t.Fatalf("/spans lost the published view: %v", got)
	}
	if !strings.Contains(body, "kernels") {
		t.Fatalf("/spans missing kernels: %s", body)
	}

	// The index advertises the endpoint.
	if _, idx := get(t, base+"/"); !strings.Contains(idx, "/spans") {
		t.Fatalf("index does not mention /spans:\n%s", idx)
	}
}
