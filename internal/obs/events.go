package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event kinds emitted by the simulator. The controller's decision trail
// (profile_start through repartition) is the audited record of every
// Warped-Slicer partitioning episode; kernel and run events frame it.
const (
	// EvProfileStart: the controller installed a profiling layout.
	// Data: kernels []int (slots), warmup_end int64.
	EvProfileStart = "profile_start"
	// EvSampleStart: warm-up ended, the sampling window opened.
	// Data: sample_end int64.
	EvSampleStart = "sample_start"
	// EvCurves: scaled-IPC curves computed from the sampling window.
	// Data: kernel int, curve []float64 (one event per kernel).
	EvCurves = "curves"
	// EvDecision: water-filling ran. Data: partition []int,
	// norm_perf []float64, threshold float64, spatial bool, plus the
	// water-filling inputs (curves were already emitted as EvCurves).
	EvDecision = "decision"
	// EvRepartition: an intra-SM partition was installed. Data:
	// partition []int (CTAs per profiled kernel). The event's Cycle is
	// the exact cycle the repartition landed.
	EvRepartition = "repartition"
	// EvSpatialFallback: predicted loss exceeded the threshold; the
	// controller fell back to inter-SM spatial multitasking.
	EvSpatialFallback = "spatial_fallback"
	// EvReprofile: phase-change monitoring restarted profiling.
	// Data: ipc, last_ipc float64.
	EvReprofile = "reprofile"
	// EvKernelArrival: a delayed kernel entered the system. Data: kernel int.
	EvKernelArrival = "kernel_arrival"
	// EvKernelDone: a kernel reached its target and was halted.
	// Data: kernel int, insts uint64.
	EvKernelDone = "kernel_done"
	// EvIsolationDone: an experiments isolation run completed.
	// Data: kernel string, insts uint64, ipc float64.
	EvIsolationDone = "isolation_done"
	// EvCoRunDone: an experiments multiprogrammed run completed.
	// Data: policy string, kernels []string, ipc float64, cycles int64.
	EvCoRunDone = "corun_done"
)

// Event is one structured observation. Cycle is simulated time (core
// cycles); events from the experiments harness (which spans many runs) use
// the cycle within their run. Run, when non-empty, identifies which
// simulation emitted the event (see EventLog.WithRun): concurrent runs
// share one log, and the run scope keeps each cycle-stamped trail
// attributable.
type Event struct {
	Cycle int64          `json:"cycle"`
	Run   string         `json:"run,omitempty"`
	Kind  string         `json:"kind"`
	Data  map[string]any `json:"data,omitempty"`
}

// EventLog is an append-only, thread-safe event sink. Tests query it;
// the CLI renders it live via OnEvent and dumps it as JSONL.
type EventLog struct {
	mu     sync.Mutex
	events []Event

	// OnEvent, when non-nil, observes every appended event (called with
	// the log unlocked, in append order from the emitting goroutine).
	// Set it on the root log; scoped views (WithRun) share the root's
	// callback.
	OnEvent func(Event)

	// root/run implement run-scoped views: a view stamps its run identity
	// on every event and delegates storage (and OnEvent) to the root.
	root *EventLog
	run  string
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// WithRun returns a view of the log that stamps every emitted event with
// the given run scope. The view shares the parent's storage, so queries
// and WriteJSONL on any view see the whole log. Run scopes must be pure
// functions of stable identifiers (workload, policy, partition) so a
// parallel session produces the same scope set as a serial one. An empty
// run (or a nil log) returns the receiver unchanged.
func (l *EventLog) WithRun(run string) *EventLog {
	if l == nil || run == "" {
		return l
	}
	return &EventLog{root: l.storage(), run: run}
}

// Run returns the view's run scope ("" on a root log).
func (l *EventLog) Run() string {
	if l == nil {
		return ""
	}
	return l.run
}

// storage resolves the shared root log backing this view.
func (l *EventLog) storage() *EventLog {
	if l.root != nil {
		return l.root
	}
	return l
}

// Emit appends one event, stamped with the view's run scope. Nil logs are
// silently ignored so emitters need no guards.
func (l *EventLog) Emit(cycle int64, kind string, data map[string]any) {
	if l == nil {
		return
	}
	ev := Event{Cycle: cycle, Run: l.run, Kind: kind, Data: data}
	st := l.storage()
	st.mu.Lock()
	st.events = append(st.events, ev)
	cb := st.OnEvent
	st.mu.Unlock()
	if cb != nil {
		cb(ev)
	}
}

// Len returns the number of events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	st := l.storage()
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.events)
}

// Events returns a copy of all events in append order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	st := l.storage()
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]Event(nil), st.events...)
}

// Runs returns the sorted set of distinct run scopes present in the log
// (excluding the empty scope). Serial and parallel sessions over the same
// experiments produce identical sets.
func (l *EventLog) Runs() []string {
	seen := map[string]bool{}
	var out []string
	for _, ev := range l.Events() {
		if ev.Run != "" && !seen[ev.Run] {
			seen[ev.Run] = true
			out = append(out, ev.Run)
		}
	}
	sort.Strings(out)
	return out
}

// FilterRun returns all events emitted under the given run scope, in
// append order. Within one scope that order is the run's own emission
// order even when many runs share the log concurrently.
func (l *EventLog) FilterRun(run string) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Run == run {
			out = append(out, ev)
		}
	}
	return out
}

// Filter returns all events of the given kind.
func (l *EventLog) Filter(kind string) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// First returns the earliest-appended event of the given kind, or false.
func (l *EventLog) First(kind string) (Event, bool) {
	for _, ev := range l.Events() {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return Event{}, false
}

// Last returns the latest-appended event of the given kind, or false.
func (l *EventLog) Last(kind string) (Event, bool) {
	evs := l.Events()
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == kind {
			return evs[i], true
		}
	}
	return Event{}, false
}

// WriteJSONL dumps the log as one JSON object per line.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Int reads an integer field from the event's data, tolerating the
// int/int64/float64 representations that survive JSON round-trips.
func (e Event) Int(key string) (int64, bool) {
	switch v := e.Data[key].(type) {
	case int:
		return int64(v), true
	case int64:
		return v, true
	case uint64:
		return int64(v), true
	case float64:
		return int64(v), true
	}
	return 0, false
}

// Ints reads an integer-slice field ([]int or JSON []any).
func (e Event) Ints(key string) ([]int, bool) {
	switch v := e.Data[key].(type) {
	case []int:
		return v, true
	case []any:
		out := make([]int, 0, len(v))
		for _, x := range v {
			f, ok := x.(float64)
			if !ok {
				return nil, false
			}
			out = append(out, int(f))
		}
		return out, true
	}
	return nil, false
}
