// Package obs is the simulator's unified observability layer: a typed
// counter/gauge registry every model layer (sm, cache, dram, mem, gpu)
// registers into, a structured event log for controller decisions, and a
// live HTTP endpoint serving both. It has no dependencies outside the
// standard library and no per-cycle cost: metrics are pull-based closures
// sampled only when a Snapshot is taken, so an attached registry with no
// sink adds nothing to the simulation hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind distinguishes monotonic counters from point-in-time gauges and
// histogram components. The Prometheus text exposition uses it for # TYPE
// lines, and windowed consumers (package trace) diff counters between
// snapshots.
type Kind uint8

const (
	// Counter is a monotonically non-decreasing total.
	Counter Kind = iota
	// Gauge is an instantaneous value that may move either way.
	Gauge
	// Histogram marks the component series of one histogram (_bucket,
	// _sum, _count). Buckets are cumulative and monotonic, so snapshot
	// diffs work exactly as for Counter; see Hist and Snapshot.HistWindow.
	Histogram
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Emit is the callback a Collector uses to publish samples.
type Emit func(name string, kind Kind, value float64)

// Registry holds metric sources. Registration happens at wiring time
// (single-threaded); Snapshot may be called repeatedly from the simulation
// loop. The registry never stores values itself — every Snapshot re-reads
// the sources.
type Registry struct {
	mu         sync.Mutex
	funcs      []metricFunc
	collectors []func(Emit)
	names      map[string]struct{}
}

type metricFunc struct {
	name string
	kind Kind
	fn   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

// Counter registers a monotonic counter source. Duplicate names panic:
// they indicate two layers fighting over one series.
func (r *Registry) Counter(name string, fn func() uint64) {
	r.register(name, Counter, func() float64 { return float64(fn()) })
}

// Gauge registers an instantaneous value source.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.register(name, Gauge, fn)
}

func (r *Registry) register(name string, kind Kind, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = struct{}{}
	r.funcs = append(r.funcs, metricFunc{name: name, kind: kind, fn: fn})
}

// Collector registers a bulk source: one closure that emits many samples
// per snapshot. Layers whose counters live in one stats struct use this so
// the struct is read once per snapshot instead of once per metric.
func (r *Registry) Collector(fn func(Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Sample is one named value in a snapshot.
type Sample struct {
	Name  string  `json:"name"`
	Kind  Kind    `json:"-"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time reading of every registered metric, sorted
// by name. Snapshots are immutable once taken and safe to share across
// goroutines.
type Snapshot struct {
	Samples []Sample

	once sync.Once
	idx  map[string]int
}

// Snapshot reads every source and returns the sorted sample set.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	funcs := r.funcs
	collectors := r.collectors
	r.mu.Unlock()

	s := &Snapshot{Samples: make([]Sample, 0, len(funcs)+16*len(collectors))}
	for _, m := range funcs {
		s.Samples = append(s.Samples, Sample{Name: m.name, Kind: m.kind, Value: m.fn()})
	}
	emit := func(name string, kind Kind, v float64) {
		s.Samples = append(s.Samples, Sample{Name: name, Kind: kind, Value: v})
	}
	for _, c := range collectors {
		c(emit)
	}
	// Sort by (family, full name) so every series of one metric family is
	// consecutive — WritePrometheus emits exactly one # TYPE line each.
	sort.Slice(s.Samples, func(i, j int) bool {
		fi, fj := family(s.Samples[i].Name), family(s.Samples[j].Name)
		if fi != fj {
			return fi < fj
		}
		return s.Samples[i].Name < s.Samples[j].Name
	})
	return s
}

// family strips the label part of a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (s *Snapshot) index() map[string]int {
	s.once.Do(func() {
		s.idx = make(map[string]int, len(s.Samples))
		for i, smp := range s.Samples {
			s.idx[smp.Name] = i
		}
	})
	return s.idx
}

// Get returns the named sample's value, or 0 when absent. Nil snapshots
// read as all-zero so first-window diffs need no special case.
func (s *Snapshot) Get(name string) float64 {
	if s == nil {
		return 0
	}
	if i, ok := s.index()[name]; ok {
		return s.Samples[i].Value
	}
	return 0
}

// Has reports whether the snapshot contains the named sample.
func (s *Snapshot) Has(name string) bool {
	if s == nil {
		return false
	}
	_, ok := s.index()[name]
	return ok
}

// Delta returns Get(name) minus prev.Get(name); prev may be nil.
func (s *Snapshot) Delta(prev *Snapshot, name string) float64 {
	return s.Get(name) - prev.Get(name)
}

// MarshalJSON renders the snapshot as a flat {"name": value} object.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	m := make(map[string]float64, len(s.Samples))
	for _, smp := range s.Samples {
		m[smp.Name] = smp.Value
	}
	return json.Marshal(m)
}

// typeFamily returns the family name a sample's # TYPE line declares.
// Histogram component series (_bucket/_sum/_count) all declare their
// shared base name, per the Prometheus histogram convention.
func typeFamily(name string, kind Kind) string {
	fam := family(name)
	if kind != Histogram {
		return fam
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(fam, suf) {
			return fam[:len(fam)-len(suf)]
		}
	}
	return fam
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (one # TYPE line per metric family, labels preserved; histogram
// components share one `# TYPE <base> histogram` declaration).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	declared := make(map[string]bool)
	for _, smp := range s.Samples {
		fam := typeFamily(smp.Name, smp.Kind)
		if !declared[fam] {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, smp.Kind); err != nil {
				return err
			}
			declared[fam] = true
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", smp.Name, smp.Value); err != nil {
			return err
		}
	}
	return nil
}

// Label builds a Prometheus-style series name: Label("x_total", "sm", "3")
// returns `x_total{sm="3"}`. Key/value arguments come in pairs; an odd
// trailing key is ignored.
func Label(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
