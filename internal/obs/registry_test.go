package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshotAndDelta(t *testing.T) {
	r := NewRegistry()
	var c uint64 = 40
	g := 1.5
	r.Counter("ws_insts_total", func() uint64 { return c })
	r.Gauge("ws_occupancy", func() float64 { return g })

	s1 := r.Snapshot()
	if got := s1.Get("ws_insts_total"); got != 40 {
		t.Fatalf("counter = %v, want 40", got)
	}
	if got := s1.Get("ws_occupancy"); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	if s1.Get("missing") != 0 || s1.Has("missing") {
		t.Fatal("missing sample should read 0 / Has false")
	}

	c, g = 100, 0.25
	s2 := r.Snapshot()
	if d := s2.Delta(s1, "ws_insts_total"); d != 60 {
		t.Fatalf("delta = %v, want 60", d)
	}
	// Nil previous snapshot reads as zero.
	if d := s2.Delta(nil, "ws_insts_total"); d != 100 {
		t.Fatalf("delta vs nil = %v, want 100", d)
	}
	// The first snapshot is immutable.
	if s1.Get("ws_insts_total") != 40 {
		t.Fatal("snapshot mutated by later reads")
	}
}

func TestRegistryCollector(t *testing.T) {
	r := NewRegistry()
	r.Collector(func(emit Emit) {
		emit(Label("ws_sm_slots_total", "sm", "0"), Counter, 7)
		emit(Label("ws_sm_slots_total", "sm", "1"), Counter, 9)
	})
	s := r.Snapshot()
	if len(s.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(s.Samples))
	}
	if got := s.Get(`ws_sm_slots_total{sm="1"}`); got != 9 {
		t.Fatalf("labeled sample = %v, want 9", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", func() uint64 { return 0 })
	r.Counter("x", func() uint64 { return 0 })
}

func TestLabel(t *testing.T) {
	if got := Label("a_total", "sm", "3", "kernel", "1"); got != `a_total{sm="3",kernel="1"}` {
		t.Fatalf("Label = %s", got)
	}
	if got := Label("a_total"); got != "a_total" {
		t.Fatalf("unlabeled = %s", got)
	}
}

func TestSnapshotPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("ws_x_total", "sm", "0"), func() uint64 { return 3 })
	r.Counter(Label("ws_x_total", "sm", "1"), func() uint64 { return 4 })
	r.Gauge("ws_y", func() float64 { return 2.5 })
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE ws_x_total counter\n" +
		"ws_x_total{sm=\"0\"} 3\n" +
		"ws_x_total{sm=\"1\"} 4\n" +
		"# TYPE ws_y gauge\n" +
		"ws_y 2.5\n"
	if sb.String() != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestSnapshotFamilyGrouping(t *testing.T) {
	// "ab{...}" sorts after "abc" bytewise; family-aware ordering must
	// still keep the ab series consecutive so TYPE lines are unique.
	r := NewRegistry()
	r.Counter(Label("ab", "k", "0"), func() uint64 { return 1 })
	r.Counter("abc", func() uint64 { return 2 })
	r.Counter("ab", func() uint64 { return 3 })
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE ab counter"); n != 1 {
		t.Fatalf("TYPE ab emitted %d times:\n%s", n, sb.String())
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("ws_a_total", func() uint64 { return 12 })
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["ws_a_total"] != 12 {
		t.Fatalf("json = %s", b)
	}
}
