package obs_test

// The /profile and /spans endpoints are consumed by dashboards and CI
// scripts that key on exact JSON field names. These tests pin the served
// shapes against *real* producer values (gpu.Profile, span.Summary) —
// the in-package server tests use synthetic maps because obs must not
// import the simulator — and pin determinism: two identical runs must
// publish byte-identical views (modulo wall-clock phase timings).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/experiments"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/policy"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/runlog"
)

// runSim executes a small deterministic co-run and returns the device.
func runSim(t *testing.T, profiled bool) *gpu.GPU {
	t.Helper()
	g := gpu.New(config.Baseline(), policy.Even{})
	if profiled {
		g.Prof = prof.New(37)
	}
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	g.RunCycles(20_000)
	return g
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: not JSON: %v\n%s", url, err, body)
	}
	return m
}

func requireKeys(t *testing.T, m map[string]any, where string, keys ...string) {
	t.Helper()
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			t.Errorf("%s: missing field %q (got %v)", where, k, m)
		}
	}
}

func TestProfileEndpointShape(t *testing.T) {
	g := runSim(t, true)
	hub := obs.NewHub(nil)
	hub.PublishProfile(g.Profile())
	srv, err := obs.StartServer("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := getJSON(t, "http://"+srv.Addr()+"/profile")
	requireKeys(t, m, "/profile",
		"cycles", "sms",
		"cyc_issuing", "cyc_stall_known", "cyc_stall_unknown", "cyc_idle",
		"ff_skippable_cycles", "fast_forward_skippable_frac",
		"sched_fastpath_frac", "phases")
	phases, ok := m["phases"].(map[string]any)
	if !ok {
		t.Fatalf("/profile phases is %T, want object", m["phases"])
	}
	requireKeys(t, phases, "/profile phases",
		"period", "cycles", "sampled_cycles", "total_ns", "ns_per_cycle", "phases")
	list, ok := phases["phases"].([]any)
	if !ok || len(list) == 0 {
		t.Fatalf("/profile phases.phases is empty or wrong type: %v", phases["phases"])
	}
	pc, ok := list[0].(map[string]any)
	if !ok {
		t.Fatalf("/profile phase entry is %T", list[0])
	}
	requireKeys(t, pc, "/profile phase entry", "phase", "ns", "ns_per_cycle", "share")
}

func TestSpansEndpointShape(t *testing.T) {
	g := runSim(t, false)
	hub := obs.NewHub(nil)
	hub.PublishSpans(g.Mem.Spans.Summary())
	srv, err := obs.StartServer("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := getJSON(t, "http://"+srv.Addr()+"/spans")
	requireKeys(t, m, "/spans", "period", "open", "sampled", "dropped", "kernels", "recent")
	ks, ok := m["kernels"].([]any)
	if !ok || len(ks) == 0 {
		t.Fatalf("/spans kernels empty or wrong type: %v — the sim must have sampled spans", m["kernels"])
	}
	k0, ok := ks[0].(map[string]any)
	if !ok {
		t.Fatalf("/spans kernel entry is %T", ks[0])
	}
	requireKeys(t, k0, "/spans kernel entry",
		"kernel", "completed", "mean_end_to_end_cycles",
		"l2_hits", "l2_misses", "merged",
		"dram_row_hits", "dram_row_misses", "stages")
}

// ledgerRun records one small isolation run into a fresh ledger and
// returns the published /runs view value.
func ledgerRun(t *testing.T, dir string) runlog.View {
	t.Helper()
	led, err := runlog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.Quick()
	o.Events = obs.NewEventLog()
	o.Hub = obs.NewHub(o.Events)
	o.Ledger = led
	s := experiments.NewSession(o)
	s.Isolation(kernels.ByAbbr("IMG"))
	v, ok := o.Hub.Runs().(runlog.View)
	if !ok {
		t.Fatalf("published runs view is %T, want runlog.View", o.Hub.Runs())
	}
	return v
}

func TestRunsEndpointShape(t *testing.T) {
	v := ledgerRun(t, t.TempDir())
	hub := obs.NewHub(nil)
	hub.PublishRuns(v)
	srv, err := obs.StartServer("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := getJSON(t, "http://"+srv.Addr()+"/runs")
	requireKeys(t, m, "/runs", "dir", "appends_total", "dedup_hits_total", "runs")
	runs, ok := m["runs"].([]any)
	if !ok || len(runs) == 0 {
		t.Fatalf("/runs runs empty or wrong type: %v", m["runs"])
	}
	r0, ok := runs[0].(map[string]any)
	if !ok {
		t.Fatalf("/runs entry is %T", runs[0])
	}
	requireKeys(t, r0, "/runs entry", "key", "kind", "workload", "policy", "cycles", "ipc")
}

func TestRunsEndpointBeforePublish(t *testing.T) {
	srv, err := obs.StartServer("127.0.0.1:0", obs.NewHub(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/runs before publish: %d, want 503", resp.StatusCode)
	}
}

// TestRunsViewDeterministic: two identical sessions must publish views
// that are byte-identical once the machine-local ledger directory is
// dropped (keys, metrics, ordering — everything content-derived).
func TestRunsViewDeterministic(t *testing.T) {
	va := ledgerRun(t, t.TempDir())
	vb := ledgerRun(t, t.TempDir())
	va.Dir, vb.Dir = "", ""
	a, err := json.Marshal(va)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(vb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("runs views differ across identical sessions:\n%s\n%s", a, b)
	}
}

// TestPublishedViewsDeterministic: two identical runs must publish
// byte-identical span views, and byte-identical profiles once the
// wall-clock phase block is dropped (phase timings are real nanoseconds
// and legitimately differ run to run; everything else is cycle-exact).
func TestPublishedViewsDeterministic(t *testing.T) {
	marshal := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	profileSansWallclock := func(g *gpu.GPU) []byte {
		var m map[string]any
		if err := json.Unmarshal(marshal(g.Profile()), &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "phases")
		return marshal(m)
	}

	a, b := runSim(t, true), runSim(t, true)
	if sa, sb := marshal(a.Mem.Spans.Summary()), marshal(b.Mem.Spans.Summary()); !bytes.Equal(sa, sb) {
		t.Errorf("span summaries differ across identical runs:\n%s\n%s", sa, sb)
	}
	if pa, pb := profileSansWallclock(a), profileSansWallclock(b); !bytes.Equal(pa, pb) {
		t.Errorf("profiles (sans wall-clock phases) differ across identical runs:\n%s\n%s", pa, pb)
	}
}
