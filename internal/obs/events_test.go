package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventLogAppendAndQuery(t *testing.T) {
	l := NewEventLog()
	l.Emit(100, EvProfileStart, map[string]any{"kernels": []int{0, 1}})
	l.Emit(200, EvRepartition, map[string]any{"partition": []int{5, 3}})
	l.Emit(300, EvRepartition, map[string]any{"partition": []int{6, 2}})

	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if got := l.Filter(EvRepartition); len(got) != 2 {
		t.Fatalf("filter = %d events, want 2", len(got))
	}
	first, ok := l.First(EvRepartition)
	if !ok || first.Cycle != 200 {
		t.Fatalf("first = %+v ok=%v", first, ok)
	}
	last, ok := l.Last(EvRepartition)
	if !ok || last.Cycle != 300 {
		t.Fatalf("last = %+v ok=%v", last, ok)
	}
	if p, ok := first.Ints("partition"); !ok || len(p) != 2 || p[0] != 5 {
		t.Fatalf("Ints = %v ok=%v", p, ok)
	}
	if _, ok := l.First("nope"); ok {
		t.Fatal("First of absent kind must report false")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(1, "x", nil) // must not panic
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log should be empty")
	}
}

func TestEventLogJSONLRoundTrip(t *testing.T) {
	l := NewEventLog()
	l.Emit(5000, EvDecision, map[string]any{"partition": []int{4, 4}, "spatial": false})
	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EvDecision || ev.Cycle != 5000 {
		t.Fatalf("round-trip = %+v", ev)
	}
	// JSON numbers decode as float64; the accessors must still read them.
	if p, ok := ev.Ints("partition"); !ok || p[1] != 4 {
		t.Fatalf("Ints after round-trip = %v ok=%v", p, ok)
	}
}

func TestEventIntAccessor(t *testing.T) {
	ev := Event{Data: map[string]any{"a": 7, "b": int64(8), "c": uint64(9), "d": 10.0}}
	for key, want := range map[string]int64{"a": 7, "b": 8, "c": 9, "d": 10} {
		if got, ok := ev.Int(key); !ok || got != want {
			t.Fatalf("Int(%s) = %d ok=%v, want %d", key, got, ok, want)
		}
	}
	if _, ok := ev.Int("missing"); ok {
		t.Fatal("Int of missing key must report false")
	}
}

func TestEventLogConcurrentEmit(t *testing.T) {
	l := NewEventLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Emit(int64(j), "tick", nil)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d, want 800", l.Len())
	}
}

func TestEventLogWithRunStampsAndSharesStorage(t *testing.T) {
	root := NewEventLog()
	a := root.WithRun("corun/dynamic/IMG_BLK")
	b := root.WithRun("iso/IMG")

	root.Emit(1, "tick", nil)
	a.Emit(2, "tick", nil)
	b.Emit(3, "tick", nil)
	a.Emit(4, "tock", nil)

	// Views append into the root: every view sees the whole log.
	for _, l := range []*EventLog{root, a, b} {
		if l.Len() != 4 {
			t.Fatalf("len via view = %d, want 4", l.Len())
		}
	}
	evs := root.Events()
	wantRuns := []string{"", "corun/dynamic/IMG_BLK", "iso/IMG", "corun/dynamic/IMG_BLK"}
	for i, ev := range evs {
		if ev.Run != wantRuns[i] {
			t.Fatalf("event %d run = %q, want %q", i, ev.Run, wantRuns[i])
		}
	}
	if a.Run() != "corun/dynamic/IMG_BLK" || root.Run() != "" {
		t.Fatalf("Run() accessors = %q / %q", a.Run(), root.Run())
	}

	// Runs() is the sorted distinct non-empty scope set.
	runs := root.Runs()
	if len(runs) != 2 || runs[0] != "corun/dynamic/IMG_BLK" || runs[1] != "iso/IMG" {
		t.Fatalf("Runs() = %v", runs)
	}
	// FilterRun keeps per-scope append order.
	got := a.FilterRun("corun/dynamic/IMG_BLK")
	if len(got) != 2 || got[0].Cycle != 2 || got[1].Cycle != 4 {
		t.Fatalf("FilterRun = %+v", got)
	}
}

func TestEventLogWithRunOfViewRebasesOnRoot(t *testing.T) {
	root := NewEventLog()
	v := root.WithRun("a").WithRun("b")
	v.Emit(1, "x", nil)
	if evs := root.Events(); len(evs) != 1 || evs[0].Run != "b" {
		t.Fatalf("nested view events = %+v", root.Events())
	}
}

func TestEventLogWithRunDegenerateCases(t *testing.T) {
	var nilLog *EventLog
	if nilLog.WithRun("x") != nil {
		t.Fatal("nil log WithRun must stay nil")
	}
	nilLog.WithRun("x").Emit(1, "k", nil) // must not panic

	root := NewEventLog()
	if root.WithRun("") != root {
		t.Fatal("empty run scope must return the receiver")
	}
}

func TestEventLogWithRunJSONL(t *testing.T) {
	root := NewEventLog()
	root.WithRun("iso/NN").Emit(9, EvIsolationDone, map[string]any{"kernel": "NN"})
	var sb strings.Builder
	if err := root.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Run != "iso/NN" {
		t.Fatalf("round-tripped run = %q", ev.Run)
	}
	// The empty scope must stay omitted from the wire format.
	root2 := NewEventLog()
	root2.Emit(1, "k", nil)
	sb.Reset()
	if err := root2.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"run"`) {
		t.Fatalf("unscoped event serialized a run field: %s", sb.String())
	}
}

func TestEventLogWithRunSharesOnEvent(t *testing.T) {
	root := NewEventLog()
	var seen []string
	root.OnEvent = func(ev Event) { seen = append(seen, ev.Run+":"+ev.Kind) }
	root.WithRun("r1").Emit(1, "a", nil)
	root.Emit(2, "b", nil)
	if len(seen) != 2 || seen[0] != "r1:a" || seen[1] != ":b" {
		t.Fatalf("OnEvent saw %v", seen)
	}
}

func TestEventLogOnEvent(t *testing.T) {
	l := NewEventLog()
	var seen []string
	l.OnEvent = func(ev Event) { seen = append(seen, ev.Kind) }
	l.Emit(1, "a", nil)
	l.Emit(2, "b", nil)
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("OnEvent saw %v", seen)
	}
}
