package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEventLogAppendAndQuery(t *testing.T) {
	l := NewEventLog()
	l.Emit(100, EvProfileStart, map[string]any{"kernels": []int{0, 1}})
	l.Emit(200, EvRepartition, map[string]any{"partition": []int{5, 3}})
	l.Emit(300, EvRepartition, map[string]any{"partition": []int{6, 2}})

	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if got := l.Filter(EvRepartition); len(got) != 2 {
		t.Fatalf("filter = %d events, want 2", len(got))
	}
	first, ok := l.First(EvRepartition)
	if !ok || first.Cycle != 200 {
		t.Fatalf("first = %+v ok=%v", first, ok)
	}
	last, ok := l.Last(EvRepartition)
	if !ok || last.Cycle != 300 {
		t.Fatalf("last = %+v ok=%v", last, ok)
	}
	if p, ok := first.Ints("partition"); !ok || len(p) != 2 || p[0] != 5 {
		t.Fatalf("Ints = %v ok=%v", p, ok)
	}
	if _, ok := l.First("nope"); ok {
		t.Fatal("First of absent kind must report false")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(1, "x", nil) // must not panic
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log should be empty")
	}
}

func TestEventLogJSONLRoundTrip(t *testing.T) {
	l := NewEventLog()
	l.Emit(5000, EvDecision, map[string]any{"partition": []int{4, 4}, "spatial": false})
	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EvDecision || ev.Cycle != 5000 {
		t.Fatalf("round-trip = %+v", ev)
	}
	// JSON numbers decode as float64; the accessors must still read them.
	if p, ok := ev.Ints("partition"); !ok || p[1] != 4 {
		t.Fatalf("Ints after round-trip = %v ok=%v", p, ok)
	}
}

func TestEventIntAccessor(t *testing.T) {
	ev := Event{Data: map[string]any{"a": 7, "b": int64(8), "c": uint64(9), "d": 10.0}}
	for key, want := range map[string]int64{"a": 7, "b": 8, "c": 9, "d": 10} {
		if got, ok := ev.Int(key); !ok || got != want {
			t.Fatalf("Int(%s) = %d ok=%v, want %d", key, got, ok, want)
		}
	}
	if _, ok := ev.Int("missing"); ok {
		t.Fatal("Int of missing key must report false")
	}
}

func TestEventLogConcurrentEmit(t *testing.T) {
	l := NewEventLog()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Emit(int64(j), "tick", nil)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d, want 800", l.Len())
	}
}

func TestEventLogOnEvent(t *testing.T) {
	l := NewEventLog()
	var seen []string
	l.OnEvent = func(ev Event) { seen = append(seen, ev.Kind) }
	l.Emit(1, "a", nil)
	l.Emit(2, "b", nil)
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("OnEvent saw %v", seen)
	}
}
