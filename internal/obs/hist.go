package obs

import (
	"strconv"
)

// HistBuckets is the number of finite histogram buckets. Bucket i counts
// observations v with v <= 1<<i (so the finite upper bounds are the powers
// of two 1, 2, 4, ..., 2^(HistBuckets-1)); everything larger lands in the
// +Inf overflow bucket. Power-of-two bucketing keeps Observe at one
// bit-length instruction and covers the full latency range of the
// simulator — an L1 hit (tens of cycles) up to a congested DRAM round trip
// (hundreds of thousands) — with constant relative resolution.
const HistBuckets = 20

// Hist is a fixed-bucket latency histogram owned by a model layer. It is
// the registry's third metric kind: the owner calls Observe on its hot
// path (O(1), allocation-free), and the registry pulls the bucket state
// only when a Snapshot is taken, exactly like Counter and Gauge sources.
// Buckets are monotonic counters, so snapshot diffs yield per-window
// histograms (see Snapshot.HistWindow).
//
// The zero value is ready to use. Hist is not synchronized: like every
// other simulator counter it must be owned by one simulation goroutine.
type Hist struct {
	counts [HistBuckets + 1]uint64
	sum    uint64
}

// histBucket returns the bucket index for an observation: the smallest i
// with v <= 1<<i, or the overflow bucket.
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len64(v-1) without the import: count the bit length of v-1.
	u := uint64(v - 1)
	i := 0
	for u > 0 {
		u >>= 1
		i++
	}
	if i >= HistBuckets {
		return HistBuckets
	}
	return i
}

// Observe records one value. Negative values clamp to zero (they indicate
// a caller bug but must not corrupt bucket state).
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)]++
	h.sum += uint64(v)
}

// Count returns the total number of observations.
func (h *Hist) Count() uint64 {
	var n uint64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Hist) Sum() uint64 { return h.sum }

// Merge adds o's observations into h (used to aggregate per-instance
// histograms, e.g. per-channel DRAM service times, into one series).
func (h *Hist) Merge(o *Hist) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.sum += o.sum
}

// HistBound returns bucket i's finite upper bound.
func HistBound(i int) uint64 { return 1 << uint(i) }

// histLe returns the `le` label value for bucket i.
func histLe(i int) string {
	if i >= HistBuckets {
		return "+Inf"
	}
	return strconv.FormatUint(HistBound(i), 10)
}

// Emit publishes the histogram in Prometheus form under the given labels:
// cumulative <name>_bucket{...,le="..."} series plus <name>_sum and
// <name>_count, all of kind Histogram. The `le` label is always last so
// window-diff consumers can reconstruct the series names.
func (h *Hist) Emit(emit Emit, name string, kv ...string) {
	lbl := make([]string, 0, len(kv)+2)
	lbl = append(lbl, kv...)
	lbl = append(lbl, "le", "")
	var cum uint64
	for i := 0; i <= HistBuckets; i++ {
		cum += h.counts[i]
		lbl[len(lbl)-1] = histLe(i)
		emit(Label(name+"_bucket", lbl...), Histogram, float64(cum))
	}
	emit(Label(name+"_sum", kv...), Histogram, float64(h.sum))
	emit(Label(name+"_count", kv...), Histogram, float64(cum))
}

// Histogram registers a histogram source under the given base name. The
// registry reads the live bucket state at every Snapshot; the name is
// reserved like any other metric so two layers cannot fight over one
// series.
func (r *Registry) Histogram(name string, h *Hist) {
	r.mu.Lock()
	if _, dup := r.names[name]; dup {
		r.mu.Unlock()
		panic("obs: duplicate metric " + strconv.Quote(name))
	}
	r.names[name] = struct{}{}
	r.mu.Unlock()
	r.Collector(func(emit Emit) { h.Emit(emit, name) })
}

// HistWindow is the windowed view of one label-free histogram series: the
// per-bucket counts accumulated between two snapshots. Quantiles are
// computed by linear interpolation inside the containing bucket, the same
// estimate Prometheus's histogram_quantile uses.
type HistWindow struct {
	// Counts[i] is the (non-cumulative) observation count of bucket i;
	// the last entry is the +Inf overflow bucket.
	Counts [HistBuckets + 1]float64
	// Sum is the windowed value sum.
	Sum float64
}

// HistWindow diffs the named histogram between prev and s. prev may be
// nil (the first window measures from zero). The name must be the base
// name the histogram was registered (or emitted label-free) under.
func (s *Snapshot) HistWindow(prev *Snapshot, name string) HistWindow {
	var hw HistWindow
	cumPrev := 0.0
	for i := 0; i <= HistBuckets; i++ {
		series := Label(name+"_bucket", "le", histLe(i))
		cum := s.Delta(prev, series)
		hw.Counts[i] = cum - cumPrev
		cumPrev = cum
	}
	hw.Sum = s.Delta(prev, name+"_sum")
	return hw
}

// Count returns the window's total observation count.
func (hw HistWindow) Count() float64 {
	n := 0.0
	for _, c := range hw.Counts {
		n += c
	}
	return n
}

// Mean returns the window's mean observed value (0 when empty).
func (hw HistWindow) Mean() float64 {
	n := hw.Count()
	if n == 0 {
		return 0
	}
	return hw.Sum / n
}

// Quantile estimates the q-quantile (q in [0,1]) of the window by linear
// interpolation within the containing bucket. An empty window reports 0;
// quantiles that land in the overflow bucket report the largest finite
// bound (a deliberate underestimate, mirroring histogram_quantile).
func (hw HistWindow) Quantile(q float64) float64 {
	total := hw.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * total
	cum := 0.0
	for i := 0; i <= HistBuckets; i++ {
		if hw.Counts[i] == 0 {
			cum += hw.Counts[i]
			continue
		}
		if cum+hw.Counts[i] >= target {
			if i >= HistBuckets {
				return float64(HistBound(HistBuckets - 1))
			}
			lo := 0.0
			if i > 0 {
				lo = float64(HistBound(i - 1))
			}
			hi := float64(HistBound(i))
			frac := (target - cum) / hw.Counts[i]
			return lo + frac*(hi-lo)
		}
		cum += hw.Counts[i]
	}
	return float64(HistBound(HistBuckets - 1))
}
