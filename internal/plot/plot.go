// Package plot renders minimal, dependency-free SVG charts for the
// reproduced figures: line charts for the Figure 3a occupancy curves and
// grouped bar charts for the Figure 6/8 policy comparisons. The output is
// deliberately plain — axes, ticks, legend — enough to eyeball the shapes
// the paper reports.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line in a line chart.
type Series struct {
	Name string
	// X may be nil, in which case points are placed at 1..len(Y).
	X []float64
	Y []float64
}

// BarGroup is one cluster of bars (e.g. one workload) in a bar chart.
type BarGroup struct {
	Label  string
	Values []float64
}

// palette cycles through distinguishable stroke/fill colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	width   = 860.0
	height  = 480.0
	marginL = 70.0
	marginR = 30.0
	marginT = 50.0
	marginB = 70.0
)

func svgHeader(title string) string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">
<rect width="%g" height="%g" fill="white"/>
<text x="%g" y="28" font-family="sans-serif" font-size="18" text-anchor="middle">%s</text>
`, width, height, width, height, width, height, width/2, escape(title))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceMax rounds up to a pleasant axis maximum.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// LineChart renders the series with a shared axis frame.
func LineChart(title, xLabel, yLabel string, series []Series) string {
	var maxX, maxY float64 = 1, 0
	for _, s := range series {
		for i, y := range s.Y {
			x := float64(i + 1)
			if s.X != nil {
				x = s.X[i]
			}
			maxX = math.Max(maxX, x)
			maxY = math.Max(maxY, y)
		}
	}
	maxY = niceMax(maxY)

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	px := func(x float64) float64 { return marginL + x/maxX*plotW }
	py := func(y float64) float64 { return marginT + plotH - y/maxY*plotH }

	var b strings.Builder
	b.WriteString(svgHeader(title))
	writeFrame(&b, xLabel, yLabel, maxX, maxY, true)

	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i, y := range s.Y {
			x := float64(i + 1)
			if s.X != nil {
				x = s.X[i]
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
		}
		// Legend entry.
		lx := marginL + 10
		ly := marginT + 14 + float64(si)*18
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+18, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// BarChart renders grouped bars with a legend naming each bar in a group.
func BarChart(title, yLabel string, barNames []string, groups []BarGroup) string {
	maxY := 0.0
	for _, g := range groups {
		for _, v := range g.Values {
			maxY = math.Max(maxY, v)
		}
	}
	maxY = niceMax(maxY)

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	py := func(y float64) float64 { return marginT + plotH - y/maxY*plotH }

	var b strings.Builder
	b.WriteString(svgHeader(title))
	writeFrame(&b, "", yLabel, 0, maxY, false)

	n := len(groups)
	if n == 0 {
		b.WriteString("</svg>\n")
		return b.String()
	}
	groupW := plotW / float64(n)
	for gi, g := range groups {
		x0 := marginL + float64(gi)*groupW
		bars := len(g.Values)
		barW := groupW * 0.8 / float64(max(bars, 1))
		for bi, v := range g.Values {
			color := palette[bi%len(palette)]
			bx := x0 + groupW*0.1 + float64(bi)*barW
			by := py(v)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				bx, by, barW, marginT+plotH-by, color)
		}
		// Rotated group label.
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
			x0+groupW/2, height-marginB+14, x0+groupW/2, height-marginB+14, escape(g.Label))
	}
	for bi, name := range barNames {
		color := palette[bi%len(palette)]
		lx := marginL + 10 + float64(bi)*130
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n", lx, marginT+4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+18, marginT+14, escape(name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// writeFrame draws axes, ticks, gridlines and labels.
func writeFrame(b *strings.Builder, xLabel, yLabel string, maxX, maxY float64, xTicks bool) {
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	// Axes.
	fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	// Y ticks and gridlines.
	for i := 0; i <= 5; i++ {
		v := maxY * float64(i) / 5
		y := marginT + plotH - float64(i)/5*plotH
		fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%.2g</text>`+"\n",
			marginL-6, y+4, v)
	}
	if xTicks && maxX > 0 {
		step := math.Max(1, math.Floor(maxX/8))
		for x := step; x <= maxX+1e-9; x += step {
			xx := marginL + x/maxX*plotW
			fmt.Fprintf(b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%g</text>`+"\n",
				xx, marginT+plotH+16, x)
		}
	}
	if xLabel != "" {
		fmt.Fprintf(b, `<text x="%g" y="%g" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, height-18, escape(xLabel))
	}
	if yLabel != "" {
		fmt.Fprintf(b, `<text x="16" y="%g" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, escape(yLabel))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
