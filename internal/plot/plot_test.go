package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

// assertValidXML parses the SVG to catch malformed markup.
func assertValidXML(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid SVG: %v", err)
		}
	}
}

func TestLineChartBasics(t *testing.T) {
	svg := LineChart("Occupancy", "CTAs", "normalized IPC", []Series{
		{Name: "IMG", Y: []float64{0.25, 0.5, 0.75, 1.0}},
		{Name: "NN", Y: []float64{0.5, 0.7, 1.0, 0.4}},
	})
	assertValidXML(t, svg)
	for _, want := range []string{"Occupancy", "IMG", "NN", "polyline", "<svg"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 8 {
		t.Fatalf("markers = %d, want 8", got)
	}
}

func TestLineChartExplicitX(t *testing.T) {
	svg := LineChart("t", "", "", []Series{
		{Name: "a", X: []float64{2, 4, 8}, Y: []float64{1, 2, 3}},
	})
	assertValidXML(t, svg)
}

func TestBarChartBasics(t *testing.T) {
	svg := BarChart("Figure 6", "normalized IPC",
		[]string{"Spatial", "Even", "Dynamic"},
		[]BarGroup{
			{Label: "IMG_NN", Values: []float64{0.99, 1.48, 1.39}},
			{Label: "MM_LBM", Values: []float64{1.2, 1.2, 1.38}},
		})
	assertValidXML(t, svg)
	// 2 groups x 3 bars + 3 legend swatches + background = 10 rects.
	if got := strings.Count(svg, "<rect"); got != 10 {
		t.Fatalf("rects = %d, want 10", got)
	}
	for _, want := range []string{"IMG_NN", "MM_LBM", "Dynamic"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestBarChartEmpty(t *testing.T) {
	svg := BarChart("empty", "", nil, nil)
	assertValidXML(t, svg)
}

func TestEscape(t *testing.T) {
	svg := LineChart(`A<B & "C"`, "", "", []Series{{Name: "x>y", Y: []float64{1}}})
	assertValidXML(t, svg)
	if strings.Contains(svg, "A<B") {
		t.Fatal("title not escaped")
	}
}

func TestNiceMax(t *testing.T) {
	cases := map[float64]float64{
		0:    1,
		0.9:  1,
		1.1:  1.2,
		3.7:  4,
		42:   50,
		99:   100,
		1000: 1000,
	}
	for in, want := range cases {
		if got := niceMax(in); got != want {
			t.Errorf("niceMax(%v) = %v, want %v", in, got, want)
		}
	}
}
