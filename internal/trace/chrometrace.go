package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"warpedslicer/internal/obs"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/span"
)

// Chrome trace-event constants (the about://tracing JSON format). One
// simulated core cycle is rendered as one microsecond.
const (
	chromePidKernels    = 0 // counter tracks: IPC, occupancy, stalls, bandwidth
	chromePidController = 1 // controller decision events and phase spans
	chromePidSpans      = 2 // sampled memory-request spans (async events)
)

// chromeEvent is one entry of the Trace Event Format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object chrome://tracing loads.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the timeline — per-kernel IPC and occupancy
// counters, the stall mix, DRAM bandwidth — and the attached event log's
// controller decisions on one shared timeline, as Chrome trace-event JSON
// loadable in chrome://tracing (or https://ui.perfetto.dev).
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePidKernels,
			Args: map[string]any{"name": "kernel windows"}},
		{Name: "process_name", Ph: "M", Pid: chromePidController,
			Args: map[string]any{"name": "controller"}},
	}

	for _, p := range t.Points {
		// Counter samples are stamped at the window's start so the value
		// chrome draws over [start, end) is the value measured there.
		ts := p.Cycle - t.Window
		if ts < 0 {
			ts = 0
		}
		ipc := make(map[string]any, len(p.KernelIPC))
		ctas := make(map[string]any, len(p.CTAs))
		for k := 0; k < t.kernels; k++ {
			if k < len(p.KernelIPC) {
				ipc[fmt.Sprintf("k%d", k)] = round3(p.KernelIPC[k])
				ctas[fmt.Sprintf("k%d", k)] = p.CTAs[k]
			}
		}
		evs = append(evs,
			chromeEvent{Name: "ipc", Ph: "C", Ts: ts, Pid: chromePidKernels, Args: ipc},
			chromeEvent{Name: "ctas", Ph: "C", Ts: ts, Pid: chromePidKernels, Args: ctas},
			chromeEvent{Name: "stalls", Ph: "C", Ts: ts, Pid: chromePidKernels, Args: map[string]any{
				"mem":  round3(p.StallMem),
				"raw":  round3(p.StallRAW),
				"exec": round3(p.StallExec),
				"ibuf": round3(p.StallIBuf),
			}},
			chromeEvent{Name: "dram bandwidth", Ph: "C", Ts: ts, Pid: chromePidKernels,
				Args: map[string]any{"util": round3(p.Bandwidth)}},
			chromeEvent{Name: "l1 miss latency", Ph: "C", Ts: ts, Pid: chromePidKernels,
				Args: map[string]any{
					"p50": round3(p.LatP50),
					"p95": round3(p.LatP95),
					"p99": round3(p.LatP99),
				}},
		)
		// Engine self-profile: one counter track of per-phase wall-clock
		// cost for the window. Present only when the run attached a
		// profiler (EnginePhaseNs nil otherwise), so traces of unprofiled
		// runs are byte-identical to before.
		if p.EnginePhaseNs != nil {
			phases := make(map[string]any, len(p.EnginePhaseNs))
			for i, ns := range p.EnginePhaseNs {
				phases[prof.Phase(i).String()] = round3(ns)
			}
			evs = append(evs, chromeEvent{Name: "engine phase ns", Ph: "C", Ts: ts,
				Pid: chromePidKernels, Args: phases})
		}
		// One stall-attribution counter track per kernel slot, so the
		// per-kernel stall mix stacks next to that kernel's IPC track.
		for k := 0; k < t.kernels; k++ {
			if k >= len(p.KernelStallMem) {
				break
			}
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("stalls k%d", k), Ph: "C", Ts: ts, Pid: chromePidKernels,
				Args: map[string]any{
					"mem":  round3(p.KernelStallMem[k]),
					"raw":  round3(at(p.KernelStallRAW, k)),
					"exec": round3(at(p.KernelStallExec, k)),
					"ibuf": round3(at(p.KernelStallIBuf, k)),
				},
			})
		}
	}

	evs = append(evs, t.controllerEvents()...)
	evs = append(evs, t.spanEvents()...)

	return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// spanEvents renders the most recently completed memory-request spans as
// nestable async events — one lane per request, a nested slice per
// hierarchy stage — plus a flow arrow from issue to reply delivery, so a
// single L1 miss's journey is visible end to end in chrome://tracing.
// Rows group by kernel slot (tid = slot).
func (t *Timeline) spanEvents() []chromeEvent {
	if t.g == nil || t.g.Mem == nil {
		return nil
	}
	var out []chromeEvent
	t.g.Mem.Spans.Recent(func(sp span.Span) {
		if len(out) == 0 {
			out = append(out, chromeEvent{Name: "process_name", Ph: "M",
				Pid: chromePidSpans, Args: map[string]any{"name": "memory spans (sampled)"}})
		}
		id := fmt.Sprintf("span%d", sp.Seq)
		name := fmt.Sprintf("k%d 0x%x", sp.Kernel, sp.Line)
		args := map[string]any{
			"outcome": sp.Outcome.String(),
			"sm":      sp.SM,
			"cycles":  sp.EndToEnd(),
		}
		if sp.RowHit >= 0 {
			args["dram_row_hit"] = sp.RowHit == 1
			args["dram_queue_wait_memcycles"] = sp.DRAMQueueWait
			args["dram_service_memcycles"] = sp.DRAMService
		}
		out = append(out, chromeEvent{Name: name, Cat: "span", Ph: "b",
			Ts: sp.Issued, Pid: chromePidSpans, Tid: sp.Kernel, ID: id, Args: args})
		cursor := sp.Issued
		for st := span.Stage(0); st < span.NumStages; st++ {
			d := sp.Stages[st]
			if d <= 0 {
				continue
			}
			out = append(out,
				chromeEvent{Name: st.String(), Cat: "span", Ph: "b",
					Ts: cursor, Pid: chromePidSpans, Tid: sp.Kernel, ID: id},
				chromeEvent{Name: st.String(), Cat: "span", Ph: "e",
					Ts: cursor + d, Pid: chromePidSpans, Tid: sp.Kernel, ID: id})
			cursor += d
		}
		out = append(out,
			chromeEvent{Name: name, Cat: "span", Ph: "e",
				Ts: sp.Delivered, Pid: chromePidSpans, Tid: sp.Kernel, ID: id},
			// Flow arrow across the whole round trip.
			chromeEvent{Name: "l1miss", Cat: "spanflow", Ph: "s",
				Ts: sp.Issued, Pid: chromePidSpans, Tid: sp.Kernel, ID: id},
			chromeEvent{Name: "l1miss", Cat: "spanflow", Ph: "f", BP: "e",
				Ts: sp.Delivered, Pid: chromePidSpans, Tid: sp.Kernel, ID: id})
	})
	return out
}

// controllerEvents renders the event log: every event as an instant, plus
// duration spans for each profiling episode (profile_start -> sample_start
// is warm-up; sample_start -> decision is sampling + algorithm delay).
func (t *Timeline) controllerEvents() []chromeEvent {
	if t.Events == nil {
		return nil
	}
	var out []chromeEvent
	var warmupFrom, sampleFrom int64 = -1, -1
	for _, ev := range t.Events.Events() {
		out = append(out, chromeEvent{
			Name: ev.Kind, Ph: "i", Ts: ev.Cycle, Pid: chromePidController, S: "p",
			Args: ev.Data,
		})
		switch ev.Kind {
		case obs.EvProfileStart, obs.EvReprofile:
			warmupFrom = ev.Cycle
		case obs.EvSampleStart:
			if warmupFrom >= 0 {
				out = append(out, chromeEvent{Name: "warmup", Ph: "X",
					Ts: warmupFrom, Dur: ev.Cycle - warmupFrom, Pid: chromePidController})
				warmupFrom = -1
			}
			sampleFrom = ev.Cycle
		case obs.EvDecision:
			if sampleFrom >= 0 {
				out = append(out, chromeEvent{Name: "sample+delay", Ph: "X",
					Ts: sampleFrom, Dur: ev.Cycle - sampleFrom, Pid: chromePidController})
				sampleFrom = -1
			}
		}
	}
	return out
}

// round3 keeps exported JSON compact and stable (3 decimal places).
func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
