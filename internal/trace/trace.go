// Package trace collects windowed timelines from a running simulation:
// per-kernel IPC, occupancy, stall mix and memory bandwidth per fixed-size
// cycle window. Timelines are how the profiling controller's decisions can
// be inspected (e.g. watching the repartition land), and they export to CSV
// for plotting.
package trace

import (
	"fmt"
	"io"
	"strings"

	"warpedslicer/internal/gpu"
	"warpedslicer/internal/metrics"
)

// Point is one window of one timeline.
type Point struct {
	// Cycle is the window's end cycle.
	Cycle int64
	// IPC per kernel slot (thread instructions / window cycles).
	KernelIPC []float64
	// CTAs is the total resident CTA count per kernel slot.
	CTAs []int
	// StallMem/StallRAW/StallExec/StallIBuf are window stall fractions.
	StallMem, StallRAW, StallExec, StallIBuf float64
	// Bandwidth is the DRAM bus utilization over the whole run so far
	// (cumulative; the DRAM model does not expose windowed counters).
	Bandwidth float64
}

// Timeline samples a GPU at fixed windows.
type Timeline struct {
	Window int64
	Points []Point

	kernels int

	prevInsts []uint64
	prevMem   uint64
	prevRAW   uint64
	prevExec  uint64
	prevIBuf  uint64
	prevSlots uint64
}

// New creates a timeline with the given window length in cycles.
func New(window int64) *Timeline {
	if window <= 0 {
		window = 5000
	}
	return &Timeline{Window: window}
}

// Run advances the GPU in windows until `cycles` have elapsed (or all
// kernels finish), recording one Point per window.
func (t *Timeline) Run(g *gpu.GPU, cycles int64) {
	t.kernels = len(g.Kernels)
	if t.prevInsts == nil {
		t.prevInsts = make([]uint64, t.kernels)
	}
	end := g.Now() + cycles
	for g.Now() < end && !g.AllDone() {
		step := t.Window
		if rem := end - g.Now(); rem < step {
			step = rem
		}
		g.RunCycles(step)
		t.sample(g)
	}
}

// sample records one point at the GPU's current cycle.
func (t *Timeline) sample(g *gpu.GPU) {
	agg := g.AggregateSM()
	p := Point{Cycle: g.Now()}

	for slot := 0; slot < t.kernels; slot++ {
		insts := g.KernelInsts(slot)
		p.KernelIPC = append(p.KernelIPC, float64(insts-t.prevInsts[slot])/float64(t.Window))
		t.prevInsts[slot] = insts
		ctas := 0
		for _, s := range g.SMs {
			ctas += s.ResidentCTAs(slot)
		}
		p.CTAs = append(p.CTAs, ctas)
	}

	dSlots := agg.Slots - t.prevSlots
	p.StallMem = metrics.Frac(agg.StallMem-t.prevMem, dSlots)
	p.StallRAW = metrics.Frac(agg.StallRAW-t.prevRAW, dSlots)
	p.StallExec = metrics.Frac(agg.StallExec-t.prevExec, dSlots)
	p.StallIBuf = metrics.Frac(agg.StallIBuf-t.prevIBuf, dSlots)
	t.prevMem, t.prevRAW, t.prevExec, t.prevIBuf = agg.StallMem, agg.StallRAW, agg.StallExec, agg.StallIBuf
	t.prevSlots = agg.Slots

	p.Bandwidth = g.Mem.Stats().BandwidthUtil()
	t.Points = append(t.Points, p)
}

// WriteCSV emits the timeline with one row per window.
func (t *Timeline) WriteCSV(w io.Writer) error {
	var head strings.Builder
	head.WriteString("cycle")
	for k := 0; k < t.kernels; k++ {
		fmt.Fprintf(&head, ",ipc_k%d,ctas_k%d", k, k)
	}
	head.WriteString(",stall_mem,stall_raw,stall_exec,stall_ibuf,bandwidth\n")
	if _, err := io.WriteString(w, head.String()); err != nil {
		return err
	}
	for _, p := range t.Points {
		var row strings.Builder
		fmt.Fprintf(&row, "%d", p.Cycle)
		for k := 0; k < t.kernels; k++ {
			ipc, ctas := 0.0, 0
			if k < len(p.KernelIPC) {
				ipc, ctas = p.KernelIPC[k], p.CTAs[k]
			}
			fmt.Fprintf(&row, ",%.3f,%d", ipc, ctas)
		}
		fmt.Fprintf(&row, ",%.4f,%.4f,%.4f,%.4f,%.4f\n",
			p.StallMem, p.StallRAW, p.StallExec, p.StallIBuf, p.Bandwidth)
		if _, err := io.WriteString(w, row.String()); err != nil {
			return err
		}
	}
	return nil
}

// RepartitionCycle scans for the first window where kernel `slot`'s
// resident CTA count changed direction after being stable — a heuristic
// marker of the controller's repartition landing. Returns -1 if none.
func (t *Timeline) RepartitionCycle(slot int) int64 {
	if len(t.Points) < 3 {
		return -1
	}
	for i := 2; i < len(t.Points); i++ {
		a, b, c := t.Points[i-2], t.Points[i-1], t.Points[i]
		if slot >= len(a.CTAs) || slot >= len(b.CTAs) || slot >= len(c.CTAs) {
			continue
		}
		if a.CTAs[slot] == b.CTAs[slot] && c.CTAs[slot] != b.CTAs[slot] {
			return c.Cycle
		}
	}
	return -1
}
