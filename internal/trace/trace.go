// Package trace collects windowed timelines from a running simulation:
// per-kernel IPC, occupancy, stall mix and memory bandwidth per fixed-size
// cycle window. Windows are computed as obs registry snapshot diffs, so the
// timeline sees exactly the counters every other sink sees. Timelines are
// how the profiling controller's decisions can be inspected (the attached
// event log pins the repartition to its exact cycle), and they export to
// CSV and to Chrome trace-event JSON for chrome://tracing.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"warpedslicer/internal/gpu"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/prof"
)

// Point is one window of one timeline.
type Point struct {
	// Cycle is the window's end cycle.
	Cycle int64
	// IPC per kernel slot (thread instructions / window cycles).
	KernelIPC []float64
	// CTAs is the total resident CTA count per kernel slot.
	CTAs []int
	// StallMem/StallRAW/StallExec/StallIBuf are window stall fractions.
	StallMem, StallRAW, StallExec, StallIBuf float64
	// KernelStallMem/RAW/Exec/IBuf split the window stall fractions per
	// kernel slot (same denominator: issue slots in the window), from the
	// device-wide ws_sm_kernel_stall_* attribution counters. Each slice
	// is indexed like KernelIPC.
	KernelStallMem, KernelStallRAW, KernelStallExec, KernelStallIBuf []float64
	// LatP50/LatP95/LatP99 are window percentiles of the L1-miss
	// round-trip latency (core cycles), from the
	// ws_l1_miss_roundtrip_cycles histogram diff.
	LatP50, LatP95, LatP99 float64
	// Bandwidth is the DRAM bus utilization within this window (the
	// delta of the bus-busy and mem-tick counters between snapshots).
	Bandwidth float64
	// EnginePhaseNs, when non-nil, holds the window's wall-clock phase
	// costs (ws_prof_phase_ns deltas, indexed by prof.Phase). It is
	// populated only when the sampled GPU has a self-profiler attached,
	// so CSV goldens of unprofiled runs are untouched.
	EnginePhaseNs []float64
}

// Timeline samples a GPU at fixed windows.
type Timeline struct {
	Window int64
	Points []Point

	// Events, when non-nil, is the run's structured event log. It is the
	// primary source for RepartitionCycle and is rendered alongside the
	// windowed counters by WriteChromeTrace.
	Events *obs.EventLog

	kernels int

	g    *gpu.GPU
	reg  *obs.Registry
	prev *obs.Snapshot
}

// New creates a timeline with the given window length in cycles.
func New(window int64) *Timeline {
	if window <= 0 {
		window = 5000
	}
	return &Timeline{Window: window}
}

// Run advances the GPU in windows until `cycles` have elapsed (or all
// kernels finish), recording one Point per window. A Timeline may be
// reused across Run calls; pointing it at a different GPU (or a GPU whose
// kernel set grew) re-baselines the window diffs instead of misindexing
// slots.
func (t *Timeline) Run(g *gpu.GPU, cycles int64) {
	if t.g != g {
		t.g = g
		t.reg = obs.NewRegistry()
		g.Register(t.reg)
		t.prev = nil
	}
	t.kernels = len(g.Kernels)
	if t.prev == nil {
		t.prev = t.reg.Snapshot()
	}
	end := g.Now() + cycles
	for g.Now() < end && !g.AllDone() {
		step := t.Window
		if rem := end - g.Now(); rem < step {
			step = rem
		}
		g.RunCycles(step)
		t.sample(g)
	}
}

// kernelSeries builds the registry series name for one kernel slot.
func kernelSeries(name string, slot int) string {
	return obs.Label(name, "kernel", strconv.Itoa(slot))
}

// frac returns a/b, or 0 when b is not positive.
func frac(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// at reads s[k], tolerating short slices (points recorded before a kernel
// set grew).
func at(s []float64, k int) float64 {
	if k < len(s) {
		return s[k]
	}
	return 0
}

// sample records one point at the GPU's current cycle.
func (t *Timeline) sample(g *gpu.GPU) {
	snap := t.reg.Snapshot()
	p := Point{Cycle: g.Now()}

	window := snap.Delta(t.prev, "ws_gpu_cycle")
	if window <= 0 {
		window = float64(t.Window)
	}
	for slot := 0; slot < t.kernels; slot++ {
		dInsts := snap.Delta(t.prev, kernelSeries("ws_kernel_thread_insts_total", slot))
		p.KernelIPC = append(p.KernelIPC, dInsts/window)
		p.CTAs = append(p.CTAs, int(snap.Get(kernelSeries("ws_kernel_ctas_resident", slot))))
	}

	dSlots := snap.Delta(t.prev, "ws_sm_slots_total")
	p.StallMem = frac(snap.Delta(t.prev, "ws_sm_stall_mem_total"), dSlots)
	p.StallRAW = frac(snap.Delta(t.prev, "ws_sm_stall_raw_total"), dSlots)
	p.StallExec = frac(snap.Delta(t.prev, "ws_sm_stall_exec_total"), dSlots)
	p.StallIBuf = frac(snap.Delta(t.prev, "ws_sm_stall_ibuf_total"), dSlots)

	for slot := 0; slot < t.kernels; slot++ {
		p.KernelStallMem = append(p.KernelStallMem,
			frac(snap.Delta(t.prev, kernelSeries("ws_sm_kernel_stall_mem_total", slot)), dSlots))
		p.KernelStallRAW = append(p.KernelStallRAW,
			frac(snap.Delta(t.prev, kernelSeries("ws_sm_kernel_stall_raw_total", slot)), dSlots))
		p.KernelStallExec = append(p.KernelStallExec,
			frac(snap.Delta(t.prev, kernelSeries("ws_sm_kernel_stall_exec_total", slot)), dSlots))
		p.KernelStallIBuf = append(p.KernelStallIBuf,
			frac(snap.Delta(t.prev, kernelSeries("ws_sm_kernel_stall_ibuf_total", slot)), dSlots))
	}

	lat := snap.HistWindow(t.prev, "ws_l1_miss_roundtrip_cycles")
	p.LatP50 = lat.Quantile(0.50)
	p.LatP95 = lat.Quantile(0.95)
	p.LatP99 = lat.Quantile(0.99)

	p.Bandwidth = frac(snap.Delta(t.prev, "ws_dram_bus_busy_total"),
		snap.Delta(t.prev, "ws_dram_ticks_total"))

	var phases []float64
	var any bool
	for ph := prof.Phase(0); ph < prof.NumPhases; ph++ {
		d := snap.Delta(t.prev, obs.Label("ws_prof_phase_ns", "phase", ph.String()))
		if d > 0 {
			any = true
		}
		phases = append(phases, d)
	}
	if any {
		p.EnginePhaseNs = phases
	}

	t.prev = snap
	t.Points = append(t.Points, p)
}

// WriteCSV emits the timeline with one row per window.
func (t *Timeline) WriteCSV(w io.Writer) error {
	var head strings.Builder
	head.WriteString("cycle")
	for k := 0; k < t.kernels; k++ {
		fmt.Fprintf(&head, ",ipc_k%d,ctas_k%d", k, k)
	}
	head.WriteString(",stall_mem,stall_raw,stall_exec,stall_ibuf")
	for k := 0; k < t.kernels; k++ {
		fmt.Fprintf(&head, ",stall_mem_k%d,stall_raw_k%d,stall_exec_k%d,stall_ibuf_k%d", k, k, k, k)
	}
	head.WriteString(",lat_p50,lat_p95,lat_p99,bandwidth\n")
	if _, err := io.WriteString(w, head.String()); err != nil {
		return err
	}
	for _, p := range t.Points {
		var row strings.Builder
		fmt.Fprintf(&row, "%d", p.Cycle)
		for k := 0; k < t.kernels; k++ {
			ipc, ctas := 0.0, 0
			if k < len(p.KernelIPC) {
				ipc, ctas = p.KernelIPC[k], p.CTAs[k]
			}
			fmt.Fprintf(&row, ",%.3f,%d", ipc, ctas)
		}
		fmt.Fprintf(&row, ",%.4f,%.4f,%.4f,%.4f",
			p.StallMem, p.StallRAW, p.StallExec, p.StallIBuf)
		for k := 0; k < t.kernels; k++ {
			fmt.Fprintf(&row, ",%.4f,%.4f,%.4f,%.4f",
				at(p.KernelStallMem, k), at(p.KernelStallRAW, k),
				at(p.KernelStallExec, k), at(p.KernelStallIBuf, k))
		}
		fmt.Fprintf(&row, ",%.1f,%.1f,%.1f,%.4f\n",
			p.LatP50, p.LatP95, p.LatP99, p.Bandwidth)
		if _, err := io.WriteString(w, row.String()); err != nil {
			return err
		}
	}
	return nil
}

// RepartitionCycle returns the cycle the controller's repartition landed
// for kernel `slot`, or -1 if none. With an attached event log the answer
// is exact: the first repartition event that assigns the slot a non-zero
// CTA budget. Without events it falls back to the CTA-direction heuristic
// (the first window where the slot's resident CTA count changed after
// being stable).
func (t *Timeline) RepartitionCycle(slot int) int64 {
	if t.Events != nil {
		for _, ev := range t.Events.Filter(obs.EvRepartition) {
			if slots, ok := ev.Ints("slots"); ok && slot >= 0 && slot < len(slots) && slots[slot] > 0 {
				return ev.Cycle
			}
		}
	}
	if len(t.Points) < 3 {
		return -1
	}
	for i := 2; i < len(t.Points); i++ {
		a, b, c := t.Points[i-2], t.Points[i-1], t.Points[i]
		if slot < 0 || slot >= len(a.CTAs) || slot >= len(b.CTAs) || slot >= len(c.CTAs) {
			continue
		}
		if a.CTAs[slot] == b.CTAs[slot] && c.CTAs[slot] != b.CTAs[slot] {
			return c.Cycle
		}
	}
	return -1
}
