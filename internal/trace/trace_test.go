package trace

import (
	"strings"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/policy"
)

func newTracedGPU() *gpu.GPU {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	return g
}

func TestTimelineCollectsWindows(t *testing.T) {
	g := newTracedGPU()
	tl := New(2000)
	tl.Run(g, 10000)
	if len(tl.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(tl.Points))
	}
	for i, p := range tl.Points {
		if p.Cycle != int64(2000*(i+1)) {
			t.Fatalf("point %d cycle = %d", i, p.Cycle)
		}
		if len(p.KernelIPC) != 2 || len(p.CTAs) != 2 {
			t.Fatalf("point %d has wrong kernel arity", i)
		}
	}
	// Both kernels should show activity in the first window.
	if tl.Points[0].KernelIPC[0] <= 0 || tl.Points[0].KernelIPC[1] <= 0 {
		t.Fatal("no IPC recorded in first window")
	}
}

func TestTimelineStallFractionsBounded(t *testing.T) {
	g := newTracedGPU()
	tl := New(1000)
	tl.Run(g, 5000)
	for i, p := range tl.Points {
		sum := p.StallMem + p.StallRAW + p.StallExec + p.StallIBuf
		if sum < 0 || sum > 1.0001 {
			t.Fatalf("point %d stall sum %.3f out of range", i, sum)
		}
		if p.Bandwidth < 0 || p.Bandwidth > 1 {
			t.Fatalf("point %d bandwidth %.3f out of range", i, p.Bandwidth)
		}
	}
}

func TestTimelineCSV(t *testing.T) {
	g := newTracedGPU()
	tl := New(2500)
	tl.Run(g, 5000)
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 windows
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "cycle,ipc_k0,ctas_k0,ipc_k1,ctas_k1") {
		t.Fatalf("bad header: %s", lines[0])
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != 10 {
			t.Fatalf("bad column count in %q", l)
		}
	}
}

func TestTimelineSeesRepartition(t *testing.T) {
	ctrl := core.NewController()
	ctrl.WarmupCycles = 4000
	ctrl.SampleCycles = 2000
	g := gpu.New(config.Baseline(), ctrl)
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)

	tl := New(1000)
	tl.Run(g, 30000)
	if !ctrl.Decided() {
		t.Fatal("controller never decided")
	}
	// The CTA timeline must not be flat: profiling layout differs from
	// the final partition.
	first := tl.Points[0].CTAs[0]
	varied := false
	for _, p := range tl.Points {
		if p.CTAs[0] != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("timeline never observed an occupancy change")
	}
}

func TestTimelineDefaultWindow(t *testing.T) {
	tl := New(0)
	if tl.Window != 5000 {
		t.Fatalf("default window = %d, want 5000", tl.Window)
	}
}

func TestTimelineStopsWhenAllDone(t *testing.T) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 50000) // small target
	tl := New(2000)
	tl.Run(g, 1_000_000)
	if !g.AllDone() {
		t.Fatal("kernel never finished")
	}
	if int64(len(tl.Points))*tl.Window > 200000 {
		t.Fatal("timeline kept running long after completion")
	}
}

func TestRepartitionCycleDetection(t *testing.T) {
	tl := New(1000)
	tl.kernels = 1
	mk := func(cycle int64, ctas int) Point {
		return Point{Cycle: cycle, CTAs: []int{ctas}, KernelIPC: []float64{1}}
	}
	tl.Points = []Point{mk(1000, 4), mk(2000, 4), mk(3000, 4), mk(4000, 7), mk(5000, 7)}
	if got := tl.RepartitionCycle(0); got != 4000 {
		t.Fatalf("repartition cycle = %d, want 4000", got)
	}
	tl.Points = []Point{mk(1000, 4), mk(2000, 4)}
	if got := tl.RepartitionCycle(0); got != -1 {
		t.Fatalf("short timeline should return -1, got %d", got)
	}
	tl.Points = []Point{mk(1000, 4), mk(2000, 4), mk(3000, 4), mk(4000, 4)}
	if got := tl.RepartitionCycle(0); got != -1 {
		t.Fatalf("flat timeline should return -1, got %d", got)
	}
}
