package trace

import (
	"strings"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/policy"
)

func newTracedGPU() *gpu.GPU {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	return g
}

func TestTimelineCollectsWindows(t *testing.T) {
	g := newTracedGPU()
	tl := New(2000)
	tl.Run(g, 10000)
	if len(tl.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(tl.Points))
	}
	for i, p := range tl.Points {
		if p.Cycle != int64(2000*(i+1)) {
			t.Fatalf("point %d cycle = %d", i, p.Cycle)
		}
		if len(p.KernelIPC) != 2 || len(p.CTAs) != 2 {
			t.Fatalf("point %d has wrong kernel arity", i)
		}
	}
	// Both kernels should show activity in the first window.
	if tl.Points[0].KernelIPC[0] <= 0 || tl.Points[0].KernelIPC[1] <= 0 {
		t.Fatal("no IPC recorded in first window")
	}
}

func TestTimelineStallFractionsBounded(t *testing.T) {
	g := newTracedGPU()
	tl := New(1000)
	tl.Run(g, 5000)
	for i, p := range tl.Points {
		sum := p.StallMem + p.StallRAW + p.StallExec + p.StallIBuf
		if sum < 0 || sum > 1.0001 {
			t.Fatalf("point %d stall sum %.3f out of range", i, sum)
		}
		if p.Bandwidth < 0 || p.Bandwidth > 1 {
			t.Fatalf("point %d bandwidth %.3f out of range", i, p.Bandwidth)
		}
	}
}

func TestTimelineCSV(t *testing.T) {
	g := newTracedGPU()
	tl := New(2500)
	tl.Run(g, 5000)
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 windows
		t.Fatalf("csv lines = %d, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "cycle,ipc_k0,ctas_k0,ipc_k1,ctas_k1") {
		t.Fatalf("bad header: %s", lines[0])
	}
	for _, col := range []string{
		"stall_mem_k0", "stall_ibuf_k1", "lat_p50", "lat_p95", "lat_p99",
	} {
		if !strings.Contains(lines[0], ","+col) {
			t.Fatalf("header missing %s: %s", col, lines[0])
		}
	}
	// 1 cycle + 2*(ipc,ctas) + 4 SM-wide stalls + 2*4 per-kernel stalls
	// + 3 latency percentiles + bandwidth = 21 columns.
	want := len(strings.Split(lines[0], ","))
	for _, l := range lines[1:] {
		if len(strings.Split(l, ",")) != want || want != 21 {
			t.Fatalf("bad column count in %q (want %d)", l, want)
		}
	}
}

// TestTimelinePerKernelStallsSumToTotal checks each window's per-kernel
// stall fractions against the SM-wide class fraction — the windowed face of
// the conservation invariant (equal denominators make the sums exact up to
// float rounding).
func TestTimelinePerKernelStallsSumToTotal(t *testing.T) {
	g := newTracedGPU()
	tl := New(2000)
	tl.Run(g, 12000)
	for i, p := range tl.Points {
		check := func(class string, total float64, per []float64) {
			sum := 0.0
			for _, v := range per {
				sum += v
			}
			if diff := sum - total; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("point %d %s: per-kernel sum %.12f != total %.12f", i, class, sum, total)
			}
		}
		check("mem", p.StallMem, p.KernelStallMem)
		check("raw", p.StallRAW, p.KernelStallRAW)
		check("exec", p.StallExec, p.KernelStallExec)
		check("ibuf", p.StallIBuf, p.KernelStallIBuf)
		if p.LatP50 < 0 || p.LatP95 < p.LatP50 || p.LatP99 < p.LatP95 {
			t.Fatalf("point %d latency percentiles not ordered: p50=%g p95=%g p99=%g",
				i, p.LatP50, p.LatP95, p.LatP99)
		}
	}
}

func TestTimelineSeesRepartition(t *testing.T) {
	ctrl := core.NewController()
	ctrl.WarmupCycles = 4000
	ctrl.SampleCycles = 2000
	g := gpu.New(config.Baseline(), ctrl)
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)

	tl := New(1000)
	tl.Run(g, 30000)
	if !ctrl.Decided() {
		t.Fatal("controller never decided")
	}
	// The CTA timeline must not be flat: profiling layout differs from
	// the final partition.
	first := tl.Points[0].CTAs[0]
	varied := false
	for _, p := range tl.Points {
		if p.CTAs[0] != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("timeline never observed an occupancy change")
	}
}

func TestTimelineDefaultWindow(t *testing.T) {
	tl := New(0)
	if tl.Window != 5000 {
		t.Fatalf("default window = %d, want 5000", tl.Window)
	}
}

func TestTimelineStopsWhenAllDone(t *testing.T) {
	g := gpu.New(config.Baseline(), policy.FCFS{})
	g.AddKernel(kernels.ByAbbr("IMG"), 50000) // small target
	tl := New(2000)
	tl.Run(g, 1_000_000)
	if !g.AllDone() {
		t.Fatal("kernel never finished")
	}
	if int64(len(tl.Points))*tl.Window > 200000 {
		t.Fatal("timeline kept running long after completion")
	}
}

// TestBandwidthIsWindowed replays an identical GPU window by window and
// checks each Point.Bandwidth equals that window's DRAM bus utilization
// delta — not the cumulative value since cycle 0.
func TestBandwidthIsWindowed(t *testing.T) {
	g1 := newTracedGPU()
	tl := New(2000)
	tl.Run(g1, 12000)

	g2 := newTracedGPU()
	var prevBusy, prevTicks uint64
	sawDifference := false
	for i, p := range tl.Points {
		g2.RunCycles(2000)
		st := g2.Mem.Stats()
		dBusy, dTicks := st.BusBusy-prevBusy, st.MemTicks-prevTicks
		want := 0.0
		if dTicks > 0 {
			want = float64(dBusy) / float64(dTicks)
		}
		if p.Bandwidth != want {
			t.Fatalf("point %d bandwidth = %v, want windowed %v", i, p.Bandwidth, want)
		}
		if cum := st.BandwidthUtil(); cum != want {
			sawDifference = true
		}
		prevBusy, prevTicks = st.BusBusy, st.MemTicks
	}
	if !sawDifference {
		t.Fatal("windowed and cumulative bandwidth never diverged; test proves nothing")
	}
}

// TestTimelineReuseAcrossGPUs guards the old bug where prevInsts was sized
// once from the first GPU: reusing a Timeline on a second device must
// re-baseline instead of diffing against the first device's counters.
func TestTimelineReuseAcrossGPUs(t *testing.T) {
	tl := New(2000)
	g1 := gpu.New(config.Baseline(), policy.FCFS{})
	g1.AddKernel(kernels.ByAbbr("IMG"), 0)
	tl.Run(g1, 4000)

	g2 := gpu.New(config.Baseline(), policy.FCFS{})
	g2.AddKernel(kernels.ByAbbr("IMG"), 0)
	g2.AddKernel(kernels.ByAbbr("BLK"), 0)
	tl.Run(g2, 4000)

	if len(tl.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(tl.Points))
	}
	// The second device's points must carry both kernels and sane values.
	for _, p := range tl.Points[2:] {
		if len(p.KernelIPC) != 2 || len(p.CTAs) != 2 {
			t.Fatalf("second-GPU point has arity %d, want 2", len(p.KernelIPC))
		}
		for k, ipc := range p.KernelIPC {
			if ipc <= 0 {
				t.Fatalf("second-GPU kernel %d ipc = %v, want > 0 (stale baseline?)", k, ipc)
			}
		}
	}
	// A fresh baseline means the second device's first window cannot be
	// polluted by g1's cumulative counters (which would go negative or
	// explode); sanity-bound it against the device's issue width.
	if ipc := tl.Points[2].KernelIPC[0]; ipc > 64 {
		t.Fatalf("second-GPU first-window ipc = %v, implausible", ipc)
	}
}

func TestRepartitionCycleFromEvents(t *testing.T) {
	ctrl := core.NewController()
	ctrl.WarmupCycles = 4000
	ctrl.SampleCycles = 2000
	log := obs.NewEventLog()
	ctrl.Log = log
	g := gpu.New(config.Baseline(), ctrl)
	g.Log = log
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)

	tl := New(1000)
	tl.Events = log
	tl.Run(g, 30000)
	if !ctrl.Decided() || ctrl.ChoseSpatial {
		t.Skip("pair did not take the intra-SM path")
	}
	rep, ok := log.First(obs.EvRepartition)
	if !ok {
		t.Fatal("controller logged no repartition")
	}
	for slot := 0; slot < 2; slot++ {
		if got := tl.RepartitionCycle(slot); got != rep.Cycle {
			t.Fatalf("RepartitionCycle(%d) = %d, want exact event cycle %d", slot, got, rep.Cycle)
		}
	}
	// The event answer is exact — not quantized to a window boundary.
	if rep.Cycle%tl.Window == 0 {
		t.Logf("note: repartition happened to land on a window boundary (%d)", rep.Cycle)
	}
	// Out-of-range slots fall back to the heuristic, and must not panic.
	if got := tl.RepartitionCycle(99); got != -1 {
		t.Fatalf("RepartitionCycle(99) = %d, want -1", got)
	}
}

func TestRepartitionCycleDetection(t *testing.T) {
	tl := New(1000)
	tl.kernels = 1
	mk := func(cycle int64, ctas int) Point {
		return Point{Cycle: cycle, CTAs: []int{ctas}, KernelIPC: []float64{1}}
	}
	tl.Points = []Point{mk(1000, 4), mk(2000, 4), mk(3000, 4), mk(4000, 7), mk(5000, 7)}
	if got := tl.RepartitionCycle(0); got != 4000 {
		t.Fatalf("repartition cycle = %d, want 4000", got)
	}
	tl.Points = []Point{mk(1000, 4), mk(2000, 4)}
	if got := tl.RepartitionCycle(0); got != -1 {
		t.Fatalf("short timeline should return -1, got %d", got)
	}
	tl.Points = []Point{mk(1000, 4), mk(2000, 4), mk(3000, 4), mk(4000, 4)}
	if got := tl.RepartitionCycle(0); got != -1 {
		t.Fatalf("flat timeline should return -1, got %d", got)
	}
}
