package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenRun is the fixed scenario both exporters are pinned to: an IMG+BLK
// co-run under the dynamic controller, long enough to capture the warm-up,
// sampling and the repartition landing. The simulator is deterministic, so
// byte-identical output is a fair contract.
func goldenRun(t *testing.T) *Timeline {
	t.Helper()
	ctrl := core.NewController()
	ctrl.WarmupCycles = 4000
	ctrl.SampleCycles = 2000
	log := obs.NewEventLog()
	ctrl.Log = log
	g := gpu.New(config.Baseline(), ctrl)
	g.Log = log
	g.AddKernel(kernels.ByAbbr("IMG"), 0)
	g.AddKernel(kernels.ByAbbr("BLK"), 0)
	tl := New(2000)
	tl.Events = log
	tl.Run(g, 16000)
	return tl
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/trace -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	tl := goldenRun(t)
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.golden.csv", buf.Bytes())
}

func TestWriteChromeTraceGolden(t *testing.T) {
	tl := goldenRun(t)
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrometrace.golden.json", buf.Bytes())

	// Independent of the golden bytes: the trace must carry the controller's
	// repartition as an instant event so it is visible in chrome://tracing.
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"repartition"`)) {
		t.Error("chrome trace has no repartition instant event")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"name":"warmup"`)) {
		t.Error("chrome trace has no warmup span")
	}
	// Sampled memory-request spans render as nestable async events plus a
	// flow arrow; a default-period run of this length must trace some.
	for _, marker := range []string{
		`"cat":"span","ph":"b"`, `"cat":"span","ph":"e"`,
		`"cat":"spanflow","ph":"s"`, `"bp":"e"`,
		`"name":"dram"`, `"name":"l2_queue"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(marker)) {
			t.Errorf("chrome trace missing span marker %s", marker)
		}
	}
}
