package warp

import (
	"testing"
	"testing/quick"

	"warpedslicer/internal/isa"
	"warpedslicer/internal/kernels"
)

func newWarp(t *testing.T) *Warp {
	t.Helper()
	spec := kernels.ByAbbr("IMG")
	return New(0, 0, 1, kernels.NewStream(spec, 1<<40, 0, 0))
}

func TestPeekThenIssueProgresses(t *testing.T) {
	w := newWarp(t)
	// A fresh warp must read as never-issued: cycle numbers start at 0,
	// so the sentinel has to be -1, not 0 (the GTO cycle-0 off-by-one).
	if w.LastIssued != -1 {
		t.Fatalf("fresh warp LastIssued = %d, want -1", w.LastIssued)
	}
	in, blk := w.Peek(0, 12)
	if blk != BlockNone {
		t.Fatalf("fresh warp blocked: %v", blk)
	}
	w.Issue(0, in, false, 12, 0)
	if w.LastIssued != 0 {
		t.Fatalf("LastIssued = %d after issuing at cycle 0, want 0", w.LastIssued)
	}
}

func TestRAWHazardBlocksAndReleases(t *testing.T) {
	w := newWarp(t)
	in, _ := w.Peek(0, 12)
	w.Issue(0, in, false, 12, 0)
	// IMG's body chains dependencies: the next instruction reads the
	// previous dest, so it must report a RAW hazard.
	_, blk := w.Peek(1, 12)
	if blk != BlockRAW {
		t.Fatalf("expected BlockRAW, got %v", blk)
	}
	w.Writeback(in.Dest, false)
	if _, blk := w.Peek(2, 12); blk != BlockNone {
		t.Fatalf("after writeback still blocked: %v", blk)
	}
}

func TestLoadHazardReportsMemory(t *testing.T) {
	spec := kernels.ByAbbr("MVP") // body: ldg reuse then dependent alu
	w := New(0, 0, 1, kernels.NewStream(spec, 1<<40, 0, 0))
	in, blk := w.Peek(0, 12)
	if blk != BlockNone || in.Kind != isa.LDG {
		t.Fatalf("first MVP instr = %v/%v, want ready LDG", in.Kind, blk)
	}
	w.Issue(0, in, true, 12, 0)
	if w.OutstandingLoads != 1 {
		t.Fatalf("outstanding loads = %d, want 1", w.OutstandingLoads)
	}
	_, blk = w.Peek(1, 12)
	if blk != BlockMemory {
		t.Fatalf("dependent instr block = %v, want BlockMemory", blk)
	}
	w.Writeback(in.Dest, true)
	if w.OutstandingLoads != 0 {
		t.Fatal("load not released")
	}
	if _, blk := w.Peek(2, 12); blk != BlockNone {
		t.Fatalf("after load return still blocked: %v", blk)
	}
}

func TestIBufferBlockAfterIssue(t *testing.T) {
	w := newWarp(t)
	in, _ := w.Peek(5, 12)
	w.Issue(5, in, false, 12, 0)
	w.Writeback(in.Dest, false)
	// Fetch delay of 1 cycle: at the same cycle the next instruction is
	// not yet available.
	if _, blk := w.Peek(5, 12); blk != BlockIBuffer {
		t.Fatalf("same-cycle peek = %v, want BlockIBuffer", blk)
	}
	if _, blk := w.Peek(6, 12); blk == BlockIBuffer {
		t.Fatal("next cycle should have fetched")
	}
}

func TestBarrierLifecycle(t *testing.T) {
	spec := kernels.ByAbbr("HOT") // has BAR at end of body
	w := New(0, 0, 1, kernels.NewStream(spec, 1<<40, 0, 0))
	var issued int
	for cycle := int64(0); cycle < 10000 && w.State == Running; cycle++ {
		in, blk := w.Peek(cycle, 12)
		if blk != BlockNone {
			if blk == BlockRAW || blk == BlockMemory {
				// Complete everything instantly for this test.
				w.Writeback(in.Dest, false)
			}
			continue
		}
		w.Issue(cycle, in, false, 12, 0)
		w.Writeback(in.Dest, false)
		issued++
		if in.Kind == isa.BAR {
			break
		}
	}
	if w.State != AtBarrier {
		t.Fatalf("state = %v, want AtBarrier", w.State)
	}
	if _, blk := w.Peek(99999, 12); blk != BlockBarrier {
		t.Fatal("barrier warp should report BlockBarrier")
	}
	w.ReleaseBarrier()
	if w.State != Running {
		t.Fatal("release did not resume warp")
	}
}

func TestExitFinishesWarp(t *testing.T) {
	spec := kernels.ByAbbr("IMG")
	w := New(0, 0, 1, kernels.NewStream(spec, 1<<40, 0, 0))
	for cycle := int64(0); cycle < 1_000_000 && !w.Finished(); cycle++ {
		in, blk := w.Peek(cycle, 12)
		if blk != BlockNone {
			continue
		}
		w.Issue(cycle, in, false, 12, 0)
		if in.Dest != isa.NoReg {
			w.Writeback(in.Dest, false)
		}
	}
	if !w.Finished() {
		t.Fatal("warp never finished")
	}
	if _, blk := w.Peek(0, 12); blk != BlockDone {
		t.Fatal("finished warp should report BlockDone")
	}
}

func TestICacheMissDelaysFetch(t *testing.T) {
	spec := kernels.ByAbbr("IMG")
	// 100% i-cache miss: every fetch pays the full delay.
	miss := *spec
	w := New(0, 0, 1, kernels.NewStream(&miss, 1<<40, 0, 0))
	in, _ := w.Peek(0, 20)
	w.Issue(0, in, false, 20, 100)
	w.Writeback(in.Dest, false)
	if _, blk := w.Peek(10, 20); blk != BlockIBuffer {
		t.Fatal("fetch should still be pending at +10 with delay 20")
	}
	if _, blk := w.Peek(20, 20); blk == BlockIBuffer {
		t.Fatal("fetch should have completed at +20")
	}
}

func TestWritebackOnNoRegIsNoop(t *testing.T) {
	w := newWarp(t)
	w.Writeback(isa.NoReg, false) // must not panic or corrupt state
	w.Writeback(5, true)          // spurious: counters clamp at zero
	if w.OutstandingLoads != 0 {
		t.Fatal("spurious writeback corrupted load count")
	}
}

// Property: any interleaving of issue/writeback pairs leaves the
// scoreboard clean (no stuck RAW hazards) once every issued instruction
// has been written back.
func TestScoreboardBalancedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		spec := kernels.ByAbbr("MM")
		w := New(0, 0, 1, kernels.NewStream(spec, 1<<40, int(seed%100), 0))
		type pendingWB struct {
			reg    int8
			isLoad bool
		}
		var pend []pendingWB
		for cycle := int64(0); cycle < 3000 && !w.Finished(); cycle++ {
			in, blk := w.Peek(cycle, 12)
			if blk == BlockNone {
				isLoad := in.Kind == isa.LDG
				w.Issue(cycle, in, isLoad, 12, 0)
				if in.Dest != isa.NoReg {
					pend = append(pend, pendingWB{in.Dest, isLoad})
				}
				if in.Kind == isa.BAR {
					w.ReleaseBarrier()
				}
				continue
			}
			// Retire one pending writeback (pseudo-randomly chosen) to
			// unblock.
			if len(pend) > 0 {
				i := int((seed + uint64(cycle)) % uint64(len(pend)))
				w.Writeback(pend[i].reg, pend[i].isLoad)
				pend = append(pend[:i], pend[i+1:]...)
			}
		}
		// Drain all writebacks: the warp must then be able to issue.
		for _, p := range pend {
			w.Writeback(p.reg, p.isLoad)
		}
		if w.Finished() {
			return true
		}
		_, blk := w.Peek(99999, 12)
		return blk == BlockNone || blk == BlockBarrier
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
