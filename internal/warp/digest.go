package warp

import "warpedslicer/internal/digest"

// DigestInto walks the warp's architectural state: identity and
// lifecycle, the logical stream position, fetch timing, the register
// scoreboard, and the issue stamp. The order is fixed — see DESIGN.md
// "The canonical-state traversal contract".
//
// The i-buffer (have/cur) is deliberately excluded and instead folded
// into the stream's logical position: whether the next instruction has
// been materialized yet depends on when a scheduler last peeked the warp,
// which differs between the ready-set and reference issue paths without
// any architectural consequence — the buffered instruction is a pure
// function of the stream position it was fetched from.
func (w *Warp) DigestInto(h *digest.Hasher) {
	h.Int(w.Kernel)
	h.Int(w.CTA)
	h.I64(w.Age)
	h.U64(uint64(w.State))
	prefetched := 0
	if w.have {
		prefetched = 1
	}
	w.stream.DigestLogical(h, prefetched)
	h.U64(w.r.State())
	h.I64(w.fetchReadyAt)
	h.Bytes(w.pend[:])
	h.Bytes(w.pendLoad[:])
	h.Int(w.OutstandingLoads)
	h.I64(w.LastIssued)
}
