// Package warp holds the per-warp execution state tracked by an SM: the
// instruction stream cursor, fetch/i-buffer timing, the register scoreboard
// (with load/ALU writer distinction for stall attribution), and barrier
// state.
package warp

import (
	"warpedslicer/internal/isa"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/rng"
)

// MaxRegs bounds per-thread register identifiers.
const MaxRegs = 128

// State is the warp lifecycle state.
type State uint8

const (
	// Running warps compete for issue slots.
	Running State = iota
	// AtBarrier warps wait for their CTA to synchronize.
	AtBarrier
	// Done warps have executed EXIT.
	Done
)

// Block identifies why a warp cannot issue this cycle. Values mirror the
// stall classes of Figure 1 of the paper.
type Block uint8

const (
	// BlockNone: the warp can issue.
	BlockNone Block = iota
	// BlockIBuffer: next instruction not yet fetched/decoded.
	BlockIBuffer
	// BlockRAW: scoreboard hazard against a short-latency (ALU/SFU/LDS)
	// producer.
	BlockRAW
	// BlockMemory: scoreboard hazard against an outstanding global load.
	BlockMemory
	// BlockBarrier: warp is waiting at a CTA barrier.
	BlockBarrier
	// BlockDone: warp has exited.
	BlockDone
)

// Warp is one warp resident on an SM.
type Warp struct {
	// Kernel is the SM-local kernel slot; CTA is the SM-local CTA slot.
	Kernel int
	CTA    int
	// Age is a monotonically increasing launch stamp (for greedy-then-
	// oldest scheduling).
	Age int64

	// State and the fields below through LastIssued are scheduler-visible:
	// the SM caches a classification derived from them, so every write
	// outside a constructor must reach a wake hook (markStale) — the
	// //simlint:readiness markers make the wakehook analyzer enforce it.
	//simlint:readiness
	State State

	stream *kernels.Stream
	r      rng.Stream

	//simlint:readiness
	have bool
	//simlint:readiness
	//simlint:nodigest -- derived: folded into DigestLogical's prefetched stream position (see digest.go)
	cur isa.Instr
	//simlint:readiness
	fetchReadyAt int64

	// pend counts outstanding writers per register; pendLoad counts the
	// subset that are global loads (long-latency producers).
	//simlint:readiness
	pend [MaxRegs]uint8
	//simlint:readiness
	pendLoad [MaxRegs]uint8
	// OutstandingLoads counts global loads in flight for this warp.
	//simlint:readiness
	OutstandingLoads int

	// LastIssued is the cycle this warp last issued (GTO greediness).
	// -1 until the first issue: cycle numbers start at 0, so a zero
	// initialization would be indistinguishable from "issued at cycle 0"
	// and would deny greedy priority to a warp that legitimately did.
	//simlint:readiness
	LastIssued int64
}

// New binds a warp to its instruction stream.
func New(kernel, ctaSlot int, age int64, stream *kernels.Stream) *Warp {
	return &Warp{
		Kernel:     kernel,
		CTA:        ctaSlot,
		Age:        age,
		stream:     stream,
		r:          rng.NewStream(rng.Mix2(uint64(age), 0xabcd)),
		LastIssued: -1,
	}
}

// FetchReadyAt returns the cycle the next instruction fetch completes (the
// scheduler's wake-up time for an i-buffer-blocked warp).
func (w *Warp) FetchReadyAt() int64 { return w.fetchReadyAt }

// Spec returns the kernel spec this warp executes.
func (w *Warp) Spec() *kernels.Spec { return w.stream.Spec() }

// fetch pulls the next instruction into the i-buffer if its fetch latency
// has elapsed.
func (w *Warp) fetch(now int64, fetchDelay int) {
	if w.have || w.State == Done {
		return
	}
	// fetchReadyAt of 0 (freshly launched) means "ready immediately"; it
	// is deliberately NOT stamped with `now` here. Fetch time depends on
	// when a scheduler first peeks the warp — the ready-set path peeks
	// eagerly, the reference rescan lazily — so recording it would smuggle
	// scheduler-implementation timing into architectural state and break
	// digest equality between the two issue paths (the schedref
	// cross-check). Only Issue writes fetchReadyAt.
	if now < w.fetchReadyAt {
		return
	}
	w.cur = w.stream.Next()
	w.have = true
}

// Peek returns the instruction the warp wants to issue and the reason it
// cannot, if any. It never consumes the instruction.
func (w *Warp) Peek(now int64, fetchDelay int) (isa.Instr, Block) {
	switch w.State {
	case Done:
		return isa.Instr{}, BlockDone
	case AtBarrier:
		return isa.Instr{}, BlockBarrier
	}
	w.fetch(now, fetchDelay)
	if !w.have {
		return isa.Instr{}, BlockIBuffer
	}
	in := w.cur
	if blk := w.hazard(in); blk != BlockNone {
		return in, blk
	}
	return in, BlockNone
}

// hazard checks the scoreboard for RAW/WAW conflicts.
func (w *Warp) hazard(in isa.Instr) Block {
	check := func(r int8) Block {
		if r == isa.NoReg || w.pend[r] == 0 {
			return BlockNone
		}
		if w.pendLoad[r] > 0 {
			return BlockMemory
		}
		return BlockRAW
	}
	if b := check(in.Src[0]); b != BlockNone {
		return b
	}
	if b := check(in.Src[1]); b != BlockNone {
		return b
	}
	return check(in.Dest)
}

// Issue consumes the buffered instruction, updates the scoreboard, and
// schedules the next fetch. isLoad marks a global load whose destination
// will be released by a memory reply rather than a pipeline writeback.
func (w *Warp) Issue(now int64, in isa.Instr, isLoad bool, fetchDelay, icacheMissPct int) {
	w.have = false
	w.LastIssued = now
	delay := int64(1)
	if w.r.Pct(icacheMissPct) {
		delay = int64(fetchDelay)
	}
	w.fetchReadyAt = now + delay

	if in.Kind == isa.EXIT {
		w.State = Done
		return
	}
	if in.Kind == isa.BAR {
		w.State = AtBarrier
		return
	}
	if in.Dest != isa.NoReg {
		w.pend[in.Dest]++
		if isLoad {
			w.pendLoad[in.Dest]++
			w.OutstandingLoads++
		}
	}
}

// Writeback releases one pending writer of reg. isLoad must match the value
// passed at Issue.
func (w *Warp) Writeback(reg int8, isLoad bool) {
	if reg == isa.NoReg {
		return
	}
	if w.pend[reg] > 0 {
		w.pend[reg]--
	}
	if isLoad {
		if w.pendLoad[reg] > 0 {
			w.pendLoad[reg]--
		}
		if w.OutstandingLoads > 0 {
			w.OutstandingLoads--
		}
	}
}

// ReleaseBarrier returns the warp to the running state.
func (w *Warp) ReleaseBarrier() {
	if w.State == AtBarrier {
		w.State = Running
	}
}

// Finished reports whether the warp has exited.
func (w *Warp) Finished() bool { return w.State == Done }
