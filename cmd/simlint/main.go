// Command simlint runs the repository's simulator-specific static
// analyzers (internal/lint) and exits non-zero on any finding:
//
//	go run ./cmd/simlint ./...
//
// Flags:
//
//	-rules determinism,obsregister,cycleguard   run a subset
//	-list                                       print the analyzers and exit
//
// Findings are waived in source with `//simlint:allow <rule> -- reason`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"warpedslicer/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "simlint: unknown rule %q\n", r)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.NewLoader().Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			// Analysis precision depends on clean type-checking; surface
			// loader problems rather than silently passing.
			fmt.Fprintf(os.Stderr, "simlint: %s: type error: %v\n", p.ImportPath, e)
			failed = true
		}
	}

	cwd, _ := os.Getwd()
	for _, d := range lint.Run(pkgs, analyzers) {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
