// Command simlint runs the repository's simulator-specific static
// analyzers (internal/lint) and exits non-zero on any finding:
//
//	go run ./cmd/simlint ./internal/... ./cmd/...
//
// Flags:
//
//	-rules determinism,statecov,...   run a subset (see -list for all)
//	-list                             print the analyzers and exit
//	-strict-waivers                   also fail on waivers that suppress nothing
//	-github                           emit GitHub Actions ::error annotations too
//
// Findings are waived in source with `//simlint:allow <rule> -- reason`;
// struct fields deliberately excluded from digest coverage carry
// `//simlint:nodigest <reason>`. Under -strict-waivers, directives that
// suppress no finding (or lack a written reason) are reported as rule
// "stalewaiver".
//
// Exit codes: 0 clean, 1 findings or type errors, 2 usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"warpedslicer/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: parses args, runs the suite, renders
// findings to stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	strictWaivers := fs.Bool("strict-waivers", false, "also report //simlint directives that suppress no finding")
	github := fs.Bool("github", false, "also emit GitHub Actions ::error annotations")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(stderr, "simlint: unknown rule %q\n", r)
			return 2
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.NewLoader().Load(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	failed := false
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			// Analysis precision depends on clean type-checking; surface
			// loader problems rather than silently passing.
			fmt.Fprintf(stderr, "simlint: %s: type error: %v\n", p.ImportPath, e)
			failed = true
		}
	}

	findings, stale := lint.RunAudited(pkgs, analyzers)
	if *strictWaivers {
		findings = append(findings, stale...)
		lint.SortDiagnostics(findings)
	}
	cwd, _ := os.Getwd()
	for _, d := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Fprintln(stdout, d)
		if *github {
			// Workflow-command form: one ::error per finding makes CI
			// surface the diagnostics inline on the PR diff.
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=simlint %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
		}
		failed = true
	}
	if failed {
		return 1
	}
	return 0
}
