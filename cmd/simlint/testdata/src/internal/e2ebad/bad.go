// Package e2ebad seeds one finding per contract family, so the CLI test
// can assert exit codes, rendered rule names, and -rules subsetting.
package e2ebad

import "time"

type hasher struct{ acc uint64 }

func (h *hasher) U64(v uint64) { h.acc = h.acc*31 + v }

type state struct {
	ticks  uint64
	hidden uint64 // not digested, not waived -> statecov
}

func (s *state) DigestInto(h *hasher) {
	h.U64(s.ticks)
}

// stamp is a direct wall-clock read -> determinism.
func stamp() int64 {
	return time.Now().UnixNano()
}

// seed launders the clock through the wrapper -> determtaint.
func seed() int64 {
	return stamp()
}

var _ = seed
