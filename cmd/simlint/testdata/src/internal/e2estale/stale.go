// Package e2estale carries only a stale waiver: the division below is
// already guarded, so the directive suppresses nothing. Default runs exit
// 0; -strict-waivers reports it and exits 1.
package e2estale

func frac(part, cycles uint64) uint64 {
	if cycles == 0 {
		return 0
	}
	//simlint:allow cycleguard -- stale on purpose: the guard above already handles zero
	return part / cycles
}

var _ = frac
