// Package e2eclean is the lint-clean fixture for the CLI end-to-end
// test: compliant code plus one used, justified waiver (so default runs
// exit 0 and -strict-waivers has nothing to report).
package e2eclean

func perCycle(insts, cycles uint64) uint64 {
	//simlint:allow cycleguard -- fixture: the caller guarantees cycles > 0
	return insts / cycles
}

var _ = perCycle
