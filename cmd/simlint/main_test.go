package main

import (
	"strings"
	"testing"
)

// The fixture module lives under testdata/src so the loader's pattern
// walk (which skips testdata subdirectories but not a testdata root)
// reaches it explicitly, and its import paths fall under .../internal/...
// — which makes the fixture packages Sim packages, subject to the full
// contract suite, without touching the real tree.
const (
	cleanPkg = "./testdata/src/internal/e2eclean"
	badPkg   = "./testdata/src/internal/e2ebad"
	stalePkg = "./testdata/src/internal/e2estale"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListPrintsAllAnalyzers(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, rule := range []string{"determinism", "obsregister", "cycleguard", "statecov", "wakehook", "determtaint"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list output missing analyzer %q:\n%s", rule, out)
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, errw := runCLI(t, cleanPkg)
	if code != 0 {
		t.Fatalf("clean fixture exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errw)
	}
	if out != "" {
		t.Errorf("clean fixture produced output:\n%s", out)
	}
}

func TestFindingsExitOne(t *testing.T) {
	code, out, _ := runCLI(t, badPkg)
	if code != 1 {
		t.Fatalf("bad fixture exit = %d, want 1\nstdout:\n%s", code, out)
	}
	// One finding per contract family, rendered with its rule tag.
	for _, rule := range []string{"[determinism]", "[statecov]", "[determtaint]"} {
		if !strings.Contains(out, rule) {
			t.Errorf("bad fixture output missing %s finding:\n%s", rule, out)
		}
	}
}

func TestRulesSubsetRestrictsFindings(t *testing.T) {
	code, out, _ := runCLI(t, "-rules", "determinism", badPkg)
	if code != 1 {
		t.Fatalf("-rules determinism exit = %d, want 1\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "[determinism]") {
		t.Errorf("subset run missing determinism finding:\n%s", out)
	}
	for _, rule := range []string{"[statecov]", "[determtaint]"} {
		if strings.Contains(out, rule) {
			t.Errorf("subset run leaked %s finding:\n%s", rule, out)
		}
	}
}

func TestUnknownRuleExitsTwo(t *testing.T) {
	code, _, errw := runCLI(t, "-rules", "nosuchrule", badPkg)
	if code != 2 {
		t.Fatalf("unknown rule exit = %d, want 2", code)
	}
	if !strings.Contains(errw, "nosuchrule") {
		t.Errorf("stderr does not name the unknown rule:\n%s", errw)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	code, _, errw := runCLI(t, "./testdata/src/internal/doesnotexist")
	if code != 2 {
		t.Fatalf("missing dir exit = %d, want 2\nstderr:\n%s", code, errw)
	}
}

func TestStaleWaiverOnlyFailsUnderStrict(t *testing.T) {
	code, out, _ := runCLI(t, stalePkg)
	if code != 0 {
		t.Fatalf("stale fixture without -strict-waivers exit = %d, want 0\nstdout:\n%s", code, out)
	}
	code, out, _ = runCLI(t, "-strict-waivers", stalePkg)
	if code != 1 {
		t.Fatalf("stale fixture with -strict-waivers exit = %d, want 1\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "[stalewaiver]") {
		t.Errorf("strict run missing stalewaiver finding:\n%s", out)
	}
}

func TestUsedWaiverSurvivesStrict(t *testing.T) {
	code, out, _ := runCLI(t, "-strict-waivers", cleanPkg)
	if code != 0 {
		t.Fatalf("clean fixture with -strict-waivers exit = %d, want 0\nstdout:\n%s", code, out)
	}
}

func TestGitHubAnnotations(t *testing.T) {
	code, out, _ := runCLI(t, "-github", badPkg)
	if code != 1 {
		t.Fatalf("-github exit = %d, want 1", code)
	}
	if !strings.Contains(out, "::error file=") {
		t.Errorf("-github output missing workflow annotation:\n%s", out)
	}
	if !strings.Contains(out, "title=simlint determinism") {
		t.Errorf("-github annotation missing rule title:\n%s", out)
	}
}
