package main

import (
	"fmt"
	"os"
	"syscall"
	"time"

	"warpedslicer/internal/divergence"
	"warpedslicer/internal/runlog"
)

// openLedger opens (or creates) the run ledger and wires the process
// clocks into it. The sim side of the tree never reads a clock; the
// journal's wall/CPU columns come from here.
func openLedger(dir string) *runlog.Ledger {
	led, err := runlog.Open(dir)
	if err != nil {
		fatal(err)
	}
	led.WallNow = func() int64 { return time.Now().UnixNano() }
	led.CPUNow = cpuNowNs
	return led
}

// cpuNowNs is the process's cumulative user+system CPU time. The journal
// records CPU cost alongside wall time because wall deltas on shared
// machines include stretches where the process was not scheduled.
func cpuNowNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}

// runRunsCmd is the `wslicer -ledger DIR runs <list|show|diff>` entry
// point: the CLI surface over the content-addressed run ledger.
func runRunsCmd(dir string, args []string) {
	if dir == "" {
		fatal(fmt.Errorf("runs: -ledger DIR is required"))
	}
	led, err := runlog.Open(dir)
	if err != nil {
		fatal(err)
	}
	sub := "list"
	if len(args) > 0 {
		sub = args[0]
		args = args[1:]
	}
	switch sub {
	case "list":
		runsList(led)
	case "show":
		if len(args) != 1 {
			fatal(fmt.Errorf("usage: wslicer -ledger DIR runs show <key>"))
		}
		runsShow(led, args[0])
	case "diff":
		if len(args) != 2 {
			fatal(fmt.Errorf("usage: wslicer -ledger DIR runs diff <key-a> <key-b>"))
		}
		runsDiff(led, args[0], args[1])
	default:
		fatal(fmt.Errorf("runs: unknown subcommand %q (want list, show or diff)", sub))
	}
}

func runsList(led *runlog.Ledger) {
	v := led.View()
	fmt.Printf("ledger %s: %d runs (%d appended, %d deduped by this process)\n",
		v.Dir, len(v.Runs), v.Appends, v.DedupHits)
	if len(v.Runs) == 0 {
		return
	}
	fmt.Printf("%-16s %-10s %-18s %-10s %12s %8s %10s\n",
		"key", "kind", "workload", "policy", "cycles", "ipc", "wall")
	for _, e := range v.Runs {
		wall := "-"
		if e.WallNs > 0 {
			wall = time.Duration(e.WallNs).Round(time.Millisecond).String()
		}
		timeout := ""
		if e.Timeout {
			timeout = "  (timeout)"
		}
		fmt.Printf("%-16s %-10s %-18s %-10s %12d %8.2f %10s%s\n",
			e.Key, e.Kind, e.Workload, e.Policy, e.Cycles, e.IPC, wall, timeout)
	}
}

func runsShow(led *runlog.Ledger, key string) {
	rec, err := led.Get(key)
	if err != nil {
		fatal(err)
	}
	data, err := runlog.MarshalRecord(rec)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(data)
	if led.HasTrail(rec.Key) {
		fmt.Fprintf(os.Stderr, "# digest trail stored: wslicer -ledger %s runs diff %s <other> bisects automatically\n",
			led.Dir(), rec.Key)
	}
}

// runsDiff compares two records' metrics and series, and — when both runs
// stored digest trails — hands the pair to the first-divergence bisector
// for a cycle-exact verdict.
func runsDiff(led *runlog.Ledger, keyA, keyB string) {
	a, err := led.Get(keyA)
	if err != nil {
		fatal(err)
	}
	b, err := led.Get(keyB)
	if err != nil {
		fatal(err)
	}
	d := runlog.Diff(a, b)
	fmt.Print(runlog.FormatDiff(d))

	if !d.ChainDiffers || !led.HasTrail(a.Key) || !led.HasTrail(b.Key) {
		return
	}
	ta, err := led.Trail(a.Key)
	if err != nil {
		fatal(err)
	}
	tb, err := led.Trail(b.Key)
	if err != nil {
		fatal(err)
	}
	if div, ok := divergence.Trails(ta, tb); ok {
		fmt.Printf("bisector: %s\n", div)
	} else {
		fmt.Println("bisector: stored digest trails are identical")
	}
}
