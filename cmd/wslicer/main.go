// Command wslicer regenerates the tables and figures of the Warped-Slicer
// paper (ISCA 2016) on the built-in GPU simulator.
//
// Usage:
//
//	wslicer [flags] <experiment>
//
// Experiments:
//
//	config   Table I    print the simulated GPU configuration
//	table2   Table II   per-benchmark utilization (isolation runs)
//	fig1     Figure 1   stall-cycle breakdown per benchmark
//	fig3     Figure 3a  performance vs occupancy curves + categories
//	fig3b    Figure 3b  IMG+NN sweet-spot identification
//	fig5     Figure 5   sampling-window vs long-run characterization
//	fig6     Figure 6   30 pairs x {Spatial,Even,Dynamic,Oracle} vs Left-Over
//	table3   Table III  CTA partitions chosen by Warped-Slicer vs Even
//	fig7     Figure 7   utilization, cache miss rates, stall breakdown
//	fig7c    Figure 7c  per-benchmark stall breakdown, alone vs shared (CSV)
//	figmemdecomp        sampled-span latency decomposition, alone vs shared (CSV)
//	figengineprof       engine self-profile: phase costs x kernel mix + fast-forward meter (CSV)
//	fig8     Figure 8   3-kernel workloads
//	fig9     Figure 9   fairness (min speedup) and ANTT
//	energy   §V-G       energy and dynamic power comparison
//	fig10    Figure 10  sensitivity to profiling length/delay and scheduler
//	bigsm    §V-H       large-SM configuration
//	overhead §V-I       hardware overhead of the profiling logic
//	timeline            windowed per-kernel IPC/occupancy trace (CSV)
//	divergence          first-divergence bisector: compare two recorded digest
//	                    trails (-trail-a/-trail-b), record one (-record-trail),
//	                    or self-check serial vs parallel sessions (default)
//	report              paper-vs-measured claim comparison
//	all                 everything above, in order
//
// Run ledger:
//
//	wslicer -ledger DIR <experiment>       record every completed run into a
//	                                       content-addressed ledger under DIR
//	wslicer -ledger DIR runs list          sorted run listing with wall cost
//	wslicer -ledger DIR runs show <key>    canonical RunRecord JSON (key prefixes ok)
//	wslicer -ledger DIR runs diff <a> <b>  metric/series deltas; with stored digest
//	                                       trails, hands off to the bisector
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"warpedslicer/internal/config"
	"warpedslicer/internal/core"
	"warpedslicer/internal/digest"
	"warpedslicer/internal/divergence"
	"warpedslicer/internal/experiments"
	"warpedslicer/internal/gpu"
	"warpedslicer/internal/kernels"
	"warpedslicer/internal/obs"
	"warpedslicer/internal/power"
	"warpedslicer/internal/prof"
	"warpedslicer/internal/trace"
)

func main() {
	var (
		isolation = flag.Int64("isolation", 60_000, "isolation window in cycles (paper: 2M)")
		sample    = flag.Int64("sample", 5_000, "profiling sample window in cycles")
		warmup    = flag.Int64("warmup", 20_000, "warm-up before profiling in cycles")
		oracle    = flag.Bool("oracle", true, "include the exhaustive oracle in fig6")
		pairs     = flag.Int("pairs", 0, "limit number of pair workloads (0 = all 30)")
		verbose   = flag.Bool("v", false, "log each completed run")
		quick     = flag.Bool("quick", false, "use small windows (smoke test)")
		jsonPath  = flag.String("json", "", "also write machine-readable results to this file")
		tlKernels = flag.String("kernels", "IMG,BLK", "timeline: comma-separated kernel abbreviations")
		tlWindow  = flag.Int64("window", 5000, "timeline: sampling window in cycles")
		tlCycles  = flag.Int64("cycles", 120_000, "timeline: total cycles to trace")
		tlCSV     = flag.String("csv", "", "timeline: CSV output path (default stdout)")
		csvDir    = flag.String("csvdir", "", "also write table2/fig3/fig6/fig7c/figmemdecomp results as CSV files here")

		parallel = flag.Int("parallel", 0, "worker pool size for independent simulations (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")

		metricsAddr = flag.String("metrics-addr", "", "serve live registry snapshots and the event log over HTTP (e.g. :8080)")
		pprofFlag   = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the -metrics-addr mux")
		profPeriod  = flag.Int64("prof-period", 0, "engine self-profiler sampling period in cycles (0 = off; figengineprof defaults to 37)")
		chromeTrace = flag.String("chrometrace", "", "timeline: also write Chrome trace-event JSON here (chrome://tracing)")
		eventsPath  = flag.String("events", "", "write the structured event log as JSONL to this file at exit")

		ledgerDir = flag.String("ledger", "", "record every completed run into this content-addressed ledger dir (also enables the `runs` subcommand)")

		digestPeriod = flag.Int64("digest-period", 0, "state-digest recording period in cycles (0 = off; divergence defaults to 1024)")
		blackbox     = flag.String("blackbox", "", "arm the flight recorder and dump a black-box JSON report here if a run panics (requires -digest-period)")
		trailA       = flag.String("trail-a", "", "divergence: first recorded digest trail (JSONL) to compare")
		trailB       = flag.String("trail-b", "", "divergence: second recorded digest trail (JSONL) to compare")
		recordTrail  = flag.String("record-trail", "", "divergence: record this run's digest trail as JSONL here instead of comparing")
		divPolicy    = flag.String("policy", "even", "divergence: co-run policy for recorded/self-check trails")
	)
	flag.Parse()
	if flag.Arg(0) == "runs" {
		runRunsCmd(*ledgerDir, flag.Args()[1:])
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wslicer [flags] <experiment>  (see -h)")
		os.Exit(2)
	}

	o := experiments.Defaults()
	if *quick {
		o = experiments.Quick()
	} else {
		o.IsolationCycles = *isolation
		o.Sample = *sample
		o.Warmup = *warmup
	}
	o.Parallelism = *parallel
	o.ProfPeriod = *profPeriod
	o.DigestEvery = *digestPeriod
	o.BlackBoxPath = *blackbox
	if err := o.Validate(); err != nil {
		fatal(err)
	}
	if *blackbox != "" && *digestPeriod <= 0 {
		fatal(fmt.Errorf("-blackbox requires -digest-period > 0"))
	}
	if *pprofFlag && *metricsAddr == "" {
		fatal(fmt.Errorf("-pprof requires -metrics-addr"))
	}
	// Every run keeps a structured event log; -v renders run summaries to
	// stderr as they land, -events dumps the whole log, -metrics-addr
	// serves it (plus live counter snapshots) over HTTP.
	o.Events = obs.NewEventLog()
	if *verbose {
		o.Events.OnEvent = renderEvent
	}
	if *ledgerDir != "" {
		o.Ledger = openLedger(*ledgerDir)
	}
	if *metricsAddr != "" {
		o.Hub = obs.NewHub(o.Events)
		var srvOpts []obs.ServerOption
		if *pprofFlag {
			srvOpts = append(srvOpts, obs.WithPprof())
		}
		srv, err := obs.StartServer(*metricsAddr, o.Hub, srvOpts...)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "# metrics: http://%s/\n", srv.Addr())
	}
	chromeTraceVal = *chromeTrace

	ws := experiments.Pairs()
	if *pairs > 0 && *pairs < len(ws) {
		ws = ws[:*pairs]
	}

	tlKernelsVal, tlWindowVal, tlCyclesVal, tlCSVVal = *tlKernels, *tlWindow, *tlCycles, *tlCSV
	csvDirVal = *csvDir
	trailAVal, trailBVal, recordTrailVal = *trailA, *trailB, *recordTrail
	divPolicyVal, digestPeriodVal = *divPolicy, *digestPeriod

	start := time.Now()
	results = map[string]any{}
	run(flag.Arg(0), o, ws, *oracle)
	fmt.Fprintf(os.Stderr, "# elapsed: %v\n", time.Since(start).Round(time.Second))
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath); err != nil {
			fatal(err)
		}
	}
	if *eventsPath != "" {
		if err := writeEvents(*eventsPath, o.Events); err != nil {
			fatal(err)
		}
	}
}

// renderEvent is the -v renderer: one stderr line per completed run. The
// run scope leads each line so concurrent runs' summaries stay
// attributable under -parallel.
func renderEvent(ev obs.Event) {
	switch ev.Kind {
	case obs.EvIsolationDone:
		fmt.Fprintf(os.Stderr, "# [%s] isolation %-4v insts=%v ipc=%.1f\n",
			ev.Run, ev.Data["kernel"], ev.Data["insts"], ev.Data["ipc"])
	case obs.EvCoRunDone:
		fmt.Fprintf(os.Stderr, "# [%s] corun %-8v %v ipc=%.1f cycles=%v\n",
			ev.Run, ev.Data["policy"], ev.Data["workload"], ev.Data["ipc"], ev.Data["cycles"])
	}
}

func writeEvents(path string, log *obs.EventLog) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return log.WriteJSONL(f)
}

// results collects each experiment's typed rows for -json export.
var results map[string]any

// csvDirVal, when set, receives CSV exports of the main result tables.
var csvDirVal string

func maybeCSV(name string, write func(w *os.File) error) {
	if csvDirVal == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvDirVal, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
}

func record(key string, v any) { results[key] = v }

func writeJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func run(name string, o experiments.Options, ws []experiments.Workload, withOracle bool) {
	s := experiments.NewSession(o)
	switch name {
	case "config":
		printConfig(o)
	case "table2":
		header("Table II: benchmark characteristics")
		rows := experiments.Table2(s)
		record("table2", rows)
		maybeCSV("table2.csv", func(f *os.File) error { return experiments.WriteTable2CSV(f, rows) })
		fmt.Print(experiments.FormatTable2(rows))
	case "fig1":
		header("Figure 1: stall-cycle breakdown (isolation)")
		rows := experiments.Figure1(s)
		record("figure1", rows)
		fmt.Print(experiments.FormatFigure1(rows))
	case "fig3":
		header("Figure 3a: performance vs CTA occupancy")
		curves := experiments.Figure3(s)
		record("figure3", curves)
		maybeCSV("fig3.csv", func(f *os.File) error { return experiments.WriteCurvesCSV(f, curves) })
		fmt.Print(experiments.FormatFigure3(curves))
	case "fig3b":
		header("Figure 3b: sweet-spot identification (IMG + NN)")
		ss, err := s.Figure3b(kernels.ByAbbr("IMG"), kernels.ByAbbr("NN"))
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatSweetSpot(ss))
	case "fig5":
		header("Figure 5: 5K-cycle sampling window vs long-run behaviour")
		fmt.Print(experiments.FormatFigure5(experiments.Figure5(s, 10)))
	case "fig6":
		header("Figure 6: multiprogrammed pairs, IPC normalized to Left-Over")
		rows := experiments.Figure6From(s, ws, withOracle)
		record("figure6", rows)
		record("figure6_gmeans", experiments.SummarizeFigure6(rows))
		maybeCSV("fig6.csv", func(f *os.File) error { return experiments.WriteFigure6CSV(f, rows) })
		fmt.Print(experiments.FormatFigure6(rows))
	case "table3":
		header("Table III: CTA partitions (Warped-Slicer vs Even)")
		rows := experiments.Figure6From(s, ws, false)
		fmt.Print(experiments.FormatTable3(experiments.Table3(s, rows)))
	case "fig7":
		header("Figure 7: utilization / cache miss rates / stalls")
		rows := experiments.Figure6From(s, ws, false)
		a := experiments.Figure7aFrom(s, rows)
		b := experiments.Figure7bFrom(rows)
		c := experiments.Figure7cFrom(rows)
		fmt.Print(experiments.FormatFigure7(a, b, c))
	case "fig7c":
		header("Figure 7c: per-benchmark stall breakdown (alone vs shared)")
		rows := experiments.Figure6From(s, ws, false)
		det := experiments.Figure7cDetail(s, rows)
		record("figure7c", det)
		maybeCSV("figure7c.csv", func(f *os.File) error { return experiments.WriteFigure7cCSV(f, det) })
		if err := experiments.WriteFigure7cCSV(os.Stdout, det); err != nil {
			fatal(err)
		}
	case "figmemdecomp":
		header("Memory-interference decomposition: sampled span stages, alone vs shared")
		rows := experiments.FigMemDecomp(s, ws)
		record("figmemdecomp", rows)
		maybeCSV("figmemdecomp.csv", func(f *os.File) error { return experiments.WriteMemDecompCSV(f, rows) })
		if err := experiments.WriteMemDecompCSV(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "figengineprof":
		header("Engine self-profile: phase costs x kernel mix + fast-forward opportunity")
		// The experiment's point is the phase split, so profiling defaults
		// on here (everywhere else it stays opt-in via -prof-period).
		po := o
		if po.ProfPeriod <= 0 {
			po.ProfPeriod = prof.DefaultPeriod
		}
		ps := experiments.NewSession(po)
		rows := experiments.FigEngineProf(ps, experiments.EngineProfWorkloads(ws))
		record("figengineprof", rows)
		maybeCSV("figengineprof.csv", func(f *os.File) error { return experiments.WriteEngineProfCSV(f, rows) })
		fmt.Print(experiments.FormatEngineProf(rows))
	case "fig8":
		header("Figure 8: three kernels per SM")
		fmt.Print(experiments.FormatFigure8(experiments.Figure8(s)))
	case "fig9":
		header("Figure 9: fairness and ANTT")
		pairRows := experiments.Figure6From(s, ws, false)
		tripleRows := experiments.Figure8(s)
		fmt.Print(experiments.FormatFigure9(experiments.Figure9(s, pairRows, tripleRows)))
	case "energy":
		header("§V-G: energy and power")
		rows := experiments.Figure6From(s, ws, false)
		fmt.Print(experiments.FormatEnergy(experiments.Energy(s, rows)))
	case "fig10":
		header("Figure 10: sensitivity analysis")
		a := experiments.Figure10a(o, ws)
		b := experiments.Figure10b(o, ws)
		fmt.Print(experiments.FormatFigure10(a, b))
	case "bigsm":
		header("§V-H: large-SM configuration")
		lo := o
		lo.Cfg = config.LargeSM()
		fmt.Print(experiments.FormatBigSM(experiments.BigSM(lo, ws)))
	case "overhead":
		header("§V-I: hardware overhead")
		fmt.Print(experiments.FormatOverhead(power.Overhead(o.Cfg.NumSMs)))
	case "report":
		header("Paper-vs-measured report")
		pairRows := experiments.Figure6From(s, ws, withOracle)
		tripleRows := experiments.Figure8(s)
		fair := experiments.Figure9(s, pairRows, tripleRows)
		en := experiments.Energy(s, pairRows)
		rep := experiments.BuildReport(pairRows, tripleRows, fair, en)
		record("report", rep)
		fmt.Print(rep.Format())
	case "timeline":
		runTimeline(o)
	case "divergence":
		runDivergence(o)
	case "all":
		runAll(o, ws, withOracle)
	default:
		fatal(fmt.Errorf("unknown experiment %q", name))
	}
}

// timeline flag values (set in main, read by runTimeline).
var (
	tlKernelsVal   = "IMG,BLK"
	tlWindowVal    = int64(5000)
	tlCyclesVal    = int64(120_000)
	tlCSVVal       = ""
	chromeTraceVal = ""
)

// parseKernels resolves a comma-separated abbreviation list ("IMG,BLK").
func parseKernels(list string) []*kernels.Spec {
	var specs []*kernels.Spec
	for _, a := range strings.Split(list, ",") {
		spec := kernels.ByAbbr(strings.TrimSpace(a))
		if spec == nil {
			fatal(fmt.Errorf("unknown kernel %q", a))
		}
		specs = append(specs, spec)
	}
	return specs
}

// divergence flag values (set in main, read by runDivergence).
var (
	trailAVal, trailBVal, recordTrailVal string
	divPolicyVal                         string
	digestPeriodVal                      int64
)

// runDivergence is the first-divergence bisector entry point. Three
// modes: compare two recorded trail files, record a trail, or (default)
// self-check that a serial and a parallel session produce identical
// digest trails for the same co-run. Exits 1 on divergence.
func runDivergence(o experiments.Options) {
	every := digestPeriodVal
	if every <= 0 {
		every = gpu.DefaultDigestEvery
	}
	specs := parseKernels(tlKernelsVal)

	switch {
	case trailAVal != "" || trailBVal != "":
		if trailAVal == "" || trailBVal == "" {
			fatal(fmt.Errorf("divergence: -trail-a and -trail-b must both be set"))
		}
		a, b := readTrail(trailAVal), readTrail(trailBVal)
		d, ok := divergence.Trails(a, b)
		report(d, ok, fmt.Sprintf("%s vs %s (%d vs %d records)",
			trailAVal, trailBVal, len(a.Records), len(b.Records)))

	case recordTrailVal != "":
		s := experiments.NewSession(o)
		t := s.DigestTrail(specs, divPolicyVal, nil, every)
		f, err := os.Create(recordTrailVal)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := t.WriteJSONL(f); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d digest records (period %d, chain %s) to %s\n",
			len(t.Records), every, t.Chain(), recordTrailVal)

	default:
		header("Divergence self-check: serial vs parallel session")
		d, ok := divergence.ParallelSerial(o, specs, divPolicyVal, nil, every)
		report(d, ok, fmt.Sprintf("serial vs parallel, policy %q, workload %s, period %d",
			divPolicyVal, experiments.WorkloadName(specs), every))
	}
}

func readTrail(path string) *digest.Trail {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := digest.ReadTrailJSONL(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return t
}

// report prints a bisection verdict and exits 1 on divergence.
func report(d digest.Divergence, ok bool, label string) {
	if !ok {
		fmt.Printf("identical: %s\n", label)
		return
	}
	fmt.Printf("DIVERGED (%s): %s\n", label, d)
	os.Exit(1)
}

// runTimeline traces a Warped-Slicer co-run window by window.
func runTimeline(o experiments.Options) {
	specs := parseKernels(tlKernelsVal)
	ctrl := core.NewController()
	ctrl.WarmupCycles = o.Warmup
	ctrl.SampleCycles = o.Sample
	ctrl.Log = o.Events
	g := gpu.New(o.Cfg, ctrl)
	o.Instrument(g)
	for _, spec := range specs {
		g.AddKernel(spec, 0)
	}
	tl := trace.New(tlWindowVal)
	tl.Events = o.Events
	tl.Run(g, tlCyclesVal)

	out := os.Stdout
	if tlCSVVal != "" {
		f, err := os.Create(tlCSVVal)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := tl.WriteCSV(out); err != nil {
		fatal(err)
	}
	if chromeTraceVal != "" {
		f, err := os.Create(chromeTraceVal)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tl.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
	}
	if ctrl.Decided() && !ctrl.ChoseSpatial {
		fmt.Fprintf(os.Stderr, "# partition: %v\n", ctrl.Partition)
	}
	if rep, ok := o.Events.First(obs.EvRepartition); ok {
		fmt.Fprintf(os.Stderr, "# repartition landed at cycle %d\n", rep.Cycle)
	}
}

// runAll regenerates everything, sharing one session so the 30-pair sweep
// feeds Table III, Figure 7, Figure 9 and the energy study without re-runs.
func runAll(o experiments.Options, ws []experiments.Workload, withOracle bool) {
	s := experiments.NewSession(o)

	printConfig(o)
	fmt.Println()

	header("Table II: benchmark characteristics")
	t2 := experiments.Table2(s)
	record("table2", t2)
	fmt.Print(experiments.FormatTable2(t2))
	fmt.Println()

	header("Figure 1: stall-cycle breakdown (isolation)")
	f1 := experiments.Figure1(s)
	record("figure1", f1)
	fmt.Print(experiments.FormatFigure1(f1))
	fmt.Println()

	header("Figure 3a: performance vs CTA occupancy")
	f3 := experiments.Figure3(s)
	record("figure3", f3)
	fmt.Print(experiments.FormatFigure3(f3))
	fmt.Println()

	header("Figure 3b: sweet-spot identification (IMG + NN)")
	if ss, err := s.Figure3b(kernels.ByAbbr("IMG"), kernels.ByAbbr("NN")); err == nil {
		fmt.Print(experiments.FormatSweetSpot(ss))
	} else {
		fmt.Println("error:", err)
	}
	fmt.Println()

	header("Figure 5: 5K-cycle sampling window vs long-run behaviour")
	fmt.Print(experiments.FormatFigure5(experiments.Figure5(s, 10)))
	fmt.Println()

	header("Figure 6: multiprogrammed pairs, IPC normalized to Left-Over")
	rows := experiments.Figure6From(s, ws, withOracle)
	record("figure6", rows)
	record("figure6_gmeans", experiments.SummarizeFigure6(rows))
	fmt.Print(experiments.FormatFigure6(rows))
	fmt.Println()

	header("Table III: CTA partitions (Warped-Slicer vs Even)")
	fmt.Print(experiments.FormatTable3(experiments.Table3(s, rows)))
	fmt.Println()

	header("Figure 7: utilization / cache miss rates / stalls")
	fmt.Print(experiments.FormatFigure7(
		experiments.Figure7aFrom(s, rows),
		experiments.Figure7bFrom(rows),
		experiments.Figure7cFrom(rows)))
	fmt.Println()

	header("Figure 7c: per-benchmark stall breakdown (alone vs shared)")
	det := experiments.Figure7cDetail(s, rows)
	record("figure7c", det)
	fmt.Print(experiments.FormatFigure7cDetail(det))
	fmt.Println()

	header("Memory-interference decomposition: sampled span stages, alone vs shared")
	md := experiments.FigMemDecomp(s, ws)
	record("figmemdecomp", md)
	fmt.Print(experiments.FormatMemDecomp(md))
	fmt.Println()

	header("Engine self-profile: phase costs x kernel mix + fast-forward opportunity")
	po := o
	if po.ProfPeriod <= 0 {
		po.ProfPeriod = prof.DefaultPeriod
	}
	ep := experiments.FigEngineProf(experiments.NewSession(po), experiments.EngineProfWorkloads(ws))
	record("figengineprof", ep)
	fmt.Print(experiments.FormatEngineProf(ep))
	fmt.Println()

	header("Figure 8: three kernels per SM")
	rows8 := experiments.Figure8(s)
	fmt.Print(experiments.FormatFigure8(rows8))
	fmt.Println()

	header("Figure 9: fairness and ANTT")
	fmt.Print(experiments.FormatFigure9(experiments.Figure9(s, rows, rows8)))
	fmt.Println()

	header("§V-G: energy and power")
	fmt.Print(experiments.FormatEnergy(experiments.Energy(s, rows)))
	fmt.Println()

	// Figure 10 re-runs the dynamic policy under many controller settings;
	// sample every third pair to keep the sweep tractable on one core.
	var ws10 []experiments.Workload
	for i := 0; i < len(ws); i += 3 {
		ws10 = append(ws10, ws[i])
	}
	header("Figure 10: sensitivity analysis (pair subset)")
	fmt.Print(experiments.FormatFigure10(
		experiments.Figure10a(o, ws10),
		experiments.Figure10b(o, ws10)))
	fmt.Println()

	header("§V-H: large-SM configuration")
	lo := o
	lo.Cfg = config.LargeSM()
	fmt.Print(experiments.FormatBigSM(experiments.BigSM(lo, ws)))
	fmt.Println()

	header("§V-I: hardware overhead")
	fmt.Print(experiments.FormatOverhead(power.Overhead(o.Cfg.NumSMs)))
	fmt.Println()

	header("Paper-vs-measured report")
	rep := experiments.BuildReport(rows, rows8,
		experiments.Figure9(s, rows, rows8), experiments.Energy(s, rows))
	record("report", rep)
	fmt.Print(rep.Format())
}

func printConfig(o experiments.Options) {
	g := o.Cfg
	header("Table I: baseline configuration")
	fmt.Printf("Compute Units      %d, %dMHz, SIMT Width = %dx2\n", g.NumSMs, g.CoreClockMHz, g.SM.SIMTWidth)
	fmt.Printf("Resources / Core   max %d Threads, %d Registers\n", g.SM.MaxThreads, g.SM.Registers)
	fmt.Printf("                   max %d CTAs, %dKB Shared Memory\n", g.SM.MaxCTAs, g.SM.SharedMemBytes/1024)
	fmt.Printf("Warp Schedulers    %d per SM, default gto\n", g.SM.Schedulers)
	fmt.Printf("L1 Data Cache      %dKB %d-way %d MSHR\n", g.L1.SizeBytes/1024, g.L1.Assoc, g.L1.MSHRs)
	fmt.Printf("L2 Cache           %dKB/Memory Channel, %d-way\n", g.L2.SizeBytes/1024, g.L2.Assoc)
	fmt.Printf("Memory Model       %d MCs, FR-FCFS, %dMHz\n", g.Memory.Channels, g.MemClockMHz)
	fmt.Printf("GDDR5 Timing       tCL=%d tRP=%d tRC=%d tRAS=%d tRCD=%d tRRD=%d\n",
		g.Memory.TCL, g.Memory.TRP, g.Memory.TRC, g.Memory.TRAS, g.Memory.TRCD, g.Memory.TRRD)
	fmt.Printf("Windows            isolation=%d warmup=%d sample=%d\n", o.IsolationCycles, o.Warmup, o.Sample)
}

func header(s string) {
	fmt.Println("==== " + s + " ====")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wslicer:", err)
	os.Exit(1)
}
