// Command wsplot renders SVG charts from a wslicer -json results file
// (the Figure 3a occupancy curves and the Figure 6 policy comparison) and
// from the cross-PR performance trajectory kept by the bench rig.
//
//	go run ./cmd/wslicer -quick -json results.json fig3
//	go run ./cmd/wslicer -quick -json results.json fig6
//	go run ./cmd/wsplot -in results.json -out .
//	go run ./cmd/wsplot -trajectory BENCH_trajectory.jsonl -out .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"warpedslicer/internal/experiments"
	"warpedslicer/internal/plot"
	"warpedslicer/internal/runlog"
)

type resultsFile struct {
	Figure3 []experiments.Curve      `json:"figure3"`
	Figure6 []experiments.Figure6Row `json:"figure6"`
}

func main() {
	in := flag.String("in", "results.json", "wslicer -json output file")
	out := flag.String("out", ".", "directory for the SVG files")
	traj := flag.String("trajectory", "", "also chart this BENCH_trajectory.jsonl performance history")
	flag.Parse()

	wrote := 0
	if *traj != "" {
		n, err := plotTrajectory(*traj, *out)
		if err != nil {
			fatal(err)
		}
		wrote += n
	}

	raw, err := os.ReadFile(*in)
	if err != nil {
		// With -trajectory, the results file is optional: charting the
		// performance history alone is a valid invocation (the CI bench
		// job has no results.json).
		if wrote > 0 {
			fmt.Fprintf(os.Stderr, "wrote %d chart(s) to %s\n", wrote, *out)
			return
		}
		fatal(err)
	}
	var res resultsFile
	if err := json.Unmarshal(raw, &res); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *in, err))
	}
	if len(res.Figure3) > 0 {
		var series []plot.Series
		for _, c := range res.Figure3 {
			if c.MaxCTAs < 1 {
				continue
			}
			series = append(series, plot.Series{
				Name: fmt.Sprintf("%s (%s)", c.Abbr, c.Category),
				Y:    c.Norm[1:],
			})
		}
		svg := plot.LineChart("Figure 3a: performance vs CTA occupancy",
			"CTAs per SM", "IPC normalized to peak", series)
		if err := write(filepath.Join(*out, "fig3a.svg"), svg); err != nil {
			fatal(err)
		}
		wrote++
	}
	if len(res.Figure6) > 0 {
		names := []string{"Spatial", "Even", "Dynamic"}
		withOracle := res.Figure6[0].Oracle > 0
		if withOracle {
			names = append(names, "Oracle")
		}
		var groups []plot.BarGroup
		for _, r := range res.Figure6 {
			vals := []float64{r.Spatial, r.Even, r.Dynamic}
			if withOracle {
				vals = append(vals, r.Oracle)
			}
			groups = append(groups, plot.BarGroup{Label: r.Workload, Values: vals})
		}
		svg := plot.BarChart("Figure 6: IPC normalized to Left-Over",
			"normalized IPC", names, groups)
		if err := write(filepath.Join(*out, "fig6.svg"), svg); err != nil {
			fatal(err)
		}
		wrote++
	}
	if wrote == 0 {
		fatal(fmt.Errorf("%s contains neither figure3 nor figure6 results", *in))
	}
	fmt.Fprintf(os.Stderr, "wrote %d chart(s) to %s\n", wrote, *out)
}

// plotTrajectory charts ns/cycle over append order, one line per bench
// fingerprint (points only compare within a fingerprint — different
// machines and methodologies are different lines, not noise on one).
// Returns how many charts were written (0 for an empty trajectory).
func plotTrajectory(path, out string) (int, error) {
	pts, err := runlog.ReadTrajectory(path)
	if err != nil {
		return 0, err
	}
	if len(pts) == 0 {
		fmt.Fprintf(os.Stderr, "wsplot: %s has no trajectory points yet\n", path)
		return 0, nil
	}
	byFP := map[string]*plot.Series{}
	var order []string
	for i, p := range pts {
		s, ok := byFP[p.Fingerprint]
		if !ok {
			s = &plot.Series{Name: p.Fingerprint}
			byFP[p.Fingerprint] = s
			order = append(order, p.Fingerprint)
		}
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, p.NsPerCycle)
	}
	series := make([]plot.Series, len(order))
	for i, fp := range order {
		series[i] = *byFP[fp]
	}
	svg := plot.LineChart("Performance trajectory: engine ns/cycle across PRs",
		"trajectory point", "ns per simulated cycle", series)
	if err := write(filepath.Join(out, "trajectory.svg"), svg); err != nil {
		return 0, err
	}
	return 1, nil
}

func write(path, content string) error {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Println(path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wsplot:", err)
	os.Exit(1)
}
