//go:build race

package warpedslicer_bench

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation inflates ns/cycle far past any real
// regression; the throughput budget tests skip themselves under it.
const raceEnabled = true
